//! Code generators: the Halide C++ generator source a lifted summary compiles
//! to (Fig. 1(d) of the paper), and the de-optimized serial C used by the
//! §6.5 experiment.

use crate::func::{Func, HExpr, HIndex};
use crate::schedule::Region;

/// Emits the Halide C++ generator program for a stencil function, in the
/// style of Fig. 1(d): an `ImageParam` per input, a `Func` definition, and a
/// `compile_to_file` call.
///
/// A strided function is emitted over *packed* coordinates: each strided
/// dimension gets an integer `Param` for its base (`x_base`), the variable
/// counts progression points, and every input access maps through
/// `x_base + step·x`. Realizing the packed Func over `0 ..
/// trip_count` computes exactly the strided points, matching the runtime's
/// packed [`crate::buffer::Buffer`] layout.
pub fn halide_cpp(func: &Func, scalar_params: &[String]) -> String {
    let vars = var_names(func.rank);
    let mut out = String::new();
    out.push_str("#include \"Halide.h\"\nusing namespace Halide;\n\nint main() {\n");
    for image in func.expr.images() {
        out.push_str(&format!(
            "  ImageParam {image}(type_of<double>(), {});\n",
            func.rank
        ));
    }
    for p in scalar_params {
        out.push_str(&format!("  Param<double> {p};\n"));
    }
    let mut base_params = Vec::new();
    for (v, s) in vars.iter().zip(&func.steps) {
        if *s != 1 {
            out.push_str(&format!("  Param<int> {v}_base;\n"));
            base_params.push(format!("{v}_base"));
        }
    }
    out.push_str(&format!("  Func {}; Var {};\n", func.name, vars.join(", ")));
    out.push_str(&format!(
        "  {}({}) = {};\n",
        func.name,
        vars.join(", "),
        cpp_expr_strided(&func.expr, &vars, &func.steps)
    ));
    let mut args: Vec<String> = func.expr.images();
    args.extend(base_params);
    args.extend(scalar_params.iter().cloned());
    out.push_str(&format!(
        "  {}.compile_to_file(\"{}\", {{{}}});\n",
        func.name,
        func.name,
        args.join(", ")
    ));
    out.push_str("  return 0;\n}\n");
    out
}

/// Emits a clean serial C loop nest recomputing the stencil over `region` —
/// the "de-optimized" form whose simple control flow classical
/// auto-parallelizers handle well (§6.5).
pub fn serial_c(func: &Func, region: &Region) -> String {
    let vars = var_names(func.rank);
    let mut out = String::new();
    out.push_str(&format!(
        "void {}_deopt(double *{}_out, const double **inputs) {{\n",
        func.name, func.name
    ));
    let mut indent = String::from("  ");
    for (d, var) in vars.iter().enumerate() {
        let (lo, hi) = region[d];
        let step = func.steps.get(d).copied().unwrap_or(1);
        if step == 1 {
            out.push_str(&format!(
                "{indent}for (long {var} = {lo}; {var} <= {hi}; ++{var}) {{\n"
            ));
        } else {
            out.push_str(&format!(
                "{indent}for (long {var} = {lo}; {var} <= {hi}; {var} += {step}) {{\n"
            ));
        }
        indent.push_str("  ");
    }
    out.push_str(&format!(
        "{indent}{}_out[{}] = {};\n",
        func.name,
        flat_index(&vars, region, &func.steps),
        c_expr(&func.expr, &vars, region)
    ));
    for d in (0..vars.len()).rev() {
        indent.truncate(indent.len() - 2);
        out.push_str(&format!("{indent}}}\n"));
        let _ = d;
    }
    out.push_str("}\n");
    out
}

fn var_names(rank: usize) -> Vec<String> {
    ["x", "y", "z", "w", "u", "v"]
        .iter()
        .take(rank)
        .map(|s| s.to_string())
        .collect()
}

fn index_str(ix: &HIndex, vars: &[String]) -> String {
    match ix {
        HIndex::VarOffset { var, offset } => {
            let name = vars.get(*var).cloned().unwrap_or_else(|| "t".into());
            match offset.cmp(&0) {
                std::cmp::Ordering::Equal => name,
                std::cmp::Ordering::Greater => format!("{name} + {offset}"),
                std::cmp::Ordering::Less => format!("{name} - {}", -offset),
            }
        }
        HIndex::Const(v) => v.to_string(),
    }
}

fn cpp_expr(e: &HExpr, vars: &[String]) -> String {
    let dense = vec![1; vars.len()];
    cpp_expr_strided(e, vars, &dense)
}

/// Like [`cpp_expr`] but maps accesses through packed coordinates: an index
/// on a strided grid variable emits `v_base + step*v + offset`.
fn cpp_expr_strided(e: &HExpr, vars: &[String], steps: &[i64]) -> String {
    match e {
        HExpr::Const(v) => format!("{v:?}"),
        HExpr::Param(p) => p.clone(),
        HExpr::Input { image, index } => {
            let idx: Vec<String> = index
                .iter()
                .map(|ix| strided_index_str(ix, vars, steps))
                .collect();
            format!("{image}({})", idx.join(", "))
        }
        HExpr::Add(a, b) => format!(
            "({} + {})",
            cpp_expr_strided(a, vars, steps),
            cpp_expr_strided(b, vars, steps)
        ),
        HExpr::Sub(a, b) => format!(
            "({} - {})",
            cpp_expr_strided(a, vars, steps),
            cpp_expr_strided(b, vars, steps)
        ),
        HExpr::Mul(a, b) => format!(
            "({} * {})",
            cpp_expr_strided(a, vars, steps),
            cpp_expr_strided(b, vars, steps)
        ),
        HExpr::Div(a, b) => format!(
            "({} / {})",
            cpp_expr_strided(a, vars, steps),
            cpp_expr_strided(b, vars, steps)
        ),
        HExpr::Call { name, args } => {
            let args: Vec<String> = args
                .iter()
                .map(|a| cpp_expr_strided(a, vars, steps))
                .collect();
            format!("{name}({})", args.join(", "))
        }
    }
}

/// Index string for the packed-coordinate emission: a strided variable's
/// access becomes `v_base + step*v + offset`.
fn strided_index_str(ix: &HIndex, vars: &[String], steps: &[i64]) -> String {
    match ix {
        HIndex::VarOffset { var, offset } => {
            let step = steps.get(*var).copied().unwrap_or(1);
            if step == 1 {
                return index_str(ix, vars);
            }
            let name = vars.get(*var).cloned().unwrap_or_else(|| "t".into());
            let base = format!("{name}_base + {step}*{name}");
            match offset.cmp(&0) {
                std::cmp::Ordering::Equal => base,
                std::cmp::Ordering::Greater => format!("{base} + {offset}"),
                std::cmp::Ordering::Less => format!("{base} - {}", -offset),
            }
        }
        HIndex::Const(_) => index_str(ix, vars),
    }
}

#[allow(clippy::only_used_in_recursion)]
fn c_expr(e: &HExpr, vars: &[String], region: &Region) -> String {
    match e {
        HExpr::Input { image, index } => {
            let idx: Vec<String> = index.iter().map(|ix| index_str(ix, vars)).collect();
            format!("{image}[{}]", idx.join("]["))
        }
        HExpr::Add(a, b) => format!(
            "({} + {})",
            c_expr(a, vars, region),
            c_expr(b, vars, region)
        ),
        HExpr::Sub(a, b) => format!(
            "({} - {})",
            c_expr(a, vars, region),
            c_expr(b, vars, region)
        ),
        HExpr::Mul(a, b) => format!(
            "({} * {})",
            c_expr(a, vars, region),
            c_expr(b, vars, region)
        ),
        HExpr::Div(a, b) => format!(
            "({} / {})",
            c_expr(a, vars, region),
            c_expr(b, vars, region)
        ),
        HExpr::Call { name, args } => {
            let args: Vec<String> = args.iter().map(|a| c_expr(a, vars, region)).collect();
            format!("{name}({})", args.join(", "))
        }
        other => cpp_expr(other, vars),
    }
}

fn flat_index(vars: &[String], region: &Region, steps: &[i64]) -> String {
    let mut expr = String::new();
    for (d, var) in vars.iter().enumerate() {
        let (lo, hi) = region[d];
        let step = steps.get(d).copied().unwrap_or(1);
        let extent = if lo > hi { 0 } else { (hi - lo) / step + 1 };
        let packed = if step == 1 {
            format!("({var} - {lo})")
        } else {
            format!("(({var} - {lo}) / {step})")
        };
        if d == 0 {
            expr = packed;
        } else {
            expr = format!("({expr} * {extent} + {packed})");
        }
    }
    expr
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_point() -> Func {
        Func::new(
            "ex1",
            2,
            HExpr::Add(
                Box::new(HExpr::Input {
                    image: "b".into(),
                    index: vec![
                        HIndex::VarOffset { var: 0, offset: -1 },
                        HIndex::VarOffset { var: 1, offset: 0 },
                    ],
                }),
                Box::new(HExpr::Input {
                    image: "b".into(),
                    index: vec![
                        HIndex::VarOffset { var: 0, offset: 0 },
                        HIndex::VarOffset { var: 1, offset: 0 },
                    ],
                }),
            ),
        )
    }

    #[test]
    fn halide_generator_matches_figure_1d_shape() {
        let cpp = halide_cpp(&two_point(), &[]);
        assert!(cpp.contains("ImageParam b(type_of<double>(), 2);"));
        assert!(cpp.contains("Func ex1; Var x, y;"));
        assert!(cpp.contains("ex1(x, y) = (b(x - 1, y) + b(x, y));"));
        assert!(cpp.contains("compile_to_file(\"ex1\""));
    }

    #[test]
    fn serial_c_is_a_clean_loop_nest() {
        let c = serial_c(&two_point(), &vec![(1, 8), (0, 9)]);
        assert!(c.contains("for (long x = 1; x <= 8; ++x)"));
        assert!(c.contains("for (long y = 0; y <= 9; ++y)"));
        assert!(c.contains("ex1_out["));
    }

    fn strided_two_point() -> Func {
        let Func { rank, expr, .. } = two_point();
        Func::strided("ex1", rank, vec![2, 1], expr)
    }

    #[test]
    fn strided_halide_cpp_defines_packed_coordinates() {
        let cpp = halide_cpp(&strided_two_point(), &[]);
        // The strided dimension gets a base parameter and every access maps
        // through x_base + 2*x; the dense dimension is untouched.
        assert!(cpp.contains("Param<int> x_base;"), "{cpp}");
        assert!(
            cpp.contains("ex1(x, y) = (b(x_base + 2*x - 1, y) + b(x_base + 2*x, y));"),
            "{cpp}"
        );
        assert!(cpp.contains("{b, x_base}"), "{cpp}");
    }

    #[test]
    fn strided_serial_c_steps_and_packs() {
        let c = serial_c(&strided_two_point(), &vec![(1, 8), (0, 9)]);
        assert!(c.contains("for (long x = 1; x <= 8; x += 2)"), "{c}");
        assert!(c.contains("((x - 1) / 2)"), "{c}");
    }
}
