//! Code generators: the Halide C++ generator source a lifted summary compiles
//! to (Fig. 1(d) of the paper), and the de-optimized serial C used by the
//! §6.5 experiment.

use crate::func::{Func, HExpr, HIndex};
use crate::schedule::Region;

/// Emits the Halide C++ generator program for a stencil function, in the
/// style of Fig. 1(d): an `ImageParam` per input, a `Func` definition, and a
/// `compile_to_file` call.
pub fn halide_cpp(func: &Func, scalar_params: &[String]) -> String {
    let vars = var_names(func.rank);
    let mut out = String::new();
    out.push_str("#include \"Halide.h\"\nusing namespace Halide;\n\nint main() {\n");
    for image in func.expr.images() {
        out.push_str(&format!(
            "  ImageParam {image}(type_of<double>(), {});\n",
            func.rank
        ));
    }
    for p in scalar_params {
        out.push_str(&format!("  Param<double> {p};\n"));
    }
    out.push_str(&format!("  Func {}; Var {};\n", func.name, vars.join(", ")));
    out.push_str(&format!(
        "  {}({}) = {};\n",
        func.name,
        vars.join(", "),
        cpp_expr(&func.expr, &vars)
    ));
    let mut args: Vec<String> = func.expr.images();
    args.extend(scalar_params.iter().cloned());
    out.push_str(&format!(
        "  {}.compile_to_file(\"{}\", {{{}}});\n",
        func.name,
        func.name,
        args.join(", ")
    ));
    out.push_str("  return 0;\n}\n");
    out
}

/// Emits a clean serial C loop nest recomputing the stencil over `region` —
/// the "de-optimized" form whose simple control flow classical
/// auto-parallelizers handle well (§6.5).
pub fn serial_c(func: &Func, region: &Region) -> String {
    let vars = var_names(func.rank);
    let mut out = String::new();
    out.push_str(&format!(
        "void {}_deopt(double *{}_out, const double **inputs) {{\n",
        func.name, func.name
    ));
    let mut indent = String::from("  ");
    for (d, var) in vars.iter().enumerate() {
        let (lo, hi) = region[d];
        out.push_str(&format!(
            "{indent}for (long {var} = {lo}; {var} <= {hi}; ++{var}) {{\n"
        ));
        indent.push_str("  ");
    }
    out.push_str(&format!(
        "{indent}{}_out[{}] = {};\n",
        func.name,
        flat_index(&vars, region),
        c_expr(&func.expr, &vars, region)
    ));
    for d in (0..vars.len()).rev() {
        indent.truncate(indent.len() - 2);
        out.push_str(&format!("{indent}}}\n"));
        let _ = d;
    }
    out.push_str("}\n");
    out
}

fn var_names(rank: usize) -> Vec<String> {
    ["x", "y", "z", "w", "u", "v"]
        .iter()
        .take(rank)
        .map(|s| s.to_string())
        .collect()
}

fn index_str(ix: &HIndex, vars: &[String]) -> String {
    match ix {
        HIndex::VarOffset { var, offset } => {
            let name = vars.get(*var).cloned().unwrap_or_else(|| "t".into());
            match offset.cmp(&0) {
                std::cmp::Ordering::Equal => name,
                std::cmp::Ordering::Greater => format!("{name} + {offset}"),
                std::cmp::Ordering::Less => format!("{name} - {}", -offset),
            }
        }
        HIndex::Const(v) => v.to_string(),
    }
}

fn cpp_expr(e: &HExpr, vars: &[String]) -> String {
    match e {
        HExpr::Const(v) => format!("{v:?}"),
        HExpr::Param(p) => p.clone(),
        HExpr::Input { image, index } => {
            let idx: Vec<String> = index.iter().map(|ix| index_str(ix, vars)).collect();
            format!("{image}({})", idx.join(", "))
        }
        HExpr::Add(a, b) => format!("({} + {})", cpp_expr(a, vars), cpp_expr(b, vars)),
        HExpr::Sub(a, b) => format!("({} - {})", cpp_expr(a, vars), cpp_expr(b, vars)),
        HExpr::Mul(a, b) => format!("({} * {})", cpp_expr(a, vars), cpp_expr(b, vars)),
        HExpr::Div(a, b) => format!("({} / {})", cpp_expr(a, vars), cpp_expr(b, vars)),
        HExpr::Call { name, args } => {
            let args: Vec<String> = args.iter().map(|a| cpp_expr(a, vars)).collect();
            format!("{name}({})", args.join(", "))
        }
    }
}

#[allow(clippy::only_used_in_recursion)]
fn c_expr(e: &HExpr, vars: &[String], region: &Region) -> String {
    match e {
        HExpr::Input { image, index } => {
            let idx: Vec<String> = index.iter().map(|ix| index_str(ix, vars)).collect();
            format!("{image}[{}]", idx.join("]["))
        }
        HExpr::Add(a, b) => format!(
            "({} + {})",
            c_expr(a, vars, region),
            c_expr(b, vars, region)
        ),
        HExpr::Sub(a, b) => format!(
            "({} - {})",
            c_expr(a, vars, region),
            c_expr(b, vars, region)
        ),
        HExpr::Mul(a, b) => format!(
            "({} * {})",
            c_expr(a, vars, region),
            c_expr(b, vars, region)
        ),
        HExpr::Div(a, b) => format!(
            "({} / {})",
            c_expr(a, vars, region),
            c_expr(b, vars, region)
        ),
        HExpr::Call { name, args } => {
            let args: Vec<String> = args.iter().map(|a| c_expr(a, vars, region)).collect();
            format!("{name}({})", args.join(", "))
        }
        other => cpp_expr(other, vars),
    }
}

fn flat_index(vars: &[String], region: &Region) -> String {
    let mut expr = String::new();
    for (d, var) in vars.iter().enumerate() {
        let (lo, hi) = region[d];
        let extent = hi - lo + 1;
        if d == 0 {
            expr = format!("({var} - {lo})");
        } else {
            expr = format!("({expr} * {extent} + ({var} - {lo}))");
        }
    }
    expr
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_point() -> Func {
        Func::new(
            "ex1",
            2,
            HExpr::Add(
                Box::new(HExpr::Input {
                    image: "b".into(),
                    index: vec![
                        HIndex::VarOffset { var: 0, offset: -1 },
                        HIndex::VarOffset { var: 1, offset: 0 },
                    ],
                }),
                Box::new(HExpr::Input {
                    image: "b".into(),
                    index: vec![
                        HIndex::VarOffset { var: 0, offset: 0 },
                        HIndex::VarOffset { var: 1, offset: 0 },
                    ],
                }),
            ),
        )
    }

    #[test]
    fn halide_generator_matches_figure_1d_shape() {
        let cpp = halide_cpp(&two_point(), &[]);
        assert!(cpp.contains("ImageParam b(type_of<double>(), 2);"));
        assert!(cpp.contains("Func ex1; Var x, y;"));
        assert!(cpp.contains("ex1(x, y) = (b(x - 1, y) + b(x, y));"));
        assert!(cpp.contains("compile_to_file(\"ex1\""));
    }

    #[test]
    fn serial_c_is_a_clean_loop_nest() {
        let c = serial_c(&two_point(), &vec![(1, 8), (0, 9)]);
        assert!(c.contains("for (long x = 1; x <= 8; ++x)"));
        assert!(c.contains("for (long y = 0; y <= 9; ++y)"));
        assert!(c.contains("ex1_out["));
    }
}
