//! Dense multidimensional buffers with logical origins, the data interface
//! between generated stencil code and its caller (the paper's "glue code"
//! converts Fortran arrays into exactly this shape).

/// A row-major buffer of `f64` values with a logical origin per dimension
/// (so Fortran-style `imin:imax` arrays map directly). A dimension may carry
/// a logical *step*: the buffer then stores only the points of the
/// arithmetic progression `origin, origin+step, …` (densely packed), which
/// is how the realization of a strided `Func` is represented — element
/// `(origin + k·step)` lives at packed index `k`.
#[derive(Debug, Clone, PartialEq)]
pub struct Buffer {
    /// Logical origin (minimum index) of each dimension.
    pub origin: Vec<i64>,
    /// Extent (number of stored points) of each dimension.
    pub extent: Vec<usize>,
    /// Logical distance between consecutive stored points, per dimension
    /// (`1` = dense).
    pub step: Vec<i64>,
    /// Element storage, last dimension fastest.
    pub data: Vec<f64>,
}

impl Buffer {
    /// Creates a zero-filled dense buffer.
    pub fn new(origin: Vec<i64>, extent: Vec<usize>) -> Buffer {
        let step = vec![1; origin.len()];
        Buffer::strided(origin, extent, step)
    }

    /// Creates a zero-filled buffer over a strided logical domain.
    ///
    /// # Panics
    ///
    /// Panics when the step vector's length does not match the rank or any
    /// step is not positive.
    pub fn strided(origin: Vec<i64>, extent: Vec<usize>, step: Vec<i64>) -> Buffer {
        assert_eq!(step.len(), origin.len(), "one step per dimension");
        assert!(step.iter().all(|s| *s > 0), "steps must be positive");
        let len = extent.iter().product();
        Buffer {
            origin,
            extent,
            step,
            data: vec![0.0; len],
        }
    }

    /// Creates a dense buffer with contents produced by `f(logical indices)`.
    pub fn from_fn(
        origin: Vec<i64>,
        extent: Vec<usize>,
        mut f: impl FnMut(&[i64]) -> f64,
    ) -> Buffer {
        let mut buf = Buffer::new(origin.clone(), extent.clone());
        let mut idx = origin.clone();
        let len = buf.data.len();
        for flat in 0..len {
            buf.data[flat] = f(&idx);
            // Advance the logical index, last dimension fastest.
            for d in (0..extent.len()).rev() {
                idx[d] += 1;
                if idx[d] < origin[d] + extent[d] as i64 {
                    break;
                }
                idx[d] = origin[d];
            }
        }
        buf
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.extent.len()
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` when the buffer has no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Total size in bytes (used by the GPU transfer model).
    pub fn size_bytes(&self) -> usize {
        self.data.len() * std::mem::size_of::<f64>()
    }

    /// Flat offset for a logical index, or `None` when out of range or (for
    /// a strided dimension) not a stored point of the progression.
    pub fn offset(&self, indices: &[i64]) -> Option<usize> {
        if indices.len() != self.rank() {
            return None;
        }
        let mut off = 0usize;
        for (d, &ix) in indices.iter().enumerate() {
            let rel = ix - self.origin[d];
            let step = self.step[d];
            if rel < 0 || rel % step != 0 {
                return None;
            }
            let packed = (rel / step) as usize;
            if packed >= self.extent[d] {
                return None;
            }
            off = off * self.extent[d] + packed;
        }
        Some(off)
    }

    /// Reads the element at a logical index.
    pub fn get(&self, indices: &[i64]) -> Option<f64> {
        self.offset(indices).map(|o| self.data[o])
    }

    /// Reads without bounds checks beyond clamping (used by the runtime on
    /// halo reads; lifted kernels never read out of range by construction).
    /// On a strided buffer the index is additionally snapped down to the
    /// nearest stored progression point, so halo reads never miss.
    pub fn get_clamped(&self, indices: &[i64]) -> f64 {
        let clamped: Vec<i64> = indices
            .iter()
            .enumerate()
            .map(|(d, &ix)| {
                let step = self.step[d];
                let hi = self.origin[d] + (self.extent[d] as i64 - 1) * step;
                let ix = ix.max(self.origin[d]).min(hi);
                self.origin[d] + ((ix - self.origin[d]) / step) * step
            })
            .collect();
        self.get(&clamped).unwrap_or(0.0)
    }

    /// Writes the element at a logical index; returns `false` when out of
    /// range.
    pub fn set(&mut self, indices: &[i64], value: f64) -> bool {
        match self.offset(indices) {
            Some(o) => {
                self.data[o] = value;
                true
            }
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn logical_origins_are_respected() {
        let buf = Buffer::from_fn(vec![-1, 2], vec![3, 4], |ix| (ix[0] * 10 + ix[1]) as f64);
        assert_eq!(buf.len(), 12);
        assert_eq!(buf.get(&[-1, 2]), Some(-8.0));
        assert_eq!(buf.get(&[1, 5]), Some(15.0));
        assert_eq!(buf.get(&[2, 2]), None);
        assert_eq!(buf.get_clamped(&[5, 5]), 15.0);
    }

    #[test]
    fn strided_buffers_store_only_progression_points() {
        let mut buf = Buffer::strided(vec![2], vec![4], vec![2]);
        // Logical points 2, 4, 6, 8 are stored; odd points are not.
        assert!(buf.set(&[2], 1.0));
        assert!(buf.set(&[8], 4.0));
        assert!(!buf.set(&[3], 9.0));
        assert!(!buf.set(&[10], 9.0));
        assert_eq!(buf.get(&[2]), Some(1.0));
        assert_eq!(buf.get(&[8]), Some(4.0));
        assert_eq!(buf.get(&[5]), None);
        assert_eq!(buf.len(), 4);
        // Clamping lands on the last stored point.
        assert_eq!(buf.get_clamped(&[100]), 4.0);
        // An in-range but unaligned index snaps down to the stored point
        // below it instead of silently reading 0.
        assert_eq!(buf.get_clamped(&[3]), 1.0);
        assert_eq!(buf.get_clamped(&[9]), 4.0);
        assert_eq!(buf.get_clamped(&[1]), 1.0);
    }

    #[test]
    fn set_and_size() {
        let mut buf = Buffer::new(vec![0], vec![4]);
        assert!(buf.set(&[3], 7.0));
        assert!(!buf.set(&[4], 7.0));
        assert_eq!(buf.get(&[3]), Some(7.0));
        assert_eq!(buf.size_bytes(), 32);
    }
}
