//! The algorithm half of the mini-Halide language: pure functions over grid
//! coordinates.

use crate::buffer::Buffer;
use std::collections::HashMap;
use std::fmt;

/// An index expression inside an input-image access: either a grid variable
/// plus a constant offset, or a constant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HIndex {
    /// `var[k] + offset`
    VarOffset {
        /// Which of the function's pure variables.
        var: usize,
        /// Constant offset.
        offset: i64,
    },
    /// A constant index.
    Const(i64),
}

impl HIndex {
    fn eval(&self, point: &[i64]) -> i64 {
        match self {
            HIndex::VarOffset { var, offset } => point[*var] + offset,
            HIndex::Const(v) => *v,
        }
    }
}

/// Expressions of the mini-Halide algorithm language.
#[derive(Debug, Clone, PartialEq)]
pub enum HExpr {
    /// Floating-point constant.
    Const(f64),
    /// A scalar runtime parameter.
    Param(String),
    /// A read of an input image at offsets relative to the output point.
    Input {
        /// Image name.
        image: String,
        /// One index per image dimension.
        index: Vec<HIndex>,
    },
    /// Addition.
    Add(Box<HExpr>, Box<HExpr>),
    /// Subtraction.
    Sub(Box<HExpr>, Box<HExpr>),
    /// Multiplication.
    Mul(Box<HExpr>, Box<HExpr>),
    /// Division.
    Div(Box<HExpr>, Box<HExpr>),
    /// Call to a pure math function.
    Call {
        /// Function name.
        name: String,
        /// Arguments.
        args: Vec<HExpr>,
    },
}

impl HExpr {
    /// Evaluates the expression at a grid point.
    pub fn eval(
        &self,
        point: &[i64],
        inputs: &HashMap<String, &Buffer>,
        params: &HashMap<String, f64>,
    ) -> f64 {
        match self {
            HExpr::Const(v) => *v,
            HExpr::Param(name) => params.get(name).copied().unwrap_or(0.0),
            HExpr::Input { image, index } => {
                let idx: Vec<i64> = index.iter().map(|ix| ix.eval(point)).collect();
                inputs
                    .get(image)
                    .map(|buf| buf.get_clamped(&idx))
                    .unwrap_or(0.0)
            }
            HExpr::Add(a, b) => a.eval(point, inputs, params) + b.eval(point, inputs, params),
            HExpr::Sub(a, b) => a.eval(point, inputs, params) - b.eval(point, inputs, params),
            HExpr::Mul(a, b) => a.eval(point, inputs, params) * b.eval(point, inputs, params),
            HExpr::Div(a, b) => {
                let d = b.eval(point, inputs, params);
                if d == 0.0 {
                    0.0
                } else {
                    a.eval(point, inputs, params) / d
                }
            }
            HExpr::Call { name, args } => {
                let vals: Vec<f64> = args.iter().map(|a| a.eval(point, inputs, params)).collect();
                apply_intrinsic(name, &vals)
            }
        }
    }

    /// Number of arithmetic operations per point (cost-model input).
    pub fn flops(&self) -> usize {
        match self {
            HExpr::Const(_) | HExpr::Param(_) | HExpr::Input { .. } => 0,
            HExpr::Add(a, b) | HExpr::Sub(a, b) | HExpr::Mul(a, b) | HExpr::Div(a, b) => {
                1 + a.flops() + b.flops()
            }
            HExpr::Call { args, .. } => 4 + args.iter().map(HExpr::flops).sum::<usize>(),
        }
    }

    /// Number of input-image reads per point (cost-model input).
    pub fn loads(&self) -> usize {
        match self {
            HExpr::Input { .. } => 1,
            HExpr::Const(_) | HExpr::Param(_) => 0,
            HExpr::Add(a, b) | HExpr::Sub(a, b) | HExpr::Mul(a, b) | HExpr::Div(a, b) => {
                a.loads() + b.loads()
            }
            HExpr::Call { args, .. } => args.iter().map(HExpr::loads).sum(),
        }
    }

    /// Names of all input images referenced.
    pub fn images(&self) -> Vec<String> {
        let mut out = Vec::new();
        fn go(e: &HExpr, out: &mut Vec<String>) {
            match e {
                HExpr::Input { image, .. } => {
                    if !out.contains(image) {
                        out.push(image.clone());
                    }
                }
                HExpr::Add(a, b) | HExpr::Sub(a, b) | HExpr::Mul(a, b) | HExpr::Div(a, b) => {
                    go(a, out);
                    go(b, out);
                }
                HExpr::Call { args, .. } => args.iter().for_each(|a| go(a, out)),
                HExpr::Const(_) | HExpr::Param(_) => {}
            }
        }
        go(self, &mut out);
        out
    }
}

/// Evaluates a pure math intrinsic (total: undefined cases return 0).
pub fn apply_intrinsic(name: &str, args: &[f64]) -> f64 {
    match (name, args) {
        ("exp", [x]) => x.exp(),
        ("log", [x]) if *x > 0.0 => x.ln(),
        ("sqrt", [x]) if *x >= 0.0 => x.sqrt(),
        ("sin", [x]) => x.sin(),
        ("cos", [x]) => x.cos(),
        ("tan", [x]) => x.tan(),
        ("abs", [x]) => x.abs(),
        ("min", [x, y]) => x.min(*y),
        ("max", [x, y]) => x.max(*y),
        ("mod", [x, y]) if *y != 0.0 => x.rem_euclid(*y),
        ("sign", [x, y]) => x.abs() * y.signum(),
        _ => 0.0,
    }
}

impl fmt::Display for HExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HExpr::Const(v) => write!(f, "{v}"),
            HExpr::Param(name) => write!(f, "{name}"),
            HExpr::Input { image, index } => {
                write!(f, "{image}(")?;
                for (k, ix) in index.iter().enumerate() {
                    if k > 0 {
                        write!(f, ", ")?;
                    }
                    match ix {
                        HIndex::VarOffset { var, offset } => {
                            let name = ["x", "y", "z", "w", "u", "v"]
                                .get(*var)
                                .copied()
                                .unwrap_or("t");
                            match offset.cmp(&0) {
                                std::cmp::Ordering::Equal => write!(f, "{name}")?,
                                std::cmp::Ordering::Greater => write!(f, "{name}+{offset}")?,
                                std::cmp::Ordering::Less => write!(f, "{name}{offset}")?,
                            }
                        }
                        HIndex::Const(v) => write!(f, "{v}")?,
                    }
                }
                write!(f, ")")
            }
            HExpr::Add(a, b) => write!(f, "({a} + {b})"),
            HExpr::Sub(a, b) => write!(f, "({a} - {b})"),
            HExpr::Mul(a, b) => write!(f, "({a} * {b})"),
            HExpr::Div(a, b) => write!(f, "({a} / {b})"),
            HExpr::Call { name, args } => {
                write!(f, "{name}(")?;
                for (k, a) in args.iter().enumerate() {
                    if k > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
        }
    }
}

/// A pure stencil function: `name(x, y, …) = expr`, optionally defined over
/// a strided grid. A per-dimension step of `s > 1` means the function is
/// realized only at the points `lo, lo+s, …` of its region in that
/// dimension — the §6.5 extension that lets summaries of strided loops
/// translate to runnable definitions instead of being rejected.
#[derive(Debug, Clone, PartialEq)]
pub struct Func {
    /// Function (and output buffer) name.
    pub name: String,
    /// Number of pure grid variables (output dimensionality).
    pub rank: usize,
    /// Realization step per grid variable (`1` = dense).
    pub steps: Vec<i64>,
    /// Defining expression.
    pub expr: HExpr,
}

impl Func {
    /// Creates a dense function.
    pub fn new(name: impl Into<String>, rank: usize, expr: HExpr) -> Func {
        let steps = vec![1; rank];
        Func::strided(name, rank, steps, expr)
    }

    /// Creates a function over a strided grid.
    pub fn strided(name: impl Into<String>, rank: usize, steps: Vec<i64>, expr: HExpr) -> Func {
        assert_eq!(steps.len(), rank, "one step per grid variable");
        Func {
            name: name.into(),
            rank,
            steps,
            expr,
        }
    }

    /// Returns `true` when every dimension is dense.
    pub fn is_dense(&self) -> bool {
        self.steps.iter().all(|s| *s == 1)
    }

    /// Arithmetic intensity proxy used by the cost models.
    pub fn work_per_point(&self) -> usize {
        self.expr.flops() + self.expr.loads()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_point() -> Func {
        Func::new(
            "ex1",
            2,
            HExpr::Add(
                Box::new(HExpr::Input {
                    image: "b".into(),
                    index: vec![
                        HIndex::VarOffset { var: 0, offset: -1 },
                        HIndex::VarOffset { var: 1, offset: 0 },
                    ],
                }),
                Box::new(HExpr::Input {
                    image: "b".into(),
                    index: vec![
                        HIndex::VarOffset { var: 0, offset: 0 },
                        HIndex::VarOffset { var: 1, offset: 0 },
                    ],
                }),
            ),
        )
    }

    #[test]
    fn evaluation_reads_inputs_with_offsets() {
        let func = two_point();
        let b = Buffer::from_fn(vec![0, 0], vec![4, 4], |ix| (ix[0] + 10 * ix[1]) as f64);
        let mut inputs = HashMap::new();
        inputs.insert("b".to_string(), &b);
        let params = HashMap::new();
        let v = func.expr.eval(&[2, 3], &inputs, &params);
        assert_eq!(v, (1 + 30) as f64 + (2 + 30) as f64);
        assert_eq!(func.work_per_point(), 3);
        assert_eq!(func.expr.images(), vec!["b".to_string()]);
    }

    #[test]
    fn display_looks_like_halide() {
        let func = two_point();
        assert_eq!(func.expr.to_string(), "(b(x-1, y) + b(x, y))");
    }
}
