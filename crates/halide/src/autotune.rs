//! Schedule autotuning in the style of OpenTuner (§5.3): an ensemble of
//! schedule mutators selected by a multi-armed bandit, evaluating candidate
//! schedules by actually executing the stencil and keeping the best.

use crate::buffer::Buffer;
use crate::func::Func;
use crate::schedule::{realize, Region, Schedule};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use std::time::{Duration, Instant};

/// The result of an autotuning session.
#[derive(Debug, Clone, PartialEq)]
pub struct TuneReport {
    /// The best schedule found.
    pub best: Schedule,
    /// Measured execution time of the best schedule.
    pub best_time: Duration,
    /// Measured execution time of the naive schedule (the baseline the search
    /// started from).
    pub naive_time: Duration,
    /// Number of candidate schedules evaluated.
    pub evaluations: usize,
}

/// An OpenTuner-style autotuner: each mutation operator is an arm of a
/// multi-armed bandit; arms that produce improvements are pulled more often.
#[derive(Debug, Clone)]
pub struct Autotuner {
    /// Number of candidate schedules to evaluate.
    pub budget: usize,
    /// Worker threads available to parallel schedules.
    pub threads: usize,
    /// RNG seed (tuning is reproducible).
    pub seed: u64,
    /// Exploration constant of the bandit.
    pub exploration: f64,
}

impl Default for Autotuner {
    fn default() -> Self {
        Autotuner {
            budget: 24,
            threads: 4,
            seed: 0x0075_7e4e,
            exploration: 1.4,
        }
    }
}

const ARMS: usize = 4;

impl Autotuner {
    /// Creates an autotuner with the given evaluation budget.
    pub fn with_budget(budget: usize) -> Autotuner {
        Autotuner {
            budget,
            ..Autotuner::default()
        }
    }

    /// Tunes the schedule of `func` over `region` against the given inputs.
    pub fn tune(
        &self,
        func: &Func,
        region: &Region,
        inputs: &HashMap<String, &Buffer>,
        params: &HashMap<String, f64>,
    ) -> TuneReport {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let naive = Schedule::naive(func.rank);
        let naive_time = measure(func, &naive, region, inputs, params);

        let mut best = Schedule::default_tuned(func.rank, self.threads);
        let mut best_time = measure(func, &best, region, inputs, params);
        if naive_time < best_time {
            best = naive.clone();
            best_time = naive_time;
        }

        // Multi-armed bandit over mutation operators (UCB1).
        let mut pulls = [1usize; ARMS];
        let mut rewards = [1.0f64; ARMS];
        let mut evaluations = 2usize;
        for trial in 0..self.budget {
            let total_pulls: usize = pulls.iter().sum();
            let arm = (0..ARMS)
                .max_by(|&a, &b| {
                    let ucb = |k: usize| {
                        rewards[k] / pulls[k] as f64
                            + self.exploration
                                * ((total_pulls as f64).ln() / pulls[k] as f64).sqrt()
                    };
                    ucb(a)
                        .partial_cmp(&ucb(b))
                        .unwrap_or(std::cmp::Ordering::Equal)
                })
                .unwrap_or(0);
            let candidate = mutate(&best, arm, func.rank, self.threads, &mut rng);
            let time = measure(func, &candidate, region, inputs, params);
            evaluations += 1;
            pulls[arm] += 1;
            if time < best_time {
                rewards[arm] += 1.0;
                best = candidate;
                best_time = time;
            }
            let _ = trial;
        }

        TuneReport {
            best,
            best_time,
            naive_time,
            evaluations,
        }
    }
}

/// The mutation operators (the bandit's arms).
fn mutate(base: &Schedule, arm: usize, rank: usize, threads: usize, rng: &mut StdRng) -> Schedule {
    let mut s = base.clone();
    match arm {
        0 => {
            // Re-tile one dimension.
            let dim = rng.gen_range(0..rank.max(1));
            let sizes = [1usize, 2, 4, 8, 16, 32, 64, 128];
            if dim < s.tile.len() {
                s.tile[dim] = sizes[rng.gen_range(0..sizes.len())];
            }
        }
        1 => {
            // Toggle / resize parallelism.
            s.parallel = !s.parallel || rng.gen_bool(0.5);
            s.threads = [1, 2, 4, 8, threads.max(1)][rng.gen_range(0..5)];
        }
        2 => {
            s.vectorize = [1, 2, 4, 8][rng.gen_range(0..4)];
        }
        _ => {
            s.unroll = [1, 2, 4][rng.gen_range(0..3)];
        }
    }
    s
}

fn measure(
    func: &Func,
    schedule: &Schedule,
    region: &Region,
    inputs: &HashMap<String, &Buffer>,
    params: &HashMap<String, f64>,
) -> Duration {
    let start = Instant::now();
    let out = realize(func, schedule, region, inputs, params);
    let elapsed = start.elapsed();
    std::hint::black_box(out);
    elapsed
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::func::{HExpr, HIndex};

    #[test]
    fn tuning_never_returns_something_slower_than_its_own_baselines() {
        let func = Func::new(
            "blur",
            2,
            HExpr::Add(
                Box::new(HExpr::Input {
                    image: "b".into(),
                    index: vec![
                        HIndex::VarOffset { var: 0, offset: -1 },
                        HIndex::VarOffset { var: 1, offset: 0 },
                    ],
                }),
                Box::new(HExpr::Input {
                    image: "b".into(),
                    index: vec![
                        HIndex::VarOffset { var: 0, offset: 0 },
                        HIndex::VarOffset { var: 1, offset: 0 },
                    ],
                }),
            ),
        );
        let b = Buffer::from_fn(vec![0, 0], vec![64, 64], |ix| (ix[0] ^ ix[1]) as f64);
        let mut inputs = HashMap::new();
        inputs.insert("b".to_string(), &b);
        let params = HashMap::new();
        let tuner = Autotuner {
            budget: 6,
            threads: 2,
            seed: 7,
            exploration: 1.4,
        };
        let report = tuner.tune(&func, &vec![(1, 63), (0, 63)], &inputs, &params);
        assert!(report.best_time <= report.naive_time || report.best == Schedule::naive(2));
        assert!(report.evaluations >= 8);
    }
}
