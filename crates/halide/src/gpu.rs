//! An analytic GPU device model for the portability study (§6.4).
//!
//! We do not have the paper's Nvidia K80, so GPU execution is modelled
//! explicitly: the kernel's per-point work is derived from the stencil
//! expression, execution time is the maximum of the compute-bound and
//! memory-bound estimates over the device's streaming multiprocessors, and
//! the PCIe transfer of inputs and outputs is charged separately — which is
//! what produces the paper's "with transfer" versus "without transfer"
//! columns.

use crate::buffer::Buffer;
use crate::func::Func;
use std::collections::HashMap;
use std::time::Duration;

/// The modelled accelerator.
#[derive(Debug, Clone, PartialEq)]
pub struct GpuModel {
    /// Peak floating-point throughput, operations per second.
    pub flops_per_second: f64,
    /// Device memory bandwidth, bytes per second.
    pub mem_bytes_per_second: f64,
    /// Host↔device transfer bandwidth, bytes per second.
    pub transfer_bytes_per_second: f64,
    /// Fixed kernel-launch latency.
    pub launch_overhead: Duration,
}

impl Default for GpuModel {
    fn default() -> Self {
        // Loosely modelled on a K80-class accelerator.
        GpuModel {
            flops_per_second: 1.5e12,
            mem_bytes_per_second: 240e9,
            transfer_bytes_per_second: 10e9,
            launch_overhead: Duration::from_micros(20),
        }
    }
}

/// Result of a modelled GPU execution.
#[derive(Debug, Clone, PartialEq)]
pub struct GpuRun {
    /// Kernel execution time (no transfers).
    pub kernel_time: Duration,
    /// Host-to-device plus device-to-host transfer time.
    pub transfer_time: Duration,
}

impl GpuRun {
    /// Total time including transfers.
    pub fn total(&self) -> Duration {
        self.kernel_time + self.transfer_time
    }
}

impl GpuModel {
    /// Estimates the execution of `func` over `points` output points with the
    /// given input buffers.
    pub fn run(&self, func: &Func, points: usize, inputs: &HashMap<String, &Buffer>) -> GpuRun {
        let flops = (func.expr.flops().max(1) * points) as f64;
        let bytes_touched = ((func.expr.loads() + 1) * points * std::mem::size_of::<f64>()) as f64;
        let compute = flops / self.flops_per_second;
        let memory = bytes_touched / self.mem_bytes_per_second;
        let kernel = Duration::from_secs_f64(compute.max(memory)) + self.launch_overhead;

        let mut transfer_bytes = points * std::mem::size_of::<f64>();
        for image in func.expr.images() {
            if let Some(buf) = inputs.get(&image) {
                transfer_bytes += buf.size_bytes();
            }
        }
        let transfer =
            Duration::from_secs_f64(transfer_bytes as f64 / self.transfer_bytes_per_second);
        GpuRun {
            kernel_time: kernel,
            transfer_time: transfer,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::func::{HExpr, HIndex};

    fn stencil(loads: usize) -> Func {
        let mut expr = HExpr::Input {
            image: "b".into(),
            index: vec![HIndex::VarOffset { var: 0, offset: 0 }],
        };
        for k in 1..loads {
            expr = HExpr::Add(
                Box::new(expr),
                Box::new(HExpr::Input {
                    image: "b".into(),
                    index: vec![HIndex::VarOffset {
                        var: 0,
                        offset: k as i64,
                    }],
                }),
            );
        }
        Func::new("s", 1, expr)
    }

    #[test]
    fn transfer_dominates_small_kernels() {
        let model = GpuModel::default();
        let b = Buffer::new(vec![0], vec![1 << 20]);
        let mut inputs = HashMap::new();
        inputs.insert("b".to_string(), &b);
        let run = model.run(&stencil(2), 1 << 20, &inputs);
        assert!(run.transfer_time > run.kernel_time);
        assert_eq!(run.total(), run.kernel_time + run.transfer_time);
    }

    #[test]
    fn more_work_per_point_takes_longer() {
        let model = GpuModel::default();
        let b = Buffer::new(vec![0], vec![1 << 16]);
        let mut inputs = HashMap::new();
        inputs.insert("b".to_string(), &b);
        let light = model.run(&stencil(2), 1 << 16, &inputs);
        let heavy = model.run(&stencil(27), 1 << 16, &inputs);
        assert!(heavy.kernel_time > light.kernel_time);
    }
}
