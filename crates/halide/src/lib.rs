//! A miniature Halide: the retargeting substrate the lifted summaries are
//! compiled to.
//!
//! The paper translates lifted summaries into Halide and relies on Halide's
//! scheduling language, autotuner (OpenTuner), and GPU backend for
//! performance and portability. This crate reproduces the pieces of that
//! stack the evaluation needs, natively in Rust:
//!
//! * [`func`] — the algorithm language: pure functions over grid coordinates
//!   reading input images at constant offsets ([`func::Func`], [`func::HExpr`]),
//! * [`buffer`] — multidimensional buffers with logical origins,
//! * [`schedule`] — the scheduling directives (tiling, parallelization,
//!   vectorization, unrolling) and the CPU runtime that honours them,
//! * [`gpu`] — an analytic GPU device model (kernel launch + memory traffic +
//!   PCIe transfer) used for the portability study of §6.4,
//! * [`autotune`] — an OpenTuner-style autotuner: an ensemble of schedule
//!   mutators driven by a multi-armed bandit,
//! * [`codegen`] — pretty-printers for Halide C++ generator sources
//!   (Fig. 1(d)) and for de-optimized serial C (§6.5).

pub mod autotune;
pub mod buffer;
pub mod codegen;
pub mod func;
pub mod gpu;
pub mod schedule;

pub use autotune::{Autotuner, TuneReport};
pub use buffer::Buffer;
pub use func::{Func, HExpr, HIndex};
pub use gpu::{GpuModel, GpuRun};
pub use schedule::{realize, Schedule};
