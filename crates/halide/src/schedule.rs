//! Schedules and the CPU runtime that executes a [`Func`] under a schedule.
//!
//! The schedule language covers the directives the paper's autotuner
//! explores: loop tiling, parallelization of the outermost (tile) loop,
//! vectorization and unrolling of the innermost loop. The runtime honours
//! tiling and parallelism directly (tiles are distributed over scoped worker
//! threads); vectorization and unrolling are executed as innermost chunked
//! loops, which mainly affects memory-access order — the same first-order
//! effect they have in Halide.

use crate::buffer::Buffer;
use crate::func::Func;
use std::collections::HashMap;

/// A schedule for one stencil function.
#[derive(Debug, Clone, PartialEq)]
pub struct Schedule {
    /// Tile extent per dimension (1 = no tiling in that dimension).
    pub tile: Vec<usize>,
    /// Run tiles of the outermost dimension on worker threads.
    pub parallel: bool,
    /// Number of worker threads when `parallel` is set.
    pub threads: usize,
    /// Innermost-loop vector width (1 = scalar).
    pub vectorize: usize,
    /// Innermost-loop unroll factor.
    pub unroll: usize,
}

impl Schedule {
    /// The default (naive) schedule: no tiling, serial, scalar.
    pub fn naive(rank: usize) -> Schedule {
        Schedule {
            tile: vec![1; rank],
            parallel: false,
            threads: 1,
            vectorize: 1,
            unroll: 1,
        }
    }

    /// A reasonable hand-written starting point: tile by 32, parallel outer.
    pub fn default_tuned(rank: usize, threads: usize) -> Schedule {
        Schedule {
            tile: vec![32; rank],
            parallel: true,
            threads,
            vectorize: 4,
            unroll: 2,
        }
    }

    /// Short human-readable description (autotuner logs, reports).
    pub fn describe(&self) -> String {
        format!(
            "tile={:?} parallel={} threads={} vectorize={} unroll={}",
            self.tile, self.parallel, self.threads, self.vectorize, self.unroll
        )
    }
}

/// The region to realize: per output dimension, the inclusive `(min, max)`
/// logical bounds. For a strided [`Func`] the points actually realized in a
/// dimension are `min, min + step, … ≤ max`.
pub type Region = Vec<(i64, i64)>;

/// Number of realized points of one region dimension under a step.
fn trip_count(lo: i64, hi: i64, step: i64) -> usize {
    if lo > hi {
        0
    } else {
        ((hi - lo) / step + 1) as usize
    }
}

/// Realizes `func` over `region` into a new buffer, honouring the schedule.
/// The iteration runs in *counter space* (packed trip indices), mapping to
/// logical coordinates through the function's per-dimension steps, so
/// strided functions write exactly their progression points.
///
/// `inputs` maps image names to buffers and `params` maps scalar parameter
/// names to values.
pub fn realize(
    func: &Func,
    schedule: &Schedule,
    region: &Region,
    inputs: &HashMap<String, &Buffer>,
    params: &HashMap<String, f64>,
) -> Buffer {
    assert_eq!(
        region.len(),
        func.rank,
        "region rank must match the function"
    );
    let origin: Vec<i64> = region.iter().map(|(lo, _)| *lo).collect();
    let extent: Vec<usize> = region
        .iter()
        .zip(&func.steps)
        .map(|((lo, hi), step)| trip_count(*lo, *hi, *step))
        .collect();
    let mut output = Buffer::strided(origin.clone(), extent.clone(), func.steps.clone());
    if output.is_empty() {
        return output;
    }

    // Split the outermost dimension into parallel chunks when requested.
    let outer_extent = extent[0];
    let workers = if schedule.parallel {
        schedule.threads.max(1).min(outer_extent.max(1))
    } else {
        1
    };

    if workers <= 1 {
        realize_chunk(
            func,
            schedule,
            region,
            inputs,
            params,
            0,
            outer_extent,
            &mut output,
        );
        return output;
    }

    // Each worker fills a band-sized local buffer (the buffer's own origin
    // is shifted into the band, so logical coordinates still map correctly);
    // bands are stitched afterwards (the output is row-major with the outer
    // dimension slowest, so bands are contiguous).
    let chunk = outer_extent.div_ceil(workers);
    let band_len: usize = extent[1..].iter().product::<usize>().max(1);
    let mut bands: Vec<(usize, Vec<f64>)> = Vec::new();
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for w in 0..workers {
            let start = w * chunk;
            let end = ((w + 1) * chunk).min(outer_extent);
            if start >= end {
                continue;
            }
            let mut band_origin = origin.clone();
            band_origin[0] += start as i64 * func.steps[0];
            let mut band_extent = extent.clone();
            band_extent[0] = end - start;
            let steps = func.steps.clone();
            let handle = scope.spawn(move || {
                let mut local = Buffer::strided(band_origin, band_extent, steps);
                realize_chunk(
                    func, schedule, region, inputs, params, start, end, &mut local,
                );
                (start, local.data)
            });
            handles.push(handle);
        }
        for handle in handles {
            let (start, data) = handle.join().expect("worker thread panicked");
            bands.push((start, data));
        }
    });
    for (start, data) in bands {
        let offset = start * band_len;
        output.data[offset..offset + data.len()].copy_from_slice(&data);
    }
    output
}

/// Fills trip-index rows `outer_start..outer_end` of the output, iterating
/// tiles in the remaining dimensions. All iteration happens in counter
/// space; logical coordinates are recovered through the function's steps
/// only at the evaluation site.
#[allow(clippy::too_many_arguments)]
fn realize_chunk(
    func: &Func,
    schedule: &Schedule,
    region: &Region,
    inputs: &HashMap<String, &Buffer>,
    params: &HashMap<String, f64>,
    outer_start: usize,
    outer_end: usize,
    output: &mut Buffer,
) {
    let rank = func.rank;
    let lo: Vec<i64> = region.iter().map(|(l, _)| *l).collect();
    // Inclusive trip-count bound per dimension.
    let trip_hi: Vec<i64> = region
        .iter()
        .zip(&func.steps)
        .map(|((l, h), s)| trip_count(*l, *h, *s) as i64 - 1)
        .collect();
    let tile: Vec<i64> = (0..rank)
        .map(|d| schedule.tile.get(d).copied().unwrap_or(1).max(1) as i64)
        .collect();

    // Iterate tile origins in counter space; the outermost dimension is
    // restricted to the worker's band.
    let band_lo = outer_start as i64;
    let band_hi = outer_end as i64 - 1;
    let mut tile_origin: Vec<i64> = vec![0; rank];
    tile_origin[0] = band_lo;
    if band_lo > band_hi {
        return;
    }
    let mut point = vec![0i64; rank];
    loop {
        // Execute one tile.
        let tile_hi: Vec<i64> = (0..rank)
            .map(|d| {
                let top = if d == 0 { band_hi } else { trip_hi[d] };
                (tile_origin[d] + tile[d] - 1).min(top)
            })
            .collect();
        let mut t = tile_origin.clone();
        loop {
            for d in 0..rank {
                point[d] = lo[d] + t[d] * func.steps[d];
            }
            let value = func.expr.eval(&point, inputs, params);
            output.set(&point, value);
            // Advance within the tile, innermost fastest (vectorize/unroll
            // factors only change traversal granularity, which is already
            // innermost-contiguous here).
            let mut d = rank;
            loop {
                if d == 0 {
                    break;
                }
                d -= 1;
                t[d] += 1;
                if t[d] <= tile_hi[d] {
                    break;
                }
                t[d] = tile_origin[d];
                if d == 0 {
                    // Tile finished.
                    break;
                }
            }
            if t == tile_origin {
                break;
            }
        }
        // Advance to the next tile.
        let mut d = rank;
        let mut done = false;
        loop {
            if d == 0 {
                done = true;
                break;
            }
            d -= 1;
            tile_origin[d] += tile[d];
            let top = if d == 0 { band_hi } else { trip_hi[d] };
            if tile_origin[d] <= top {
                break;
            }
            tile_origin[d] = if d == 0 { band_lo } else { 0 };
            if d == 0 {
                done = true;
                break;
            }
        }
        if done {
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::func::{HExpr, HIndex};

    fn blur() -> Func {
        Func::new(
            "blur",
            2,
            HExpr::Mul(
                Box::new(HExpr::Const(0.5)),
                Box::new(HExpr::Add(
                    Box::new(HExpr::Input {
                        image: "b".into(),
                        index: vec![
                            HIndex::VarOffset { var: 0, offset: -1 },
                            HIndex::VarOffset { var: 1, offset: 0 },
                        ],
                    }),
                    Box::new(HExpr::Input {
                        image: "b".into(),
                        index: vec![
                            HIndex::VarOffset { var: 0, offset: 0 },
                            HIndex::VarOffset { var: 1, offset: 0 },
                        ],
                    }),
                )),
            ),
        )
    }

    fn reference(b: &Buffer, region: &Region) -> Buffer {
        Buffer::from_fn(
            region.iter().map(|(l, _)| *l).collect(),
            region.iter().map(|(l, h)| (h - l + 1) as usize).collect(),
            |ix| 0.5 * (b.get_clamped(&[ix[0] - 1, ix[1]]) + b.get_clamped(&[ix[0], ix[1]])),
        )
    }

    #[test]
    fn naive_and_tiled_and_parallel_schedules_agree() {
        let func = blur();
        let b = Buffer::from_fn(vec![0, 0], vec![20, 17], |ix| (3 * ix[0] + ix[1]) as f64);
        let mut inputs = HashMap::new();
        inputs.insert("b".to_string(), &b);
        let params = HashMap::new();
        let region: Region = vec![(1, 19), (0, 16)];
        let expected = reference(&b, &region);

        let naive = realize(&func, &Schedule::naive(2), &region, &inputs, &params);
        assert_eq!(naive, expected);

        let tiled = realize(
            &func,
            &Schedule {
                tile: vec![4, 5],
                parallel: false,
                threads: 1,
                vectorize: 4,
                unroll: 2,
            },
            &region,
            &inputs,
            &params,
        );
        assert_eq!(tiled, expected);

        let parallel = realize(
            &func,
            &Schedule {
                tile: vec![3, 8],
                parallel: true,
                threads: 4,
                vectorize: 1,
                unroll: 1,
            },
            &region,
            &inputs,
            &params,
        );
        assert_eq!(parallel, expected);
    }

    #[test]
    fn strided_funcs_realize_only_their_progression_points() {
        // f(x) = b(x-1) + b(x) realized at x = 1, 3, 5, … ≤ 18.
        let expr = HExpr::Add(
            Box::new(HExpr::Input {
                image: "b".into(),
                index: vec![HIndex::VarOffset { var: 0, offset: -1 }],
            }),
            Box::new(HExpr::Input {
                image: "b".into(),
                index: vec![HIndex::VarOffset { var: 0, offset: 0 }],
            }),
        );
        let func = Func::strided("half", 1, vec![2], expr);
        let b = Buffer::from_fn(vec![0], vec![20], |ix| (ix[0] * ix[0]) as f64);
        let mut inputs = HashMap::new();
        inputs.insert("b".to_string(), &b);
        let params = HashMap::new();
        let region: Region = vec![(1, 18)];

        for schedule in [
            Schedule::naive(1),
            Schedule {
                tile: vec![4],
                parallel: true,
                threads: 3,
                vectorize: 2,
                unroll: 1,
            },
        ] {
            let out = realize(&func, &schedule, &region, &inputs, &params);
            // Points 1, 3, …, 17: nine stored values.
            assert_eq!(out.len(), 9, "schedule {schedule:?}");
            assert_eq!(out.step, vec![2]);
            for k in 0..9i64 {
                let x = 1 + 2 * k;
                let expected = ((x - 1) * (x - 1) + x * x) as f64;
                assert_eq!(out.get(&[x]), Some(expected), "x = {x}");
            }
            // Unrealized (even) points are not addressable.
            assert_eq!(out.get(&[2]), None);
        }
    }

    #[test]
    fn empty_region_produces_empty_buffer() {
        let func = blur();
        let b = Buffer::new(vec![0, 0], vec![4, 4]);
        let mut inputs = HashMap::new();
        inputs.insert("b".to_string(), &b);
        let out = realize(
            &func,
            &Schedule::naive(2),
            &vec![(3, 2), (0, 3)],
            &inputs,
            &HashMap::new(),
        );
        assert!(out.is_empty());
    }
}
