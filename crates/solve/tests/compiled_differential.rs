//! Differential property test: compiled VC programs agree with the
//! tree-walking evaluator on every captured state of every corpus kernel —
//! outcomes (`Vacuous` / `Holds` / `Violated`) match exactly, and
//! evaluation-error cases reject identically (both engines fail, never one).
//!
//! For each corpus kernel that lowers into the analyzable nest shape, the
//! test captures the bounded checker's reachable states once, then checks
//! four VC families designed to hit every outcome:
//!
//! * a *trivial* postcondition (`out[v⃗] = out[v⃗]`) — holds everywhere;
//! * a *wrong* postcondition (`out[v⃗] = out[v⃗] + 1`) — violated on every
//!   non-empty domain;
//! * an *erroring* postcondition (`out[v⃗] = out[v⃗ + 900]`) — evaluation
//!   fails with an out-of-bounds read;
//! * an *unbound-hypothesis* variant — a hypothesis mentioning a variable
//!   no state binds, making every state vacuous.
//!
//! The generated VC bodies are the kernels' own statements (via
//! `generate_vcs`), so store/assignment compilation is exercised too; the
//! running example additionally runs with its real hand-written invariants.
//! CI runs this in release as part of the bench-smoke job.

use stng_ir::ir::{CmpOp, IrExpr, Kernel};
use stng_ir::lower::kernel_from_source;
use stng_ir::value::ModInt;
use stng_pred::compile::CompiledVcSet;
use stng_pred::eval::check_vc_on_state;
use stng_pred::lang::{Invariant, OutEq, Postcondition, QuantBound, QuantClause};
use stng_pred::vcgen::{analyze_loop_nest, generate_vcs, Vc};
use stng_pred::{fixtures, LoopNest};
use stng_solve::bounded::{BoundedChecker, CheckSession};

/// A postcondition `out[v0..] = f(out[v0..])` over the declared bounds of
/// every output array (`shift` displaces the read index to force errors;
/// `bump` adds 1 to force violations).
fn synthetic_post(kernel: &Kernel, shift: i64, bump: bool) -> Postcondition {
    let mut clauses = Vec::new();
    for array in kernel.output_arrays() {
        let Some(dims) = kernel.array_dims(&array) else {
            continue;
        };
        let vars: Vec<String> = (0..dims.len()).map(|k| format!("dv{k}")).collect();
        let bounds = dims
            .iter()
            .zip(&vars)
            .map(|((lo, hi), v)| QuantBound::inclusive(v.clone(), lo.clone(), hi.clone()))
            .collect();
        let indices: Vec<IrExpr> = vars.iter().map(|v| IrExpr::var(v.clone())).collect();
        let read_indices: Vec<IrExpr> = if shift == 0 {
            indices.clone()
        } else {
            indices
                .iter()
                .map(|ix| IrExpr::add(ix.clone(), IrExpr::Int(shift)))
                .collect()
        };
        let mut rhs = IrExpr::Load {
            array: array.clone(),
            indices: read_indices,
        };
        if bump {
            rhs = IrExpr::add(rhs, IrExpr::Real(1.0));
        }
        clauses.push(QuantClause {
            bounds,
            eq: OutEq {
                array,
                indices,
                rhs,
            },
        });
    }
    Postcondition { clauses }
}

fn empty_invariants(nest: &LoopNest) -> Vec<Invariant> {
    nest.levels.iter().map(|_| Invariant::empty()).collect()
}

/// Compares compiled and interpreted checking of `vcs` on every captured
/// state of `session`, failing loudly on any divergence.
fn assert_agreement(session: &CheckSession, vcs: &[Vc], label: &str) -> (usize, [usize; 4]) {
    let compiled = CompiledVcSet::compile(vcs, session.map())
        .unwrap_or_else(|e| panic!("{label}: corpus VCs must stay compilable, got {e}"));
    let mut sc = compiled.scratch::<ModInt>();
    let mut checks = 0usize;
    // [vacuous, holds, violated, errors]
    let mut outcomes = [0usize; 4];
    for unit in session.captured_units() {
        let unit = unit.as_ref().expect("capture succeeds");
        for (origin, state) in &unit.states {
            let oracle_state = state.to_state();
            for (k, vc) in vcs.iter().enumerate() {
                let interp = check_vc_on_state(vc, &oracle_state);
                let fast = compiled.check(k, state, &mut sc);
                checks += 1;
                match (interp, fast) {
                    (Ok(a), Ok(b)) => {
                        assert_eq!(
                            a, b,
                            "{label}: outcome divergence on VC '{}' at {} \
                             (size {}, trial {})",
                            vc.name, origin, unit.size, unit.trial
                        );
                        outcomes[match a {
                            stng_pred::eval::VcOutcome::Vacuous => 0,
                            stng_pred::eval::VcOutcome::Holds => 1,
                            stng_pred::eval::VcOutcome::Violated => 2,
                        }] += 1;
                    }
                    (Err(_), Err(_)) => outcomes[3] += 1,
                    (a, b) => panic!(
                        "{label}: error divergence on VC '{}' at {} (size {}, trial {}): \
                         interpreted {a:?} vs compiled {b:?}",
                        vc.name, origin, unit.size, unit.trial
                    ),
                }
            }
        }
    }
    (checks, outcomes)
}

/// A small checker configuration so the corpus sweep stays fast in debug
/// builds while still capturing multi-unit, multi-size state sets.
fn test_checker() -> BoundedChecker {
    BoundedChecker {
        grid_sizes: vec![3, 4],
        trials_per_size: 1,
        ..BoundedChecker::default()
    }
}

#[test]
fn compiled_checking_agrees_with_interpreter_on_every_corpus_kernel() {
    let mut kernels_covered = 0usize;
    let mut total_checks = 0usize;
    let mut totals = [0usize; 4];
    for corpus_kernel in stng_corpus::all_kernels() {
        let Ok(kernel) = kernel_from_source(&corpus_kernel.source, 0) else {
            continue; // outside the liftable subset: nothing to check
        };
        let Ok(nest) = analyze_loop_nest(&kernel) else {
            continue;
        };
        let invariants = empty_invariants(&nest);
        let session = CheckSession::new(test_checker(), kernel.clone());
        if session.captured_units().iter().any(|u| u.is_err()) {
            continue;
        }
        kernels_covered += 1;

        let posts = [
            ("trivial", synthetic_post(&kernel, 0, false)),
            ("wrong", synthetic_post(&kernel, 0, true)),
            ("erroring", synthetic_post(&kernel, 900, false)),
        ];
        for (family, post) in posts {
            let vcs = generate_vcs(&nest, &kernel.assumptions, &invariants, &post);
            let label = format!("{}/{family}", corpus_kernel.name);
            let (checks, outcomes) = assert_agreement(&session, &vcs, &label);
            total_checks += checks;
            for (t, o) in totals.iter_mut().zip(outcomes) {
                *t += o;
            }
        }

        // Unbound-hypothesis family: every state is vacuous in both engines.
        let mut vcs = generate_vcs(
            &nest,
            &kernel.assumptions,
            &invariants,
            &synthetic_post(&kernel, 0, false),
        );
        for vc in &mut vcs {
            vc.hypotheses.push(stng_pred::Pred::Bool(IrExpr::cmp(
                CmpOp::Le,
                IrExpr::var("never_bound_differential_var"),
                IrExpr::Int(0),
            )));
        }
        let label = format!("{}/unbound-hyp", corpus_kernel.name);
        let (checks, outcomes) = assert_agreement(&session, &vcs, &label);
        total_checks += checks;
        for (t, o) in totals.iter_mut().zip(outcomes) {
            *t += o;
        }
    }
    // The corpus must actually exercise the property: many kernels, many
    // checks, and every outcome class (including errors) observed.
    assert!(
        kernels_covered >= 20,
        "expected most corpus kernels to participate, got {kernels_covered}"
    );
    assert!(total_checks > 10_000, "only {total_checks} checks ran");
    let [vacuous, holds, violated, errors] = totals;
    assert!(vacuous > 0, "no vacuous outcomes observed");
    assert!(holds > 0, "no holding outcomes observed");
    assert!(violated > 0, "no violated outcomes observed");
    assert!(errors > 0, "no evaluation-error outcomes observed");
}

#[test]
fn compiled_checking_agrees_on_real_invariants_and_strides() {
    // The running example with its hand-written invariants exercises
    // DataEq scalar facts and non-trivial hypothesis sets...
    let kernel = kernel_from_source(fixtures::RUNNING_EXAMPLE, 0).unwrap();
    let nest = analyze_loop_nest(&kernel).unwrap();
    let vcs = generate_vcs(
        &nest,
        &kernel.assumptions,
        &fixtures::running_example_invariants(),
        &fixtures::running_example_post(),
    );
    let session = CheckSession::new(test_checker(), kernel);
    let (checks, _) = assert_agreement(&session, &vcs, "running-example/real-invariants");
    assert!(checks > 0);

    // ...and a strided kernel exercises Pred::Stride hypotheses plus
    // strided quantifier domains.
    let src = r#"
procedure p(n, a, b)
  real, dimension(0:n) :: a
  real, dimension(0:n) :: b
  integer :: i
  do i = 1, n-1, 2
    a(i) = b(i-1) + b(i+1)
  enddo
end procedure
"#;
    let kernel = kernel_from_source(src, 0).unwrap();
    let nest = analyze_loop_nest(&kernel).unwrap();
    let post = Postcondition {
        clauses: vec![QuantClause {
            bounds: vec![QuantBound::strided(
                "v0",
                IrExpr::Int(1),
                IrExpr::sub(IrExpr::var("n"), IrExpr::Int(1)),
                2,
            )],
            eq: OutEq {
                array: "a".into(),
                indices: vec![IrExpr::var("v0")],
                rhs: IrExpr::add(
                    IrExpr::Load {
                        array: "b".into(),
                        indices: vec![IrExpr::sub(IrExpr::var("v0"), IrExpr::Int(1))],
                    },
                    IrExpr::Load {
                        array: "b".into(),
                        indices: vec![IrExpr::add(IrExpr::var("v0"), IrExpr::Int(1))],
                    },
                ),
            },
        }],
    };
    let vcs = generate_vcs(&nest, &kernel.assumptions, &empty_invariants(&nest), &post);
    assert!(
        vcs.iter().any(|vc| vc
            .hypotheses
            .iter()
            .any(|h| matches!(h, stng_pred::Pred::Stride { .. }))),
        "strided nest must emit stride hypotheses"
    );
    let session = CheckSession::new(test_checker(), kernel);
    let (checks, _) = assert_agreement(&session, &vcs, "strided/stride-facts");
    assert!(checks > 0);
}
