//! Differential property test for compiled proving: the memoized /
//! compiled prover must agree with the legacy tree-walking prover on every
//! proof obligation of every corpus kernel — verdicts match exactly
//! (including `Unknown` reasons), and budget-interruption classification
//! matches under governed budgets.
//!
//! Three engines run over every VC set:
//!
//! * **legacy** — `verify_all_legacy`: every `LinCtx` runs the original
//!   tree-walking Fourier–Motzkin, no verdict memo, no learned cores, no
//!   obligation memo (the independent oracle);
//! * **compiled** — `verify_all_governed`: the slot-addressed dense
//!   elimination with the global FM verdict memo and learned-core
//!   short-circuits;
//! * **memoized** — `verify_all_session`: compiled plus the per-kernel
//!   obligation memo, then replayed through the warm session under a
//!   zero-token budget (memo hits must charge nothing).
//!
//! VC families per kernel mirror the bounded-checking differential
//! (`compiled_differential.rs`): a trivial postcondition (provable), a
//! wrong one (unprovable), and a shifted one (unprovable through different
//! failure paths), all over the kernels' own generated VC bodies; the
//! running example and a strided kernel additionally run with their real
//! hand-written invariants (deep case-split searches, stride facts). The
//! governed sweep re-runs compiled and legacy from equal counter-only
//! budgets and requires identical verdicts, attempt counts, and exhaustion
//! classification. CI runs this in release as part of the bench-smoke job.

use stng_intern::guard::Budget;
use stng_ir::ir::{IrExpr, Kernel};
use stng_ir::lower::kernel_from_source;
use stng_pred::lang::{Invariant, OutEq, Postcondition, QuantBound, QuantClause};
use stng_pred::vcgen::{analyze_loop_nest, generate_vcs, Vc};
use stng_pred::{fixtures, LoopNest};
use stng_solve::{ProverSession, SmtLite, Verdict};

/// A postcondition `out[v⃗] = f(out[v⃗])` over the declared bounds of every
/// output array (`shift` displaces the read index, `bump` adds 1 — both
/// make the claim unprovable, through different prover failure paths).
fn synthetic_post(kernel: &Kernel, shift: i64, bump: bool) -> Postcondition {
    let mut clauses = Vec::new();
    for array in kernel.output_arrays() {
        let Some(dims) = kernel.array_dims(&array) else {
            continue;
        };
        let vars: Vec<String> = (0..dims.len()).map(|k| format!("dv{k}")).collect();
        let bounds = dims
            .iter()
            .zip(&vars)
            .map(|((lo, hi), v)| QuantBound::inclusive(v.clone(), lo.clone(), hi.clone()))
            .collect();
        let indices: Vec<IrExpr> = vars.iter().map(|v| IrExpr::var(v.clone())).collect();
        let read_indices: Vec<IrExpr> = if shift == 0 {
            indices.clone()
        } else {
            indices
                .iter()
                .map(|ix| IrExpr::add(ix.clone(), IrExpr::Int(shift)))
                .collect()
        };
        let mut rhs = IrExpr::Load {
            array: array.clone(),
            indices: read_indices,
        };
        if bump {
            rhs = IrExpr::add(rhs, IrExpr::Real(1.0));
        }
        clauses.push(QuantClause {
            bounds,
            eq: OutEq {
                array,
                indices,
                rhs,
            },
        });
    }
    Postcondition { clauses }
}

fn empty_invariants(nest: &LoopNest) -> Vec<Invariant> {
    nest.levels.iter().map(|_| Invariant::empty()).collect()
}

/// The production prover configuration (what `SynthesisConfig` uses), so the
/// differential exercises the same depth/attempt regime CEGIS runs in.
fn test_prover() -> SmtLite {
    SmtLite {
        max_split_depth: 6,
        max_attempts: 4000,
    }
}

/// Three-way verdict agreement under an unlimited budget, plus the
/// warm-memo replay property. Returns the agreed verdict.
fn assert_verdict_agreement(vcs: &[Vc], label: &str) -> Verdict {
    let prover = test_prover();
    let (legacy, legacy_attempts) = prover.verify_all_legacy(vcs, &Budget::unlimited());
    let (compiled, compiled_attempts) = prover.verify_all_governed(vcs, &Budget::unlimited());
    assert_eq!(
        compiled, legacy,
        "{label}: compiled prover diverged from the tree-walking oracle"
    );
    assert_eq!(
        compiled_attempts, legacy_attempts,
        "{label}: attempt counts diverged (different search traces)"
    );
    let session = ProverSession::new();
    let (memoized, memo_attempts) = prover.verify_all_session(vcs, &Budget::unlimited(), &session);
    assert_eq!(
        memoized, legacy,
        "{label}: memoized prover diverged from the tree-walking oracle"
    );
    assert!(
        memo_attempts <= compiled_attempts,
        "{label}: memoization must never add attempts"
    );
    // Replaying through the warm session must reproduce the verdict without
    // charging a single prover-attempt token.
    let zero = Budget::limited(None, Some(0), None);
    let (warm, warm_attempts) = prover.verify_all_session(vcs, &zero, &session);
    assert_eq!(
        warm, legacy,
        "{label}: warm-memo replay changed the verdict"
    );
    assert_eq!(
        warm_attempts, 0,
        "{label}: warm-memo replay must be attempt-free"
    );
    assert!(
        zero.exhausted().is_none(),
        "{label}: warm-memo replay charged the governed budget"
    );
    legacy
}

/// Budget-interruption classification agreement: compiled (no memo) and
/// legacy charge one token per proof attempt, so from equal counter-only
/// budgets they must produce identical verdicts, attempt counts, and
/// exhaustion classification — whether or not the budget trips. Returns
/// `true` when this budget level tripped.
fn assert_governed_agreement(vcs: &[Vc], attempts: u64, label: &str) -> bool {
    let prover = test_prover();
    let legacy_budget = Budget::limited(None, Some(attempts), None);
    let (legacy, la) = prover.verify_all_legacy(vcs, &legacy_budget);
    let compiled_budget = Budget::limited(None, Some(attempts), None);
    let (compiled, ca) = prover.verify_all_governed(vcs, &compiled_budget);
    assert_eq!(
        compiled, legacy,
        "{label}: governed verdict diverged at {attempts} attempts"
    );
    assert_eq!(
        ca, la,
        "{label}: governed attempt counts diverged at {attempts} attempts"
    );
    assert_eq!(
        compiled_budget.exhausted(),
        legacy_budget.exhausted(),
        "{label}: budget-interruption classification diverged at {attempts} attempts"
    );
    legacy_budget.exhausted().is_some()
}

#[test]
fn prover_agrees_with_tree_walking_oracle_on_every_corpus_kernel() {
    let mut kernels_covered = 0usize;
    let mut vcs_checked = 0usize;
    let mut valid_seen = 0usize;
    let mut unknown_seen = 0usize;
    for corpus_kernel in stng_corpus::all_kernels() {
        let Ok(kernel) = kernel_from_source(&corpus_kernel.source, 0) else {
            continue; // outside the liftable subset: nothing to prove
        };
        let Ok(nest) = analyze_loop_nest(&kernel) else {
            continue;
        };
        kernels_covered += 1;
        let invariants = empty_invariants(&nest);
        let families = [
            ("trivial", synthetic_post(&kernel, 0, false)),
            ("wrong", synthetic_post(&kernel, 0, true)),
            ("shifted", synthetic_post(&kernel, 9, false)),
        ];
        for (family, post) in families {
            let vcs = generate_vcs(&nest, &kernel.assumptions, &invariants, &post);
            let label = format!("{}/{family}", corpus_kernel.name);
            match assert_verdict_agreement(&vcs, &label) {
                Verdict::Valid => valid_seen += 1,
                Verdict::Unknown(_) => unknown_seen += 1,
            }
            vcs_checked += vcs.len();
        }
    }
    // The corpus must actually exercise the property: many kernels, many
    // obligations, and both verdict classes observed.
    assert!(
        kernels_covered >= 20,
        "expected most corpus kernels to participate, got {kernels_covered}"
    );
    assert!(vcs_checked > 100, "only {vcs_checked} VCs checked");
    assert!(valid_seen > 0, "no Valid verdicts observed");
    assert!(unknown_seen > 0, "no Unknown verdicts observed");
}

#[test]
fn prover_agrees_on_real_invariants_and_strides() {
    // The running example's hand-written Hoare proof: the deepest real
    // case-split search the corpus has (DataEq facts, coverage splits,
    // hypothesis instantiation).
    let kernel = kernel_from_source(fixtures::RUNNING_EXAMPLE, 0).unwrap();
    let nest = analyze_loop_nest(&kernel).unwrap();
    let vcs = generate_vcs(
        &nest,
        &kernel.assumptions,
        &fixtures::running_example_invariants(),
        &fixtures::running_example_post(),
    );
    let verdict = assert_verdict_agreement(&vcs, "running-example/real-invariants");
    assert!(
        verdict.is_valid(),
        "the real Hoare proof must stay provable"
    );

    // A strided kernel exercises Pred::Stride hypotheses: the definition
    // layer (`i = lo + step·k` witnesses) and divisibility reasoning.
    let src = r#"
procedure p(n, a, b)
  real, dimension(0:n) :: a
  real, dimension(0:n) :: b
  integer :: i
  do i = 1, n-1, 2
    a(i) = b(i-1) + b(i+1)
  enddo
end procedure
"#;
    let kernel = kernel_from_source(src, 0).unwrap();
    let nest = analyze_loop_nest(&kernel).unwrap();
    let post = Postcondition {
        clauses: vec![QuantClause {
            bounds: vec![QuantBound::strided(
                "v0",
                IrExpr::Int(1),
                IrExpr::sub(IrExpr::var("n"), IrExpr::Int(1)),
                2,
            )],
            eq: OutEq {
                array: "a".into(),
                indices: vec![IrExpr::var("v0")],
                rhs: IrExpr::add(
                    IrExpr::Load {
                        array: "b".into(),
                        indices: vec![IrExpr::sub(IrExpr::var("v0"), IrExpr::Int(1))],
                    },
                    IrExpr::Load {
                        array: "b".into(),
                        indices: vec![IrExpr::add(IrExpr::var("v0"), IrExpr::Int(1))],
                    },
                ),
            },
        }],
    };
    let vcs = generate_vcs(&nest, &kernel.assumptions, &empty_invariants(&nest), &post);
    assert!(
        vcs.iter().any(|vc| vc
            .hypotheses
            .iter()
            .any(|h| matches!(h, stng_pred::Pred::Stride { .. }))),
        "strided nest must emit stride hypotheses"
    );
    assert_verdict_agreement(&vcs, "strided/stride-facts");
}

#[test]
fn budget_interruption_classification_matches_legacy() {
    // Counter-only budgets from starvation up to generous: compiled and
    // legacy must classify identically at every level, and the sweep must
    // actually observe both a tripped and an untripped budget.
    let kernel = kernel_from_source(fixtures::RUNNING_EXAMPLE, 0).unwrap();
    let nest = analyze_loop_nest(&kernel).unwrap();
    let vcs = generate_vcs(
        &nest,
        &kernel.assumptions,
        &fixtures::running_example_invariants(),
        &fixtures::running_example_post(),
    );
    let mut tripped = 0usize;
    let mut clean = 0usize;
    for attempts in [1, 2, 8, 32, 1 << 20] {
        if assert_governed_agreement(&vcs, attempts, "running-example/governed") {
            tripped += 1;
        } else {
            clean += 1;
        }
    }
    assert!(tripped > 0, "no budget level tripped: sweep is vacuous");
    assert!(clean > 0, "every budget level tripped: sweep is vacuous");
}
