//! Property tests for the verifier-side consed normal form: pointer equality
//! of interned `NormExpr`s must agree with deep structural equality, and the
//! memoized ring operations must respect the algebra (commutativity,
//! associativity, subtraction cancelling) exactly as the pre-interning
//! representation did.

use stng_ir::ir::Affine;
use stng_solve::norm::NormExpr;

struct Gen {
    state: u64,
}

impl Gen {
    fn new(seed: u64) -> Gen {
        Gen { state: seed }
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn in_range(&mut self, lo: i64, hi: i64) -> i64 {
        lo + (self.next_u64() % (hi - lo + 1) as u64) as i64
    }

    fn affine(&mut self) -> Affine {
        let vars = ["i", "j", "vi"];
        let mut out = Affine::var(vars[(self.next_u64() as usize) % vars.len()].to_string());
        out.constant = self.in_range(-2, 2);
        out
    }

    fn expr(&mut self, depth: usize) -> NormExpr {
        if depth == 0 {
            return match self.in_range(0, 2) {
                0 => NormExpr::load(
                    ["a", "b"][(self.next_u64() as usize) % 2],
                    vec![self.affine()],
                ),
                1 => NormExpr::var(["x", "y"][(self.next_u64() as usize) % 2]),
                _ => NormExpr::constant(self.in_range(-3, 3) as f64 * 0.5),
            };
        }
        let lhs = self.expr(depth - 1);
        let rhs = self.expr(depth - 1);
        match self.in_range(0, 3) {
            0 => lhs.add(&rhs),
            1 => lhs.sub(&rhs),
            2 => lhs.mul(&rhs),
            _ => lhs.div(&rhs),
        }
    }
}

/// Deep structural equality over the stored normal forms (the spec that O(1)
/// pointer equality must match). `NMono` comparison is the derived
/// coefficient + factor-map equality, which is exactly what the seed's
/// `Vec<NMono>` `PartialEq` compared.
fn structural_eq(a: NormExpr, b: NormExpr) -> bool {
    let (ta, tb) = (a.terms(), b.terms());
    ta.len() == tb.len() && ta.iter().zip(tb).all(|(x, y)| x == y)
}

#[test]
fn interned_equality_agrees_with_structural_equality() {
    let mut generator = Gen::new(0x5EED);
    let exprs: Vec<NormExpr> = (0..60).map(|_| generator.expr(3)).collect();
    for (i, &a) in exprs.iter().enumerate() {
        for &b in &exprs[i..] {
            assert_eq!(
                a == b,
                structural_eq(a, b),
                "pointer equality disagrees with structural equality:\n  {a}\n  {b}"
            );
        }
    }
}

#[test]
fn ring_laws_hold_under_memoized_operations() {
    let mut generator = Gen::new(99);
    for case in 0..40 {
        let a = generator.expr(2);
        let b = generator.expr(2);
        let c = generator.expr(2);
        assert_eq!(a.add(&b), b.add(&a), "case {case}: + commutes");
        assert_eq!(a.mul(&b), b.mul(&a), "case {case}: * commutes");
        assert_eq!(a.add(&b).add(&c), a.add(&b.add(&c)), "case {case}: + assoc");
        assert_eq!(a.sub(&a), NormExpr::zero(), "case {case}: a - a = 0");
        assert!(
            a.mul(&b.add(&c)).approx_eq(&a.mul(&b).add(&a.mul(&c))),
            "case {case}: distribution"
        );
    }
}
