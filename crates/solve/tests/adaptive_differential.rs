//! Differential property test for the adaptive bounded screen: the staged
//! (escalating-tier), kill-rate-ordered, batched `find_counterexample` must
//! agree with the exhaustive per-state reference scan
//! (`find_counterexample_exhaustive`) on every candidate's *verdict* —
//! counterexample present, absent, or error — across the whole corpus.
//!
//! The two scans are allowed to report *different* counterexamples (the
//! adaptive scan reorders VCs by historical kill rate and sweeps states in
//! SoA batches), but never to disagree on whether one exists: CEGIS only
//! consumes presence, so that is the contract the optimization must keep.
//!
//! Candidate families per kernel mirror the compiled-vs-interpreter
//! differential: a trivial postcondition (survives), a wrong one (killed by
//! a violation), an erroring one (killed by an evaluation error), and an
//! unbound-hypothesis variant (vacuous everywhere, survives). Each family
//! is screened twice through one shared session so the second screening
//! runs under reordered (kill-count-warmed) VCs and the capture cache.
//! CI runs this in release as part of the bench-smoke job.

use stng_ir::ir::{CmpOp, IrExpr, Kernel};
use stng_ir::lower::kernel_from_source;
use stng_pred::lang::{Invariant, OutEq, Postcondition, QuantBound, QuantClause};
use stng_pred::vcgen::{analyze_loop_nest, generate_vcs, Vc};
use stng_pred::{fixtures, LoopNest};
use stng_solve::bounded::{BoundedChecker, CheckSession};

/// A postcondition `out[v0..] = f(out[v0..])` over the declared bounds of
/// every output array (`shift` displaces the read index to force errors;
/// `bump` adds 1 to force violations).
fn synthetic_post(kernel: &Kernel, shift: i64, bump: bool) -> Postcondition {
    let mut clauses = Vec::new();
    for array in kernel.output_arrays() {
        let Some(dims) = kernel.array_dims(&array) else {
            continue;
        };
        let vars: Vec<String> = (0..dims.len()).map(|k| format!("dv{k}")).collect();
        let bounds = dims
            .iter()
            .zip(&vars)
            .map(|((lo, hi), v)| QuantBound::inclusive(v.clone(), lo.clone(), hi.clone()))
            .collect();
        let indices: Vec<IrExpr> = vars.iter().map(|v| IrExpr::var(v.clone())).collect();
        let read_indices: Vec<IrExpr> = if shift == 0 {
            indices.clone()
        } else {
            indices
                .iter()
                .map(|ix| IrExpr::add(ix.clone(), IrExpr::Int(shift)))
                .collect()
        };
        let mut rhs = IrExpr::Load {
            array: array.clone(),
            indices: read_indices,
        };
        if bump {
            rhs = IrExpr::add(rhs, IrExpr::Real(1.0));
        }
        clauses.push(QuantClause {
            bounds,
            eq: OutEq {
                array,
                indices,
                rhs,
            },
        });
    }
    Postcondition { clauses }
}

fn empty_invariants(nest: &LoopNest) -> Vec<Invariant> {
    nest.levels.iter().map(|_| Invariant::empty()).collect()
}

/// Screens `vcs` through both the adaptive and the exhaustive scan and
/// asserts verdict agreement. Returns 0/1/2 for survived/killed/error.
fn assert_verdicts_agree(session: &CheckSession, vcs: &[Vc], label: &str) -> usize {
    let adaptive = session.find_counterexample(vcs);
    let exhaustive = session.find_counterexample_exhaustive(vcs);
    match (&adaptive, &exhaustive) {
        (Ok(None), Ok(None)) => 0,
        (Ok(Some(_)), Ok(Some(_))) => 1,
        (Err(_), Err(_)) => 2,
        _ => panic!(
            "{label}: verdict divergence — adaptive {adaptive:?} vs exhaustive {exhaustive:?}"
        ),
    }
}

/// A small checker configuration so the corpus sweep stays fast in debug
/// builds while still capturing multi-unit, multi-size tier sets.
fn test_checker() -> BoundedChecker {
    BoundedChecker {
        grid_sizes: vec![3, 4],
        trials_per_size: 2,
        ..BoundedChecker::default()
    }
}

#[test]
fn adaptive_screen_agrees_with_exhaustive_on_every_corpus_kernel() {
    let mut kernels_covered = 0usize;
    // [survived, killed, error]
    let mut verdicts = [0usize; 3];
    for corpus_kernel in stng_corpus::all_kernels() {
        let Ok(kernel) = kernel_from_source(&corpus_kernel.source, 0) else {
            continue; // outside the liftable subset: nothing to screen
        };
        let Ok(nest) = analyze_loop_nest(&kernel) else {
            continue;
        };
        let invariants = empty_invariants(&nest);
        let session = CheckSession::new(test_checker(), kernel.clone());
        kernels_covered += 1;

        let mut families = vec![
            ("trivial", {
                generate_vcs(
                    &nest,
                    &kernel.assumptions,
                    &invariants,
                    &synthetic_post(&kernel, 0, false),
                )
            }),
            (
                "wrong",
                generate_vcs(
                    &nest,
                    &kernel.assumptions,
                    &invariants,
                    &synthetic_post(&kernel, 0, true),
                ),
            ),
            (
                "erroring",
                generate_vcs(
                    &nest,
                    &kernel.assumptions,
                    &invariants,
                    &synthetic_post(&kernel, 900, false),
                ),
            ),
        ];
        // Unbound-hypothesis family: every state vacuous in both scans.
        let mut unbound = generate_vcs(
            &nest,
            &kernel.assumptions,
            &invariants,
            &synthetic_post(&kernel, 0, false),
        );
        for vc in &mut unbound {
            vc.hypotheses.push(stng_pred::Pred::Bool(IrExpr::cmp(
                CmpOp::Le,
                IrExpr::var("never_bound_differential_var"),
                IrExpr::Int(0),
            )));
        }
        families.push(("unbound-hyp", unbound));

        // Two rounds: the second screens under kill counters accumulated by
        // the first, so the reordered-VC path is differentially tested too.
        for round in 0..2 {
            for (family, vcs) in &families {
                let label = format!("{}/{family}/round{round}", corpus_kernel.name);
                verdicts[assert_verdicts_agree(&session, vcs, &label)] += 1;
            }
        }
    }
    // The corpus must actually exercise the property: many kernels and both
    // surviving and killed candidates (error agreement is covered by the
    // capture-failure case below and by killed evaluation errors, which
    // reject as counterexamples in both scans).
    assert!(
        kernels_covered >= 20,
        "expected most corpus kernels to participate, got {kernels_covered}"
    );
    let [survived, killed, _] = verdicts;
    assert!(survived > 20, "only {survived} surviving candidates");
    assert!(killed > 20, "only {killed} killed candidates");
}

#[test]
fn adaptive_screen_agrees_on_real_invariants() {
    // The running example with its hand-written invariants: the correct
    // candidate must survive both scans, and stay surviving across repeated
    // screenings of the same session.
    let kernel = kernel_from_source(fixtures::RUNNING_EXAMPLE, 0).unwrap();
    let nest = analyze_loop_nest(&kernel).unwrap();
    let vcs = generate_vcs(
        &nest,
        &kernel.assumptions,
        &fixtures::running_example_invariants(),
        &fixtures::running_example_post(),
    );
    let session = CheckSession::new(test_checker(), kernel);
    for round in 0..3 {
        let verdict = assert_verdicts_agree(&session, &vcs, &format!("running-example/{round}"));
        assert_eq!(verdict, 0, "the real invariants survive the screen");
    }
}

#[test]
fn adaptive_screen_agrees_on_capture_errors() {
    // A kernel whose capture fails at size 4 (`a` declared `0..min(n,3)`
    // but stored through `1..n`): both scans must surface the capture error
    // for a surviving candidate, and both must prefer an earlier tier's
    // violation for a killed one.
    use stng_ir::ir::{IterDomain, Param, ParamKind};
    use stng_pred::vcgen::VcScope;
    let kernel = Kernel {
        name: "oob_at_4".into(),
        params: vec![
            Param {
                name: "n".into(),
                kind: ParamKind::IntScalar,
            },
            Param {
                name: "a".into(),
                kind: ParamKind::Array {
                    dims: vec![(
                        IrExpr::Int(0),
                        IrExpr::Call {
                            func: "min".into(),
                            args: vec![IrExpr::var("n"), IrExpr::Int(3)],
                        },
                    )],
                },
            },
        ],
        locals: vec![Param {
            name: "i".into(),
            kind: ParamKind::IntScalar,
        }],
        body: vec![stng_ir::ir::IrStmt::Loop {
            domain: IterDomain::unit("i", IrExpr::Int(1), IrExpr::var("n")),
            body: vec![stng_ir::ir::IrStmt::Store {
                array: "a".into(),
                indices: vec![IrExpr::var("i")],
                value: IrExpr::Real(0.0),
            }],
        }],
        assumptions: vec![],
    };
    let tautology = Vc {
        name: "tautology".into(),
        hypotheses: vec![],
        body: vec![],
        conclusion: stng_pred::Pred::Bool(IrExpr::cmp(CmpOp::Eq, IrExpr::Int(0), IrExpr::Int(0))),
        int_scalars: vec![],
        scope: VcScope::Initial,
    };
    let always_false = Vc {
        conclusion: stng_pred::Pred::Bool(IrExpr::cmp(CmpOp::Eq, IrExpr::Int(0), IrExpr::Int(1))),
        name: "always-false".into(),
        ..tautology.clone()
    };
    let session = CheckSession::new(BoundedChecker::new(), kernel);
    assert_eq!(
        assert_verdicts_agree(&session, std::slice::from_ref(&always_false), "oob/killed"),
        1,
        "the size-3 violation wins over the size-4 capture error in both scans"
    );
    assert_eq!(
        assert_verdicts_agree(&session, std::slice::from_ref(&tautology), "oob/error"),
        2,
        "a surviving candidate surfaces the size-4 capture error in both scans"
    );
}
