//! Bounded and randomized checking of verification conditions (§3.1's
//! hierarchy of checking procedures, below the sound verifier).
//!
//! Candidates produced by the synthesizer are first screened here: the
//! kernel is executed concretely on small random inputs in the modular data
//! domain (§4.4), the machine states reached at every loop head are captured,
//! and every VC is evaluated on every captured state. A candidate that
//! violates a VC on any reachable state is certainly wrong and is rejected
//! with a counterexample; candidates that survive are handed to
//! [`crate::prover::SmtLite`] for the final, sound check.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt;
use stng_ir::error::{Error, Result};
use stng_ir::interp::{eval_bool_expr, eval_data_expr, eval_int_expr, ArrayData, State};
use stng_ir::ir::{IrStmt, Kernel, ParamKind};
use stng_ir::value::{ModInt, MOD_FIELD};
use stng_pred::eval::{check_vc_on_state, VcOutcome};
use stng_pred::vcgen::{Vc, VcScope};
use stng_sym::choose_small_bounds;

/// The program point a captured state was snapshotted at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StateOrigin {
    /// Before any statement executed.
    Initial,
    /// At the head of an iteration of the named loop.
    LoopHead(String),
    /// Immediately after the named loop exited.
    LoopExit(String),
    /// After the whole kernel executed.
    Final,
}

impl StateOrigin {
    /// Whether a VC anchored at `scope` should be evaluated on a state
    /// captured here.
    fn in_scope(&self, scope: &VcScope) -> bool {
        match (scope, self) {
            (VcScope::Any, _) => true,
            (VcScope::Initial, StateOrigin::Initial) => true,
            (VcScope::LoopHead(v), StateOrigin::LoopHead(w)) => v == w,
            (VcScope::LoopExit(v), StateOrigin::LoopExit(w)) => v == w,
            (VcScope::Final, StateOrigin::Final) => true,
            _ => false,
        }
    }
}

impl fmt::Display for StateOrigin {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StateOrigin::Initial => write!(f, "initial"),
            StateOrigin::LoopHead(v) => write!(f, "head of loop {v}"),
            StateOrigin::LoopExit(v) => write!(f, "exit of loop {v}"),
            StateOrigin::Final => write!(f, "final"),
        }
    }
}

/// A concrete state on which some VC failed.
#[derive(Debug, Clone)]
pub struct Counterexample {
    /// Name of the violated verification condition.
    pub vc_name: String,
    /// Short description of where the state came from.
    pub origin: String,
}

/// Configuration of the bounded checker.
#[derive(Debug, Clone, PartialEq)]
pub struct BoundedChecker {
    /// Grid sizes (values given to size-like integer parameters) to try.
    pub grid_sizes: Vec<i64>,
    /// Number of random input states generated per grid size.
    pub trials_per_size: usize,
    /// RNG seed, so counterexample search is reproducible.
    pub seed: u64,
    /// Worker threads used for state capture and VC checking (1 = serial).
    /// Checking is pure over immutable shared data, so this is
    /// embarrassingly parallel; results are deterministic regardless of the
    /// thread count.
    pub parallelism: usize,
}

impl Default for BoundedChecker {
    fn default() -> Self {
        BoundedChecker {
            grid_sizes: vec![3, 4],
            trials_per_size: 3,
            seed: 0x5717_1e57,
            parallelism: stng_intern::parallel::default_parallelism(),
        }
    }
}

impl BoundedChecker {
    /// Creates a checker with default settings.
    pub fn new() -> BoundedChecker {
        BoundedChecker::default()
    }

    /// Checks every VC on every reachable loop-head state of the kernel under
    /// several random small inputs. Returns the first violation found (in
    /// deterministic size → trial → state → VC order, independent of the
    /// thread count), or `None` when all checks pass (which does **not**
    /// imply validity).
    ///
    /// The (size, trial) executions are captured concurrently — each gets its
    /// own deterministic per-unit RNG seed — and the captured states are then
    /// scanned concurrently. This is where the CEGIS loop spends most of its
    /// wall time on 3D kernels (state count × VC count × quantifier domain),
    /// and every check is an independent pure function.
    ///
    /// # Errors
    ///
    /// Propagates interpreter errors (e.g. the candidate predicates index an
    /// array out of bounds), which the synthesizer also treats as rejection.
    pub fn find_counterexample(
        &self,
        kernel: &Kernel,
        vcs: &[Vc],
    ) -> Result<Option<Counterexample>> {
        let mut units: Vec<(i64, usize)> = Vec::new();
        for &size in &self.grid_sizes {
            for trial in 0..self.trials_per_size {
                units.push((size, trial));
            }
        }

        // One unit = capture the (size, trial) execution, then scan its
        // states against the in-scope VCs. Pipelining capture+check inside
        // the unit keeps the sequential early exit (a violation in the first
        // unit stops the search without ever capturing the rest) while units
        // still run concurrently on multi-core hosts.
        let found = stng_intern::parallel::find_first(
            &units,
            self.parallelism,
            |_, &(size, trial)| -> Option<Result<Counterexample>> {
                let mut rng = StdRng::seed_from_u64(self.unit_seed(size, trial));
                let states = match self.reachable_states(kernel, size, &mut rng) {
                    Ok(states) => states,
                    Err(err) => return Some(Err(err)),
                };
                for (origin, state) in &states {
                    for vc in vcs {
                        if !origin.in_scope(&vc.scope) {
                            continue;
                        }
                        match check_vc_on_state(vc, state) {
                            Ok(VcOutcome::Violated) => {
                                return Some(Ok(Counterexample {
                                    vc_name: vc.name.clone(),
                                    origin: format!("{origin} (size {size}, trial {trial})"),
                                }));
                            }
                            Ok(_) => {}
                            Err(err) => {
                                // Evaluation errors (out-of-bounds candidate
                                // indices) also reject the candidate.
                                return Some(Ok(Counterexample {
                                    vc_name: vc.name.clone(),
                                    origin: format!("evaluation error: {err}"),
                                }));
                            }
                        }
                    }
                }
                None
            },
        );
        match found {
            None => Ok(None),
            Some((_, Ok(cex))) => Ok(Some(cex)),
            Some((_, Err(err))) => Err(err),
        }
    }

    /// Deterministic per-(size, trial) RNG seed, so units can be captured in
    /// any order (or concurrently) with reproducible inputs.
    fn unit_seed(&self, size: i64, trial: usize) -> u64 {
        self.seed.wrapping_add(
            0x9E37_79B9_7F4A_7C15u64.wrapping_mul(size as u64 * 31 + trial as u64 + 1),
        )
    }

    /// Runs the kernel concretely and captures the initial state, the state
    /// at the head of every loop iteration, and the final state.
    fn reachable_states(
        &self,
        kernel: &Kernel,
        size: i64,
        rng: &mut StdRng,
    ) -> Result<Vec<(StateOrigin, State<ModInt>)>> {
        let bounds = choose_small_bounds(kernel, size);
        let mut state: State<ModInt> = State::new();
        for (name, value) in &bounds {
            state.set_int(name.clone(), *value);
        }
        for name in kernel.real_params() {
            state.set_real(name, ModInt::new(rng.gen_range(0..MOD_FIELD)));
        }
        for param in &kernel.params {
            if let ParamKind::Array { dims } = &param.kind {
                let mut concrete = Vec::new();
                for (lo, hi) in dims {
                    let lo = eval_int_expr(lo, &state)?;
                    let hi = eval_int_expr(hi, &state)?;
                    concrete.push((lo, hi));
                }
                let array =
                    ArrayData::from_fn(concrete, |_| ModInt::new(rng.gen_range(0..MOD_FIELD)));
                state.set_array(param.name.clone(), array);
            }
        }

        let mut tracer = Tracer {
            snapshots: vec![(StateOrigin::Initial, state.clone())],
            steps: 0,
            max_steps: 200_000,
        };
        tracer.run(&kernel.body, &mut state)?;
        tracer.snapshots.push((StateOrigin::Final, state));
        Ok(tracer.snapshots)
    }
}

/// A tracing interpreter that snapshots the full machine state at the head of
/// every loop iteration.
struct Tracer {
    snapshots: Vec<(StateOrigin, State<ModInt>)>,
    steps: u64,
    max_steps: u64,
}

impl Tracer {
    fn run(&mut self, stmts: &[IrStmt], state: &mut State<ModInt>) -> Result<()> {
        for stmt in stmts {
            self.steps += 1;
            if self.steps > self.max_steps {
                return Err(Error::interp("bounded-checking step budget exhausted"));
            }
            match stmt {
                IrStmt::AssignScalar { name, value } => {
                    if state.ints.contains_key(name) {
                        let v = eval_int_expr(value, state)?;
                        state.ints.insert(name.clone(), v);
                    } else {
                        let v = eval_data_expr(value, state)?;
                        state.reals.insert(name.clone(), v);
                    }
                }
                IrStmt::Store {
                    array,
                    indices,
                    value,
                } => {
                    let idx: Result<Vec<i64>> =
                        indices.iter().map(|ix| eval_int_expr(ix, state)).collect();
                    let idx = idx?;
                    let v = eval_data_expr(value, state)?;
                    let arr = state
                        .arrays
                        .get_mut(array)
                        .ok_or_else(|| Error::interp(format!("unbound array '{array}'")))?;
                    if !arr.set(&idx, v) {
                        return Err(Error::interp(format!(
                            "store index {idx:?} out of bounds for '{array}'"
                        )));
                    }
                }
                IrStmt::Loop { domain, body } => {
                    let lo = eval_int_expr(&domain.lo, state)?;
                    let hi = eval_int_expr(&domain.hi, state)?;
                    let step = domain.step;
                    if step == 0 {
                        return Err(Error::interp("loop with zero step"));
                    }
                    let var = &domain.var;
                    let mut cur = lo;
                    loop {
                        let in_range = if step > 0 { cur <= hi } else { cur >= hi };
                        if !in_range {
                            break;
                        }
                        state.ints.insert(var.clone(), cur);
                        self.snapshots
                            .push((StateOrigin::LoopHead(var.clone()), state.clone()));
                        self.run(body, state)?;
                        cur += step;
                    }
                    state.ints.insert(var.clone(), cur);
                    self.snapshots
                        .push((StateOrigin::LoopExit(var.clone()), state.clone()));
                }
                IrStmt::If {
                    cond,
                    then_body,
                    else_body,
                } => {
                    if eval_bool_expr(cond, state)? {
                        self.run(then_body, state)?;
                    } else {
                        self.run(else_body, state)?;
                    }
                }
            }
        }
        Ok(())
    }
}

/// Maximum snapshot count sanity limit used by callers when sizing grids.
pub const RECOMMENDED_MAX_GRID: i64 = 6;

#[cfg(test)]
mod tests {
    use super::*;
    use stng_ir::lower::kernel_from_source;
    use stng_pred::fixtures;
    use stng_pred::vcgen::{analyze_loop_nest, generate_vcs};

    fn vcs_with(
        post: stng_pred::lang::Postcondition,
        invariants: Vec<stng_pred::lang::Invariant>,
    ) -> (Kernel, Vec<Vc>) {
        let kernel = kernel_from_source(fixtures::RUNNING_EXAMPLE, 0).unwrap();
        let nest = analyze_loop_nest(&kernel).unwrap();
        let vcs = generate_vcs(&nest, &kernel.assumptions, &invariants, &post);
        (kernel, vcs)
    }

    #[test]
    fn correct_candidates_have_no_bounded_counterexample() {
        let (kernel, vcs) = vcs_with(
            fixtures::running_example_post(),
            fixtures::running_example_invariants(),
        );
        let checker = BoundedChecker::new();
        assert!(checker
            .find_counterexample(&kernel, &vcs)
            .unwrap()
            .is_none());
    }

    #[test]
    fn wrong_postcondition_is_rejected_quickly() {
        let mut post = fixtures::running_example_post();
        post.clauses[0].eq.rhs = stng_ir::ir::IrExpr::Load {
            array: "b".into(),
            indices: vec![
                stng_ir::ir::IrExpr::var("vi"),
                stng_ir::ir::IrExpr::var("vj"),
            ],
        };
        let (kernel, vcs) = vcs_with(post, fixtures::running_example_invariants());
        let checker = BoundedChecker::new();
        let cex = checker.find_counterexample(&kernel, &vcs).unwrap();
        assert!(cex.is_some());
    }

    #[test]
    fn wrong_invariant_is_rejected() {
        let mut invariants = fixtures::running_example_invariants();
        invariants[1].scalar_eqs[0].1 = stng_ir::ir::IrExpr::Load {
            array: "b".into(),
            indices: vec![stng_ir::ir::IrExpr::var("i"), stng_ir::ir::IrExpr::var("j")],
        };
        let (kernel, vcs) = vcs_with(fixtures::running_example_post(), invariants);
        let checker = BoundedChecker::new();
        let cex = checker.find_counterexample(&kernel, &vcs).unwrap();
        assert!(
            cex.is_some(),
            "expected a counterexample for the wrong invariant"
        );
    }

    #[test]
    fn counterexamples_are_reproducible_across_runs() {
        let mut post = fixtures::running_example_post();
        post.clauses[0].eq.rhs = stng_ir::ir::IrExpr::Real(0.0);
        let (kernel, vcs) = vcs_with(post, fixtures::running_example_invariants());
        let checker = BoundedChecker::new();
        let a = checker.find_counterexample(&kernel, &vcs).unwrap().unwrap();
        let b = checker.find_counterexample(&kernel, &vcs).unwrap().unwrap();
        assert_eq!(a.vc_name, b.vc_name);
        assert_eq!(a.origin, b.origin);
    }
}
