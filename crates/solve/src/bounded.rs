//! Bounded and randomized checking of verification conditions (§3.1's
//! hierarchy of checking procedures, below the sound verifier).
//!
//! Candidates produced by the synthesizer are first screened here: the
//! kernel is executed concretely on small random inputs in the modular data
//! domain (§4.4), the machine states reached at every loop head are captured,
//! and every VC is evaluated on every captured state. A candidate that
//! violates a VC on any reachable state is certainly wrong and is rejected
//! with a counterexample; candidates that survive are handed to
//! [`crate::prover::SmtLite`] for the final, sound check.
//!
//! Two layers keep the screen cheap (this is where CEGIS spends its wall
//! time on 3D+ kernels):
//!
//! * **Compiled checking** — states are slot-addressed
//!   ([`stng_ir::slots::SlotState`]), captured by a bytecode-compiled
//!   tracer, and VCs are lowered once per candidate into flat programs
//!   ([`stng_pred::compile::CompiledVcSet`]), so the per-quantifier-point
//!   work is a handful of register ops with zero allocation. The
//!   tree-walking evaluator remains both the fallback (for kernels or VCs
//!   outside the compiled subset) and the differential-testing oracle.
//! * **Cross-candidate state reuse** — reachable states depend only on the
//!   kernel and the (size, trial) seed, never on the candidate. A
//!   [`CheckSession`] owned by the CEGIS loop captures them once into
//!   immutable snapshots and scans them for every candidate, recompiling
//!   only the candidate-dependent VCs between iterations.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Instant;
use stng_intern::guard::Budget;
use stng_ir::error::{Error, Result};
use stng_ir::interp::{eval_bool_expr, eval_data_expr, eval_int_expr, ArrayData, State};
use stng_ir::ir::{IrStmt, Kernel, ParamKind};
use stng_ir::slots::{
    exec_stmts_traced, Compiler, LoopTrace, ProgramSet, Scratch, SlotMap, SlotState, SlotStmt,
};
use stng_ir::value::{ModInt, MOD_FIELD};
use stng_pred::compile::CompiledVcSet;
use stng_pred::eval::{check_vc_on_state, VcOutcome};
use stng_pred::vcgen::{Vc, VcScope};
use stng_sym::choose_small_bounds;

/// The program point a captured state was snapshotted at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StateOrigin {
    /// Before any statement executed.
    Initial,
    /// At the head of an iteration of the named loop.
    LoopHead(String),
    /// Immediately after the named loop exited.
    LoopExit(String),
    /// After the whole kernel executed.
    Final,
}

impl StateOrigin {
    /// Whether a VC anchored at `scope` should be evaluated on a state
    /// captured here.
    fn in_scope(&self, scope: &VcScope) -> bool {
        match (scope, self) {
            (VcScope::Any, _) => true,
            (VcScope::Initial, StateOrigin::Initial) => true,
            (VcScope::LoopHead(v), StateOrigin::LoopHead(w)) => v == w,
            (VcScope::LoopExit(v), StateOrigin::LoopExit(w)) => v == w,
            (VcScope::Final, StateOrigin::Final) => true,
            _ => false,
        }
    }
}

impl fmt::Display for StateOrigin {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StateOrigin::Initial => write!(f, "initial"),
            StateOrigin::LoopHead(v) => write!(f, "head of loop {v}"),
            StateOrigin::LoopExit(v) => write!(f, "exit of loop {v}"),
            StateOrigin::Final => write!(f, "final"),
        }
    }
}

/// A concrete state on which some VC failed.
#[derive(Debug, Clone)]
pub struct Counterexample {
    /// Name of the violated verification condition.
    pub vc_name: String,
    /// Short description of where the state came from.
    pub origin: String,
}

/// Configuration of the bounded checker.
#[derive(Debug, Clone, PartialEq)]
pub struct BoundedChecker {
    /// Grid sizes (values given to size-like integer parameters) to try.
    pub grid_sizes: Vec<i64>,
    /// Number of random input states generated per grid size.
    pub trials_per_size: usize,
    /// RNG seed, so counterexample search is reproducible.
    pub seed: u64,
    /// Worker threads used for state capture and VC checking (1 = serial).
    /// Checking is pure over immutable shared data, so this is
    /// embarrassingly parallel; results are deterministic regardless of the
    /// thread count.
    pub parallelism: usize,
}

impl Default for BoundedChecker {
    fn default() -> Self {
        BoundedChecker {
            grid_sizes: vec![3, 4],
            trials_per_size: 3,
            seed: 0x5717_1e57,
            parallelism: stng_intern::parallel::default_parallelism(),
        }
    }
}

/// SplitMix64 finalizer: a full-avalanche mix of one 64-bit word.
fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl BoundedChecker {
    /// Creates a checker with default settings.
    pub fn new() -> BoundedChecker {
        BoundedChecker::default()
    }

    /// Deterministic per-(size, trial) RNG seed, so units can be captured in
    /// any order (or concurrently) with reproducible inputs.
    ///
    /// Each word is avalanche-mixed before combining: the previous
    /// `size * 31 + trial` linearization aliased distinct units (e.g.
    /// `(3, 31)` with `(4, 0)`), giving them identical random inputs.
    pub fn unit_seed(&self, size: i64, trial: usize) -> u64 {
        splitmix(splitmix(self.seed ^ (size as u64)) ^ (trial as u64))
    }

    /// The (size, trial) capture units, in deterministic scan order.
    fn units(&self) -> Vec<(i64, usize)> {
        let mut units = Vec::with_capacity(self.grid_sizes.len() * self.trials_per_size);
        for &size in &self.grid_sizes {
            for trial in 0..self.trials_per_size {
                units.push((size, trial));
            }
        }
        units
    }

    /// Checks every VC on every reachable loop-head state of the kernel
    /// under several random small inputs. Returns the first violation found
    /// (in deterministic size → trial → state → VC order, independent of the
    /// thread count), or `None` when all checks pass (which does **not**
    /// imply validity).
    ///
    /// This is the standalone entry point; the CEGIS loop holds a
    /// [`CheckSession`] instead, so the capture cost is paid once for the
    /// whole candidate set.
    ///
    /// # Errors
    ///
    /// Propagates interpreter errors from state capture (e.g. a runaway
    /// loop), which the synthesizer also treats as rejection.
    pub fn find_counterexample(
        &self,
        kernel: &Kernel,
        vcs: &[Vc],
    ) -> Result<Option<Counterexample>> {
        CheckSession::new(self.clone(), kernel.clone()).find_counterexample(vcs)
    }
}

/// The reachable states of one (size, trial) execution.
#[derive(Debug)]
pub struct CapturedUnit {
    /// Grid size of this unit.
    pub size: i64,
    /// Trial index of this unit.
    pub trial: usize,
    /// Snapshots in execution order, tagged with their program point.
    pub states: Vec<(StateOrigin, SlotState<ModInt>)>,
    /// Hash-map views of `states`, materialized once on first use by the
    /// tree-walking fallback (the conversion deep-copies array payloads, so
    /// it must not repeat per candidate).
    oracle: OnceLock<Vec<State<ModInt>>>,
}

impl CapturedUnit {
    fn new(size: i64, trial: usize, states: Vec<(StateOrigin, SlotState<ModInt>)>) -> CapturedUnit {
        CapturedUnit {
            size,
            trial,
            states,
            oracle: OnceLock::new(),
        }
    }

    /// The snapshots as hash-map states (converted once, then shared).
    pub fn oracle_states(&self) -> &[State<ModInt>] {
        self.oracle
            .get_or_init(|| self.states.iter().map(|(_, s)| s.to_state()).collect())
    }
}

/// The session's captured units, in deterministic scan order. A unit whose
/// capture execution failed keeps its error in place, so scanning preserves
/// the old per-unit semantics: a violation in an earlier unit wins over a
/// capture error in a later one.
struct Captured {
    units: Vec<std::result::Result<CapturedUnit, Error>>,
    capture_ns: u64,
}

/// A bounded-checking session: reachable states captured **once** per
/// (size, trial) and shared — via `Arc`-backed immutable snapshots — across
/// every candidate the CEGIS loop screens.
///
/// Capture is lazy (on the first [`CheckSession::find_counterexample`]), so
/// sessions are free for kernels whose screening never runs, and counted:
/// [`CheckSession::capture_count`] counts actual capture *executions* (the
/// counter is incremented inside the unit-execution path, not derived from
/// stored state), which the benchmarks assert equals the unit count — not
/// `units × candidates` — so a regression that recaptures states drifts the
/// counter and fails the gate.
pub struct CheckSession {
    checker: BoundedChecker,
    kernel: Kernel,
    map: Arc<SlotMap>,
    captured: OnceLock<Captured>,
    capture_runs: AtomicU64,
    check_ns: AtomicU64,
    budget: Budget,
}

impl CheckSession {
    /// Creates a session for one kernel. Cheap: nothing is captured until
    /// the first counterexample search.
    pub fn new(checker: BoundedChecker, kernel: Kernel) -> CheckSession {
        CheckSession::with_budget(checker, kernel, Budget::unlimited())
    }

    /// Creates a session governed by a [`Budget`]: capture steps and VC
    /// checks charge bounded-check fuel, and deadlines are polled between
    /// units. An interrupted capture or scan surfaces as a session `Err`
    /// (never as a spurious "all checks passed"); callers tell interruptions
    /// from genuine evaluation failures via [`Budget::exhausted`].
    pub fn with_budget(checker: BoundedChecker, kernel: Kernel, budget: Budget) -> CheckSession {
        let map = Arc::new(SlotMap::for_kernel(&kernel));
        CheckSession {
            checker,
            kernel,
            map,
            captured: OnceLock::new(),
            capture_runs: AtomicU64::new(0),
            check_ns: AtomicU64::new(0),
            budget,
        }
    }

    fn budget_error(&self) -> Error {
        let reason = self
            .budget
            .exhausted()
            .map(|r| r.as_str())
            .unwrap_or("budget");
        Error::interp(format!("bounded check interrupted: {reason} exhausted"))
    }

    /// The slot resolver shared by captured states and compiled VCs.
    pub fn map(&self) -> &Arc<SlotMap> {
        &self.map
    }

    /// Number of (size, trial) capture executions performed so far (0
    /// before first use; afterwards exactly `grid_sizes × trials_per_size`,
    /// however many candidates were screened — any recapture drifts it).
    pub fn capture_count(&self) -> usize {
        self.capture_runs.load(Ordering::Relaxed) as usize
    }

    /// Wall time spent capturing states, in nanoseconds.
    pub fn capture_ns(&self) -> u64 {
        match self.captured.get() {
            Some(captured) => captured.capture_ns,
            None => 0,
        }
    }

    /// Cumulative wall time spent scanning states against VCs, in
    /// nanoseconds (summed across candidates; on multi-core hosts
    /// concurrent candidate scans accumulate their individual times).
    pub fn check_ns(&self) -> u64 {
        self.check_ns.load(Ordering::Relaxed)
    }

    /// The per-unit capture results, in scan order (capturing now if this
    /// is the first use). A unit whose capture failed holds its error.
    pub fn captured_units(&self) -> &[std::result::Result<CapturedUnit, Error>] {
        &self.capture().units
    }

    fn capture(&self) -> &Captured {
        self.captured.get_or_init(|| {
            let _span = stng_obs::span(&stng_obs::names::BOUNDED_CAPTURE);
            let start = Instant::now();
            // Compile the kernel body once; kernels outside the compiled
            // subset (hand-built IR with conditionals) capture through the
            // tree-walking tracer instead.
            let mut compiler = Compiler::new(&self.map);
            let compiled = compiler
                .compile_stmts(&self.kernel.body)
                .ok()
                .map(|body| (body, compiler.into_set()));
            let units = self.checker.units();
            let units =
                stng_intern::parallel::map(&units, self.checker.parallelism, |&(size, trial)| {
                    match &compiled {
                        Some((body, set)) => self
                            .capture_unit_compiled(body, set, size, trial)
                            .map(|states| CapturedUnit::new(size, trial, states)),
                        None => self
                            .capture_unit_interp(size, trial)
                            .map(|states| CapturedUnit::new(size, trial, states)),
                    }
                });
            Captured {
                units,
                capture_ns: start.elapsed().as_nanos() as u64,
            }
        })
    }

    /// Builds the randomized initial state of one (size, trial) unit.
    fn initial_state(&self, size: i64, rng: &mut StdRng) -> Result<SlotState<ModInt>> {
        let bounds = choose_small_bounds(&self.kernel, size);
        // Bound-dimension expressions are evaluated through a scalars-only
        // hash-map state (they only mention integer parameters).
        let mut bound_state: State<ModInt> = State::new();
        for (name, value) in &bounds {
            bound_state.set_int(name.clone(), *value);
        }
        let mut state: SlotState<ModInt> = SlotState::new(Arc::clone(&self.map));
        for (name, value) in &bounds {
            state.set_int(name, *value);
        }
        for name in self.kernel.real_params() {
            state.set_real(&name, ModInt::new(rng.gen_range(0..MOD_FIELD)));
        }
        for param in &self.kernel.params {
            if let ParamKind::Array { dims } = &param.kind {
                let mut concrete = Vec::new();
                for (lo, hi) in dims {
                    let lo = eval_int_expr(lo, &bound_state)?;
                    let hi = eval_int_expr(hi, &bound_state)?;
                    concrete.push((lo, hi));
                }
                let array =
                    ArrayData::from_fn(concrete, |_| ModInt::new(rng.gen_range(0..MOD_FIELD)));
                state.set_array(&param.name, array);
            }
        }
        Ok(state)
    }

    /// Runs the kernel through the compiled tracer and captures the initial
    /// state, the state at the head of every loop iteration, and the final
    /// state.
    fn capture_unit_compiled(
        &self,
        body: &[SlotStmt],
        set: &ProgramSet,
        size: i64,
        trial: usize,
    ) -> Result<Vec<(StateOrigin, SlotState<ModInt>)>> {
        self.capture_runs.fetch_add(1, Ordering::Relaxed);
        let mut rng = StdRng::seed_from_u64(self.checker.unit_seed(size, trial));
        let mut state = self.initial_state(size, &mut rng)?;
        let mut sink = SnapshotSink {
            snapshots: vec![(StateOrigin::Initial, state.clone())],
        };
        let mut sc = Scratch::for_set(set);
        let mut steps = 0u64;
        exec_stmts_traced(
            body, set, &mut state, &mut sc, &mut steps, 200_000, &mut sink,
        )
        .map_err(|e| e.render(&self.map))?;
        if self.budget.consume_check_fuel(steps).is_err() {
            return Err(self.budget_error());
        }
        sink.snapshots.push((StateOrigin::Final, state));
        Ok(sink.snapshots)
    }

    /// Tree-walking capture fallback for kernels outside the compiled
    /// subset; also the oracle the differential tests compare against.
    fn capture_unit_interp(
        &self,
        size: i64,
        trial: usize,
    ) -> Result<Vec<(StateOrigin, SlotState<ModInt>)>> {
        self.capture_runs.fetch_add(1, Ordering::Relaxed);
        let mut rng = StdRng::seed_from_u64(self.checker.unit_seed(size, trial));
        let mut state = self.initial_state(size, &mut rng)?.to_state();
        let mut tracer = Tracer {
            snapshots: vec![(StateOrigin::Initial, state.clone())],
            steps: 0,
            max_steps: 200_000,
        };
        tracer.run(&self.kernel.body, &mut state)?;
        if self.budget.consume_check_fuel(tracer.steps).is_err() {
            return Err(self.budget_error());
        }
        tracer.snapshots.push((StateOrigin::Final, state));
        Ok(tracer
            .snapshots
            .into_iter()
            .map(|(origin, s)| (origin, SlotState::from_state(&s, &self.map)))
            .collect())
    }

    /// Checks every VC on every captured state. Returns the first violation
    /// in deterministic size → trial → state → VC order, independent of the
    /// thread count, or `None` when all checks pass.
    ///
    /// # Errors
    ///
    /// Propagates interpreter errors from state capture — but, as with the
    /// pre-session per-unit pipeline, only when no earlier unit already
    /// produced a violation: the first Some result in unit order wins,
    /// whether it is a counterexample or a capture error. (VC *evaluation*
    /// errors are rejections, not errors: they become counterexamples, as in
    /// the tree-walking checker.)
    pub fn find_counterexample(&self, vcs: &[Vc]) -> Result<Option<Counterexample>> {
        let units = self.captured_units();
        let _span = stng_obs::span(&stng_obs::names::BOUNDED_SCAN);
        let start = Instant::now();
        let compiled = CompiledVcSet::compile(vcs, &self.map);
        let found = stng_intern::parallel::find_first(
            units,
            self.checker.parallelism,
            |_, unit| -> Option<Result<Counterexample>> {
                let unit = match unit {
                    Ok(unit) => unit,
                    Err(err) => return Some(Err(err.clone())),
                };
                match &compiled {
                    Ok(compiled) => self.scan_unit_compiled(unit, compiled, vcs),
                    // A VC outside the compiled subset: tree-walk the whole
                    // set so evaluation semantics stay those of one engine.
                    Err(_) => self.scan_unit_interp(unit, vcs),
                }
            },
        );
        self.check_ns
            .fetch_add(start.elapsed().as_nanos() as u64, Ordering::Relaxed);
        match found {
            None => Ok(None),
            Some((_, Ok(cex))) => Ok(Some(cex)),
            Some((_, Err(err))) => Err(err),
        }
    }

    fn scan_unit_compiled(
        &self,
        unit: &CapturedUnit,
        compiled: &CompiledVcSet,
        vcs: &[Vc],
    ) -> Option<Result<Counterexample>> {
        let mut sc = compiled.scratch::<ModInt>();
        for (origin, state) in &unit.states {
            for (k, vc) in vcs.iter().enumerate() {
                if !origin.in_scope(&vc.scope) {
                    continue;
                }
                // One fuel unit per (state, VC) check; the compiled check
                // itself polls at quantifier back-edges.
                if self.budget.consume_check_fuel(1).is_err() {
                    return Some(Err(self.budget_error()));
                }
                match compiled.check_budgeted(k, state, &mut sc, &self.budget) {
                    Ok(VcOutcome::Violated) => {
                        return Some(Ok(Counterexample {
                            vc_name: vc.name.clone(),
                            origin: format!("{origin} (size {}, trial {})", unit.size, unit.trial),
                        }));
                    }
                    Ok(_) => {}
                    Err(err) => {
                        // A budget interruption must not masquerade as a
                        // rejection: it says nothing about the candidate.
                        if self.budget.exhausted().is_some() {
                            return Some(Err(self.budget_error()));
                        }
                        // Evaluation errors (out-of-bounds candidate
                        // indices) also reject the candidate.
                        return Some(Ok(Counterexample {
                            vc_name: vc.name.clone(),
                            origin: format!("evaluation error: {}", err.render(&self.map)),
                        }));
                    }
                }
            }
        }
        None
    }

    fn scan_unit_interp(&self, unit: &CapturedUnit, vcs: &[Vc]) -> Option<Result<Counterexample>> {
        for ((origin, _), state) in unit.states.iter().zip(unit.oracle_states()) {
            for vc in vcs {
                if !origin.in_scope(&vc.scope) {
                    continue;
                }
                if self.budget.consume_check_fuel(1).is_err() {
                    return Some(Err(self.budget_error()));
                }
                match check_vc_on_state(vc, state) {
                    Ok(VcOutcome::Violated) => {
                        return Some(Ok(Counterexample {
                            vc_name: vc.name.clone(),
                            origin: format!("{origin} (size {}, trial {})", unit.size, unit.trial),
                        }));
                    }
                    Ok(_) => {}
                    Err(err) => {
                        if self.budget.exhausted().is_some() {
                            return Some(Err(self.budget_error()));
                        }
                        return Some(Ok(Counterexample {
                            vc_name: vc.name.clone(),
                            origin: format!("evaluation error: {err}"),
                        }));
                    }
                }
            }
        }
        None
    }
}

/// Snapshot sink for the compiled capture executor: collects the full
/// machine state at the head of every loop iteration and at every loop
/// exit, via the [`LoopTrace`] hook of [`exec_stmts_traced`] (one shared
/// implementation of the loop protocol). Snapshots are cheap: flat scalar
/// memcpys plus array `Arc` bumps (an array's payload is copied only when a
/// later store mutates it).
struct SnapshotSink {
    snapshots: Vec<(StateOrigin, SlotState<ModInt>)>,
}

impl LoopTrace<ModInt> for SnapshotSink {
    fn at_loop_head(&mut self, var_name: &str, state: &SlotState<ModInt>) {
        self.snapshots
            .push((StateOrigin::LoopHead(var_name.to_string()), state.clone()));
    }

    fn at_loop_exit(&mut self, var_name: &str, state: &SlotState<ModInt>) {
        self.snapshots
            .push((StateOrigin::LoopExit(var_name.to_string()), state.clone()));
    }
}

/// The tree-walking tracer: capture fallback for kernels outside the
/// compiled subset, and the oracle the differential tests compare the
/// compiled tracer against.
struct Tracer {
    snapshots: Vec<(StateOrigin, State<ModInt>)>,
    steps: u64,
    max_steps: u64,
}

impl Tracer {
    fn run(&mut self, stmts: &[IrStmt], state: &mut State<ModInt>) -> Result<()> {
        for stmt in stmts {
            self.steps += 1;
            if self.steps > self.max_steps {
                return Err(Error::interp("bounded-checking step budget exhausted"));
            }
            match stmt {
                IrStmt::AssignScalar { name, value } => {
                    if state.ints.contains_key(name) {
                        let v = eval_int_expr(value, state)?;
                        state.ints.insert(name.clone(), v);
                    } else {
                        let v = eval_data_expr(value, state)?;
                        state.reals.insert(name.clone(), v);
                    }
                }
                IrStmt::Store {
                    array,
                    indices,
                    value,
                } => {
                    let idx: Result<Vec<i64>> =
                        indices.iter().map(|ix| eval_int_expr(ix, state)).collect();
                    let idx = idx?;
                    let v = eval_data_expr(value, state)?;
                    let arr = state
                        .arrays
                        .get_mut(array)
                        .ok_or_else(|| Error::interp(format!("unbound array '{array}'")))?;
                    if !arr.set(&idx, v) {
                        return Err(Error::interp(format!(
                            "store index {idx:?} out of bounds for '{array}'"
                        )));
                    }
                }
                IrStmt::Loop { domain, body } => {
                    let lo = eval_int_expr(&domain.lo, state)?;
                    let hi = eval_int_expr(&domain.hi, state)?;
                    let step = domain.step;
                    if step == 0 {
                        return Err(Error::interp("loop with zero step"));
                    }
                    let var = &domain.var;
                    let mut cur = lo;
                    loop {
                        let in_range = if step > 0 { cur <= hi } else { cur >= hi };
                        if !in_range {
                            break;
                        }
                        state.ints.insert(var.clone(), cur);
                        self.snapshots
                            .push((StateOrigin::LoopHead(var.clone()), state.clone()));
                        self.run(body, state)?;
                        cur += step;
                    }
                    state.ints.insert(var.clone(), cur);
                    self.snapshots
                        .push((StateOrigin::LoopExit(var.clone()), state.clone()));
                }
                IrStmt::If {
                    cond,
                    then_body,
                    else_body,
                } => {
                    if eval_bool_expr(cond, state)? {
                        self.run(then_body, state)?;
                    } else {
                        self.run(else_body, state)?;
                    }
                }
            }
        }
        Ok(())
    }
}

/// Maximum snapshot count sanity limit used by callers when sizing grids.
pub const RECOMMENDED_MAX_GRID: i64 = 6;

#[cfg(test)]
mod tests {
    use super::*;
    use stng_ir::lower::kernel_from_source;
    use stng_pred::fixtures;
    use stng_pred::vcgen::{analyze_loop_nest, generate_vcs};

    fn vcs_with(
        post: stng_pred::lang::Postcondition,
        invariants: Vec<stng_pred::lang::Invariant>,
    ) -> (Kernel, Vec<Vc>) {
        let kernel = kernel_from_source(fixtures::RUNNING_EXAMPLE, 0).unwrap();
        let nest = analyze_loop_nest(&kernel).unwrap();
        let vcs = generate_vcs(&nest, &kernel.assumptions, &invariants, &post);
        (kernel, vcs)
    }

    #[test]
    fn correct_candidates_have_no_bounded_counterexample() {
        let (kernel, vcs) = vcs_with(
            fixtures::running_example_post(),
            fixtures::running_example_invariants(),
        );
        let checker = BoundedChecker::new();
        assert!(checker
            .find_counterexample(&kernel, &vcs)
            .unwrap()
            .is_none());
    }

    #[test]
    fn wrong_postcondition_is_rejected_quickly() {
        let mut post = fixtures::running_example_post();
        post.clauses[0].eq.rhs = stng_ir::ir::IrExpr::Load {
            array: "b".into(),
            indices: vec![
                stng_ir::ir::IrExpr::var("vi"),
                stng_ir::ir::IrExpr::var("vj"),
            ],
        };
        let (kernel, vcs) = vcs_with(post, fixtures::running_example_invariants());
        let checker = BoundedChecker::new();
        let cex = checker.find_counterexample(&kernel, &vcs).unwrap();
        assert!(cex.is_some());
    }

    #[test]
    fn wrong_invariant_is_rejected() {
        let mut invariants = fixtures::running_example_invariants();
        invariants[1].scalar_eqs[0].1 = stng_ir::ir::IrExpr::Load {
            array: "b".into(),
            indices: vec![stng_ir::ir::IrExpr::var("i"), stng_ir::ir::IrExpr::var("j")],
        };
        let (kernel, vcs) = vcs_with(fixtures::running_example_post(), invariants);
        let checker = BoundedChecker::new();
        let cex = checker.find_counterexample(&kernel, &vcs).unwrap();
        assert!(
            cex.is_some(),
            "expected a counterexample for the wrong invariant"
        );
    }

    #[test]
    fn counterexamples_are_reproducible_across_runs() {
        let mut post = fixtures::running_example_post();
        post.clauses[0].eq.rhs = stng_ir::ir::IrExpr::Real(0.0);
        let (kernel, vcs) = vcs_with(post, fixtures::running_example_invariants());
        let checker = BoundedChecker::new();
        let a = checker.find_counterexample(&kernel, &vcs).unwrap().unwrap();
        let b = checker.find_counterexample(&kernel, &vcs).unwrap().unwrap();
        assert_eq!(a.vc_name, b.vc_name);
        assert_eq!(a.origin, b.origin);
    }

    #[test]
    fn session_captures_once_across_candidates() {
        let (kernel, vcs) = vcs_with(
            fixtures::running_example_post(),
            fixtures::running_example_invariants(),
        );
        let checker = BoundedChecker::new();
        let session = CheckSession::new(checker.clone(), kernel.clone());
        assert_eq!(session.capture_count(), 0, "capture is lazy");
        for _ in 0..5 {
            assert!(session.find_counterexample(&vcs).unwrap().is_none());
        }
        assert_eq!(
            session.capture_count(),
            checker.grid_sizes.len() * checker.trials_per_size,
            "states are captured once per (size, trial), not per candidate"
        );
        assert!(session.capture_ns() > 0);
        assert!(session.check_ns() > 0);
    }

    #[test]
    fn session_and_standalone_agree() {
        let mut post = fixtures::running_example_post();
        post.clauses[0].eq.rhs = stng_ir::ir::IrExpr::Real(0.0);
        let (kernel, vcs) = vcs_with(post, fixtures::running_example_invariants());
        let checker = BoundedChecker::new();
        let standalone = checker.find_counterexample(&kernel, &vcs).unwrap().unwrap();
        let session = CheckSession::new(checker, kernel);
        let via_session = session.find_counterexample(&vcs).unwrap().unwrap();
        assert_eq!(standalone.vc_name, via_session.vc_name);
        assert_eq!(standalone.origin, via_session.origin);
    }

    #[test]
    fn compiled_and_interpreted_capture_agree() {
        let kernel = kernel_from_source(fixtures::RUNNING_EXAMPLE, 0).unwrap();
        let checker = BoundedChecker::new();
        let session = CheckSession::new(checker, kernel);
        for &(size, trial) in &[(3i64, 0usize), (4, 2)] {
            let mut compiler = Compiler::new(session.map());
            let body = compiler.compile_stmts(&session.kernel.body).unwrap();
            let set = compiler.into_set();
            let fast = session
                .capture_unit_compiled(&body, &set, size, trial)
                .unwrap();
            let slow = session.capture_unit_interp(size, trial).unwrap();
            assert_eq!(fast.len(), slow.len());
            for ((ao, a), (bo, b)) in fast.iter().zip(&slow) {
                assert_eq!(ao, bo);
                assert_eq!(a.to_state(), b.to_state(), "state mismatch at {ao}");
            }
        }
    }

    #[test]
    fn early_violation_wins_over_later_capture_error() {
        // A kernel whose capture fails only at size 4: `a` is declared
        // `0..min(n,3)` but stored through `1..n`, so the size-4 units hit
        // an out-of-bounds store while the size-3 units capture fine. As in
        // the pre-session per-unit pipeline, a violation found in an
        // earlier unit must win over the later units' capture errors.
        use stng_ir::ir::{IrExpr, IterDomain, Param, ParamKind};
        let kernel = Kernel {
            name: "oob_at_4".into(),
            params: vec![
                Param {
                    name: "n".into(),
                    kind: ParamKind::IntScalar,
                },
                Param {
                    name: "a".into(),
                    kind: ParamKind::Array {
                        dims: vec![(
                            IrExpr::Int(0),
                            IrExpr::Call {
                                func: "min".into(),
                                args: vec![IrExpr::var("n"), IrExpr::Int(3)],
                            },
                        )],
                    },
                },
            ],
            locals: vec![Param {
                name: "i".into(),
                kind: ParamKind::IntScalar,
            }],
            body: vec![IrStmt::Loop {
                domain: IterDomain::unit("i", IrExpr::Int(1), IrExpr::var("n")),
                body: vec![IrStmt::Store {
                    array: "a".into(),
                    indices: vec![IrExpr::var("i")],
                    value: IrExpr::Real(0.0),
                }],
            }],
            assumptions: vec![],
        };
        let always_false = Vc {
            name: "always-false".into(),
            hypotheses: vec![],
            body: vec![],
            conclusion: stng_pred::lang::Pred::Bool(stng_ir::ir::IrExpr::cmp(
                stng_ir::ir::CmpOp::Eq,
                IrExpr::Int(0),
                IrExpr::Int(1),
            )),
            int_scalars: vec![],
            scope: VcScope::Initial,
        };
        let checker = BoundedChecker::new(); // grid sizes [3, 4]
        let cex = checker
            .find_counterexample(&kernel, std::slice::from_ref(&always_false))
            .expect("size-3 violation wins over the size-4 capture error")
            .expect("the always-false VC is violated");
        assert_eq!(cex.vc_name, "always-false");
        assert!(cex.origin.contains("size 3"), "origin: {}", cex.origin);
        // With only the failing size, the capture error surfaces.
        let failing_only = BoundedChecker {
            grid_sizes: vec![4],
            ..BoundedChecker::new()
        };
        let err = failing_only
            .find_counterexample(&kernel, std::slice::from_ref(&always_false))
            .unwrap_err();
        assert!(
            err.to_string().contains("out of bounds"),
            "unexpected error: {err}"
        );
    }

    #[test]
    fn unit_seeds_do_not_alias() {
        let checker = BoundedChecker::new();
        // The pre-fix linearization aliased (3, 31) with (4, 0).
        assert_ne!(checker.unit_seed(3, 31), checker.unit_seed(4, 0));
        // Exhaustive pairwise distinctness over a realistic parameter box.
        let mut seen = std::collections::HashMap::new();
        for size in 0..=16i64 {
            for trial in 0..=64usize {
                if let Some(prev) = seen.insert(checker.unit_seed(size, trial), (size, trial)) {
                    panic!("seed collision: {prev:?} vs {:?}", (size, trial));
                }
            }
        }
    }

    #[test]
    fn unit_seeds_are_pinned() {
        // Bounded-checking inputs are part of observable behaviour
        // (counterexample reproducibility); pin the derivation so it cannot
        // drift silently.
        let checker = BoundedChecker::new();
        assert_eq!(checker.seed, 0x5717_1e57);
        assert_eq!(checker.unit_seed(3, 0), 0x7aad_d091_7a12_84f7);
        assert_eq!(checker.unit_seed(4, 2), 0x77c2_9d85_a5b3_492a);
    }
}
