//! Bounded and randomized checking of verification conditions (§3.1's
//! hierarchy of checking procedures, below the sound verifier).
//!
//! Candidates produced by the synthesizer are first screened here: the
//! kernel is executed concretely on small random inputs in the modular data
//! domain (§4.4), the machine states reached at every loop head are captured,
//! and every VC is evaluated on every captured state. A candidate that
//! violates a VC on any reachable state is certainly wrong and is rejected
//! with a counterexample; candidates that survive are handed to
//! [`crate::prover::SmtLite`] for the final, sound check.
//!
//! Several layers keep the screen cheap (this is where CEGIS spends its
//! wall time on 3D+ kernels):
//!
//! * **Compiled checking** — states are slot-addressed
//!   ([`stng_ir::slots::SlotState`]), captured by a bytecode-compiled
//!   tracer, and VCs are lowered once per candidate into flat programs
//!   ([`stng_pred::compile::CompiledVcSet`]), so the per-quantifier-point
//!   work is a handful of register ops with zero allocation. The
//!   tree-walking evaluator remains both the fallback (for kernels or VCs
//!   outside the compiled subset) and the differential-testing oracle.
//! * **Cross-candidate state reuse** — reachable states depend only on the
//!   kernel and the (size, trial) seed, never on the candidate. A
//!   [`CheckSession`] owned by the CEGIS loop captures them once into
//!   immutable snapshots and scans them for every candidate, recompiling
//!   only the candidate-dependent VCs between iterations.
//! * **Escalating grid screening** — capture is tiered per grid size and
//!   lazy: every candidate is scanned against the first (smallest, in the
//!   configured order) tier's units, and a later tier is captured and
//!   scanned only when all earlier tiers pass — wrong candidates killed by
//!   the small grid never pay for the large one. Escalation order is
//!   deterministic (the configured `grid_sizes` order), so CEGIS
//!   trajectories and canonical reports stay byte-identical across runs.
//! * **Kill-rate-ordered VCs** — the session counts counterexamples per VC
//!   family and scans historically lethal VCs first, so a killed
//!   candidate's scan short-circuits before paying for the VCs it would
//!   have survived. The order derives from deterministic counters (never
//!   timing), and reordering cannot change a candidate's verdict: a
//!   candidate survives iff *no* VC fails on *any* state.
//! * **Batched structure-of-arrays execution** — within a unit, each
//!   compiled VC program runs across all in-scope captured states in one
//!   op-major pass over SoA-transposed state columns
//!   ([`stng_ir::slots::SlotBatch`]) instead of re-entering the interpreter
//!   per state; per-lane outcomes match the scalar engine exactly.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;
use stng_intern::guard::{fault, Budget};
use stng_ir::error::{Error, Result};
use stng_ir::interp::{eval_bool_expr, eval_data_expr, eval_int_expr, ArrayData, State};
use stng_ir::ir::{IrStmt, Kernel, ParamKind};
use stng_ir::slots::{
    exec_stmts_traced, Compiler, LoopTrace, ProgramSet, Scratch, SlotMap, SlotState, SlotStmt,
    SLOT_BATCH_MAX_LANES,
};
use stng_ir::value::{ModInt, MOD_FIELD};
use stng_pred::compile::{CompiledVcSet, HypMemo};
use stng_pred::eval::{check_vc_on_state, VcOutcome};
use stng_pred::vcgen::{Vc, VcScope};
use stng_sym::choose_small_bounds;

/// The program point a captured state was snapshotted at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StateOrigin {
    /// Before any statement executed.
    Initial,
    /// At the head of an iteration of the named loop.
    LoopHead(String),
    /// Immediately after the named loop exited.
    LoopExit(String),
    /// After the whole kernel executed.
    Final,
}

impl StateOrigin {
    /// Whether a VC anchored at `scope` should be evaluated on a state
    /// captured here.
    fn in_scope(&self, scope: &VcScope) -> bool {
        match (scope, self) {
            (VcScope::Any, _) => true,
            (VcScope::Initial, StateOrigin::Initial) => true,
            (VcScope::LoopHead(v), StateOrigin::LoopHead(w)) => v == w,
            (VcScope::LoopExit(v), StateOrigin::LoopExit(w)) => v == w,
            (VcScope::Final, StateOrigin::Final) => true,
            _ => false,
        }
    }
}

impl fmt::Display for StateOrigin {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StateOrigin::Initial => write!(f, "initial"),
            StateOrigin::LoopHead(v) => write!(f, "head of loop {v}"),
            StateOrigin::LoopExit(v) => write!(f, "exit of loop {v}"),
            StateOrigin::Final => write!(f, "final"),
        }
    }
}

/// A concrete state on which some VC failed.
#[derive(Debug, Clone)]
pub struct Counterexample {
    /// Name of the violated verification condition.
    pub vc_name: String,
    /// Short description of where the state came from.
    pub origin: String,
}

/// Configuration of the bounded checker.
#[derive(Debug, Clone, PartialEq)]
pub struct BoundedChecker {
    /// Grid sizes (values given to size-like integer parameters) to try.
    pub grid_sizes: Vec<i64>,
    /// Number of random input states generated per grid size.
    pub trials_per_size: usize,
    /// RNG seed, so counterexample search is reproducible.
    pub seed: u64,
    /// Worker threads used for state capture and VC checking (1 = serial).
    /// Checking is pure over immutable shared data, so this is
    /// embarrassingly parallel; results are deterministic regardless of the
    /// thread count.
    pub parallelism: usize,
}

impl Default for BoundedChecker {
    fn default() -> Self {
        BoundedChecker {
            grid_sizes: vec![3, 4],
            trials_per_size: 3,
            seed: 0x5717_1e57,
            parallelism: stng_intern::parallel::default_parallelism(),
        }
    }
}

/// SplitMix64 finalizer: a full-avalanche mix of one 64-bit word.
fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl BoundedChecker {
    /// Creates a checker with default settings.
    pub fn new() -> BoundedChecker {
        BoundedChecker::default()
    }

    /// Deterministic per-(size, trial) RNG seed, so units can be captured in
    /// any order (or concurrently) with reproducible inputs.
    ///
    /// Each word is avalanche-mixed before combining: the previous
    /// `size * 31 + trial` linearization aliased distinct units (e.g.
    /// `(3, 31)` with `(4, 0)`), giving them identical random inputs.
    pub fn unit_seed(&self, size: i64, trial: usize) -> u64 {
        splitmix(splitmix(self.seed ^ (size as u64)) ^ (trial as u64))
    }

    /// Checks every VC on every reachable loop-head state of the kernel
    /// under several random small inputs. Returns the first violation found
    /// (in deterministic size → trial → state → VC order, independent of the
    /// thread count), or `None` when all checks pass (which does **not**
    /// imply validity).
    ///
    /// This is the standalone entry point; the CEGIS loop holds a
    /// [`CheckSession`] instead, so the capture cost is paid once for the
    /// whole candidate set.
    ///
    /// # Errors
    ///
    /// Propagates interpreter errors from state capture (e.g. a runaway
    /// loop), which the synthesizer also treats as rejection.
    pub fn find_counterexample(
        &self,
        kernel: &Kernel,
        vcs: &[Vc],
    ) -> Result<Option<Counterexample>> {
        CheckSession::new(self.clone(), kernel.clone()).find_counterexample(vcs)
    }
}

/// The reachable states of one (size, trial) execution.
#[derive(Debug)]
pub struct CapturedUnit {
    /// Grid size of this unit.
    pub size: i64,
    /// Trial index of this unit.
    pub trial: usize,
    /// Snapshots in execution order, tagged with their program point.
    pub states: Vec<(StateOrigin, SlotState<ModInt>)>,
    /// Hash-map views of `states`, materialized once on first use by the
    /// tree-walking fallback (the conversion deep-copies array payloads, so
    /// it must not repeat per candidate).
    oracle: OnceLock<Vec<State<ModInt>>>,
}

impl CapturedUnit {
    fn new(size: i64, trial: usize, states: Vec<(StateOrigin, SlotState<ModInt>)>) -> CapturedUnit {
        CapturedUnit {
            size,
            trial,
            states,
            oracle: OnceLock::new(),
        }
    }

    /// The snapshots as hash-map states (converted once, then shared).
    pub fn oracle_states(&self) -> &[State<ModInt>] {
        self.oracle
            .get_or_init(|| self.states.iter().map(|(_, s)| s.to_state()).collect())
    }
}

/// One tier's captured units, in deterministic scan order. A unit whose
/// capture execution failed keeps its error in place, so scanning preserves
/// the old per-unit semantics: a violation in an earlier unit wins over a
/// capture error in a later one.
struct Captured {
    units: Vec<std::result::Result<CapturedUnit, Error>>,
    capture_ns: u64,
}

/// One escalation rung: all the trials of a single grid size, captured
/// lazily on the first scan that reaches the rung.
struct Tier {
    size: i64,
    captured: OnceLock<Captured>,
}

/// A bounded-checking session: reachable states captured **once** per
/// (size, trial) and shared — via `Arc`-backed immutable snapshots — across
/// every candidate the CEGIS loop screens.
///
/// Capture is lazy per *tier* (grid size): the first tier is captured on
/// the first [`CheckSession::find_counterexample`], and each later tier
/// only when some candidate survives every earlier one. Capture executions
/// are counted ([`CheckSession::capture_count`] increments inside the
/// unit-execution path, not derived from stored state): after a session in
/// which some candidate survived the full screen the count is exactly
/// `grid_sizes × trials_per_size`, and it can never exceed that — a
/// regression that recaptures states drifts the counter and fails the
/// bench gate.
pub struct CheckSession {
    checker: BoundedChecker,
    kernel: Kernel,
    map: Arc<SlotMap>,
    tiers: Vec<Tier>,
    compiled_body: OnceLock<Option<(Vec<SlotStmt>, ProgramSet)>>,
    capture_runs: AtomicU64,
    check_ns: AtomicU64,
    /// Counterexamples found so far, keyed by VC family name; candidate
    /// scans try historically lethal VCs first.
    kill_counts: Mutex<HashMap<String, u64>>,
    screened: AtomicU64,
    survivors: AtomicU64,
    batch_scans: AtomicU64,
    budget: Budget,
}

impl CheckSession {
    /// Creates a session for one kernel. Cheap: nothing is captured until
    /// the first counterexample search.
    pub fn new(checker: BoundedChecker, kernel: Kernel) -> CheckSession {
        CheckSession::with_budget(checker, kernel, Budget::unlimited())
    }

    /// Creates a session governed by a [`Budget`]: capture steps and VC
    /// checks charge bounded-check fuel, and deadlines are polled between
    /// units. An interrupted capture or scan surfaces as a session `Err`
    /// (never as a spurious "all checks passed"); callers tell interruptions
    /// from genuine evaluation failures via [`Budget::exhausted`].
    pub fn with_budget(checker: BoundedChecker, kernel: Kernel, budget: Budget) -> CheckSession {
        let map = Arc::new(SlotMap::for_kernel(&kernel));
        let tiers = checker
            .grid_sizes
            .iter()
            .map(|&size| Tier {
                size,
                captured: OnceLock::new(),
            })
            .collect();
        CheckSession {
            checker,
            kernel,
            map,
            tiers,
            compiled_body: OnceLock::new(),
            capture_runs: AtomicU64::new(0),
            check_ns: AtomicU64::new(0),
            kill_counts: Mutex::new(HashMap::new()),
            screened: AtomicU64::new(0),
            survivors: AtomicU64::new(0),
            batch_scans: AtomicU64::new(0),
            budget,
        }
    }

    fn budget_error(&self) -> Error {
        let reason = self
            .budget
            .exhausted()
            .map(|r| r.as_str())
            .unwrap_or("budget");
        Error::interp(format!("bounded check interrupted: {reason} exhausted"))
    }

    /// The slot resolver shared by captured states and compiled VCs.
    pub fn map(&self) -> &Arc<SlotMap> {
        &self.map
    }

    /// Number of (size, trial) capture executions performed so far (0
    /// before first use; at most `grid_sizes × trials_per_size`, and
    /// exactly that once some candidate survives the full screen — any
    /// recapture drifts it). With lazy tiered capture, a session whose
    /// candidates all die on the first tier captures only that tier.
    pub fn capture_count(&self) -> usize {
        self.capture_runs.load(Ordering::Relaxed) as usize
    }

    /// Wall time spent capturing states, in nanoseconds (summed over the
    /// tiers captured so far).
    pub fn capture_ns(&self) -> u64 {
        self.tiers
            .iter()
            .filter_map(|t| t.captured.get())
            .map(|c| c.capture_ns)
            .sum()
    }

    /// Cumulative wall time spent scanning states against VCs, in
    /// nanoseconds (summed across candidates; on multi-core hosts
    /// concurrent candidate scans accumulate their individual times).
    pub fn check_ns(&self) -> u64 {
        self.check_ns.load(Ordering::Relaxed)
    }

    /// Candidates screened (one per [`find_counterexample`] call).
    ///
    /// [`find_counterexample`]: Self::find_counterexample
    pub fn screened(&self) -> u64 {
        self.screened.load(Ordering::Relaxed)
    }

    /// Candidates that survived the full screen (no counterexample on any
    /// tier).
    pub fn survivors(&self) -> u64 {
        self.survivors.load(Ordering::Relaxed)
    }

    /// Batched (VC program × state chunk) executions performed by the
    /// SoA scan path.
    pub fn batch_scans(&self) -> u64 {
        self.batch_scans.load(Ordering::Relaxed)
    }

    /// The per-unit capture results of every tier, in scan order (capturing
    /// all tiers now if needed). A unit whose capture failed holds its
    /// error.
    pub fn captured_units(&self) -> Vec<&std::result::Result<CapturedUnit, Error>> {
        (0..self.tiers.len())
            .flat_map(|t| self.capture_tier(t).units.iter())
            .collect()
    }

    /// The kernel body compiled once per session; kernels outside the
    /// compiled subset (hand-built IR with conditionals) capture through
    /// the tree-walking tracer instead.
    fn compiled_body(&self) -> Option<&(Vec<SlotStmt>, ProgramSet)> {
        self.compiled_body
            .get_or_init(|| {
                let mut compiler = Compiler::new(&self.map);
                compiler
                    .compile_stmts(&self.kernel.body)
                    .ok()
                    .map(|body| (body, compiler.into_set()))
            })
            .as_ref()
    }

    /// Captures tier `t` (all trials of one grid size) on first touch.
    fn capture_tier(&self, t: usize) -> &Captured {
        let tier = &self.tiers[t];
        tier.captured.get_or_init(|| {
            let _span = stng_obs::span(&stng_obs::names::BOUNDED_CAPTURE);
            // Fault sites for the lazy tier machinery (no-ops while the
            // registry is disarmed). A panic here propagates out of
            // `get_or_init` with the cell left uninitialized — the chaos
            // suite pins that this surfaces as `Crashed`, never a wedge.
            if fault::tier_capture_panic(&self.kernel.name) {
                panic!(
                    "fault-inject: tier capture panic in '{}' (grid size {})",
                    self.kernel.name, tier.size
                );
            }
            if let Some(pause) = fault::tier_capture_stall(&self.kernel.name) {
                std::thread::sleep(pause);
            }
            if t > 0 && fault::torn_tier_capture(&self.kernel.name) {
                return Captured {
                    units: vec![Err(Error::interp(format!(
                        "fault-inject: torn state while escalating '{}' to grid size {}",
                        self.kernel.name, tier.size
                    )))],
                    capture_ns: 0,
                };
            }
            let start = Instant::now();
            let compiled = self.compiled_body();
            let units: Vec<(i64, usize)> = (0..self.checker.trials_per_size)
                .map(|trial| (tier.size, trial))
                .collect();
            let units =
                stng_intern::parallel::map(&units, self.checker.parallelism, |&(size, trial)| {
                    match compiled {
                        Some((body, set)) => self
                            .capture_unit_compiled(body, set, size, trial)
                            .map(|states| CapturedUnit::new(size, trial, states)),
                        None => self
                            .capture_unit_interp(size, trial)
                            .map(|states| CapturedUnit::new(size, trial, states)),
                    }
                });
            Captured {
                units,
                capture_ns: start.elapsed().as_nanos() as u64,
            }
        })
    }

    /// Builds the randomized initial state of one (size, trial) unit.
    fn initial_state(&self, size: i64, rng: &mut StdRng) -> Result<SlotState<ModInt>> {
        let bounds = choose_small_bounds(&self.kernel, size);
        // Bound-dimension expressions are evaluated through a scalars-only
        // hash-map state (they only mention integer parameters).
        let mut bound_state: State<ModInt> = State::new();
        for (name, value) in &bounds {
            bound_state.set_int(name.clone(), *value);
        }
        let mut state: SlotState<ModInt> = SlotState::new(Arc::clone(&self.map));
        for (name, value) in &bounds {
            state.set_int(name, *value);
        }
        for name in self.kernel.real_params() {
            state.set_real(&name, ModInt::new(rng.gen_range(0..MOD_FIELD)));
        }
        for param in &self.kernel.params {
            if let ParamKind::Array { dims } = &param.kind {
                let mut concrete = Vec::new();
                for (lo, hi) in dims {
                    let lo = eval_int_expr(lo, &bound_state)?;
                    let hi = eval_int_expr(hi, &bound_state)?;
                    concrete.push((lo, hi));
                }
                let array =
                    ArrayData::from_fn(concrete, |_| ModInt::new(rng.gen_range(0..MOD_FIELD)));
                state.set_array(&param.name, array);
            }
        }
        Ok(state)
    }

    /// Runs the kernel through the compiled tracer and captures the initial
    /// state, the state at the head of every loop iteration, and the final
    /// state.
    fn capture_unit_compiled(
        &self,
        body: &[SlotStmt],
        set: &ProgramSet,
        size: i64,
        trial: usize,
    ) -> Result<Vec<(StateOrigin, SlotState<ModInt>)>> {
        self.capture_runs.fetch_add(1, Ordering::Relaxed);
        let mut rng = StdRng::seed_from_u64(self.checker.unit_seed(size, trial));
        let mut state = self.initial_state(size, &mut rng)?;
        let mut sink = SnapshotSink {
            snapshots: vec![(StateOrigin::Initial, state.clone())],
        };
        let mut sc = Scratch::for_set(set);
        let mut steps = 0u64;
        exec_stmts_traced(
            body, set, &mut state, &mut sc, &mut steps, 200_000, &mut sink,
        )
        .map_err(|e| e.render(&self.map))?;
        if self.budget.consume_check_fuel(steps).is_err() {
            return Err(self.budget_error());
        }
        sink.snapshots.push((StateOrigin::Final, state));
        Ok(sink.snapshots)
    }

    /// Tree-walking capture fallback for kernels outside the compiled
    /// subset; also the oracle the differential tests compare against.
    fn capture_unit_interp(
        &self,
        size: i64,
        trial: usize,
    ) -> Result<Vec<(StateOrigin, SlotState<ModInt>)>> {
        self.capture_runs.fetch_add(1, Ordering::Relaxed);
        let mut rng = StdRng::seed_from_u64(self.checker.unit_seed(size, trial));
        let mut state = self.initial_state(size, &mut rng)?.to_state();
        let mut tracer = Tracer {
            snapshots: vec![(StateOrigin::Initial, state.clone())],
            steps: 0,
            max_steps: 200_000,
        };
        tracer.run(&self.kernel.body, &mut state)?;
        if self.budget.consume_check_fuel(tracer.steps).is_err() {
            return Err(self.budget_error());
        }
        tracer.snapshots.push((StateOrigin::Final, state));
        Ok(tracer
            .snapshots
            .into_iter()
            .map(|(origin, s)| (origin, SlotState::from_state(&s, &self.map)))
            .collect())
    }

    /// The candidate scan order over VC indices: historically lethal VC
    /// families first (kill counts descending), original index as the
    /// deterministic tie-break. A fresh session has no kills, so the order
    /// starts as the input order.
    fn kill_order(&self, vcs: &[Vc]) -> Vec<usize> {
        let counts = self.kill_counts.lock().unwrap_or_else(|p| p.into_inner());
        let mut order: Vec<usize> = (0..vcs.len()).collect();
        order.sort_by_key(|&k| {
            (
                std::cmp::Reverse(counts.get(&vcs[k].name).copied().unwrap_or(0)),
                k,
            )
        });
        order
    }

    fn record_kill(&self, vc_name: &str) {
        let mut counts = self.kill_counts.lock().unwrap_or_else(|p| p.into_inner());
        *counts.entry(vc_name.to_string()).or_insert(0) += 1;
    }

    /// Checks the candidate's VCs against the captured states, escalating
    /// tier by tier: the first tier's units are scanned first, and a later
    /// tier is captured/scanned only when every earlier tier passes.
    /// Returns the first violation found (deterministic: tiers in
    /// `grid_sizes` order, units in trial order, VCs in the session's
    /// kill-rate order, states in execution order — independent of the
    /// thread count), or `None` when all checks pass.
    ///
    /// Which counterexample is reported can differ from the exhaustive
    /// state-major scan (the kill-rate order puts lethal VC families
    /// first), but *whether* one exists cannot: a candidate survives iff no
    /// VC fails on any state of any tier, which no ordering changes. The
    /// adaptive-vs-exhaustive differential suite pins this corpus-wide.
    ///
    /// # Errors
    ///
    /// Propagates interpreter errors from state capture — but, as with the
    /// pre-session per-unit pipeline, only when no earlier unit already
    /// produced a violation: the first Some result in unit order wins,
    /// whether it is a counterexample or a capture error. (VC *evaluation*
    /// errors are rejections, not errors: they become counterexamples, as in
    /// the tree-walking checker.)
    pub fn find_counterexample(&self, vcs: &[Vc]) -> Result<Option<Counterexample>> {
        let _span = stng_obs::span(&stng_obs::names::BOUNDED_SCAN);
        let start = Instant::now();
        self.screened.fetch_add(1, Ordering::Relaxed);
        let compiled = CompiledVcSet::compile(vcs, &self.map);
        let order = self.kill_order(vcs);
        let mut result: Result<Option<Counterexample>> = Ok(None);
        for t in 0..self.tiers.len() {
            let mut rung = stng_obs::span(&stng_obs::names::BOUNDED_TIER);
            rung.arg(self.tiers[t].size as u64);
            let captured = self.capture_tier(t);
            let found = stng_intern::parallel::find_first(
                &captured.units,
                self.checker.parallelism,
                |_, unit| -> Option<Result<Counterexample>> {
                    let unit = match unit {
                        Ok(unit) => unit,
                        Err(err) => return Some(Err(err.clone())),
                    };
                    match &compiled {
                        Ok(compiled) => self.scan_unit_batched(unit, compiled, vcs, &order),
                        // A VC outside the compiled subset: tree-walk the
                        // whole set so evaluation semantics stay those of
                        // one engine.
                        Err(_) => self.scan_unit_interp(unit, vcs),
                    }
                },
            );
            match found {
                None => {}
                Some((_, Ok(cex))) => {
                    result = Ok(Some(cex));
                    break;
                }
                Some((_, Err(err))) => {
                    result = Err(err);
                    break;
                }
            }
        }
        self.check_ns
            .fetch_add(start.elapsed().as_nanos() as u64, Ordering::Relaxed);
        match &result {
            Ok(None) => {
                self.survivors.fetch_add(1, Ordering::Relaxed);
            }
            Ok(Some(cex)) => self.record_kill(&cex.vc_name),
            Err(_) => {}
        }
        result
    }

    /// Exhaustive reference scan: captures every tier up front and checks
    /// every VC on every state in the legacy size → trial → state → VC
    /// order with the scalar engine — no escalation, no kill-rate
    /// ordering, no batching. The adaptive differential suite compares
    /// [`find_counterexample`](Self::find_counterexample) against this.
    pub fn find_counterexample_exhaustive(&self, vcs: &[Vc]) -> Result<Option<Counterexample>> {
        let compiled = CompiledVcSet::compile(vcs, &self.map);
        for t in 0..self.tiers.len() {
            for unit in &self.capture_tier(t).units {
                let unit = match unit {
                    Ok(unit) => unit,
                    Err(err) => return Err(err.clone()),
                };
                let found = match &compiled {
                    Ok(compiled) => self.scan_unit_scalar(unit, compiled, vcs),
                    Err(_) => self.scan_unit_interp(unit, vcs),
                };
                match found {
                    None => {}
                    Some(Ok(cex)) => return Ok(Some(cex)),
                    Some(Err(err)) => return Err(err),
                }
            }
        }
        Ok(None)
    }

    /// Batched unit scan: VCs in kill-rate order, each VC's program run
    /// across all in-scope states of the unit in SoA chunks. Within a
    /// chunk lanes are reported in state order, so the scan stays
    /// deterministic; the first failing lane of the first failing VC wins.
    fn scan_unit_batched(
        &self,
        unit: &CapturedUnit,
        compiled: &CompiledVcSet,
        vcs: &[Vc],
        order: &[usize],
    ) -> Option<Result<Counterexample>> {
        let mut sc = compiled.scratch::<ModInt>();
        let mut bsc = compiled.batch_scratch::<ModInt>();
        let mut out = Vec::new();
        let mut lanes: Vec<&SlotState<ModInt>> = Vec::new();
        let mut keys: Vec<usize> = Vec::new();
        let mut origins: Vec<&StateOrigin> = Vec::new();
        // Hypothesis-verdict memo, shared across the candidate's VCs for
        // this unit: VC families repeat invariant hypotheses on the same
        // states, so each distinct (hypothesis, state) pair evaluates once.
        let mut memo = HypMemo::new();
        for &k in order {
            let vc = &vcs[k];
            lanes.clear();
            keys.clear();
            origins.clear();
            for (j, (origin, state)) in unit.states.iter().enumerate() {
                if origin.in_scope(&vc.scope) {
                    lanes.push(state);
                    keys.push(j);
                    origins.push(origin);
                }
            }
            let mut offset = 0;
            while offset < lanes.len() {
                let end = (offset + SLOT_BATCH_MAX_LANES).min(lanes.len());
                let chunk = &lanes[offset..end];
                // One fuel unit per (state, VC) check, charged per chunk;
                // the batched check itself polls at quantifier back-edges.
                if self.budget.consume_check_fuel(chunk.len() as u64).is_err() {
                    return Some(Err(self.budget_error()));
                }
                self.batch_scans.fetch_add(1, Ordering::Relaxed);
                compiled.check_batch(
                    k,
                    chunk,
                    &keys[offset..end],
                    &mut sc,
                    &mut bsc,
                    &mut memo,
                    &self.budget,
                    &mut out,
                );
                for (lane, outcome) in out.iter().enumerate() {
                    match outcome {
                        Ok(VcOutcome::Violated) => {
                            let origin = origins[offset + lane];
                            return Some(Ok(Counterexample {
                                vc_name: vc.name.clone(),
                                origin: format!(
                                    "{origin} (size {}, trial {})",
                                    unit.size, unit.trial
                                ),
                            }));
                        }
                        Ok(_) => {}
                        Err(err) => {
                            // A budget interruption must not masquerade as
                            // a rejection: it says nothing about the
                            // candidate.
                            if self.budget.exhausted().is_some() {
                                return Some(Err(self.budget_error()));
                            }
                            // Evaluation errors (out-of-bounds candidate
                            // indices) also reject the candidate.
                            return Some(Ok(Counterexample {
                                vc_name: vc.name.clone(),
                                origin: format!("evaluation error: {}", err.render(&self.map)),
                            }));
                        }
                    }
                }
                offset = end;
            }
        }
        None
    }

    /// Legacy state-major scalar scan of one unit: the exhaustive
    /// reference the differential suite compares the batched path against.
    fn scan_unit_scalar(
        &self,
        unit: &CapturedUnit,
        compiled: &CompiledVcSet,
        vcs: &[Vc],
    ) -> Option<Result<Counterexample>> {
        let mut sc = compiled.scratch::<ModInt>();
        for (origin, state) in &unit.states {
            for (k, vc) in vcs.iter().enumerate() {
                if !origin.in_scope(&vc.scope) {
                    continue;
                }
                // One fuel unit per (state, VC) check; the compiled check
                // itself polls at quantifier back-edges.
                if self.budget.consume_check_fuel(1).is_err() {
                    return Some(Err(self.budget_error()));
                }
                match compiled.check_budgeted(k, state, &mut sc, &self.budget) {
                    Ok(VcOutcome::Violated) => {
                        return Some(Ok(Counterexample {
                            vc_name: vc.name.clone(),
                            origin: format!("{origin} (size {}, trial {})", unit.size, unit.trial),
                        }));
                    }
                    Ok(_) => {}
                    Err(err) => {
                        if self.budget.exhausted().is_some() {
                            return Some(Err(self.budget_error()));
                        }
                        return Some(Ok(Counterexample {
                            vc_name: vc.name.clone(),
                            origin: format!("evaluation error: {}", err.render(&self.map)),
                        }));
                    }
                }
            }
        }
        None
    }

    fn scan_unit_interp(&self, unit: &CapturedUnit, vcs: &[Vc]) -> Option<Result<Counterexample>> {
        for ((origin, _), state) in unit.states.iter().zip(unit.oracle_states()) {
            for vc in vcs {
                if !origin.in_scope(&vc.scope) {
                    continue;
                }
                if self.budget.consume_check_fuel(1).is_err() {
                    return Some(Err(self.budget_error()));
                }
                match check_vc_on_state(vc, state) {
                    Ok(VcOutcome::Violated) => {
                        return Some(Ok(Counterexample {
                            vc_name: vc.name.clone(),
                            origin: format!("{origin} (size {}, trial {})", unit.size, unit.trial),
                        }));
                    }
                    Ok(_) => {}
                    Err(err) => {
                        if self.budget.exhausted().is_some() {
                            return Some(Err(self.budget_error()));
                        }
                        return Some(Ok(Counterexample {
                            vc_name: vc.name.clone(),
                            origin: format!("evaluation error: {err}"),
                        }));
                    }
                }
            }
        }
        None
    }
}

/// Snapshot sink for the compiled capture executor: collects the full
/// machine state at the head of every loop iteration and at every loop
/// exit, via the [`LoopTrace`] hook of [`exec_stmts_traced`] (one shared
/// implementation of the loop protocol). Snapshots are cheap: flat scalar
/// memcpys plus array `Arc` bumps (an array's payload is copied only when a
/// later store mutates it).
struct SnapshotSink {
    snapshots: Vec<(StateOrigin, SlotState<ModInt>)>,
}

impl LoopTrace<ModInt> for SnapshotSink {
    fn at_loop_head(&mut self, var_name: &str, state: &SlotState<ModInt>) {
        self.snapshots
            .push((StateOrigin::LoopHead(var_name.to_string()), state.clone()));
    }

    fn at_loop_exit(&mut self, var_name: &str, state: &SlotState<ModInt>) {
        self.snapshots
            .push((StateOrigin::LoopExit(var_name.to_string()), state.clone()));
    }
}

/// The tree-walking tracer: capture fallback for kernels outside the
/// compiled subset, and the oracle the differential tests compare the
/// compiled tracer against.
struct Tracer {
    snapshots: Vec<(StateOrigin, State<ModInt>)>,
    steps: u64,
    max_steps: u64,
}

impl Tracer {
    fn run(&mut self, stmts: &[IrStmt], state: &mut State<ModInt>) -> Result<()> {
        for stmt in stmts {
            self.steps += 1;
            if self.steps > self.max_steps {
                return Err(Error::interp("bounded-checking step budget exhausted"));
            }
            match stmt {
                IrStmt::AssignScalar { name, value } => {
                    if state.ints.contains_key(name) {
                        let v = eval_int_expr(value, state)?;
                        state.ints.insert(name.clone(), v);
                    } else {
                        let v = eval_data_expr(value, state)?;
                        state.reals.insert(name.clone(), v);
                    }
                }
                IrStmt::Store {
                    array,
                    indices,
                    value,
                } => {
                    let idx: Result<Vec<i64>> =
                        indices.iter().map(|ix| eval_int_expr(ix, state)).collect();
                    let idx = idx?;
                    let v = eval_data_expr(value, state)?;
                    let arr = state
                        .arrays
                        .get_mut(array)
                        .ok_or_else(|| Error::interp(format!("unbound array '{array}'")))?;
                    if !arr.set(&idx, v) {
                        return Err(Error::interp(format!(
                            "store index {idx:?} out of bounds for '{array}'"
                        )));
                    }
                }
                IrStmt::Loop { domain, body } => {
                    let lo = eval_int_expr(&domain.lo, state)?;
                    let hi = eval_int_expr(&domain.hi, state)?;
                    let step = domain.step;
                    if step == 0 {
                        return Err(Error::interp("loop with zero step"));
                    }
                    let var = &domain.var;
                    let mut cur = lo;
                    loop {
                        let in_range = if step > 0 { cur <= hi } else { cur >= hi };
                        if !in_range {
                            break;
                        }
                        state.ints.insert(var.clone(), cur);
                        self.snapshots
                            .push((StateOrigin::LoopHead(var.clone()), state.clone()));
                        self.run(body, state)?;
                        cur += step;
                    }
                    state.ints.insert(var.clone(), cur);
                    self.snapshots
                        .push((StateOrigin::LoopExit(var.clone()), state.clone()));
                }
                IrStmt::If {
                    cond,
                    then_body,
                    else_body,
                } => {
                    if eval_bool_expr(cond, state)? {
                        self.run(then_body, state)?;
                    } else {
                        self.run(else_body, state)?;
                    }
                }
            }
        }
        Ok(())
    }
}

/// Maximum snapshot count sanity limit used by callers when sizing grids.
pub const RECOMMENDED_MAX_GRID: i64 = 6;

#[cfg(test)]
mod tests {
    use super::*;
    use stng_ir::lower::kernel_from_source;
    use stng_pred::fixtures;
    use stng_pred::vcgen::{analyze_loop_nest, generate_vcs};

    fn vcs_with(
        post: stng_pred::lang::Postcondition,
        invariants: Vec<stng_pred::lang::Invariant>,
    ) -> (Kernel, Vec<Vc>) {
        let kernel = kernel_from_source(fixtures::RUNNING_EXAMPLE, 0).unwrap();
        let nest = analyze_loop_nest(&kernel).unwrap();
        let vcs = generate_vcs(&nest, &kernel.assumptions, &invariants, &post);
        (kernel, vcs)
    }

    #[test]
    fn correct_candidates_have_no_bounded_counterexample() {
        let (kernel, vcs) = vcs_with(
            fixtures::running_example_post(),
            fixtures::running_example_invariants(),
        );
        let checker = BoundedChecker::new();
        assert!(checker
            .find_counterexample(&kernel, &vcs)
            .unwrap()
            .is_none());
    }

    #[test]
    fn wrong_postcondition_is_rejected_quickly() {
        let mut post = fixtures::running_example_post();
        post.clauses[0].eq.rhs = stng_ir::ir::IrExpr::Load {
            array: "b".into(),
            indices: vec![
                stng_ir::ir::IrExpr::var("vi"),
                stng_ir::ir::IrExpr::var("vj"),
            ],
        };
        let (kernel, vcs) = vcs_with(post, fixtures::running_example_invariants());
        let checker = BoundedChecker::new();
        let cex = checker.find_counterexample(&kernel, &vcs).unwrap();
        assert!(cex.is_some());
    }

    #[test]
    fn wrong_invariant_is_rejected() {
        let mut invariants = fixtures::running_example_invariants();
        invariants[1].scalar_eqs[0].1 = stng_ir::ir::IrExpr::Load {
            array: "b".into(),
            indices: vec![stng_ir::ir::IrExpr::var("i"), stng_ir::ir::IrExpr::var("j")],
        };
        let (kernel, vcs) = vcs_with(fixtures::running_example_post(), invariants);
        let checker = BoundedChecker::new();
        let cex = checker.find_counterexample(&kernel, &vcs).unwrap();
        assert!(
            cex.is_some(),
            "expected a counterexample for the wrong invariant"
        );
    }

    #[test]
    fn counterexamples_are_reproducible_across_runs() {
        let mut post = fixtures::running_example_post();
        post.clauses[0].eq.rhs = stng_ir::ir::IrExpr::Real(0.0);
        let (kernel, vcs) = vcs_with(post, fixtures::running_example_invariants());
        let checker = BoundedChecker::new();
        let a = checker.find_counterexample(&kernel, &vcs).unwrap().unwrap();
        let b = checker.find_counterexample(&kernel, &vcs).unwrap().unwrap();
        assert_eq!(a.vc_name, b.vc_name);
        assert_eq!(a.origin, b.origin);
    }

    #[test]
    fn session_captures_once_across_candidates() {
        let (kernel, vcs) = vcs_with(
            fixtures::running_example_post(),
            fixtures::running_example_invariants(),
        );
        let checker = BoundedChecker::new();
        let session = CheckSession::new(checker.clone(), kernel.clone());
        assert_eq!(session.capture_count(), 0, "capture is lazy");
        for _ in 0..5 {
            assert!(session.find_counterexample(&vcs).unwrap().is_none());
        }
        assert_eq!(
            session.capture_count(),
            checker.grid_sizes.len() * checker.trials_per_size,
            "states are captured once per (size, trial), not per candidate"
        );
        assert!(session.capture_ns() > 0);
        assert!(session.check_ns() > 0);
        assert_eq!(session.screened(), 5);
        assert_eq!(session.survivors(), 5, "every candidate survived");
        assert!(session.batch_scans() > 0);
    }

    #[test]
    fn killed_candidates_capture_only_the_first_tier() {
        let mut post = fixtures::running_example_post();
        post.clauses[0].eq.rhs = stng_ir::ir::IrExpr::Real(0.0);
        let (kernel, vcs) = vcs_with(post, fixtures::running_example_invariants());
        let checker = BoundedChecker::new();
        let session = CheckSession::new(checker.clone(), kernel);
        for _ in 0..3 {
            assert!(session.find_counterexample(&vcs).unwrap().is_some());
        }
        assert_eq!(
            session.capture_count(),
            checker.trials_per_size,
            "a candidate killed on the smallest tier never captures larger tiers"
        );
        assert_eq!(session.screened(), 3);
        assert_eq!(session.survivors(), 0);
    }

    #[test]
    fn kill_ordering_preserves_counterexample_presence() {
        // After the first kill the session reorders VCs by kill rate; the
        // reported counterexample may change, but presence may not — and
        // the exhaustive reference scan must agree throughout.
        let mut post = fixtures::running_example_post();
        post.clauses[0].eq.rhs = stng_ir::ir::IrExpr::Real(0.0);
        let (kernel, vcs) = vcs_with(post, fixtures::running_example_invariants());
        let session = CheckSession::new(BoundedChecker::new(), kernel);
        let first = session.find_counterexample(&vcs).unwrap().unwrap();
        let second = session.find_counterexample(&vcs).unwrap().unwrap();
        // Same candidate re-screened in one session: the kill-rate order is
        // derived from counters, so the rerun is deterministic.
        assert_eq!(first.vc_name, second.vc_name);
        assert_eq!(first.origin, second.origin);
        assert!(session
            .find_counterexample_exhaustive(&vcs)
            .unwrap()
            .is_some());
    }

    #[test]
    fn session_and_standalone_agree() {
        let mut post = fixtures::running_example_post();
        post.clauses[0].eq.rhs = stng_ir::ir::IrExpr::Real(0.0);
        let (kernel, vcs) = vcs_with(post, fixtures::running_example_invariants());
        let checker = BoundedChecker::new();
        let standalone = checker.find_counterexample(&kernel, &vcs).unwrap().unwrap();
        let session = CheckSession::new(checker, kernel);
        let via_session = session.find_counterexample(&vcs).unwrap().unwrap();
        assert_eq!(standalone.vc_name, via_session.vc_name);
        assert_eq!(standalone.origin, via_session.origin);
    }

    #[test]
    fn compiled_and_interpreted_capture_agree() {
        let kernel = kernel_from_source(fixtures::RUNNING_EXAMPLE, 0).unwrap();
        let checker = BoundedChecker::new();
        let session = CheckSession::new(checker, kernel);
        for &(size, trial) in &[(3i64, 0usize), (4, 2)] {
            let mut compiler = Compiler::new(session.map());
            let body = compiler.compile_stmts(&session.kernel.body).unwrap();
            let set = compiler.into_set();
            let fast = session
                .capture_unit_compiled(&body, &set, size, trial)
                .unwrap();
            let slow = session.capture_unit_interp(size, trial).unwrap();
            assert_eq!(fast.len(), slow.len());
            for ((ao, a), (bo, b)) in fast.iter().zip(&slow) {
                assert_eq!(ao, bo);
                assert_eq!(a.to_state(), b.to_state(), "state mismatch at {ao}");
            }
        }
    }

    #[test]
    fn early_violation_wins_over_later_capture_error() {
        // A kernel whose capture fails only at size 4: `a` is declared
        // `0..min(n,3)` but stored through `1..n`, so the size-4 units hit
        // an out-of-bounds store while the size-3 units capture fine. As in
        // the pre-session per-unit pipeline, a violation found in an
        // earlier unit must win over the later units' capture errors.
        use stng_ir::ir::{IrExpr, IterDomain, Param, ParamKind};
        let kernel = Kernel {
            name: "oob_at_4".into(),
            params: vec![
                Param {
                    name: "n".into(),
                    kind: ParamKind::IntScalar,
                },
                Param {
                    name: "a".into(),
                    kind: ParamKind::Array {
                        dims: vec![(
                            IrExpr::Int(0),
                            IrExpr::Call {
                                func: "min".into(),
                                args: vec![IrExpr::var("n"), IrExpr::Int(3)],
                            },
                        )],
                    },
                },
            ],
            locals: vec![Param {
                name: "i".into(),
                kind: ParamKind::IntScalar,
            }],
            body: vec![IrStmt::Loop {
                domain: IterDomain::unit("i", IrExpr::Int(1), IrExpr::var("n")),
                body: vec![IrStmt::Store {
                    array: "a".into(),
                    indices: vec![IrExpr::var("i")],
                    value: IrExpr::Real(0.0),
                }],
            }],
            assumptions: vec![],
        };
        let always_false = Vc {
            name: "always-false".into(),
            hypotheses: vec![],
            body: vec![],
            conclusion: stng_pred::lang::Pred::Bool(stng_ir::ir::IrExpr::cmp(
                stng_ir::ir::CmpOp::Eq,
                IrExpr::Int(0),
                IrExpr::Int(1),
            )),
            int_scalars: vec![],
            scope: VcScope::Initial,
        };
        let checker = BoundedChecker::new(); // grid sizes [3, 4]
        let cex = checker
            .find_counterexample(&kernel, std::slice::from_ref(&always_false))
            .expect("size-3 violation wins over the size-4 capture error")
            .expect("the always-false VC is violated");
        assert_eq!(cex.vc_name, "always-false");
        assert!(cex.origin.contains("size 3"), "origin: {}", cex.origin);
        // With only the failing size, the capture error surfaces.
        let failing_only = BoundedChecker {
            grid_sizes: vec![4],
            ..BoundedChecker::new()
        };
        let err = failing_only
            .find_counterexample(&kernel, std::slice::from_ref(&always_false))
            .unwrap_err();
        assert!(
            err.to_string().contains("out of bounds"),
            "unexpected error: {err}"
        );
    }

    #[test]
    fn unit_seeds_do_not_alias() {
        let checker = BoundedChecker::new();
        // The pre-fix linearization aliased (3, 31) with (4, 0).
        assert_ne!(checker.unit_seed(3, 31), checker.unit_seed(4, 0));
        // Exhaustive pairwise distinctness over a realistic parameter box.
        let mut seen = std::collections::HashMap::new();
        for size in 0..=16i64 {
            for trial in 0..=64usize {
                if let Some(prev) = seen.insert(checker.unit_seed(size, trial), (size, trial)) {
                    panic!("seed collision: {prev:?} vs {:?}", (size, trial));
                }
            }
        }
    }

    #[test]
    fn unit_seeds_are_pinned() {
        // Bounded-checking inputs are part of observable behaviour
        // (counterexample reproducibility); pin the derivation so it cannot
        // drift silently.
        let checker = BoundedChecker::new();
        assert_eq!(checker.seed, 0x5717_1e57);
        assert_eq!(checker.unit_seed(3, 0), 0x7aad_d091_7a12_84f7);
        assert_eq!(checker.unit_seed(4, 2), 0x77c2_9d85_a5b3_492a);
    }

    /// The fault registry is process-global, so the tier-fault tests must
    /// not arm/disarm concurrently with each other.
    static FAULT_TEST_LOCK: Mutex<()> = Mutex::new(());

    /// A panic injected inside the lazy tier capture must leave the
    /// `OnceLock` uninitialized — not poisoned — so the same session (and a
    /// fresh one) recovers once the fault is disarmed. The kernel name
    /// carries a unique substring because the fault registry is
    /// process-global and other tests may run concurrently.
    #[test]
    fn tier_capture_panic_does_not_wedge_the_session() {
        use stng_intern::guard::fault::{self, FaultPlan};
        let _serial = FAULT_TEST_LOCK.lock().unwrap_or_else(|p| p.into_inner());
        let (mut kernel, vcs) = vcs_with(
            fixtures::running_example_post(),
            fixtures::running_example_invariants(),
        );
        kernel.name = "tier_panic_wedge_probe".into();
        let session = CheckSession::new(BoundedChecker::new(), kernel);

        fault::arm(FaultPlan {
            tier_panic_kernels: vec!["tier_panic_wedge_probe".into()],
            ..FaultPlan::default()
        });
        let hit = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            session.find_counterexample(&vcs)
        }));
        fault::disarm();
        assert!(hit.is_err(), "armed capture should panic");

        // Same session, fault disarmed: the cell was never initialized, so
        // capture simply runs again and the screen completes normally.
        assert!(session.find_counterexample(&vcs).unwrap().is_none());
    }

    /// Torn state during tier escalation surfaces as a classified capture
    /// error (never a panic or a hang), and only once the session actually
    /// escalates past the first tier.
    #[test]
    fn torn_tier_escalation_is_a_classified_error() {
        use stng_intern::guard::fault::{self, FaultPlan};
        let _serial = FAULT_TEST_LOCK.lock().unwrap_or_else(|p| p.into_inner());
        let (mut kernel, vcs) = vcs_with(
            fixtures::running_example_post(),
            fixtures::running_example_invariants(),
        );
        kernel.name = "torn_tier_probe".into();
        let session = CheckSession::new(BoundedChecker::new(), kernel);

        fault::arm(FaultPlan {
            torn_tier_kernels: vec!["torn_tier_probe".into()],
            ..FaultPlan::default()
        });
        // The correct candidate passes tier 0, escalates, and hits the torn
        // second tier.
        let err = session.find_counterexample(&vcs).unwrap_err();
        let injected = fault::injected();
        fault::disarm();
        assert!(
            err.to_string().contains("torn state"),
            "unexpected error: {err}"
        );
        assert!(injected.torn_tiers >= 1);

        // A fresh session after disarm is unaffected.
        let (mut kernel2, _) = vcs_with(
            fixtures::running_example_post(),
            fixtures::running_example_invariants(),
        );
        kernel2.name = "torn_tier_probe_recovered".into();
        let fresh = CheckSession::new(BoundedChecker::new(), kernel2);
        assert!(fresh.find_counterexample(&vcs).unwrap().is_none());
    }

    /// An injected stall inside tier capture slows the screen but does not
    /// change its verdict, and the injection counter records the hit.
    #[test]
    fn tier_capture_stall_only_delays() {
        use stng_intern::guard::fault::{self, FaultPlan};
        let _serial = FAULT_TEST_LOCK.lock().unwrap_or_else(|p| p.into_inner());
        let (mut kernel, vcs) = vcs_with(
            fixtures::running_example_post(),
            fixtures::running_example_invariants(),
        );
        kernel.name = "tier_stall_probe".into();
        let session = CheckSession::new(BoundedChecker::new(), kernel);

        fault::arm(FaultPlan {
            tier_stall_kernels: vec!["tier_stall_probe".into()],
            stall_ms: 5,
            ..FaultPlan::default()
        });
        let verdict = session.find_counterexample(&vcs);
        let injected = fault::injected();
        fault::disarm();
        assert!(verdict.unwrap().is_none());
        assert!(injected.tier_stalls >= 1);
    }
}
