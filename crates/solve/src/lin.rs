//! Linear integer arithmetic over affine expressions: constraint contexts,
//! feasibility by Fourier–Motzkin elimination, and entailment checks.
//!
//! Constraints are stored in the normalized form `affine ≤ 0`. Entailment of
//! `e ≤ 0` from a context `C` is checked refutationally: `C ∧ (e ≥ 1)` must be
//! infeasible. Feasibility is decided over the rationals, which is sound for
//! proving integer entailments (every integer model is a rational model);
//! strict integer inequalities are converted to non-strict ones with a `±1`
//! adjustment before encoding, and every constraint is *integer-tightened*
//! (coefficients divided by their gcd with the constant rounded up), which
//! recovers most of the precision lost to rational relaxation. The
//! tightening step is what makes stride reasoning work: after the prover
//! substitutes `i = lo + step·k`, facts like `step·t ≤ step·k − 1` tighten
//! to `t ≤ k − 1`, i.e. two aligned counters that differ must differ by a
//! whole stride.
//!
//! Feasibility queries run through a three-stage compiled pipeline:
//!
//! 1. every context maintains its canonical constraint set (tightened,
//!    sorted, deduplicated) *incrementally* — extending a context for a
//!    case-split branch inserts one canonical row instead of re-normalizing
//!    the whole system per query;
//! 2. the canonical set is looked up in the global verdict memo, and on a
//!    miss checked against the *learned infeasibility cores* (minimal
//!    constraint subsets previously proven UNSAT) — any query containing a
//!    core is UNSAT without elimination;
//! 3. remaining queries run the slot-addressed dense elimination of
//!    [`crate::lin_compile`], which also extracts new cores from its
//!    contradiction provenance.
//!
//! Contexts created with [`LinCtx::new_legacy`] bypass all three stages and
//! run the original tree-walking elimination directly — the independent
//! oracle the corpus-wide differential test compares against.

use std::collections::BTreeSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{OnceLock, RwLock};
use stng_intern::{epoch, ArenaStats, ConsSet, Memo, Symbol};
use stng_ir::ir::{Affine, CmpOp, IrExpr};

/// Maximum number of constraints Fourier–Motzkin is allowed to generate
/// before giving up (returning "possibly feasible", which is always safe).
pub(crate) const FM_CONSTRAINT_CAP: usize = 4000;

/// Maximum members a learned core may have; provenance subsets that stay
/// bigger after minimization are not worth the per-query subsumption scans.
const CORE_MAX_LEN: usize = 8;

/// Maximum number of learned cores kept live at once.
const CORE_STORE_CAP: usize = 256;

/// Global hash-cons table of canonical (tightened) constraint rows. Every
/// row a compiled context carries lives here exactly once, so a context's
/// canonical set is a vector of pointers: hashing a feasibility-query key
/// hashes addresses instead of walking `BTreeMap`s, equality is pointer
/// comparison, and extending a context for one query is a memcpy.
static ROWS: ConsSet<Affine> = ConsSet::new();

/// A hash-consed canonical constraint row. Equality and hashing are pointer
/// operations (sound because [`ROWS`] stores each row value once); ordering
/// is by row *value*, which keeps the canonical set sorted by content — the
/// property the elimination-order fidelity and the sorted-subset core scans
/// depend on. Value-equal rows are pointer-equal by construction, so the
/// `Eq`/`Ord` pair stays consistent.
#[derive(Clone, Copy, Debug)]
pub(crate) struct RowRef(pub(crate) &'static Affine);

impl PartialEq for RowRef {
    fn eq(&self, other: &RowRef) -> bool {
        std::ptr::eq(self.0, other.0)
    }
}
impl Eq for RowRef {}
impl std::hash::Hash for RowRef {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        (self.0 as *const Affine as usize).hash(state);
    }
}
impl PartialOrd for RowRef {
    fn partial_cmp(&self, other: &RowRef) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for RowRef {
    fn cmp(&self, other: &RowRef) -> std::cmp::Ordering {
        self.0.cmp(other.0)
    }
}
impl std::borrow::Borrow<Affine> for RowRef {
    fn borrow(&self) -> &Affine {
        self.0
    }
}

/// Global memo of Fourier–Motzkin feasibility verdicts, keyed on the sorted,
/// deduplicated constraint set (as interned rows). The prover's case-split
/// search asks the same entailment questions under the same (or
/// prefix-shared) contexts thousands of times; a hit here replaces a full
/// elimination with a pointer-hash table lookup.
static FM_MEMO: Memo<Vec<RowRef>, bool> = Memo::new();

/// A learned core (sorted constraint subset) with the epoch of its last use.
type TaggedCore = (Vec<Affine>, AtomicU64);

/// Learned infeasibility cores: minimal constraint subsets (sorted, so
/// subset tests are linear merges) proven UNSAT by elimination, each tagged
/// with the epoch of its last use so sweeps keep hot cores.
static CORES: OnceLock<RwLock<Vec<TaggedCore>>> = OnceLock::new();

/// Number of feasibility queries short-circuited by a learned core.
static CORE_HITS: AtomicU64 = AtomicU64::new(0);

/// Total core short-circuits since process start (monotonic; callers read
/// deltas around a synthesis run).
pub fn core_hit_count() -> u64 {
    CORE_HITS.load(Ordering::Relaxed)
}

/// Occupancy snapshots of the Fourier–Motzkin verdict memo and the learned
/// core store.
pub fn arena_stats() -> Vec<ArenaStats> {
    let cores = CORES
        .get()
        .map(|l| l.read().expect("core store poisoned").len())
        .unwrap_or(0);
    vec![
        ROWS.stats("solve.lin_rows"),
        FM_MEMO.stats("solve.fm_memo"),
        ArenaStats::new("solve.lin_cores", cores, std::mem::size_of::<Vec<Affine>>()),
    ]
}

/// Sweeps interned rows, Fourier–Motzkin verdicts, and learned cores.
/// Verdict-memo keys hold raw row addresses, so evicting *any* row must
/// drop *every* memo entry — a surviving entry could otherwise alias a
/// recycled allocation; the memo is cleared wholesale (it rebuilds in one
/// pass). Rows themselves are only referenced by live [`LinCtx`]s, none of
/// which exist across a sweep (sweeps run between pipeline invocations
/// only), and cores are owned constraint subsets, so both evict safely.
pub fn retain_epoch(cutoff: u64) -> usize {
    let mut evicted = ROWS.retain_epoch(cutoff);
    evicted += FM_MEMO.retain_epoch(u64::MAX);
    if let Some(lock) = CORES.get() {
        let mut cores = lock.write().expect("core store poisoned");
        let before = cores.len();
        cores.retain(|(_, tag)| tag.load(Ordering::Relaxed) >= cutoff);
        cores.shrink_to_fit();
        evicted += before - cores.len();
    }
    evicted
}

/// `needle ⊆ haystack`, both sorted ascending by row value.
fn sorted_subset<A, B>(needle: &[A], haystack: &[B]) -> bool
where
    A: std::borrow::Borrow<Affine>,
    B: std::borrow::Borrow<Affine>,
{
    let mut it = haystack.iter().map(|h| h.borrow());
    'members: for m in needle.iter().map(|m| m.borrow()) {
        for h in it.by_ref() {
            match h.cmp(m) {
                std::cmp::Ordering::Less => continue,
                std::cmp::Ordering::Equal => continue 'members,
                std::cmp::Ordering::Greater => return false,
            }
        }
        return false;
    }
    true
}

/// Checks `key` (sorted) against the learned cores; a containing query is
/// UNSAT by monotonicity. Hits re-tag the core with the current epoch.
fn core_subsumed(key: &[RowRef]) -> bool {
    let Some(lock) = CORES.get() else {
        return false;
    };
    let cores = lock.read().expect("core store poisoned");
    let now = epoch::current();
    for (core, tag) in cores.iter() {
        if core.len() <= key.len() && sorted_subset(core, key) {
            tag.store(now, Ordering::Relaxed);
            CORE_HITS.fetch_add(1, Ordering::Relaxed);
            return true;
        }
    }
    false
}

/// Records a freshly learned core (already minimized and verified UNSAT by
/// the dense engine). Cores subsumed by an existing one are dropped; cores
/// that subsume existing ones replace them.
fn learn_core(mut core: Vec<Affine>) {
    if core.is_empty() || core.len() > CORE_MAX_LEN {
        return;
    }
    core.sort();
    let lock = CORES.get_or_init(Default::default);
    let mut cores = lock.write().expect("core store poisoned");
    if cores
        .iter()
        .any(|(existing, _)| existing.len() <= core.len() && sorted_subset(existing, &core))
    {
        return;
    }
    cores.retain(|(existing, _)| !sorted_subset(&core, existing));
    if cores.len() >= CORE_STORE_CAP {
        return;
    }
    cores.push((core, AtomicU64::new(epoch::current())));
}

/// The compiled feasibility pipeline over a canonical (tightened, sorted,
/// deduplicated) constraint set: memo, then learned cores, then dense
/// elimination with core extraction.
fn fm_query(key: &Vec<RowRef>) -> bool {
    if let Some(hit) = FM_MEMO.get(key) {
        return hit;
    }
    if core_subsumed(key) {
        FM_MEMO.insert(key.clone(), true);
        return true;
    }
    let (infeasible, core) = crate::lin_compile::fm_analyze(key);
    if let Some(members) = core {
        learn_core(members.iter().map(|&i| key[i].0.clone()).collect());
    }
    FM_MEMO.insert(key.clone(), infeasible);
    infeasible
}

/// Canonicalizes a raw constraint set the way the legacy path always did:
/// tighten every row, sort, deduplicate.
fn canonical(constraints: &[Affine]) -> Vec<Affine> {
    let mut key: Vec<Affine> = constraints.iter().map(|c| tighten(c.clone())).collect();
    key.sort();
    key.dedup();
    key
}

/// Interns the canonical form of one raw constraint.
fn intern_row(c: &Affine) -> RowRef {
    RowRef(ROWS.intern(tighten(c.clone())))
}

use stng_ir::ir::gcd;

/// `⌈a / b⌉` for positive `b`.
pub(crate) fn ceil_div(a: i64, b: i64) -> i64 {
    -((-a).div_euclid(b))
}

/// Integer tightening of one `affine ≤ 0` constraint: with `g` the gcd of the
/// variable coefficients, `Σ ci·vi ≤ −c` implies `Σ (ci/g)·vi ≤ ⌊−c/g⌋` for
/// integer-valued variables (the left side is `g` times an integer). All
/// variables in a [`LinCtx`] are integers (loop counters, bounds, quantified
/// indices, stride witnesses), so this strengthening is sound and strictly
/// increases the set of provable entailments.
fn tighten(mut c: Affine) -> Affine {
    let mut g: i64 = 0;
    for coeff in c.terms.values() {
        g = gcd(g, coeff.abs());
    }
    if g > 1 {
        for coeff in c.terms.values_mut() {
            *coeff /= g;
        }
        c.constant = ceil_div(c.constant, g);
    }
    c
}

/// A conjunction of linear integer constraints of the form `affine ≤ 0`,
/// plus a substitution layer of exact variable *definitions*
/// (`var = affine`), used for stride witnesses: defining `i = lo + step·k`
/// eliminates `i` from the linear system up front, so Fourier–Motzkin works
/// directly on the witness variables and the gcd tightening can exploit the
/// `step`-multiples structurally (adding the equality as two inequalities
/// instead would let elimination order erase the alignment information).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LinCtx {
    constraints: Vec<Affine>,
    /// Exact definitions `var = value`, applied (in order) to every affine
    /// entering the context. Values are fully reduced (they mention no
    /// defined variable).
    defs: Vec<(Symbol, Affine)>,
    /// The canonical view of `constraints` — tightened, sorted (by value),
    /// deduplicated, as interned rows — maintained incrementally: assuming
    /// a constraint inserts one canonical row; installing a definition
    /// rebuilds it. This is the elimination context the compiled query
    /// pipeline keys on.
    canon: Vec<RowRef>,
    /// Legacy contexts bypass the memo/core/dense pipeline and run the
    /// tree-walking elimination directly (the differential oracle).
    legacy: bool,
}

impl LinCtx {
    /// An empty (trivially satisfiable) context.
    pub fn new() -> LinCtx {
        LinCtx::default()
    }

    /// An empty context whose feasibility queries run the original
    /// tree-walking Fourier–Motzkin directly — no verdict memo, no learned
    /// cores, no dense engine. Extensions ([`Clone`], [`LinCtx::with_case`])
    /// inherit the flag, so a proof search started legacy stays legacy
    /// throughout; the differential test relies on that independence.
    pub fn new_legacy() -> LinCtx {
        LinCtx {
            legacy: true,
            ..LinCtx::default()
        }
    }

    /// Number of constraints currently in the context.
    pub fn len(&self) -> usize {
        self.constraints.len()
    }

    /// Returns `true` when the context has no constraints.
    pub fn is_empty(&self) -> bool {
        self.constraints.is_empty()
    }

    /// The canonical constraint set (tightened, sorted, deduplicated) plus
    /// the definition layer — everything a feasibility or entailment query
    /// can observe, in the shape the prover's obligation memo hashes.
    pub fn obligation_key(&self) -> (Vec<Affine>, Vec<(Symbol, Affine)>) {
        (
            self.canon.iter().map(|r| r.0.clone()).collect(),
            self.defs.clone(),
        )
    }

    /// Applies the definition layer to an affine expression.
    pub fn reduce(&self, aff: &Affine) -> Affine {
        self.reduced(aff.clone())
    }

    /// Owned variant of [`LinCtx::reduce`]; free when no definitions exist
    /// (the dense-kernel fast path).
    fn reduced(&self, mut aff: Affine) -> Affine {
        for (v, val) in &self.defs {
            if aff.coeff(*v) != 0 {
                aff = aff.subst(*v, val);
            }
        }
        aff
    }

    /// Inserts the canonical form of `c` into the sorted canonical set.
    fn push_constraint(&mut self, c: Affine) {
        let row = intern_row(&c);
        if let Err(pos) = self.canon.binary_search(&row) {
            self.canon.insert(pos, row);
        }
        self.constraints.push(c);
    }

    /// Records the exact definition `var = value` and folds it into the
    /// existing constraints and definitions. Sound only for genuine
    /// equalities (the stride facts `i = lo + step·k` with a fresh witness
    /// `k`). A second definition of the same variable is ignored (the first
    /// one has already eliminated it).
    pub fn define(&mut self, var: impl Into<Symbol>, value: &Affine) {
        let var = var.into();
        if self.defs.iter().any(|(v, _)| *v == var) {
            return;
        }
        let value = self.reduce(value);
        for c in &mut self.constraints {
            if c.coeff(var) != 0 {
                *c = c.subst(var, &value);
            }
        }
        for (_, v) in &mut self.defs {
            if v.coeff(var) != 0 {
                *v = v.subst(var, &value);
            }
        }
        self.defs.push((var, value));
        // Substitution can rewrite any constraint: rebuild the canonical
        // view wholesale (definitions arrive once per context, before the
        // query-heavy case-split phase extends it incrementally). Interned
        // rows sort by value exactly like the owned rows they mirror.
        self.canon = canonical(&self.constraints)
            .iter()
            .map(|c| RowRef(ROWS.intern(c.clone())))
            .collect();
    }

    /// Decides `m | aff` syntactically under the definition layer: after
    /// reduction, the expression is a provable multiple of `m` when every
    /// coefficient and the constant are. (Sound but incomplete — unaligned
    /// expressions simply fail the test.)
    pub fn divisible(&self, aff: &Affine, m: i64) -> bool {
        if m == 1 {
            return true;
        }
        let r = self.reduce(aff);
        r.constant % m == 0 && r.terms.values().all(|c| c % m == 0)
    }

    /// Adds `lhs ≤ rhs`.
    pub fn assume_le(&mut self, lhs: &Affine, rhs: &Affine) {
        let c = self.reduced(lhs.sub(rhs));
        self.push_constraint(c);
    }

    /// Adds `lhs < rhs` (integer semantics: `lhs ≤ rhs − 1`).
    pub fn assume_lt(&mut self, lhs: &Affine, rhs: &Affine) {
        let mut c = self.reduced(lhs.sub(rhs));
        c.constant += 1;
        self.push_constraint(c);
    }

    /// Adds `lhs = rhs`.
    pub fn assume_eq(&mut self, lhs: &Affine, rhs: &Affine) {
        self.assume_le(lhs, rhs);
        self.assume_le(rhs, lhs);
    }

    /// Adds the comparison `lhs op rhs`.
    pub fn assume_cmp(&mut self, op: CmpOp, lhs: &Affine, rhs: &Affine) -> bool {
        match op {
            CmpOp::Le => self.assume_le(lhs, rhs),
            CmpOp::Lt => self.assume_lt(lhs, rhs),
            CmpOp::Ge => self.assume_le(rhs, lhs),
            CmpOp::Gt => self.assume_lt(rhs, lhs),
            CmpOp::Eq => self.assume_eq(lhs, rhs),
            // A disequality is a disjunction; it cannot be added to a
            // conjunction of linear constraints. The caller may case-split.
            CmpOp::Ne => return false,
        }
        true
    }

    /// Attempts to add a boolean [`IrExpr`] (conjunctions of affine
    /// comparisons). Returns `false` when part of the expression could not be
    /// represented; the representable part is still added, which is sound for
    /// use as a *hypothesis* context.
    pub fn assume_bool_expr(&mut self, e: &IrExpr) -> bool {
        match e {
            IrExpr::And(a, b) => {
                let ra = self.assume_bool_expr(a);
                let rb = self.assume_bool_expr(b);
                ra && rb
            }
            IrExpr::Cmp { op, lhs, rhs } => match (lhs.as_affine(), rhs.as_affine()) {
                (Some(l), Some(r)) => self.assume_cmp(*op, &l, &r),
                _ => false,
            },
            _ => false,
        }
    }

    /// Returns `true` when the context is provably infeasible (has no
    /// rational, hence no integer, solutions).
    pub fn is_infeasible(&self) -> bool {
        if self.legacy {
            return fm_infeasible(&canonical(&self.constraints));
        }
        fm_query(&self.canon)
    }

    /// Refutation query: is the context together with the (already reduced)
    /// row `neg ≤ 0` infeasible?
    fn refutes(&self, neg: Affine) -> bool {
        if self.legacy {
            let mut cs = self.constraints.clone();
            cs.push(neg);
            return fm_infeasible(&canonical(&cs));
        }
        let neg = tighten(neg);
        // Constant-only negations need no elimination: `c > 0` is a
        // contradiction all by itself, and `c ≤ 0` is inert — the
        // conjunction is infeasible exactly when the context already is.
        if neg.terms.is_empty() {
            return neg.constant > 0 || fm_query(&self.canon);
        }
        let neg = RowRef(ROWS.intern(neg));
        match self.canon.binary_search(&neg) {
            // The negation is already a context row: same canonical set.
            Ok(_) => fm_query(&self.canon),
            Err(pos) => {
                let mut key = Vec::with_capacity(self.canon.len() + 1);
                key.extend_from_slice(&self.canon[..pos]);
                key.push(neg);
                key.extend_from_slice(&self.canon[pos..]);
                fm_query(&key)
            }
        }
    }

    /// Checks whether the context entails `lhs ≤ rhs`.
    pub fn entails_le(&self, lhs: &Affine, rhs: &Affine) -> bool {
        // Negation over the integers: lhs ≥ rhs + 1, i.e. rhs + 1 − lhs ≤ 0.
        let mut neg = self.reduced(rhs.sub(lhs));
        neg.constant += 1;
        self.refutes(neg)
    }

    /// Checks whether the context entails `lhs = rhs`.
    pub fn entails_eq(&self, lhs: &Affine, rhs: &Affine) -> bool {
        self.entails_le(lhs, rhs) && self.entails_le(rhs, lhs)
    }

    /// Checks whether the context entails `lhs ≠ rhs` (by entailing one of
    /// the strict orders).
    pub fn entails_ne(&self, lhs: &Affine, rhs: &Affine) -> bool {
        let mut lt = lhs.sub(rhs);
        lt.constant += 1; // lhs ≤ rhs − 1
        let mut gt = rhs.sub(lhs);
        gt.constant += 1; // rhs ≤ lhs − 1
        self.entails_constraint(&lt) || self.entails_constraint(&gt)
    }

    fn entails_constraint(&self, c: &Affine) -> bool {
        // c ≤ 0 entailed iff context ∧ (c ≥ 1) infeasible.
        let mut neg = self.reduced(c.scale(-1));
        neg.constant += 1;
        self.refutes(neg)
    }

    /// Checks whether the context entails the boolean expression `e`
    /// (conjunctions of affine comparisons only; anything else fails).
    pub fn entails_bool_expr(&self, e: &IrExpr) -> bool {
        match e {
            IrExpr::And(a, b) => self.entails_bool_expr(a) && self.entails_bool_expr(b),
            IrExpr::Cmp { op, lhs, rhs } => match (lhs.as_affine(), rhs.as_affine()) {
                (Some(l), Some(r)) => match op {
                    CmpOp::Le => self.entails_le(&l, &r),
                    CmpOp::Lt => {
                        let mut r1 = r.clone();
                        r1.constant -= 1;
                        self.entails_le(&l, &r1)
                    }
                    CmpOp::Ge => self.entails_le(&r, &l),
                    CmpOp::Gt => {
                        let mut l1 = l.clone();
                        l1.constant -= 1;
                        self.entails_le(&r, &l1)
                    }
                    CmpOp::Eq => self.entails_eq(&l, &r),
                    CmpOp::Ne => self.entails_ne(&l, &r),
                },
                _ => false,
            },
            _ => false,
        }
    }

    /// Adds the three-way case `lhs (<|=|>) rhs` selected by `case` and
    /// returns the extended context.
    pub fn with_case(&self, lhs: &Affine, rhs: &Affine, case: SplitCase) -> LinCtx {
        let mut out = self.clone();
        match case {
            SplitCase::Less => out.assume_lt(lhs, rhs),
            SplitCase::Equal => out.assume_eq(lhs, rhs),
            SplitCase::Greater => out.assume_lt(rhs, lhs),
        }
        out
    }
}

/// The three branches of a comparison case split.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SplitCase {
    /// `lhs < rhs`
    Less,
    /// `lhs = rhs`
    Equal,
    /// `lhs > rhs`
    Greater,
}

/// All three split cases.
pub const SPLIT_CASES: [SplitCase; 3] = [SplitCase::Less, SplitCase::Equal, SplitCase::Greater];

/// Fourier–Motzkin feasibility check: returns `true` when the system
/// `{ c ≤ 0 }` is provably infeasible over the rationals. This is the
/// tree-walking reference engine; compiled contexts only reach it through
/// [`crate::lin_compile`]'s transliteration, legacy contexts run it
/// directly.
fn fm_infeasible(constraints: &[Affine]) -> bool {
    let mut cs: Vec<Affine> = constraints.to_vec();
    loop {
        // Constant constraints decide infeasibility immediately.
        if cs.iter().any(|c| c.terms.is_empty() && c.constant > 0) {
            return true;
        }
        // Pick the variable occurring in the fewest constraints to limit
        // blow-up.
        let vars: BTreeSet<Symbol> = cs.iter().flat_map(|c| c.terms.keys().copied()).collect();
        let Some(var) = vars
            .iter()
            .min_by_key(|v| cs.iter().filter(|c| c.coeff(**v) != 0).count())
        else {
            return false;
        };
        let var = *var;
        let mut uppers = Vec::new(); // a·v + p ≤ 0 with a > 0  → v ≤ −p/a
        let mut lowers = Vec::new(); // −b·v + q ≤ 0 with b > 0 → v ≥ q/b
        let mut rest = Vec::new();
        for c in cs {
            let a = c.coeff(var);
            if a > 0 {
                uppers.push(c);
            } else if a < 0 {
                lowers.push(c);
            } else {
                rest.push(c);
            }
        }
        for up in &uppers {
            for lo in &lowers {
                let a = up.coeff(var);
                let b = -lo.coeff(var);
                // b·up + a·lo eliminates v; the combination is re-tightened
                // so derived constraints keep integer precision.
                let combined = tighten(up.scale(b).add(&lo.scale(a)));
                debug_assert_eq!(combined.coeff(var), 0);
                rest.push(combined);
                if rest.len() > FM_CONSTRAINT_CAP {
                    // Give up: treat as (possibly) feasible, which is sound.
                    return false;
                }
            }
        }
        cs = rest;
    }
}

/// Verification hooks for the `stng-verify` Layer-1 model checker.
///
/// These expose the soundness-critical internals — gcd tightening, the
/// tree-walking elimination oracle, the full compiled pipeline, and the
/// learned-core store — on raw [`Affine`] rows, so the harness can
/// enumerate small linear systems and compare every path against a
/// brute-force integer-feasibility oracle without going through the
/// `IrExpr` front door. Production code must keep using [`LinCtx`].
pub mod model {
    use super::*;

    /// The integer gcd tightening applied to every canonical row
    /// (`Σ ci·vi + c ≤ 0` with `g = gcd(ci)` becomes
    /// `Σ (ci/g)·vi + ⌈c/g⌉ ≤ 0`).
    pub fn tighten_row(c: Affine) -> Affine {
        tighten(c)
    }

    /// Canonicalizes (tighten, sort, dedup) and runs the tree-walking
    /// Fourier–Motzkin engine — the legacy oracle, no memo, no cores.
    pub fn tree_infeasible(constraints: &[Affine]) -> bool {
        fm_infeasible(&canonical(constraints))
    }

    /// Canonicalizes, interns, and runs the full compiled feasibility
    /// pipeline exactly as production queries do: verdict memo, learned-core
    /// subsumption, then dense elimination with core extraction.
    pub fn compiled_infeasible(constraints: &[Affine]) -> bool {
        let mut key: Vec<RowRef> = constraints.iter().map(intern_row).collect();
        key.sort();
        key.dedup();
        fm_query(&key)
    }

    /// Snapshot of the learned-core store. Every member set was proven
    /// UNSAT by the dense engine when it was learned; the model checker
    /// re-verifies each against the tree oracle.
    pub fn learned_cores() -> Vec<Vec<Affine>> {
        CORES
            .get()
            .map(|lock| {
                lock.read()
                    .expect("core store poisoned")
                    .iter()
                    .map(|(core, _)| core.clone())
                    .collect()
            })
            .unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn var(name: &str) -> Affine {
        Affine::var(name.to_string())
    }

    fn constant(v: i64) -> Affine {
        Affine::constant(v)
    }

    #[test]
    fn simple_entailment_chain() {
        // i ≤ n ∧ n ≤ 10 ⊨ i ≤ 10
        let mut ctx = LinCtx::new();
        ctx.assume_le(&var("i"), &var("n"));
        ctx.assume_le(&var("n"), &constant(10));
        assert!(ctx.entails_le(&var("i"), &constant(10)));
        assert!(!ctx.entails_le(&constant(10), &var("i")));
    }

    #[test]
    fn strict_inequalities_use_integer_semantics() {
        // j > jmax ⊨ jmax ≤ j − 1.
        let mut ctx = LinCtx::new();
        ctx.assume_lt(&var("jmax"), &var("j"));
        let mut j_minus_1 = var("j");
        j_minus_1.constant -= 1;
        assert!(ctx.entails_le(&var("jmax"), &j_minus_1));
    }

    #[test]
    fn infeasibility_detection() {
        let mut ctx = LinCtx::new();
        ctx.assume_le(&var("x"), &constant(3));
        ctx.assume_le(&constant(5), &var("x"));
        assert!(ctx.is_infeasible());
        // Everything is entailed from an infeasible context.
        assert!(ctx.entails_le(&constant(100), &var("x")));
    }

    #[test]
    fn equality_entailment() {
        let mut ctx = LinCtx::new();
        ctx.assume_eq(&var("vi"), &var("i"));
        ctx.assume_le(&var("i"), &constant(4));
        assert!(ctx.entails_eq(&var("vi"), &var("i")));
        assert!(ctx.entails_le(&var("vi"), &constant(4)));
        assert!(!ctx.entails_ne(&var("vi"), &var("i")));
    }

    #[test]
    fn disequality_via_strict_order() {
        let mut ctx = LinCtx::new();
        // vi ≤ i − 1 ⊨ vi ≠ i.
        let mut i_minus_1 = var("i");
        i_minus_1.constant -= 1;
        ctx.assume_le(&var("vi"), &i_minus_1);
        assert!(ctx.entails_ne(&var("vi"), &var("i")));
    }

    #[test]
    fn bool_expr_round_trip() {
        use stng_ir::ir::IrExpr;
        let mut ctx = LinCtx::new();
        let hyp = IrExpr::And(
            Box::new(IrExpr::cmp(
                CmpOp::Le,
                IrExpr::var("jmin"),
                IrExpr::var("j"),
            )),
            Box::new(IrExpr::cmp(
                CmpOp::Gt,
                IrExpr::var("j"),
                IrExpr::var("jmax"),
            )),
        );
        assert!(ctx.assume_bool_expr(&hyp));
        let goal = IrExpr::cmp(
            CmpOp::Le,
            IrExpr::var("jmax"),
            IrExpr::sub(IrExpr::var("j"), IrExpr::Int(1)),
        );
        assert!(ctx.entails_bool_expr(&goal));
    }

    #[test]
    fn case_split_contexts() {
        let ctx = LinCtx::new();
        let eq_case = ctx.with_case(&var("vi"), &var("i"), SplitCase::Equal);
        assert!(eq_case.entails_eq(&var("vi"), &var("i")));
        let lt_case = ctx.with_case(&var("vi"), &var("i"), SplitCase::Less);
        assert!(lt_case.entails_ne(&var("vi"), &var("i")));
    }

    #[test]
    fn integer_tightening_recovers_stride_gaps() {
        // Two counters aligned to stride 2 from the same base:
        // q = 2 + 2t, i = 2 + 2k (t, k ≥ 0). From q ≤ i − 1 (strictly below)
        // integer reasoning must conclude q ≤ i − 2: aligned counters that
        // differ, differ by a whole stride. Rational Fourier–Motzkin alone
        // cannot see this; the definition layer plus gcd tightening makes it
        // derivable.
        let mut ctx = LinCtx::new();
        let q = var("q");
        let i = var("i");
        let t = var("t");
        let k = var("k");
        let base = constant(2);
        ctx.define("q", &base.add(&t.scale(2)));
        ctx.define("i", &base.add(&k.scale(2)));
        ctx.assume_le(&constant(0), &t);
        ctx.assume_le(&constant(0), &k);
        ctx.assume_lt(&q, &i); // q ≤ i − 1
        let mut i_minus_2 = i.clone();
        i_minus_2.constant -= 2;
        assert!(ctx.entails_le(&q, &i_minus_2));
        // And alignment alone must not entail the gap without the order.
        let mut ctx2 = LinCtx::new();
        ctx2.define("q", &base.add(&t.scale(2)));
        ctx2.define("i", &base.add(&k.scale(2)));
        assert!(!ctx2.entails_le(&q, &i_minus_2));
    }

    #[test]
    fn definition_layer_decides_divisibility() {
        let mut ctx = LinCtx::new();
        let t = var("t");
        ctx.define("i", &constant(2).add(&t.scale(4)));
        // i − 2 = 4t: divisible by 4 and 2, not by 3.
        let mut i_minus_2 = var("i");
        i_minus_2.constant -= 2;
        assert!(ctx.divisible(&i_minus_2, 4));
        assert!(ctx.divisible(&i_minus_2, 2));
        assert!(!ctx.divisible(&i_minus_2, 3));
        // i − 1 = 4t + 1: not divisible by 4.
        let mut i_minus_1 = var("i");
        i_minus_1.constant -= 1;
        assert!(!ctx.divisible(&i_minus_1, 4));
        // Definitions fold into constraints added before them.
        let mut late = LinCtx::new();
        late.assume_le(&var("i"), &constant(10));
        late.define("i", &constant(2).add(&t.scale(4)));
        late.assume_le(&constant(3), &t);
        assert!(late.is_infeasible()); // i = 2+4t ≥ 14 > 10
    }

    #[test]
    fn tightening_handles_mixed_signs_and_negative_constants() {
        // 2x − 2y + 1 ≤ 0 tightens to x − y + 1 ≤ 0, so x < y entails x ≤ y−1.
        let mut ctx = LinCtx::new();
        let two_x = var("x").scale(2);
        let two_y_minus_1 = var("y").scale(2).add(&constant(-1));
        ctx.assume_le(&two_x, &two_y_minus_1);
        let mut y_minus_1 = var("y");
        y_minus_1.constant -= 1;
        assert!(ctx.entails_le(&var("x"), &y_minus_1));
    }

    #[test]
    fn multi_variable_elimination() {
        // 2x + 3y ≤ 12 ∧ x ≥ 3 ∧ y ≥ 2 ⊨ ⊥ (2·3 + 3·2 = 12 ≤ 12 is fine, so
        // feasible); tightening y ≥ 3 makes it infeasible.
        let mut ctx = LinCtx::new();
        let two_x_three_y = var("x").scale(2).add(&var("y").scale(3));
        ctx.assume_le(&two_x_three_y, &constant(12));
        ctx.assume_le(&constant(3), &var("x"));
        ctx.assume_le(&constant(2), &var("y"));
        assert!(!ctx.is_infeasible());
        ctx.assume_le(&constant(3), &var("y"));
        assert!(ctx.is_infeasible());
    }

    /// Every query a compiled context can answer, a legacy context answers
    /// identically (unit-sized differential; the corpus-wide version lives
    /// in `tests/prover_differential.rs`).
    #[test]
    fn legacy_and_compiled_contexts_agree() {
        let build = |mut ctx: LinCtx| {
            ctx.assume_le(&var("i"), &var("n"));
            ctx.assume_lt(&var("j"), &var("i"));
            ctx.assume_le(&constant(0), &var("j"));
            ctx.define("s", &constant(1).add(&var("w").scale(3)));
            ctx.assume_le(&constant(0), &var("w"));
            ctx
        };
        let compiled = build(LinCtx::new());
        let legacy = build(LinCtx::new_legacy());
        let probes = [
            (var("j"), var("n")),
            (var("n"), var("j")),
            (var("i"), var("i")),
            (constant(0), var("s")),
            (var("s"), constant(0)),
            (var("j"), var("i")),
        ];
        for (lhs, rhs) in &probes {
            assert_eq!(compiled.entails_le(lhs, rhs), legacy.entails_le(lhs, rhs));
            assert_eq!(compiled.entails_eq(lhs, rhs), legacy.entails_eq(lhs, rhs));
            assert_eq!(compiled.entails_ne(lhs, rhs), legacy.entails_ne(lhs, rhs));
        }
        assert_eq!(compiled.is_infeasible(), legacy.is_infeasible());
        let conflicted = |mut ctx: LinCtx| {
            ctx.assume_lt(&var("n"), &var("j"));
            ctx.is_infeasible()
        };
        assert_eq!(conflicted(compiled.clone()), conflicted(legacy.clone()));
        assert!(conflicted(compiled));
    }

    #[test]
    fn learned_cores_short_circuit_supersets() {
        // Prove a small contradiction, then ask a strictly larger context
        // containing it: the verdict must come back infeasible and the core
        // hit counter must advance (the superset query is fresh, so it
        // cannot be a memo hit).
        let mut small = LinCtx::new();
        small.assume_le(&var("corex"), &constant(3));
        small.assume_le(&constant(5), &var("corex"));
        assert!(small.is_infeasible());
        let before = core_hit_count();
        let mut big = LinCtx::new();
        big.assume_le(&var("corea"), &var("coreb"));
        big.assume_le(&var("corex"), &constant(3));
        big.assume_le(&var("coreb"), &constant(7));
        big.assume_le(&constant(5), &var("corex"));
        assert!(big.is_infeasible());
        assert!(
            core_hit_count() > before,
            "superset query must hit the core"
        );
    }
}
