//! Linear integer arithmetic over affine expressions: constraint contexts,
//! feasibility by Fourier–Motzkin elimination, and entailment checks.
//!
//! Constraints are stored in the normalized form `affine ≤ 0`. Entailment of
//! `e ≤ 0` from a context `C` is checked refutationally: `C ∧ (e ≥ 1)` must be
//! infeasible. Feasibility is decided over the rationals, which is sound for
//! proving integer entailments (every integer model is a rational model);
//! strict integer inequalities are converted to non-strict ones with a `±1`
//! adjustment before encoding, which recovers most of the lost precision.

use std::collections::BTreeSet;
use stng_intern::Memo;
use stng_ir::ir::{Affine, CmpOp, IrExpr};

/// Maximum number of constraints Fourier–Motzkin is allowed to generate
/// before giving up (returning "possibly feasible", which is always safe).
const FM_CONSTRAINT_CAP: usize = 4000;

/// Global memo of Fourier–Motzkin feasibility verdicts, keyed on the sorted,
/// deduplicated constraint set. The prover's case-split search asks the same
/// entailment questions under the same (or prefix-shared) contexts thousands
/// of times; a hit here replaces a full elimination with one table lookup.
static FM_MEMO: Memo<Vec<Affine>, bool> = Memo::new();

/// Canonicalizes (sort + dedup) and checks feasibility through the memo.
fn fm_infeasible_cached(constraints: &[Affine]) -> bool {
    let mut key: Vec<Affine> = constraints.to_vec();
    key.sort();
    key.dedup();
    if let Some(hit) = FM_MEMO.get(&key) {
        return hit;
    }
    let verdict = fm_infeasible(&key);
    FM_MEMO.insert(key, verdict);
    verdict
}

/// A conjunction of linear integer constraints of the form `affine ≤ 0`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LinCtx {
    constraints: Vec<Affine>,
}

impl LinCtx {
    /// An empty (trivially satisfiable) context.
    pub fn new() -> LinCtx {
        LinCtx::default()
    }

    /// Number of constraints currently in the context.
    pub fn len(&self) -> usize {
        self.constraints.len()
    }

    /// Returns `true` when the context has no constraints.
    pub fn is_empty(&self) -> bool {
        self.constraints.is_empty()
    }

    /// Adds `lhs ≤ rhs`.
    pub fn assume_le(&mut self, lhs: &Affine, rhs: &Affine) {
        self.constraints.push(lhs.sub(rhs));
    }

    /// Adds `lhs < rhs` (integer semantics: `lhs ≤ rhs − 1`).
    pub fn assume_lt(&mut self, lhs: &Affine, rhs: &Affine) {
        let mut c = lhs.sub(rhs);
        c.constant += 1;
        self.constraints.push(c);
    }

    /// Adds `lhs = rhs`.
    pub fn assume_eq(&mut self, lhs: &Affine, rhs: &Affine) {
        self.assume_le(lhs, rhs);
        self.assume_le(rhs, lhs);
    }

    /// Adds the comparison `lhs op rhs`.
    pub fn assume_cmp(&mut self, op: CmpOp, lhs: &Affine, rhs: &Affine) -> bool {
        match op {
            CmpOp::Le => self.assume_le(lhs, rhs),
            CmpOp::Lt => self.assume_lt(lhs, rhs),
            CmpOp::Ge => self.assume_le(rhs, lhs),
            CmpOp::Gt => self.assume_lt(rhs, lhs),
            CmpOp::Eq => self.assume_eq(lhs, rhs),
            // A disequality is a disjunction; it cannot be added to a
            // conjunction of linear constraints. The caller may case-split.
            CmpOp::Ne => return false,
        }
        true
    }

    /// Attempts to add a boolean [`IrExpr`] (conjunctions of affine
    /// comparisons). Returns `false` when part of the expression could not be
    /// represented; the representable part is still added, which is sound for
    /// use as a *hypothesis* context.
    pub fn assume_bool_expr(&mut self, e: &IrExpr) -> bool {
        match e {
            IrExpr::And(a, b) => {
                let ra = self.assume_bool_expr(a);
                let rb = self.assume_bool_expr(b);
                ra && rb
            }
            IrExpr::Cmp { op, lhs, rhs } => match (lhs.as_affine(), rhs.as_affine()) {
                (Some(l), Some(r)) => self.assume_cmp(*op, &l, &r),
                _ => false,
            },
            _ => false,
        }
    }

    /// Returns `true` when the context is provably infeasible (has no
    /// rational, hence no integer, solutions).
    pub fn is_infeasible(&self) -> bool {
        fm_infeasible_cached(&self.constraints)
    }

    /// Checks whether the context entails `lhs ≤ rhs`.
    pub fn entails_le(&self, lhs: &Affine, rhs: &Affine) -> bool {
        // Negation over the integers: lhs ≥ rhs + 1, i.e. rhs + 1 − lhs ≤ 0.
        let mut neg = rhs.sub(lhs);
        neg.constant += 1;
        let mut cs = self.constraints.clone();
        cs.push(neg);
        fm_infeasible_cached(&cs)
    }

    /// Checks whether the context entails `lhs = rhs`.
    pub fn entails_eq(&self, lhs: &Affine, rhs: &Affine) -> bool {
        self.entails_le(lhs, rhs) && self.entails_le(rhs, lhs)
    }

    /// Checks whether the context entails `lhs ≠ rhs` (by entailing one of
    /// the strict orders).
    pub fn entails_ne(&self, lhs: &Affine, rhs: &Affine) -> bool {
        let mut lt = lhs.sub(rhs);
        lt.constant += 1; // lhs ≤ rhs − 1
        let mut gt = rhs.sub(lhs);
        gt.constant += 1; // rhs ≤ lhs − 1
        self.entails_constraint(&lt) || self.entails_constraint(&gt)
    }

    fn entails_constraint(&self, c: &Affine) -> bool {
        // c ≤ 0 entailed iff context ∧ (c ≥ 1) infeasible.
        let mut neg = c.scale(-1);
        neg.constant += 1;
        let mut cs = self.constraints.clone();
        cs.push(neg);
        fm_infeasible_cached(&cs)
    }

    /// Checks whether the context entails the boolean expression `e`
    /// (conjunctions of affine comparisons only; anything else fails).
    pub fn entails_bool_expr(&self, e: &IrExpr) -> bool {
        match e {
            IrExpr::And(a, b) => self.entails_bool_expr(a) && self.entails_bool_expr(b),
            IrExpr::Cmp { op, lhs, rhs } => match (lhs.as_affine(), rhs.as_affine()) {
                (Some(l), Some(r)) => match op {
                    CmpOp::Le => self.entails_le(&l, &r),
                    CmpOp::Lt => {
                        let mut r1 = r.clone();
                        r1.constant -= 1;
                        self.entails_le(&l, &r1)
                    }
                    CmpOp::Ge => self.entails_le(&r, &l),
                    CmpOp::Gt => {
                        let mut l1 = l.clone();
                        l1.constant -= 1;
                        self.entails_le(&r, &l1)
                    }
                    CmpOp::Eq => self.entails_eq(&l, &r),
                    CmpOp::Ne => self.entails_ne(&l, &r),
                },
                _ => false,
            },
            _ => false,
        }
    }

    /// Adds the three-way case `lhs (<|=|>) rhs` selected by `case` and
    /// returns the extended context.
    pub fn with_case(&self, lhs: &Affine, rhs: &Affine, case: SplitCase) -> LinCtx {
        let mut out = self.clone();
        match case {
            SplitCase::Less => out.assume_lt(lhs, rhs),
            SplitCase::Equal => out.assume_eq(lhs, rhs),
            SplitCase::Greater => out.assume_lt(rhs, lhs),
        }
        out
    }
}

/// The three branches of a comparison case split.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SplitCase {
    /// `lhs < rhs`
    Less,
    /// `lhs = rhs`
    Equal,
    /// `lhs > rhs`
    Greater,
}

/// All three split cases.
pub const SPLIT_CASES: [SplitCase; 3] = [SplitCase::Less, SplitCase::Equal, SplitCase::Greater];

/// Fourier–Motzkin feasibility check: returns `true` when the system
/// `{ c ≤ 0 }` is provably infeasible over the rationals.
fn fm_infeasible(constraints: &[Affine]) -> bool {
    let mut cs: Vec<Affine> = constraints.to_vec();
    loop {
        // Constant constraints decide infeasibility immediately.
        if cs.iter().any(|c| c.terms.is_empty() && c.constant > 0) {
            return true;
        }
        // Pick the variable occurring in the fewest constraints to limit
        // blow-up.
        let vars: BTreeSet<String> = cs.iter().flat_map(|c| c.terms.keys().cloned()).collect();
        let Some(var) = vars
            .iter()
            .min_by_key(|v| cs.iter().filter(|c| c.coeff(v) != 0).count())
        else {
            return false;
        };
        let var = var.clone();
        let mut uppers = Vec::new(); // a·v + p ≤ 0 with a > 0  → v ≤ −p/a
        let mut lowers = Vec::new(); // −b·v + q ≤ 0 with b > 0 → v ≥ q/b
        let mut rest = Vec::new();
        for c in cs {
            let a = c.coeff(&var);
            if a > 0 {
                uppers.push(c);
            } else if a < 0 {
                lowers.push(c);
            } else {
                rest.push(c);
            }
        }
        for up in &uppers {
            for lo in &lowers {
                let a = up.coeff(&var);
                let b = -lo.coeff(&var);
                // b·up + a·lo eliminates v.
                let combined = up.scale(b).add(&lo.scale(a));
                debug_assert_eq!(combined.coeff(&var), 0);
                rest.push(combined);
                if rest.len() > FM_CONSTRAINT_CAP {
                    // Give up: treat as (possibly) feasible, which is sound.
                    return false;
                }
            }
        }
        cs = rest;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn var(name: &str) -> Affine {
        Affine::var(name.to_string())
    }

    fn constant(v: i64) -> Affine {
        Affine::constant(v)
    }

    #[test]
    fn simple_entailment_chain() {
        // i ≤ n ∧ n ≤ 10 ⊨ i ≤ 10
        let mut ctx = LinCtx::new();
        ctx.assume_le(&var("i"), &var("n"));
        ctx.assume_le(&var("n"), &constant(10));
        assert!(ctx.entails_le(&var("i"), &constant(10)));
        assert!(!ctx.entails_le(&constant(10), &var("i")));
    }

    #[test]
    fn strict_inequalities_use_integer_semantics() {
        // j > jmax ⊨ jmax ≤ j − 1.
        let mut ctx = LinCtx::new();
        ctx.assume_lt(&var("jmax"), &var("j"));
        let mut j_minus_1 = var("j");
        j_minus_1.constant -= 1;
        assert!(ctx.entails_le(&var("jmax"), &j_minus_1));
    }

    #[test]
    fn infeasibility_detection() {
        let mut ctx = LinCtx::new();
        ctx.assume_le(&var("x"), &constant(3));
        ctx.assume_le(&constant(5), &var("x"));
        assert!(ctx.is_infeasible());
        // Everything is entailed from an infeasible context.
        assert!(ctx.entails_le(&constant(100), &var("x")));
    }

    #[test]
    fn equality_entailment() {
        let mut ctx = LinCtx::new();
        ctx.assume_eq(&var("vi"), &var("i"));
        ctx.assume_le(&var("i"), &constant(4));
        assert!(ctx.entails_eq(&var("vi"), &var("i")));
        assert!(ctx.entails_le(&var("vi"), &constant(4)));
        assert!(!ctx.entails_ne(&var("vi"), &var("i")));
    }

    #[test]
    fn disequality_via_strict_order() {
        let mut ctx = LinCtx::new();
        // vi ≤ i − 1 ⊨ vi ≠ i.
        let mut i_minus_1 = var("i");
        i_minus_1.constant -= 1;
        ctx.assume_le(&var("vi"), &i_minus_1);
        assert!(ctx.entails_ne(&var("vi"), &var("i")));
    }

    #[test]
    fn bool_expr_round_trip() {
        use stng_ir::ir::IrExpr;
        let mut ctx = LinCtx::new();
        let hyp = IrExpr::And(
            Box::new(IrExpr::cmp(
                CmpOp::Le,
                IrExpr::var("jmin"),
                IrExpr::var("j"),
            )),
            Box::new(IrExpr::cmp(
                CmpOp::Gt,
                IrExpr::var("j"),
                IrExpr::var("jmax"),
            )),
        );
        assert!(ctx.assume_bool_expr(&hyp));
        let goal = IrExpr::cmp(
            CmpOp::Le,
            IrExpr::var("jmax"),
            IrExpr::sub(IrExpr::var("j"), IrExpr::Int(1)),
        );
        assert!(ctx.entails_bool_expr(&goal));
    }

    #[test]
    fn case_split_contexts() {
        let ctx = LinCtx::new();
        let eq_case = ctx.with_case(&var("vi"), &var("i"), SplitCase::Equal);
        assert!(eq_case.entails_eq(&var("vi"), &var("i")));
        let lt_case = ctx.with_case(&var("vi"), &var("i"), SplitCase::Less);
        assert!(lt_case.entails_ne(&var("vi"), &var("i")));
    }

    #[test]
    fn multi_variable_elimination() {
        // 2x + 3y ≤ 12 ∧ x ≥ 3 ∧ y ≥ 2 ⊨ ⊥ (2·3 + 3·2 = 12 ≤ 12 is fine, so
        // feasible); tightening y ≥ 3 makes it infeasible.
        let mut ctx = LinCtx::new();
        let two_x_three_y = var("x").scale(2).add(&var("y").scale(3));
        ctx.assume_le(&two_x_three_y, &constant(12));
        ctx.assume_le(&constant(3), &var("x"));
        ctx.assume_le(&constant(2), &var("y"));
        assert!(!ctx.is_infeasible());
        ctx.assume_le(&constant(3), &var("y"));
        assert!(ctx.is_infeasible());
    }
}
