//! Linear integer arithmetic over affine expressions: constraint contexts,
//! feasibility by Fourier–Motzkin elimination, and entailment checks.
//!
//! Constraints are stored in the normalized form `affine ≤ 0`. Entailment of
//! `e ≤ 0` from a context `C` is checked refutationally: `C ∧ (e ≥ 1)` must be
//! infeasible. Feasibility is decided over the rationals, which is sound for
//! proving integer entailments (every integer model is a rational model);
//! strict integer inequalities are converted to non-strict ones with a `±1`
//! adjustment before encoding, and every constraint is *integer-tightened*
//! (coefficients divided by their gcd with the constant rounded up), which
//! recovers most of the precision lost to rational relaxation. The
//! tightening step is what makes stride reasoning work: after the prover
//! substitutes `i = lo + step·k`, facts like `step·t ≤ step·k − 1` tighten
//! to `t ≤ k − 1`, i.e. two aligned counters that differ must differ by a
//! whole stride.

use std::collections::BTreeSet;
use stng_intern::{Memo, Symbol};
use stng_ir::ir::{Affine, CmpOp, IrExpr};

/// Maximum number of constraints Fourier–Motzkin is allowed to generate
/// before giving up (returning "possibly feasible", which is always safe).
const FM_CONSTRAINT_CAP: usize = 4000;

/// Global memo of Fourier–Motzkin feasibility verdicts, keyed on the sorted,
/// deduplicated constraint set. The prover's case-split search asks the same
/// entailment questions under the same (or prefix-shared) contexts thousands
/// of times; a hit here replaces a full elimination with one table lookup.
static FM_MEMO: Memo<Vec<Affine>, bool> = Memo::new();

/// Occupancy snapshot of the Fourier–Motzkin verdict memo.
pub fn arena_stats() -> stng_intern::ArenaStats {
    FM_MEMO.stats("solve.fm_memo")
}

/// Sweeps Fourier–Motzkin verdicts inserted before `cutoff`. Verdicts are
/// plain booleans keyed on owned constraint sets, so this is always safe.
pub fn retain_epoch(cutoff: u64) -> usize {
    FM_MEMO.retain_epoch(cutoff)
}

/// Canonicalizes (tighten + sort + dedup) and checks feasibility through the
/// memo.
fn fm_infeasible_cached(constraints: &[Affine]) -> bool {
    let mut key: Vec<Affine> = constraints.iter().map(|c| tighten(c.clone())).collect();
    key.sort();
    key.dedup();
    if let Some(hit) = FM_MEMO.get(&key) {
        return hit;
    }
    let verdict = fm_infeasible(&key);
    FM_MEMO.insert(key, verdict);
    verdict
}

use stng_ir::ir::gcd;

/// `⌈a / b⌉` for positive `b`.
fn ceil_div(a: i64, b: i64) -> i64 {
    -((-a).div_euclid(b))
}

/// Integer tightening of one `affine ≤ 0` constraint: with `g` the gcd of the
/// variable coefficients, `Σ ci·vi ≤ −c` implies `Σ (ci/g)·vi ≤ ⌊−c/g⌋` for
/// integer-valued variables (the left side is `g` times an integer). All
/// variables in a [`LinCtx`] are integers (loop counters, bounds, quantified
/// indices, stride witnesses), so this strengthening is sound and strictly
/// increases the set of provable entailments.
fn tighten(mut c: Affine) -> Affine {
    let mut g: i64 = 0;
    for coeff in c.terms.values() {
        g = gcd(g, coeff.abs());
    }
    if g > 1 {
        for coeff in c.terms.values_mut() {
            *coeff /= g;
        }
        c.constant = ceil_div(c.constant, g);
    }
    c
}

/// A conjunction of linear integer constraints of the form `affine ≤ 0`,
/// plus a substitution layer of exact variable *definitions*
/// (`var = affine`), used for stride witnesses: defining `i = lo + step·k`
/// eliminates `i` from the linear system up front, so Fourier–Motzkin works
/// directly on the witness variables and the gcd tightening can exploit the
/// `step`-multiples structurally (adding the equality as two inequalities
/// instead would let elimination order erase the alignment information).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LinCtx {
    constraints: Vec<Affine>,
    /// Exact definitions `var = value`, applied (in order) to every affine
    /// entering the context. Values are fully reduced (they mention no
    /// defined variable).
    defs: Vec<(Symbol, Affine)>,
}

impl LinCtx {
    /// An empty (trivially satisfiable) context.
    pub fn new() -> LinCtx {
        LinCtx::default()
    }

    /// Number of constraints currently in the context.
    pub fn len(&self) -> usize {
        self.constraints.len()
    }

    /// Returns `true` when the context has no constraints.
    pub fn is_empty(&self) -> bool {
        self.constraints.is_empty()
    }

    /// Applies the definition layer to an affine expression.
    pub fn reduce(&self, aff: &Affine) -> Affine {
        self.reduced(aff.clone())
    }

    /// Owned variant of [`LinCtx::reduce`]; free when no definitions exist
    /// (the dense-kernel fast path).
    fn reduced(&self, mut aff: Affine) -> Affine {
        for (v, val) in &self.defs {
            if aff.coeff(*v) != 0 {
                aff = aff.subst(*v, val);
            }
        }
        aff
    }

    /// Records the exact definition `var = value` and folds it into the
    /// existing constraints and definitions. Sound only for genuine
    /// equalities (the stride facts `i = lo + step·k` with a fresh witness
    /// `k`). A second definition of the same variable is ignored (the first
    /// one has already eliminated it).
    pub fn define(&mut self, var: impl Into<Symbol>, value: &Affine) {
        let var = var.into();
        if self.defs.iter().any(|(v, _)| *v == var) {
            return;
        }
        let value = self.reduce(value);
        for c in &mut self.constraints {
            if c.coeff(var) != 0 {
                *c = c.subst(var, &value);
            }
        }
        for (_, v) in &mut self.defs {
            if v.coeff(var) != 0 {
                *v = v.subst(var, &value);
            }
        }
        self.defs.push((var, value));
    }

    /// Decides `m | aff` syntactically under the definition layer: after
    /// reduction, the expression is a provable multiple of `m` when every
    /// coefficient and the constant are. (Sound but incomplete — unaligned
    /// expressions simply fail the test.)
    pub fn divisible(&self, aff: &Affine, m: i64) -> bool {
        if m == 1 {
            return true;
        }
        let r = self.reduce(aff);
        r.constant % m == 0 && r.terms.values().all(|c| c % m == 0)
    }

    /// Adds `lhs ≤ rhs`.
    pub fn assume_le(&mut self, lhs: &Affine, rhs: &Affine) {
        let c = self.reduced(lhs.sub(rhs));
        self.constraints.push(c);
    }

    /// Adds `lhs < rhs` (integer semantics: `lhs ≤ rhs − 1`).
    pub fn assume_lt(&mut self, lhs: &Affine, rhs: &Affine) {
        let mut c = self.reduced(lhs.sub(rhs));
        c.constant += 1;
        self.constraints.push(c);
    }

    /// Adds `lhs = rhs`.
    pub fn assume_eq(&mut self, lhs: &Affine, rhs: &Affine) {
        self.assume_le(lhs, rhs);
        self.assume_le(rhs, lhs);
    }

    /// Adds the comparison `lhs op rhs`.
    pub fn assume_cmp(&mut self, op: CmpOp, lhs: &Affine, rhs: &Affine) -> bool {
        match op {
            CmpOp::Le => self.assume_le(lhs, rhs),
            CmpOp::Lt => self.assume_lt(lhs, rhs),
            CmpOp::Ge => self.assume_le(rhs, lhs),
            CmpOp::Gt => self.assume_lt(rhs, lhs),
            CmpOp::Eq => self.assume_eq(lhs, rhs),
            // A disequality is a disjunction; it cannot be added to a
            // conjunction of linear constraints. The caller may case-split.
            CmpOp::Ne => return false,
        }
        true
    }

    /// Attempts to add a boolean [`IrExpr`] (conjunctions of affine
    /// comparisons). Returns `false` when part of the expression could not be
    /// represented; the representable part is still added, which is sound for
    /// use as a *hypothesis* context.
    pub fn assume_bool_expr(&mut self, e: &IrExpr) -> bool {
        match e {
            IrExpr::And(a, b) => {
                let ra = self.assume_bool_expr(a);
                let rb = self.assume_bool_expr(b);
                ra && rb
            }
            IrExpr::Cmp { op, lhs, rhs } => match (lhs.as_affine(), rhs.as_affine()) {
                (Some(l), Some(r)) => self.assume_cmp(*op, &l, &r),
                _ => false,
            },
            _ => false,
        }
    }

    /// Returns `true` when the context is provably infeasible (has no
    /// rational, hence no integer, solutions).
    pub fn is_infeasible(&self) -> bool {
        fm_infeasible_cached(&self.constraints)
    }

    /// Checks whether the context entails `lhs ≤ rhs`.
    pub fn entails_le(&self, lhs: &Affine, rhs: &Affine) -> bool {
        // Negation over the integers: lhs ≥ rhs + 1, i.e. rhs + 1 − lhs ≤ 0.
        let mut neg = self.reduced(rhs.sub(lhs));
        neg.constant += 1;
        let mut cs = self.constraints.clone();
        cs.push(neg);
        fm_infeasible_cached(&cs)
    }

    /// Checks whether the context entails `lhs = rhs`.
    pub fn entails_eq(&self, lhs: &Affine, rhs: &Affine) -> bool {
        self.entails_le(lhs, rhs) && self.entails_le(rhs, lhs)
    }

    /// Checks whether the context entails `lhs ≠ rhs` (by entailing one of
    /// the strict orders).
    pub fn entails_ne(&self, lhs: &Affine, rhs: &Affine) -> bool {
        let mut lt = lhs.sub(rhs);
        lt.constant += 1; // lhs ≤ rhs − 1
        let mut gt = rhs.sub(lhs);
        gt.constant += 1; // rhs ≤ lhs − 1
        self.entails_constraint(&lt) || self.entails_constraint(&gt)
    }

    fn entails_constraint(&self, c: &Affine) -> bool {
        // c ≤ 0 entailed iff context ∧ (c ≥ 1) infeasible.
        let mut neg = self.reduced(c.scale(-1));
        neg.constant += 1;
        let mut cs = self.constraints.clone();
        cs.push(neg);
        fm_infeasible_cached(&cs)
    }

    /// Checks whether the context entails the boolean expression `e`
    /// (conjunctions of affine comparisons only; anything else fails).
    pub fn entails_bool_expr(&self, e: &IrExpr) -> bool {
        match e {
            IrExpr::And(a, b) => self.entails_bool_expr(a) && self.entails_bool_expr(b),
            IrExpr::Cmp { op, lhs, rhs } => match (lhs.as_affine(), rhs.as_affine()) {
                (Some(l), Some(r)) => match op {
                    CmpOp::Le => self.entails_le(&l, &r),
                    CmpOp::Lt => {
                        let mut r1 = r.clone();
                        r1.constant -= 1;
                        self.entails_le(&l, &r1)
                    }
                    CmpOp::Ge => self.entails_le(&r, &l),
                    CmpOp::Gt => {
                        let mut l1 = l.clone();
                        l1.constant -= 1;
                        self.entails_le(&r, &l1)
                    }
                    CmpOp::Eq => self.entails_eq(&l, &r),
                    CmpOp::Ne => self.entails_ne(&l, &r),
                },
                _ => false,
            },
            _ => false,
        }
    }

    /// Adds the three-way case `lhs (<|=|>) rhs` selected by `case` and
    /// returns the extended context.
    pub fn with_case(&self, lhs: &Affine, rhs: &Affine, case: SplitCase) -> LinCtx {
        let mut out = self.clone();
        match case {
            SplitCase::Less => out.assume_lt(lhs, rhs),
            SplitCase::Equal => out.assume_eq(lhs, rhs),
            SplitCase::Greater => out.assume_lt(rhs, lhs),
        }
        out
    }
}

/// The three branches of a comparison case split.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SplitCase {
    /// `lhs < rhs`
    Less,
    /// `lhs = rhs`
    Equal,
    /// `lhs > rhs`
    Greater,
}

/// All three split cases.
pub const SPLIT_CASES: [SplitCase; 3] = [SplitCase::Less, SplitCase::Equal, SplitCase::Greater];

/// Fourier–Motzkin feasibility check: returns `true` when the system
/// `{ c ≤ 0 }` is provably infeasible over the rationals.
fn fm_infeasible(constraints: &[Affine]) -> bool {
    let mut cs: Vec<Affine> = constraints.to_vec();
    loop {
        // Constant constraints decide infeasibility immediately.
        if cs.iter().any(|c| c.terms.is_empty() && c.constant > 0) {
            return true;
        }
        // Pick the variable occurring in the fewest constraints to limit
        // blow-up.
        let vars: BTreeSet<Symbol> = cs.iter().flat_map(|c| c.terms.keys().copied()).collect();
        let Some(var) = vars
            .iter()
            .min_by_key(|v| cs.iter().filter(|c| c.coeff(**v) != 0).count())
        else {
            return false;
        };
        let var = *var;
        let mut uppers = Vec::new(); // a·v + p ≤ 0 with a > 0  → v ≤ −p/a
        let mut lowers = Vec::new(); // −b·v + q ≤ 0 with b > 0 → v ≥ q/b
        let mut rest = Vec::new();
        for c in cs {
            let a = c.coeff(var);
            if a > 0 {
                uppers.push(c);
            } else if a < 0 {
                lowers.push(c);
            } else {
                rest.push(c);
            }
        }
        for up in &uppers {
            for lo in &lowers {
                let a = up.coeff(var);
                let b = -lo.coeff(var);
                // b·up + a·lo eliminates v; the combination is re-tightened
                // so derived constraints keep integer precision.
                let combined = tighten(up.scale(b).add(&lo.scale(a)));
                debug_assert_eq!(combined.coeff(var), 0);
                rest.push(combined);
                if rest.len() > FM_CONSTRAINT_CAP {
                    // Give up: treat as (possibly) feasible, which is sound.
                    return false;
                }
            }
        }
        cs = rest;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn var(name: &str) -> Affine {
        Affine::var(name.to_string())
    }

    fn constant(v: i64) -> Affine {
        Affine::constant(v)
    }

    #[test]
    fn simple_entailment_chain() {
        // i ≤ n ∧ n ≤ 10 ⊨ i ≤ 10
        let mut ctx = LinCtx::new();
        ctx.assume_le(&var("i"), &var("n"));
        ctx.assume_le(&var("n"), &constant(10));
        assert!(ctx.entails_le(&var("i"), &constant(10)));
        assert!(!ctx.entails_le(&constant(10), &var("i")));
    }

    #[test]
    fn strict_inequalities_use_integer_semantics() {
        // j > jmax ⊨ jmax ≤ j − 1.
        let mut ctx = LinCtx::new();
        ctx.assume_lt(&var("jmax"), &var("j"));
        let mut j_minus_1 = var("j");
        j_minus_1.constant -= 1;
        assert!(ctx.entails_le(&var("jmax"), &j_minus_1));
    }

    #[test]
    fn infeasibility_detection() {
        let mut ctx = LinCtx::new();
        ctx.assume_le(&var("x"), &constant(3));
        ctx.assume_le(&constant(5), &var("x"));
        assert!(ctx.is_infeasible());
        // Everything is entailed from an infeasible context.
        assert!(ctx.entails_le(&constant(100), &var("x")));
    }

    #[test]
    fn equality_entailment() {
        let mut ctx = LinCtx::new();
        ctx.assume_eq(&var("vi"), &var("i"));
        ctx.assume_le(&var("i"), &constant(4));
        assert!(ctx.entails_eq(&var("vi"), &var("i")));
        assert!(ctx.entails_le(&var("vi"), &constant(4)));
        assert!(!ctx.entails_ne(&var("vi"), &var("i")));
    }

    #[test]
    fn disequality_via_strict_order() {
        let mut ctx = LinCtx::new();
        // vi ≤ i − 1 ⊨ vi ≠ i.
        let mut i_minus_1 = var("i");
        i_minus_1.constant -= 1;
        ctx.assume_le(&var("vi"), &i_minus_1);
        assert!(ctx.entails_ne(&var("vi"), &var("i")));
    }

    #[test]
    fn bool_expr_round_trip() {
        use stng_ir::ir::IrExpr;
        let mut ctx = LinCtx::new();
        let hyp = IrExpr::And(
            Box::new(IrExpr::cmp(
                CmpOp::Le,
                IrExpr::var("jmin"),
                IrExpr::var("j"),
            )),
            Box::new(IrExpr::cmp(
                CmpOp::Gt,
                IrExpr::var("j"),
                IrExpr::var("jmax"),
            )),
        );
        assert!(ctx.assume_bool_expr(&hyp));
        let goal = IrExpr::cmp(
            CmpOp::Le,
            IrExpr::var("jmax"),
            IrExpr::sub(IrExpr::var("j"), IrExpr::Int(1)),
        );
        assert!(ctx.entails_bool_expr(&goal));
    }

    #[test]
    fn case_split_contexts() {
        let ctx = LinCtx::new();
        let eq_case = ctx.with_case(&var("vi"), &var("i"), SplitCase::Equal);
        assert!(eq_case.entails_eq(&var("vi"), &var("i")));
        let lt_case = ctx.with_case(&var("vi"), &var("i"), SplitCase::Less);
        assert!(lt_case.entails_ne(&var("vi"), &var("i")));
    }

    #[test]
    fn integer_tightening_recovers_stride_gaps() {
        // Two counters aligned to stride 2 from the same base:
        // q = 2 + 2t, i = 2 + 2k (t, k ≥ 0). From q ≤ i − 1 (strictly below)
        // integer reasoning must conclude q ≤ i − 2: aligned counters that
        // differ, differ by a whole stride. Rational Fourier–Motzkin alone
        // cannot see this; the definition layer plus gcd tightening makes it
        // derivable.
        let mut ctx = LinCtx::new();
        let q = var("q");
        let i = var("i");
        let t = var("t");
        let k = var("k");
        let base = constant(2);
        ctx.define("q", &base.add(&t.scale(2)));
        ctx.define("i", &base.add(&k.scale(2)));
        ctx.assume_le(&constant(0), &t);
        ctx.assume_le(&constant(0), &k);
        ctx.assume_lt(&q, &i); // q ≤ i − 1
        let mut i_minus_2 = i.clone();
        i_minus_2.constant -= 2;
        assert!(ctx.entails_le(&q, &i_minus_2));
        // And alignment alone must not entail the gap without the order.
        let mut ctx2 = LinCtx::new();
        ctx2.define("q", &base.add(&t.scale(2)));
        ctx2.define("i", &base.add(&k.scale(2)));
        assert!(!ctx2.entails_le(&q, &i_minus_2));
    }

    #[test]
    fn definition_layer_decides_divisibility() {
        let mut ctx = LinCtx::new();
        let t = var("t");
        ctx.define("i", &constant(2).add(&t.scale(4)));
        // i − 2 = 4t: divisible by 4 and 2, not by 3.
        let mut i_minus_2 = var("i");
        i_minus_2.constant -= 2;
        assert!(ctx.divisible(&i_minus_2, 4));
        assert!(ctx.divisible(&i_minus_2, 2));
        assert!(!ctx.divisible(&i_minus_2, 3));
        // i − 1 = 4t + 1: not divisible by 4.
        let mut i_minus_1 = var("i");
        i_minus_1.constant -= 1;
        assert!(!ctx.divisible(&i_minus_1, 4));
        // Definitions fold into constraints added before them.
        let mut late = LinCtx::new();
        late.assume_le(&var("i"), &constant(10));
        late.define("i", &constant(2).add(&t.scale(4)));
        late.assume_le(&constant(3), &t);
        assert!(late.is_infeasible()); // i = 2+4t ≥ 14 > 10
    }

    #[test]
    fn tightening_handles_mixed_signs_and_negative_constants() {
        // 2x − 2y + 1 ≤ 0 tightens to x − y + 1 ≤ 0, so x < y entails x ≤ y−1.
        let mut ctx = LinCtx::new();
        let two_x = var("x").scale(2);
        let two_y_minus_1 = var("y").scale(2).add(&constant(-1));
        ctx.assume_le(&two_x, &two_y_minus_1);
        let mut y_minus_1 = var("y");
        y_minus_1.constant -= 1;
        assert!(ctx.entails_le(&var("x"), &y_minus_1));
    }

    #[test]
    fn multi_variable_elimination() {
        // 2x + 3y ≤ 12 ∧ x ≥ 3 ∧ y ≥ 2 ⊨ ⊥ (2·3 + 3·2 = 12 ≤ 12 is fine, so
        // feasible); tightening y ≥ 3 makes it infeasible.
        let mut ctx = LinCtx::new();
        let two_x_three_y = var("x").scale(2).add(&var("y").scale(3));
        ctx.assume_le(&two_x_three_y, &constant(12));
        ctx.assume_le(&constant(3), &var("x"));
        ctx.assume_le(&constant(2), &var("y"));
        assert!(!ctx.is_infeasible());
        ctx.assume_le(&constant(3), &var("y"));
        assert!(ctx.is_infeasible());
    }
}
