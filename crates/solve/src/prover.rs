//! The sound verifier ("SMT-lite"): proves verification conditions valid for
//! all states.
//!
//! The paper discharges its final, soundness-critical check with Z3. The VCs
//! produced for the restricted predicate language only need a specific
//! fragment of reasoning, which this module implements directly:
//!
//! * linear integer arithmetic over the loop counters and bounds
//!   ([`crate::lin`], Fourier–Motzkin),
//! * ground theory-of-arrays reasoning — reads over the symbolic stores
//!   performed by a VC body are resolved by proving index equality or
//!   disequality, case-splitting when neither is provable,
//! * equality of real-valued expressions with uninterpreted pure functions,
//!   via the sum-of-products normal form of [`crate::norm`], and
//! * instantiation of universally quantified hypotheses at the indices the
//!   goal needs (the partial-Skolemization discipline of §4.3): a hypothesis
//!   clause is only ever instantiated at a goal read's index vector.
//!
//! The verifier is sound but deliberately incomplete: it either returns
//! [`Verdict::Valid`] (every VC proven for all states) or
//! [`Verdict::Unknown`] with a reason. It never claims invalidity —
//! counterexamples are the bounded checker's job.

use crate::lin::{LinCtx, SplitCase, SPLIT_CASES};
use crate::norm::{NAtom, NormErr, NormExpr, Store, SymState};
use crate::oblig::ProverSession;
use std::collections::BTreeMap;
use stng_intern::guard::Budget;
use stng_intern::Symbol;
use stng_ir::ir::{Affine, IrExpr, IrStmt};
use stng_pred::lang::{Pred, QuantClause};
use stng_pred::vcgen::Vc;

/// Result of attempting to verify one or more VCs.
#[derive(Debug, Clone, PartialEq)]
pub enum Verdict {
    /// Every condition was proven valid for all states.
    Valid,
    /// At least one condition could not be proven; the payload explains the
    /// first failure.
    Unknown(String),
}

impl Verdict {
    /// True when the verdict is [`Verdict::Valid`].
    pub fn is_valid(&self) -> bool {
        matches!(self, Verdict::Valid)
    }
}

/// Internal failure raised while attempting a proof under one context.
#[derive(Debug, Clone)]
enum Failure {
    /// A read/store index pair could not be ordered: case-split on it.
    Ambiguous(Affine, Affine),
    /// A quantified goal was not directly provable; these comparison pairs
    /// are promising case splits.
    Coverage(Vec<(Affine, Affine)>, String),
    /// Not provable by any strategy this prover has.
    Hard(String),
}

/// Configuration of the verifier.
#[derive(Debug, Clone, PartialEq)]
pub struct SmtLite {
    /// Maximum depth of nested case splits.
    pub max_split_depth: usize,
    /// Global budget on proof attempts (guards against pathological
    /// split explosion).
    pub max_attempts: usize,
}

impl Default for SmtLite {
    fn default() -> Self {
        SmtLite {
            max_split_depth: 10,
            max_attempts: 50_000,
        }
    }
}

impl SmtLite {
    /// Creates a verifier with default limits.
    pub fn new() -> SmtLite {
        SmtLite::default()
    }

    /// Verifies a set of VCs; valid only if every one is valid.
    pub fn verify_all(&self, vcs: &[Vc]) -> Verdict {
        self.verify_all_counting(vcs).0
    }

    /// Like [`SmtLite::verify_all`], additionally returning the total number
    /// of proof attempts spent (the case-split search effort), for
    /// benchmarking instrumentation.
    pub fn verify_all_counting(&self, vcs: &[Vc]) -> (Verdict, usize) {
        self.verify_all_governed(vcs, &Budget::unlimited())
    }

    /// Like [`SmtLite::verify_all_counting`], but every proof attempt also
    /// charges the shared [`Budget`] (attempt pool + wall-clock deadline).
    /// Exhaustion yields `Verdict::Unknown` — sound but incomplete, exactly
    /// like the prover's own internal limits; the caller distinguishes the
    /// cases via [`Budget::exhausted`].
    pub fn verify_all_governed(&self, vcs: &[Vc], budget: &Budget) -> (Verdict, usize) {
        self.verify_all_with(vcs, budget, None, false)
    }

    /// Memoizing verification: like [`SmtLite::verify_all_governed`] but
    /// every settled case-split subtree is recorded in (and replayed from)
    /// the [`ProverSession`], which CEGIS shares across all candidates of
    /// one kernel. Memo hits charge neither the returned attempt count nor
    /// the [`Budget`] — only genuinely new obligations cost anything.
    pub fn verify_all_session(
        &self,
        vcs: &[Vc],
        budget: &Budget,
        session: &ProverSession,
    ) -> (Verdict, usize) {
        self.verify_all_with(vcs, budget, Some(session), false)
    }

    /// Oracle verification: identical logic, but every [`LinCtx`] runs the
    /// original tree-walking Fourier–Motzkin with no verdict memo, learned
    /// cores, or obligation memoization. The corpus-wide differential test
    /// pins `verify_all_session` ≡ `verify_all_governed` ≡ this.
    pub fn verify_all_legacy(&self, vcs: &[Vc], budget: &Budget) -> (Verdict, usize) {
        self.verify_all_with(vcs, budget, None, true)
    }

    fn verify_all_with(
        &self,
        vcs: &[Vc],
        budget: &Budget,
        session: Option<&ProverSession>,
        legacy: bool,
    ) -> (Verdict, usize) {
        let mut attempts = 0;
        for vc in vcs {
            let (verdict, spent) = self.verify_vc_with(vc, budget, session, legacy);
            attempts += spent;
            if let Verdict::Unknown(reason) = verdict {
                return (Verdict::Unknown(format!("{}: {reason}", vc.name)), attempts);
            }
        }
        (Verdict::Valid, attempts)
    }

    /// Verifies a single VC.
    pub fn verify_vc(&self, vc: &Vc) -> Verdict {
        self.verify_vc_counting(vc).0
    }

    /// Like [`SmtLite::verify_vc`], additionally returning the number of
    /// proof attempts spent.
    pub fn verify_vc_counting(&self, vc: &Vc) -> (Verdict, usize) {
        self.verify_vc_governed(vc, &Budget::unlimited())
    }

    /// Budget-governed single-VC verification; see
    /// [`SmtLite::verify_all_governed`].
    pub fn verify_vc_governed(&self, vc: &Vc, budget: &Budget) -> (Verdict, usize) {
        self.verify_vc_with(vc, budget, None, false)
    }

    fn verify_vc_with(
        &self,
        vc: &Vc,
        budget: &Budget,
        memo: Option<&ProverSession>,
        legacy: bool,
    ) -> (Verdict, usize) {
        // The memo key's VC component is the full structural rendering:
        // distinct candidates' distinct VCs get distinct ids, shared ones
        // (loop bounds, frame conditions) collapse onto one.
        let vc_key = memo.map(|m| m.vc_id(&format!("{vc:?}"))).unwrap_or(0);
        let mut session = ProofSession {
            vc,
            hyp_clauses: Vec::new(),
            hyp_real_env: Default::default(),
            attempts: 0,
            max_attempts: self.max_attempts,
            budget,
            memo,
            vc_key,
        };
        let mut hyp_real_env = BTreeMap::new();
        // Partition hypotheses.
        let mut base_ctx = if legacy {
            LinCtx::new_legacy()
        } else {
            LinCtx::new()
        };
        for hyp in &vc.hypotheses {
            for conjunct in hyp.conjuncts() {
                match conjunct {
                    Pred::Bool(e) => {
                        // Partial representation is sound for hypotheses.
                        let _ = base_ctx.assume_bool_expr(e);
                    }
                    Pred::DataEq { lhs, rhs } => {
                        if let IrExpr::Var(name) = lhs {
                            // Value over the pre-state; normalize with an
                            // empty symbolic state (no stores yet).
                            let pre = SymState::default();
                            if let Ok(v) = pre.norm_data(rhs, &base_ctx) {
                                hyp_real_env.insert(Symbol::intern(name), v);
                            }
                        }
                    }
                    Pred::Stride { var, lo, step } => {
                        // The counter is lo + step·k for a fresh witness
                        // k ≥ 0. Installing it as an exact *definition*
                        // substitutes `var` out of all linear reasoning up
                        // front — the ISSUE's "i = lo + step·k before linear
                        // reasoning" — so Fourier–Motzkin works on the
                        // witness and the gcd tightening sees the stride.
                        let pre = SymState::default();
                        if let Some(lo_aff) = pre.norm_int(lo) {
                            let witness = Affine::var(format!("k!{var}"));
                            base_ctx
                                .define(Symbol::intern(var), &lo_aff.add(&witness.scale(*step)));
                            base_ctx.assume_le(&Affine::constant(0), &witness);
                        }
                    }
                    Pred::Forall(clause) => session.hyp_clauses.push(clause),
                    Pred::And(_) => unreachable!("conjuncts() flattens conjunctions"),
                }
            }
        }
        session.hyp_real_env = std::sync::Arc::new(hyp_real_env);
        let verdict = match session.prove(&base_ctx, self.max_split_depth) {
            Ok(()) => Verdict::Valid,
            Err(reason) => Verdict::Unknown(reason),
        };
        (verdict, session.attempts)
    }
}

struct ProofSession<'a> {
    vc: &'a Vc,
    hyp_clauses: Vec<&'a QuantClause>,
    hyp_real_env: std::sync::Arc<BTreeMap<Symbol, NormExpr>>,
    attempts: usize,
    max_attempts: usize,
    budget: &'a Budget,
    /// Kernel-level obligation memo shared across candidates; `None` runs
    /// the un-memoized search.
    memo: Option<&'a ProverSession>,
    /// This VC's id in the memo's key space.
    vc_key: u32,
}

impl<'a> ProofSession<'a> {
    fn prove(&mut self, ctx: &LinCtx, depth: usize) -> Result<(), String> {
        if ctx.is_infeasible() {
            return Ok(());
        }
        // One span per obligation; recursion through `split` nests them, so
        // an armed trace shows the case-split tree. The close event carries
        // the memo outcome and the remaining split depth.
        let mut oblig_span = stng_obs::span(&stng_obs::names::PROVE_OBLIG);
        oblig_span.arg(depth as u64);
        // Settled subtree? Replaying a memoized verdict charges nothing —
        // neither the attempt counter nor the governed budget — so a warm
        // memo can never push a kernel onto the degradation ladder.
        let handle = self.memo.map(|m| m.ctx_handle(ctx));
        if let (Some(memo), Some(handle)) = (self.memo, handle) {
            if let Some(verdict) = memo.lookup(self.vc_key, handle, depth) {
                oblig_span.detail(&stng_obs::names::MEMO_HIT);
                return verdict;
            }
        }
        oblig_span.detail(&stng_obs::names::MEMO_MISS);
        self.attempts += 1;
        if self.attempts > self.max_attempts {
            return Err("proof attempt budget exhausted".to_string());
        }
        // One poll per case-split attempt: charges the kernel-level attempt
        // pool and checks the wall-clock deadline. The prover stays sound —
        // exhaustion is just one more way to answer Unknown.
        if let Err(reason) = self.budget.consume_prover_attempts(1) {
            return Err(format!("prover budget exhausted ({reason})"));
        }
        let verdict = match self.attempt(ctx) {
            Ok(()) => Ok(()),
            Err(Failure::Hard(msg)) => Err(msg),
            Err(Failure::Ambiguous(a, b)) => {
                if depth == 0 {
                    Err("case-split depth exhausted (ambiguous array access)".to_string())
                } else {
                    self.split(ctx, depth, &a, &b)
                }
            }
            Err(Failure::Coverage(candidates, msg)) => {
                if depth == 0 {
                    Err(format!("case-split depth exhausted: {msg}"))
                } else {
                    let mut last_err = msg;
                    let mut closed = false;
                    for (a, b) in candidates {
                        match self.split(ctx, depth, &a, &b) {
                            Ok(()) => {
                                closed = true;
                                break;
                            }
                            Err(e) => last_err = e,
                        }
                    }
                    if closed {
                        Ok(())
                    } else {
                        Err(format!("no case split closed the goal: {last_err}"))
                    }
                }
            }
        };
        // Memoize clean outcomes only: a verdict reached after tripping the
        // attempt cap or the governed budget reflects resource exhaustion,
        // not the obligation, and a later candidate with budget left must
        // be allowed to retry it.
        if let (Some(memo), Some(handle)) = (self.memo, handle) {
            if self.attempts <= self.max_attempts && self.budget.exhausted().is_none() {
                memo.record(self.vc_key, handle, depth, verdict.clone());
            }
        }
        verdict
    }

    fn split(&mut self, ctx: &LinCtx, depth: usize, a: &Affine, b: &Affine) -> Result<(), String> {
        for case in SPLIT_CASES {
            let ctx2 = ctx.with_case(a, b, case);
            if ctx2.is_infeasible() {
                continue;
            }
            // Splitting must make progress in the two inequality branches;
            // the equality branch always adds information.
            if case != SplitCase::Equal && ctx2 == *ctx {
                continue;
            }
            self.prove(&ctx2, depth - 1)?;
        }
        Ok(())
    }

    /// One direct proof attempt under a fixed linear context.
    fn attempt(&mut self, ctx: &LinCtx) -> Result<(), Failure> {
        // 1. Execute the straight-line body symbolically.
        let mut state = SymState {
            real_env: std::sync::Arc::clone(&self.hyp_real_env),
            ..SymState::default()
        };
        for stmt in &self.vc.body {
            match stmt {
                IrStmt::AssignScalar { name, value } => {
                    let is_int_update = self.vc.int_scalars.contains(name)
                        || (value_is_integer_shaped(value)
                            && !state.real_env.contains_key(&Symbol::intern(name))
                            && value
                                .free_vars()
                                .iter()
                                .all(|v| !state.real_env.contains_key(&Symbol::intern(v))));
                    if is_int_update {
                        if let Some(aff) = state.norm_int(value) {
                            state.int_env.insert(Symbol::intern(name), aff);
                            continue;
                        }
                    }
                    let v = state.norm_data(value, ctx).map_err(norm_err_to_failure)?;
                    std::sync::Arc::make_mut(&mut state.real_env).insert(Symbol::intern(name), v);
                }
                IrStmt::Store {
                    array,
                    indices,
                    value,
                } => {
                    let idx: Option<Vec<Affine>> =
                        indices.iter().map(|ix| state.norm_int(ix)).collect();
                    let idx = idx.ok_or_else(|| {
                        Failure::Hard(format!("non-affine store index into '{array}'"))
                    })?;
                    let v = state.norm_data(value, ctx).map_err(norm_err_to_failure)?;
                    state.stores.push(Store {
                        array: Symbol::intern(array),
                        indices: idx,
                        value: v,
                    });
                }
                other => {
                    return Err(Failure::Hard(format!(
                        "verification-condition body is not straight-line: {other:?}"
                    )))
                }
            }
        }

        // 2. Prove every conclusion conjunct.
        for conjunct in self.vc.conclusion.conjuncts() {
            match conjunct {
                Pred::Bool(e) => {
                    let substituted = subst_int_env(e, &state);
                    if !ctx.entails_bool_expr(&substituted) {
                        return Err(Failure::Hard(format!("scalar condition not entailed: {e}")));
                    }
                }
                Pred::DataEq { lhs, rhs } => {
                    let l = state.norm_data(lhs, ctx).map_err(norm_err_to_failure)?;
                    let r = state.norm_data(rhs, ctx).map_err(norm_err_to_failure)?;
                    if !self.data_eq(&l, &r, ctx) {
                        return Err(Failure::Hard(format!(
                            "scalar data equality not provable: {lhs} = {rhs}"
                        )));
                    }
                }
                Pred::Stride { var, lo, step } => {
                    // The post-state value of the counter must stay aligned:
                    // `step | value − lo` under the known stride facts.
                    let value = state.int_value(var);
                    let lo_aff = state
                        .norm_int(lo)
                        .ok_or_else(|| Failure::Hard(format!("non-affine stride base {lo}")))?;
                    if !ctx.divisible(&value.sub(&lo_aff), *step) {
                        return Err(Failure::Hard(format!(
                            "stride fact not provable: {var} == {lo} (mod {step})"
                        )));
                    }
                }
                Pred::Forall(clause) => {
                    self.prove_forall(clause, ctx, &state)?;
                }
                Pred::And(_) => unreachable!("conjuncts() flattens conjunctions"),
            }
        }
        Ok(())
    }

    /// Proves a universally quantified conclusion clause under `ctx` in the
    /// post-state described by `state`.
    fn prove_forall(
        &mut self,
        clause: &QuantClause,
        ctx: &LinCtx,
        state: &SymState,
    ) -> Result<(), Failure> {
        // Rename quantified variables to fresh names so they cannot clash
        // with program variables.
        let renaming: Vec<(String, String)> = clause
            .bounds
            .iter()
            .map(|b| (b.var.clone(), format!("q!{}", b.var)))
            .collect();
        let rename = |e: &IrExpr| -> IrExpr {
            let mut out = e.clone();
            for (old, new) in &renaming {
                out = out.subst_var(old, &IrExpr::var(new.clone()));
            }
            out
        };

        // Assume the bounds of the quantified variables in an extended
        // context (bounds are evaluated in the post-state). Strided bounds
        // additionally pin the variable to its arithmetic progression:
        // `q = lo + step·t` is installed as an exact definition with a fresh
        // witness `t ≥ 0`, so both the linear reasoning and divisibility
        // questions about `q` resolve through the substitution.
        let mut ctx2 = ctx.clone();
        for bound in &clause.bounds {
            let qname = format!("q!{}", bound.var);
            let qvar = Affine::var(qname.as_str());
            let lo = state
                .norm_int(&rename(&bound.inclusive_lo()))
                .ok_or_else(|| Failure::Hard(format!("non-affine bound {}", bound.lo)))?;
            let hi = state
                .norm_int(&rename(&bound.inclusive_hi()))
                .ok_or_else(|| Failure::Hard(format!("non-affine bound {}", bound.hi)))?;
            if bound.step > 1 {
                let witness = Affine::var(format!("t!{qname}"));
                ctx2.define(Symbol::intern(&qname), &lo.add(&witness.scale(bound.step)));
                ctx2.assume_le(&Affine::constant(0), &witness);
            }
            ctx2.assume_le(&lo, &qvar);
            ctx2.assume_le(&qvar, &hi);
        }
        if ctx2.is_infeasible() {
            // Empty quantification domain: vacuously true.
            return Ok(());
        }

        // Target indices of the goal read, in the post-state.
        let mut target: Vec<Affine> = Vec::new();
        for ix in &clause.eq.indices {
            let aff = state
                .norm_int(&rename(ix))
                .ok_or_else(|| Failure::Hard(format!("non-affine output index {ix}")))?;
            target.push(aff);
        }

        // Left-hand side: the post-state content of the output array.
        let goal_array = Symbol::intern(&clause.eq.array);
        let lhs = state
            .resolve_load(goal_array, &target, &ctx2)
            .map_err(norm_err_to_failure)?;
        // Right-hand side: the defining expression in the post-state.
        let rhs = state
            .norm_data(&rename(&clause.eq.rhs), &ctx2)
            .map_err(norm_err_to_failure)?;

        if self.data_eq(&lhs, &rhs, &ctx2) {
            return Ok(());
        }

        // Direct proof failed: propose case splits between the goal indices
        // and (a) the indices of stores to the same array, (b) the bounds of
        // hypothesis clauses describing the same array.
        let mut candidates: Vec<(Affine, Affine)> = Vec::new();
        for store in &state.stores {
            if store.array == goal_array && store.indices.len() == target.len() {
                for (t, s) in target.iter().zip(&store.indices) {
                    if !ctx2.entails_eq(t, s) && !ctx2.entails_ne(t, s) {
                        candidates.push((t.clone(), s.clone()));
                    }
                }
            }
        }
        let pre = SymState {
            real_env: std::sync::Arc::clone(&self.hyp_real_env),
            ..SymState::default()
        };
        for hyp in &self.hyp_clauses {
            if hyp.eq.array != clause.eq.array || hyp.bounds.len() != target.len() {
                continue;
            }
            for (dim, bound) in hyp.bounds.iter().enumerate() {
                for expr in [bound.inclusive_lo(), bound.inclusive_hi()] {
                    if let Some(aff) = pre.norm_int(&expr) {
                        let pair = (target[dim].clone(), aff);
                        if !candidates.contains(&pair) {
                            candidates.push(pair);
                        }
                    }
                }
            }
        }
        Err(Failure::Coverage(
            candidates,
            format!(
                "quantified goal not provable directly: {}[..] vs {}",
                clause.eq.array, clause.eq.rhs
            ),
        ))
    }

    /// Checks equality of two normalized data expressions, rewriting
    /// pre-state reads of output arrays through the quantified hypotheses
    /// (quantifier instantiation at the read's own index vector).
    fn data_eq(&mut self, lhs: &NormExpr, rhs: &NormExpr, ctx: &LinCtx) -> bool {
        if lhs.eq_mod_ctx(rhs, ctx) {
            return true;
        }
        let mut l = *lhs;
        let mut r = *rhs;
        for _ in 0..4 {
            let mut changed = false;
            for side in [&mut l, &mut r] {
                let loads = side.loads();
                for (array, indices) in loads {
                    if let Some(replacement) = self.rewrite_via_hypotheses(array, indices, ctx) {
                        let atom = NAtom::Load {
                            array,
                            indices: indices.to_vec(),
                        };
                        *side = side.subst_atom(&atom, &replacement);
                        changed = true;
                    }
                }
            }
            if l.eq_mod_ctx(&r, ctx) {
                return true;
            }
            if !changed {
                break;
            }
        }
        false
    }

    /// Attempts to rewrite a pre-state read `array[indices]` using one of the
    /// quantified hypothesis clauses: the clause is instantiated at exactly
    /// this index vector (partial Skolemization), its bounds must be entailed
    /// by the context, and its right-hand side becomes the read's value. For
    /// strided clause bounds the instantiation point must additionally be
    /// *aligned*: `step | index − lo`, decided under the stride facts in
    /// scope.
    fn rewrite_via_hypotheses(
        &self,
        array: Symbol,
        indices: &[Affine],
        ctx: &LinCtx,
    ) -> Option<NormExpr> {
        let pre = SymState {
            real_env: std::sync::Arc::clone(&self.hyp_real_env),
            ..SymState::default()
        };
        'clauses: for clause in &self.hyp_clauses {
            if clause.eq.array != array.as_str()
                || clause.eq.indices.len() != indices.len()
                || clause.bounds.len() != clause.eq.indices.len()
            {
                continue;
            }
            // The clause's output indices must be exactly its quantified
            // variables, in order — which is how every predicate this system
            // builds is shaped.
            let mut quant_vars: Vec<&String> = Vec::new();
            for (k, ix) in clause.eq.indices.iter().enumerate() {
                match ix {
                    IrExpr::Var(name) if *name == clause.bounds[k].var => quant_vars.push(name),
                    _ => continue 'clauses,
                }
            }
            // Bounds must hold at the instantiation point.
            for (k, bound) in clause.bounds.iter().enumerate() {
                let lo = pre.norm_int(&bound.inclusive_lo())?;
                let hi = pre.norm_int(&bound.inclusive_hi())?;
                if !ctx.entails_le(&lo, &indices[k]) || !ctx.entails_le(&indices[k], &hi) {
                    continue 'clauses;
                }
                if bound.step > 1 && !ctx.divisible(&indices[k].sub(&lo), bound.step) {
                    continue 'clauses;
                }
            }
            // Instantiate the right-hand side at the read's indices.
            let mut rhs = clause.eq.rhs.clone();
            for (var, value) in quant_vars.iter().zip(indices) {
                rhs = rhs.subst_var(var, &value.to_expr());
            }
            if let Ok(value) = pre.norm_data(&rhs, ctx) {
                return Some(value);
            }
        }
        None
    }
}

fn norm_err_to_failure(err: NormErr) -> Failure {
    match err {
        NormErr::Ambiguous {
            read_index,
            store_index,
        } => Failure::Ambiguous(read_index, store_index),
        NormErr::Unsupported(msg) => Failure::Hard(msg),
    }
}

/// Heuristic: an assignment is an integer (counter) update when its value
/// expression contains no real literals, loads, or calls.
fn value_is_integer_shaped(e: &IrExpr) -> bool {
    let mut integer = true;
    e.walk(&mut |x| {
        if matches!(
            x,
            IrExpr::Real(_) | IrExpr::Load { .. } | IrExpr::Call { .. }
        ) {
            integer = false;
        }
    });
    integer
}

/// Substitutes the post-state integer environment into a boolean expression.
fn subst_int_env(e: &IrExpr, state: &SymState) -> IrExpr {
    let mut out = e.clone();
    for (name, aff) in &state.int_env {
        out = out.subst_var(name.as_str(), &aff.to_expr());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use stng_ir::lower::kernel_from_source;
    use stng_pred::fixtures;
    use stng_pred::vcgen::{analyze_loop_nest, generate_vcs};

    fn running_example_vcs() -> Vec<Vc> {
        let kernel = kernel_from_source(fixtures::RUNNING_EXAMPLE, 0).unwrap();
        let nest = analyze_loop_nest(&kernel).unwrap();
        generate_vcs(
            &nest,
            &kernel.assumptions,
            &fixtures::running_example_invariants(),
            &fixtures::running_example_post(),
        )
    }

    #[test]
    fn running_example_initiation_and_descend_are_valid() {
        let vcs = running_example_vcs();
        let prover = SmtLite::new();
        for name in ["initiation(j)", "descend(j->i)"] {
            let vc = vcs.iter().find(|vc| vc.name == name).unwrap();
            assert!(
                prover.verify_vc(vc).is_valid(),
                "{name} should be valid: {:?}",
                prover.verify_vc(vc)
            );
        }
    }

    #[test]
    fn running_example_preservation_is_valid() {
        let vcs = running_example_vcs();
        let prover = SmtLite::new();
        let vc = vcs.iter().find(|vc| vc.name == "preservation(i)").unwrap();
        let verdict = prover.verify_vc(vc);
        assert!(
            verdict.is_valid(),
            "preservation should be valid: {verdict:?}"
        );
    }

    #[test]
    fn running_example_ascend_and_exit_are_valid() {
        let vcs = running_example_vcs();
        let prover = SmtLite::new();
        for name in ["ascend(i->j)", "exit"] {
            let vc = vcs.iter().find(|vc| vc.name == name).unwrap();
            let verdict = prover.verify_vc(vc);
            assert!(verdict.is_valid(), "{name} should be valid: {verdict:?}");
        }
    }

    #[test]
    fn full_vc_set_verifies() {
        let prover = SmtLite::new();
        assert!(prover.verify_all(&running_example_vcs()).is_valid());
    }

    #[test]
    fn wrong_postcondition_is_not_proven() {
        let kernel = kernel_from_source(fixtures::RUNNING_EXAMPLE, 0).unwrap();
        let nest = analyze_loop_nest(&kernel).unwrap();
        let mut post = fixtures::running_example_post();
        // Claim a[vi,vj] = b[vi,vj] (dropping one term).
        post.clauses[0].eq.rhs = IrExpr::Load {
            array: "b".into(),
            indices: vec![IrExpr::var("vi"), IrExpr::var("vj")],
        };
        let vcs = generate_vcs(
            &nest,
            &kernel.assumptions,
            &fixtures::running_example_invariants(),
            &post,
        );
        let prover = SmtLite::new();
        assert!(!prover.verify_all(&vcs).is_valid());
    }

    #[test]
    fn wrong_invariant_is_not_proven() {
        let kernel = kernel_from_source(fixtures::RUNNING_EXAMPLE, 0).unwrap();
        let nest = analyze_loop_nest(&kernel).unwrap();
        let mut invariants = fixtures::running_example_invariants();
        // Break the inner invariant's scalar fact: claim t = b[i, j].
        invariants[1].scalar_eqs[0].1 = IrExpr::Load {
            array: "b".into(),
            indices: vec![IrExpr::var("i"), IrExpr::var("j")],
        };
        let vcs = generate_vcs(
            &nest,
            &kernel.assumptions,
            &invariants,
            &fixtures::running_example_post(),
        );
        let prover = SmtLite::new();
        assert!(!prover.verify_all(&vcs).is_valid());
    }

    #[test]
    fn warm_session_memo_replays_without_charging_budget() {
        let vcs = running_example_vcs();
        let prover = SmtLite::new();
        let session = ProverSession::new();
        let (cold, spent) = prover.verify_all_session(&vcs, &Budget::unlimited(), &session);
        assert!(cold.is_valid());
        assert!(spent > 0, "cold pass must do real proof work");
        assert!(session.misses() > 0);
        // Re-verifying the same VCs through the warm session must succeed
        // from the memo alone: zero attempts charged, and a zero-token
        // attempt budget never trips — a warm memo can never push a kernel
        // onto the degradation ladder.
        let zero = Budget::limited(None, Some(0), None);
        let (warm, spent_warm) = prover.verify_all_session(&vcs, &zero, &session);
        assert!(warm.is_valid());
        assert_eq!(spent_warm, 0, "memo hits must not count as attempts");
        assert!(
            zero.exhausted().is_none(),
            "memo hits must not charge the governed budget"
        );
    }

    #[test]
    fn legacy_oracle_agrees_on_the_running_example() {
        let vcs = running_example_vcs();
        let prover = SmtLite::new();
        let (compiled, _) = prover.verify_all_governed(&vcs, &Budget::unlimited());
        let (legacy, _) = prover.verify_all_legacy(&vcs, &Budget::unlimited());
        assert_eq!(compiled, legacy);
        assert!(legacy.is_valid());
    }

    #[test]
    fn trivially_true_vc_is_valid() {
        let vc = Vc {
            name: "trivial".into(),
            hypotheses: vec![],
            body: vec![],
            conclusion: Pred::truth(),
            int_scalars: vec![],
            scope: stng_pred::vcgen::VcScope::Any,
        };
        assert!(SmtLite::new().verify_vc(&vc).is_valid());
    }
}
