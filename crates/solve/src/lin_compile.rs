//! Slot-addressed Fourier–Motzkin: the compiled form of the tree-walking
//! elimination in [`crate::lin`].
//!
//! The tree engine works on `Affine` values — `BTreeMap<Symbol, i64>` per
//! constraint — so every coefficient lookup, scale, and combination walks
//! and reallocates ordered maps. This module lowers one feasibility query
//! **once** into dense [`Row`]s over pre-resolved variable slots (the same
//! move `stng-pred`'s VC bytecode makes for bounded checking): slots are
//! assigned in `Symbol` order, so "pick the minimum-occurrence variable,
//! break ties toward the smallest symbol" becomes "break ties toward the
//! lowest slot" and the compiled engine reproduces the tree engine's
//! elimination order — and therefore its verdict, constraint cap included —
//! exactly. The tree engine stays available as the differential oracle
//! (`tests/prover_differential.rs` pins agreement corpus-wide).
//!
//! Rows additionally carry a provenance bitmask over the input constraints.
//! When elimination derives a contradiction, the mask names the input subset
//! it was built from; [`fm_analyze`] re-verifies and greedily minimizes that
//! subset into a learned *infeasibility core* the caller may use to
//! short-circuit any later query that contains it.

use crate::lin::{ceil_div, FM_CONSTRAINT_CAP};
use std::borrow::Borrow;
use stng_intern::Symbol;
use stng_ir::ir::{gcd, Affine};

/// Provenance tracking is disabled past this many input constraints (the
/// mask is a `u128`); queries that large still get exact verdicts, just no
/// learned cores.
const MASK_LIMIT: usize = 128;

/// Cores are only minimized when the raw provenance set is this small —
/// each minimization step re-runs elimination on a candidate subset.
const MINIMIZE_LIMIT: usize = 16;

/// One dense constraint `Σ coeff·slot + constant ≤ 0`. Terms are sorted by
/// slot and zero coefficients are never stored (mirroring `Affine`).
struct Row {
    terms: Vec<(u32, i64)>,
    constant: i64,
    /// Bit `i` set ⇔ input constraint `i` contributed to this row.
    mask: u128,
}

impl Row {
    fn coeff(&self, slot: u32) -> i64 {
        self.terms
            .binary_search_by_key(&slot, |t| t.0)
            .map(|k| self.terms[k].1)
            .unwrap_or(0)
    }
}

/// Integer tightening of one row — the dense transliteration of
/// `lin::tighten`: divide the coefficients by their gcd `g` and round the
/// constant up (`⌈c/g⌉`), sound because every variable is integer-valued.
fn tighten_row(mut row: Row) -> Row {
    let mut g: i64 = 0;
    for &(_, c) in &row.terms {
        g = gcd(g, c.abs());
    }
    if g > 1 {
        for t in &mut row.terms {
            t.1 /= g;
        }
        row.constant = ceil_div(row.constant, g);
    }
    row
}

/// `b·up + a·lo` where `a = up.coeff(var) > 0` and `b = −lo.coeff(var) > 0`:
/// eliminates `var` (the coefficients cancel by construction) via one merge
/// scan over the two sorted term lists, then re-tightens.
fn combine(up: &Row, lo: &Row, var: u32) -> Row {
    let a = up.coeff(var);
    let b = -lo.coeff(var);
    let mut terms = Vec::with_capacity(up.terms.len() + lo.terms.len());
    let (mut i, mut j) = (0, 0);
    while i < up.terms.len() || j < lo.terms.len() {
        let next = match (up.terms.get(i), lo.terms.get(j)) {
            (Some(&(su, cu)), Some(&(sl, cl))) => match su.cmp(&sl) {
                std::cmp::Ordering::Less => {
                    i += 1;
                    (su, cu * b)
                }
                std::cmp::Ordering::Greater => {
                    j += 1;
                    (sl, cl * a)
                }
                std::cmp::Ordering::Equal => {
                    i += 1;
                    j += 1;
                    (su, cu * b + cl * a)
                }
            },
            (Some(&(su, cu)), None) => {
                i += 1;
                (su, cu * b)
            }
            (None, Some(&(sl, cl))) => {
                j += 1;
                (sl, cl * a)
            }
            (None, None) => unreachable!(),
        };
        if next.1 != 0 {
            terms.push(next);
        }
    }
    debug_assert!(terms.binary_search_by_key(&var, |t| t.0).is_err());
    tighten_row(Row {
        terms,
        constant: up.constant * b + lo.constant * a,
        mask: up.mask | lo.mask,
    })
}

/// The elimination loop — a statement-for-statement transliteration of
/// `lin::fm_infeasible` over dense rows. Returns `Some(mask)` (provenance of
/// the first contradiction row) when the system is infeasible, `None` when
/// it is possibly feasible (including the constraint-cap give-up, which must
/// match the tree engine's).
fn eliminate(mut rows: Vec<Row>, nslots: usize) -> Option<u128> {
    let mut occ = vec![0usize; nslots];
    loop {
        if let Some(row) = rows.iter().find(|r| r.terms.is_empty() && r.constant > 0) {
            return Some(row.mask);
        }
        occ.iter_mut().for_each(|o| *o = 0);
        for row in &rows {
            for &(slot, _) in &row.terms {
                occ[slot as usize] += 1;
            }
        }
        // Lowest slot = smallest symbol, so `min_by_key`'s keep-first tie
        // break matches the tree engine's BTreeSet iteration.
        let var = (0..nslots)
            .filter(|&s| occ[s] > 0)
            .min_by_key(|&s| occ[s])? as u32;
        let mut uppers = Vec::new();
        let mut lowers = Vec::new();
        let mut rest = Vec::new();
        for row in rows {
            let a = row.coeff(var);
            if a > 0 {
                uppers.push(row);
            } else if a < 0 {
                lowers.push(row);
            } else {
                rest.push(row);
            }
        }
        for up in &uppers {
            for lo in &lowers {
                rest.push(combine(up, lo, var));
                if rest.len() > FM_CONSTRAINT_CAP {
                    return None;
                }
            }
        }
        rows = rest;
    }
}

/// Lowers `constraints` into rows. Slot order is symbol order, which makes
/// each `Affine`'s BTreeMap iteration emit terms already slot-sorted.
fn lower<R: Borrow<Affine>>(constraints: &[R], track: bool) -> (Vec<Row>, usize) {
    let mut syms: Vec<Symbol> = constraints
        .iter()
        .flat_map(|c| c.borrow().terms.keys().copied())
        .collect();
    syms.sort();
    syms.dedup();
    let rows = constraints
        .iter()
        .map(|c| c.borrow())
        .enumerate()
        .map(|(i, c)| Row {
            terms: c
                .terms
                .iter()
                .map(|(v, &coeff)| (syms.binary_search(v).unwrap() as u32, coeff))
                .collect(),
            constant: c.constant,
            mask: if track { 1u128 << i } else { 0 },
        })
        .collect();
    (rows, syms.len())
}

/// Verdict-only compiled feasibility check (no provenance bookkeeping).
pub(crate) fn fm_infeasible_dense<R: Borrow<Affine>>(constraints: &[R]) -> bool {
    let (rows, nslots) = lower(constraints, false);
    eliminate(rows, nslots).is_some()
}

/// Compiled feasibility check with core learning: returns the verdict plus,
/// when infeasible, a minimized subset of input indices that elimination
/// *independently confirms* is infeasible (re-verification keeps learned
/// cores honest — a provenance mask names contributors, but only a subset
/// the engine re-derives a contradiction from is stored as a core).
pub(crate) fn fm_analyze<R: Borrow<Affine>>(constraints: &[R]) -> (bool, Option<Vec<usize>>) {
    let track = constraints.len() <= MASK_LIMIT;
    let (rows, nslots) = lower(constraints, track);
    let Some(mask) = eliminate(rows, nslots) else {
        return (false, None);
    };
    if !track || mask == 0 {
        return (true, None);
    }
    let mut members: Vec<usize> = (0..constraints.len())
        .filter(|&i| mask & (1u128 << i) != 0)
        .collect();
    if members.len() > MINIMIZE_LIMIT {
        return (true, None);
    }
    let subset_infeasible = |members: &[usize], skip: Option<usize>| {
        let subset: Vec<&Affine> = members
            .iter()
            .enumerate()
            .filter(|&(k, _)| Some(k) != skip)
            .map(|(_, &i)| constraints[i].borrow())
            .collect();
        fm_infeasible_dense(&subset)
    };
    // The mask names the contradiction's contributors, but elimination on
    // the subset alone picks its own variable order; only keep the core if
    // that run re-derives the contradiction.
    if !subset_infeasible(&members, None) {
        return (true, None);
    }
    // Greedy minimization: drop every member whose removal keeps the subset
    // infeasible.
    let mut k = 0;
    while k < members.len() {
        if members.len() > 1 && subset_infeasible(&members, Some(k)) {
            members.remove(k);
        } else {
            k += 1;
        }
    }
    (true, Some(members))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn le(lhs: Affine, rhs: Affine) -> Affine {
        lhs.sub(&rhs)
    }

    fn var(name: &str) -> Affine {
        Affine::var(name.to_string())
    }

    #[test]
    fn feasible_and_infeasible_systems() {
        // x ≤ 3 ∧ 5 ≤ x is infeasible; dropping either side is feasible.
        let upper = le(var("x"), Affine::constant(3));
        let lower = le(Affine::constant(5), var("x"));
        assert!(fm_infeasible_dense(&[upper.clone(), lower.clone()]));
        assert!(!fm_infeasible_dense(std::slice::from_ref(&upper)));
        assert!(!fm_infeasible_dense(&[lower]));
        assert!(!fm_infeasible_dense::<Affine>(&[]));
    }

    #[test]
    fn core_extraction_drops_irrelevant_constraints() {
        // Pad the contradiction with unrelated satisfiable facts; the core
        // must shrink back to the two-constraint contradiction.
        let constraints = vec![
            le(var("a"), var("b")),
            le(var("x"), Affine::constant(3)),
            le(var("c"), Affine::constant(100)),
            le(Affine::constant(5), var("x")),
            le(var("b"), var("c")),
        ];
        let (infeasible, core) = fm_analyze(&constraints);
        assert!(infeasible);
        assert_eq!(core, Some(vec![1, 3]));
    }

    #[test]
    fn tightening_matches_tree_semantics() {
        // 2x − 2y + 1 ≤ 0 tightens to x − y + 1 ≤ 0, so x ≥ y is refuted.
        let tight = le(
            var("x").scale(2),
            var("y").scale(2).add(&Affine::constant(-1)),
        );
        let order = le(var("y"), var("x"));
        assert!(fm_infeasible_dense(&[tight, order]));
    }
}
