//! Checking and verification for the STNG reproduction: the bounded /
//! randomized screen used inside CEGIS, and the sound "SMT-lite" verifier
//! that replaces the paper's use of Z3 for final validation.
//!
//! * [`bounded::BoundedChecker`] evaluates candidate invariants and
//!   postconditions on reachable machine states over small random inputs in
//!   the modular data domain, rejecting wrong candidates with
//!   counterexamples.
//! * [`prover::SmtLite`] proves verification conditions valid for **all**
//!   states, combining Fourier–Motzkin linear integer arithmetic
//!   ([`lin::LinCtx`]), canonical real-polynomial terms with uninterpreted
//!   functions ([`norm::NormExpr`]), read-over-write array reasoning, and
//!   quantifier instantiation with partial Skolemization.
//!
//! The division of labour matches §3.1 of the paper: the fast checks may be
//! unsound (they are only filters); the accepted summary is always backed by
//! a full proof from [`prover::SmtLite`].

pub mod bounded;
pub mod lin;
mod lin_compile;
pub mod norm;
pub mod oblig;
pub mod prover;

pub use bounded::{BoundedChecker, Counterexample};
pub use lin::{LinCtx, SplitCase};
pub use norm::{NormExpr, SymState};
pub use oblig::ProverSession;
pub use prover::{SmtLite, Verdict};

/// Occupancy snapshots of every arena/memo owned by this crate: normal-form
/// expressions, the Fourier–Motzkin verdict memo, learned infeasibility
/// cores, and hash-consed proof obligations.
pub fn arena_stats() -> Vec<stng_intern::ArenaStats> {
    let mut out = norm::arena_stats();
    out.extend(lin::arena_stats());
    out.push(oblig::arena_stats());
    out
}

/// Sweeps every arena/memo owned by this crate; returns entries evicted.
pub fn retain_epoch(cutoff: u64) -> usize {
    norm::retain_epoch(cutoff) + lin::retain_epoch(cutoff) + oblig::retain_epoch(cutoff)
}
