//! Hash-consed proof obligations and the per-kernel prover session memo.
//!
//! A proof obligation is "prove this VC's conclusion under this [`LinCtx`]"
//! — and the case-split search regenerates identical obligations constantly:
//! sibling branches share their prefix context, and successive CEGIS
//! candidates for one kernel differ only in the invariant conjunct under
//! test, so most of their VCs (loop entry, bounds, frame conditions) are
//! byte-identical across candidates. [`ProverSession`] memoizes subtree
//! verdicts keyed on (VC identity, hash-consed context, remaining split
//! depth) so each distinct subtree is proven once per kernel.
//!
//! Context canonicalization is [`LinCtx::obligation_key`]: the tightened /
//! sorted / deduplicated constraint set plus the definition layer — exactly
//! the state a feasibility or entailment query can observe, so two contexts
//! with the same key answer every query identically and their subtrees are
//! interchangeable. Keys are interned into a global epoch-tagged
//! [`ConsSet`], which gives sessions pointer-sized memo keys and gives
//! repeated contexts (across candidates *and* across kernels sharing
//! assumption shapes) one allocation.
//!
//! ## Sweep soundness
//!
//! Session memo entries hold raw interned-key addresses, so a sweep that
//! evicted a [`CtxKey`] mid-session could let a recycled allocation alias a
//! stale memo entry. Sessions are created and dropped inside one
//! `synthesize_governed` call, while `stng::memory::sweep` only runs between
//! pipeline invocations (batch-driver pass boundaries, service idle points)
//! — never while a kernel is in flight. The interned table itself is
//! epoch-tagged and re-tags on every hit, so sweeping between kernels keeps
//! hot context shapes and evicts cold ones; dropping an entry is always
//! safe because the next session re-interns from scratch.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use stng_intern::{ArenaStats, ConsSet, Symbol};
use stng_ir::ir::Affine;

use crate::lin::LinCtx;

/// The canonical, hashable identity of a prover context: everything a
/// [`LinCtx`] query can observe.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub(crate) struct CtxKey {
    canon: Vec<Affine>,
    defs: Vec<(Symbol, Affine)>,
}

/// Global hash-cons table of obligation contexts.
static OBLIGATIONS: ConsSet<CtxKey> = ConsSet::new();

/// Occupancy snapshot of the obligation context arena.
pub fn arena_stats() -> ArenaStats {
    OBLIGATIONS.stats("solve.obligations")
}

/// Sweeps obligation contexts last used before `cutoff`. Safe because no
/// [`ProverSession`] is live across a sweep (see the module docs).
pub fn retain_epoch(cutoff: u64) -> usize {
    OBLIGATIONS.retain_epoch(cutoff)
}

/// Memo key: (session-local VC id, interned [`CtxKey`] address, remaining
/// split depth).
type MemoKey = (u32, usize, usize);

/// Per-kernel prover memo: subtree verdicts for every obligation the
/// case-split search has settled, shared by all CEGIS candidates (and all
/// parallel candidate workers) of one kernel.
///
/// The memo key is `(vc, ctx, depth)`:
/// * `vc` — a session-local id for the VC's full structural rendering
///   (hypotheses and conclusion), so distinct candidates' distinct VCs never
///   collide while shared VCs do;
/// * `ctx` — the interned [`CtxKey`] address;
/// * `depth` — remaining split depth, because a subtree provable with more
///   splitting room may be `Unknown` with less.
///
/// Cached values are *clean* outcomes only: verdicts reached without
/// tripping the session's attempt cap or the [`stng::Budget`] prover-attempt
/// meter. Budget-interrupted failures are not cached (a later candidate with
/// budget left must be allowed to retry), and memo hits charge nothing — a
/// warm memo can never push a kernel onto the degradation ladder.
#[derive(Default)]
pub struct ProverSession {
    vc_ids: Mutex<HashMap<String, u32>>,
    memo: Mutex<HashMap<MemoKey, Result<(), String>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl ProverSession {
    /// A fresh session with an empty memo.
    pub fn new() -> ProverSession {
        ProverSession::default()
    }

    /// Obligations answered from the memo.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Obligations that had to be proven.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Session-local id for a VC's structural rendering.
    pub(crate) fn vc_id(&self, rendered: &str) -> u32 {
        let mut ids = self.vc_ids.lock().expect("session poisoned");
        let next = ids.len() as u32;
        *ids.entry(rendered.to_string()).or_insert(next)
    }

    /// Interns the context and returns its memo handle.
    pub(crate) fn ctx_handle(&self, ctx: &LinCtx) -> usize {
        let (canon, defs) = ctx.obligation_key();
        OBLIGATIONS.intern(CtxKey { canon, defs }) as *const CtxKey as usize
    }

    /// Looks up a settled subtree verdict, counting the outcome.
    pub(crate) fn lookup(&self, vc: u32, ctx: usize, depth: usize) -> Option<Result<(), String>> {
        let hit = self
            .memo
            .lock()
            .expect("session poisoned")
            .get(&(vc, ctx, depth))
            .cloned();
        match &hit {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        hit
    }

    /// Records a clean subtree verdict.
    pub(crate) fn record(&self, vc: u32, ctx: usize, depth: usize, verdict: Result<(), String>) {
        self.memo
            .lock()
            .expect("session poisoned")
            .insert((vc, ctx, depth), verdict);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vc_ids_are_stable_per_rendering() {
        let s = ProverSession::new();
        let a = s.vc_id("vc-a");
        let b = s.vc_id("vc-b");
        let a2 = s.vc_id("vc-a");
        assert_eq!(a, a2);
        assert_ne!(a, b);
    }

    #[test]
    fn identical_contexts_share_one_interned_key() {
        let s = ProverSession::new();
        let mk = || {
            let mut ctx = LinCtx::new();
            let i = Affine::var("oblig_i".to_string());
            let n = Affine::var("oblig_n".to_string());
            ctx.assume_le(&i, &n);
            ctx.define("oblig_s", &n.scale(2));
            ctx
        };
        let h1 = s.ctx_handle(&mk());
        let h2 = s.ctx_handle(&mk());
        assert_eq!(h1, h2);
        let mut other = mk();
        other.assume_le(&Affine::constant(0), &Affine::var("oblig_i".to_string()));
        assert_ne!(h1, s.ctx_handle(&other));
    }

    #[test]
    fn lookup_counts_hits_and_misses_and_replays_verdicts() {
        let s = ProverSession::new();
        assert_eq!(s.lookup(0, 1, 2), None);
        s.record(0, 1, 2, Ok(()));
        s.record(0, 1, 1, Err("no room".into()));
        assert_eq!(s.lookup(0, 1, 2), Some(Ok(())));
        assert_eq!(s.lookup(0, 1, 1), Some(Err("no room".into())));
        // Depth participates in the key.
        assert_eq!(s.lookup(0, 1, 3), None);
        assert_eq!(s.hits(), 2);
        assert_eq!(s.misses(), 2);
    }
}
