//! Canonical data-value terms with symbolic (affine) array indices, and
//! normalization of IR expressions against a symbolic machine state.
//!
//! This is the verifier-side analogue of `stng_sym::SymExpr`: where the
//! synthesizer's symbolic execution uses concrete indices (loop bounds are
//! concrete), the sound verifier reasons about *all* states, so array indices
//! are affine expressions over the free integer variables of a verification
//! condition. Values are kept in sum-of-products normal form; array reads are
//! resolved against the symbolic store list using the linear context
//! (read-over-write with provable index equality/disequality).

use crate::lin::LinCtx;
use std::cmp::Ordering;
use std::collections::BTreeMap;
use std::fmt;
use stng_ir::ir::{Affine, BinOp, IrExpr};

/// Failures raised during normalization.
#[derive(Debug, Clone, PartialEq)]
pub enum NormErr {
    /// An array read could not be resolved against a store because the index
    /// comparison is neither provably equal nor provably different; the
    /// caller should case-split on the two affine expressions.
    Ambiguous {
        /// Index component of the read.
        read_index: Affine,
        /// Index component of the store it clashed with.
        store_index: Affine,
    },
    /// The expression falls outside the supported fragment.
    Unsupported(String),
}

impl fmt::Display for NormErr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NormErr::Ambiguous {
                read_index,
                store_index,
            } => write!(
                f,
                "ambiguous store resolution: cannot order {read_index:?} against {store_index:?}"
            ),
            NormErr::Unsupported(msg) => write!(f, "unsupported expression: {msg}"),
        }
    }
}

/// An atomic factor of a normalized data term.
#[derive(Debug, Clone, PartialEq)]
pub enum NAtom {
    /// A read of the *pre-state* value of an array at affine indices.
    Load {
        /// Array name.
        array: String,
        /// Affine index per dimension.
        indices: Vec<Affine>,
    },
    /// A free real scalar of the pre-state.
    Var(String),
    /// An application of a pure (uninterpreted) function.
    Apply {
        /// Function name.
        func: String,
        /// Normalized arguments.
        args: Vec<NormExpr>,
    },
    /// An opaque quotient.
    Quot {
        /// Numerator.
        num: Box<NormExpr>,
        /// Denominator.
        den: Box<NormExpr>,
    },
}

impl Eq for NAtom {}

impl PartialOrd for NAtom {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for NAtom {
    fn cmp(&self, other: &Self) -> Ordering {
        fn rank(a: &NAtom) -> u8 {
            match a {
                NAtom::Load { .. } => 0,
                NAtom::Var(_) => 1,
                NAtom::Apply { .. } => 2,
                NAtom::Quot { .. } => 3,
            }
        }
        match (self, other) {
            (
                NAtom::Load {
                    array: a1,
                    indices: i1,
                },
                NAtom::Load {
                    array: a2,
                    indices: i2,
                },
            ) => a1.cmp(a2).then_with(|| i1.cmp(i2)),
            (NAtom::Var(a), NAtom::Var(b)) => a.cmp(b),
            (NAtom::Apply { func: f1, args: x1 }, NAtom::Apply { func: f2, args: x2 }) => {
                f1.cmp(f2).then_with(|| x1.cmp(x2))
            }
            (NAtom::Quot { num: n1, den: d1 }, NAtom::Quot { num: n2, den: d2 }) => {
                n1.cmp(n2).then_with(|| d1.cmp(d2))
            }
            _ => rank(self).cmp(&rank(other)),
        }
    }
}

/// One monomial: coefficient × product of atoms.
#[derive(Debug, Clone, PartialEq)]
pub struct NMono {
    /// Coefficient.
    pub coeff: f64,
    /// Factors and their powers, sorted.
    pub factors: BTreeMap<NAtom, u32>,
}

impl Eq for NMono {}

impl PartialOrd for NMono {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for NMono {
    fn cmp(&self, other: &Self) -> Ordering {
        self.key_cmp(other)
            .then_with(|| self.coeff.total_cmp(&other.coeff))
    }
}

impl NMono {
    fn constant(c: f64) -> NMono {
        NMono {
            coeff: c,
            factors: BTreeMap::new(),
        }
    }

    fn atom(a: NAtom) -> NMono {
        let mut factors = BTreeMap::new();
        factors.insert(a, 1);
        NMono {
            coeff: 1.0,
            factors,
        }
    }

    fn mul(&self, other: &NMono) -> NMono {
        // Merge the two sorted factor maps in one pass instead of cloning
        // the whole left map and re-finding every right atom via the entry
        // API. Atoms are cloned exactly once each.
        let mut factors = BTreeMap::new();
        let mut left = self.factors.iter().peekable();
        let mut right = other.factors.iter().peekable();
        loop {
            let take_left = match (left.peek(), right.peek()) {
                (Some((a, _)), Some((b, _))) => match a.cmp(b) {
                    Ordering::Less => true,
                    Ordering::Greater => false,
                    Ordering::Equal => {
                        let (atom, p) = left.next().expect("peeked");
                        let (_, q) = right.next().expect("peeked");
                        factors.insert(atom.clone(), p + q);
                        continue;
                    }
                },
                (Some(_), None) => true,
                (None, Some(_)) => false,
                (None, None) => break,
            };
            let (atom, p) = if take_left {
                left.next().expect("peeked")
            } else {
                right.next().expect("peeked")
            };
            factors.insert(atom.clone(), *p);
        }
        NMono {
            coeff: self.coeff * other.coeff,
            factors,
        }
    }

    /// Compares the factor multisets (the grouping key) without allocating
    /// intermediate key vectors.
    fn key_cmp(&self, other: &NMono) -> Ordering {
        self.factors.iter().cmp(other.factors.iter())
    }
}

/// A normalized data expression: sum of monomials.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct NormExpr {
    /// Monomials, sorted and merged.
    pub terms: Vec<NMono>,
}

impl Eq for NormExpr {}

impl PartialOrd for NormExpr {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for NormExpr {
    fn cmp(&self, other: &Self) -> Ordering {
        self.terms.cmp(&other.terms)
    }
}

impl NormExpr {
    /// The zero expression.
    pub fn zero() -> NormExpr {
        NormExpr::default()
    }

    /// A constant.
    pub fn constant(c: f64) -> NormExpr {
        NormExpr {
            terms: vec![NMono::constant(c)],
        }
        .normalized()
    }

    /// A single atom.
    pub fn atom(a: NAtom) -> NormExpr {
        NormExpr {
            terms: vec![NMono::atom(a)],
        }
    }

    /// A free real scalar.
    pub fn var(name: impl Into<String>) -> NormExpr {
        NormExpr::atom(NAtom::Var(name.into()))
    }

    /// A pre-state array read.
    pub fn load(array: impl Into<String>, indices: Vec<Affine>) -> NormExpr {
        NormExpr::atom(NAtom::Load {
            array: array.into(),
            indices,
        })
    }

    /// Sum.
    pub fn add(&self, other: &NormExpr) -> NormExpr {
        // Both sides are already in normal form (sorted by factor key, one
        // monomial per key), so a single linear merge replaces the previous
        // clone-both + extend + full re-sort.
        let mut terms = Vec::with_capacity(self.terms.len() + other.terms.len());
        let mut left = self.terms.iter().peekable();
        let mut right = other.terms.iter().peekable();
        loop {
            let take_left = match (left.peek(), right.peek()) {
                (Some(a), Some(b)) => match a.key_cmp(b) {
                    Ordering::Less => true,
                    Ordering::Greater => false,
                    Ordering::Equal => {
                        let a = left.next().expect("peeked");
                        let b = right.next().expect("peeked");
                        let coeff = a.coeff + b.coeff;
                        if coeff.abs() > 1e-12 {
                            terms.push(NMono {
                                coeff,
                                factors: a.factors.clone(),
                            });
                        }
                        continue;
                    }
                },
                (Some(_), None) => true,
                (None, Some(_)) => false,
                (None, None) => break,
            };
            let mono = if take_left {
                left.next().expect("peeked")
            } else {
                right.next().expect("peeked")
            };
            terms.push(mono.clone());
        }
        NormExpr { terms }
    }

    /// Difference.
    pub fn sub(&self, other: &NormExpr) -> NormExpr {
        self.add(&other.neg())
    }

    /// Product.
    pub fn mul(&self, other: &NormExpr) -> NormExpr {
        let mut terms = Vec::new();
        for a in &self.terms {
            for b in &other.terms {
                terms.push(a.mul(b));
            }
        }
        NormExpr { terms }.normalized()
    }

    /// Negation.
    pub fn neg(&self) -> NormExpr {
        let mut out = self.clone();
        for t in &mut out.terms {
            t.coeff = -t.coeff;
        }
        out
    }

    /// Quotient (kept opaque unless the divisor is a non-zero constant).
    pub fn div(&self, other: &NormExpr) -> NormExpr {
        if let Some(c) = other.as_constant() {
            if c.abs() > 1e-12 {
                let mut out = self.clone();
                for t in &mut out.terms {
                    t.coeff /= c;
                }
                return out.normalized();
            }
            return NormExpr::zero();
        }
        if self == other {
            return NormExpr::constant(1.0);
        }
        NormExpr::atom(NAtom::Quot {
            num: Box::new(self.clone()),
            den: Box::new(other.clone()),
        })
    }

    /// Returns `Some(c)` when the expression is the constant `c`.
    pub fn as_constant(&self) -> Option<f64> {
        match self.terms.len() {
            0 => Some(0.0),
            1 if self.terms[0].factors.is_empty() => Some(self.terms[0].coeff),
            _ => None,
        }
    }

    /// Structural equality up to a small coefficient tolerance (verification
    /// is with respect to the reals, so tiny floating-point drift from
    /// constant folding must not cause spurious mismatches).
    pub fn approx_eq(&self, other: &NormExpr) -> bool {
        if self.terms.len() != other.terms.len() {
            return false;
        }
        self.terms.iter().zip(&other.terms).all(|(a, b)| {
            a.factors == b.factors && {
                let scale = a.coeff.abs().max(b.coeff.abs()).max(1.0);
                (a.coeff - b.coeff).abs() <= 1e-9 * scale
            }
        })
    }

    /// Structural equality *modulo the linear context*: two expressions are
    /// equal when their monomials can be matched one-to-one with equal
    /// coefficients and factors, where array-read atoms compare by provable
    /// index equality rather than syntactic identity. This is what lets the
    /// verifier accept `b[q!vi, q!vj]` against `b[i, j]` inside a case branch
    /// that has assumed `q!vi = i ∧ q!vj = j`.
    pub fn eq_mod_ctx(&self, other: &NormExpr, ctx: &LinCtx) -> bool {
        if self.approx_eq(other) {
            return true;
        }
        if self.terms.len() != other.terms.len() {
            return false;
        }
        let mut used = vec![false; other.terms.len()];
        'outer: for a in &self.terms {
            for (k, b) in other.terms.iter().enumerate() {
                if used[k] {
                    continue;
                }
                let scale = a.coeff.abs().max(b.coeff.abs()).max(1.0);
                if (a.coeff - b.coeff).abs() > 1e-9 * scale {
                    continue;
                }
                if monomial_factors_eq_mod_ctx(a, b, ctx) {
                    used[k] = true;
                    continue 'outer;
                }
            }
            return false;
        }
        true
    }

    /// All pre-state load atoms occurring at the top level of monomials or
    /// nested inside applications/quotients.
    pub fn loads(&self) -> Vec<(String, Vec<Affine>)> {
        let mut out = Vec::new();
        self.collect_loads(&mut out);
        out
    }

    fn collect_loads(&self, out: &mut Vec<(String, Vec<Affine>)>) {
        for term in &self.terms {
            for atom in term.factors.keys() {
                match atom {
                    NAtom::Load { array, indices } => {
                        let entry = (array.clone(), indices.clone());
                        if !out.contains(&entry) {
                            out.push(entry);
                        }
                    }
                    NAtom::Apply { args, .. } => {
                        for a in args {
                            a.collect_loads(out);
                        }
                    }
                    NAtom::Quot { num, den } => {
                        num.collect_loads(out);
                        den.collect_loads(out);
                    }
                    NAtom::Var(_) => {}
                }
            }
        }
    }

    /// Replaces every occurrence of `target` (a load atom) with `value`,
    /// including inside applications and quotients.
    pub fn subst_atom(&self, target: &NAtom, value: &NormExpr) -> NormExpr {
        let mut result = NormExpr::zero();
        for term in &self.terms {
            let mut factor_expr = NormExpr::constant(term.coeff);
            for (atom, power) in &term.factors {
                let replacement = if atom == target {
                    value.clone()
                } else {
                    // Recurse into composite atoms.
                    match atom {
                        NAtom::Apply { func, args } => NormExpr::atom(NAtom::Apply {
                            func: func.clone(),
                            args: args.iter().map(|a| a.subst_atom(target, value)).collect(),
                        }),
                        NAtom::Quot { num, den } => NormExpr::atom(NAtom::Quot {
                            num: Box::new(num.subst_atom(target, value)),
                            den: Box::new(den.subst_atom(target, value)),
                        }),
                        other => NormExpr::atom(other.clone()),
                    }
                };
                for _ in 0..*power {
                    factor_expr = factor_expr.mul(&replacement);
                }
            }
            result = result.add(&factor_expr);
        }
        result
    }

    fn normalized(mut self) -> NormExpr {
        self.terms.sort();
        let mut merged: Vec<NMono> = Vec::new();
        for term in self.terms {
            if let Some(last) = merged.last_mut() {
                if last.key_cmp(&term) == Ordering::Equal {
                    last.coeff += term.coeff;
                    continue;
                }
            }
            merged.push(term);
        }
        merged.retain(|m| m.coeff.abs() > 1e-12);
        NormExpr { terms: merged }
    }
}

impl fmt::Display for NormExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.terms.is_empty() {
            return write!(f, "0");
        }
        for (k, term) in self.terms.iter().enumerate() {
            if k > 0 {
                write!(f, " + ")?;
            }
            write!(f, "{}", term.coeff)?;
            for (atom, power) in &term.factors {
                write!(f, "*")?;
                match atom {
                    NAtom::Load { array, indices } => {
                        write!(f, "{array}[")?;
                        for (n, ix) in indices.iter().enumerate() {
                            if n > 0 {
                                write!(f, ",")?;
                            }
                            write!(f, "{}", ix.to_expr())?;
                        }
                        write!(f, "]")?;
                    }
                    NAtom::Var(name) => write!(f, "{name}")?,
                    NAtom::Apply { func, args } => {
                        write!(f, "{func}(")?;
                        for (n, a) in args.iter().enumerate() {
                            if n > 0 {
                                write!(f, ",")?;
                            }
                            write!(f, "{a}")?;
                        }
                        write!(f, ")")?;
                    }
                    NAtom::Quot { num, den } => write!(f, "({num}/{den})")?,
                }
                if *power > 1 {
                    write!(f, "^{power}")?;
                }
            }
        }
        Ok(())
    }
}

fn monomial_factors_eq_mod_ctx(a: &NMono, b: &NMono, ctx: &LinCtx) -> bool {
    if a.factors.len() != b.factors.len() {
        return false;
    }
    let fa: Vec<(&NAtom, &u32)> = a.factors.iter().collect();
    let fb: Vec<(&NAtom, &u32)> = b.factors.iter().collect();
    let mut used = vec![false; fb.len()];
    'outer: for (atom_a, pow_a) in fa {
        for (k, (atom_b, pow_b)) in fb.iter().enumerate() {
            if used[k] || pow_a != *pow_b {
                continue;
            }
            if atom_eq_mod_ctx(atom_a, atom_b, ctx) {
                used[k] = true;
                continue 'outer;
            }
        }
        return false;
    }
    true
}

/// Equality of atoms modulo the linear context (indices of array reads are
/// compared by entailment).
pub fn atom_eq_mod_ctx(a: &NAtom, b: &NAtom, ctx: &LinCtx) -> bool {
    match (a, b) {
        (
            NAtom::Load {
                array: a1,
                indices: i1,
            },
            NAtom::Load {
                array: a2,
                indices: i2,
            },
        ) => {
            a1 == a2
                && i1.len() == i2.len()
                && i1
                    .iter()
                    .zip(i2)
                    .all(|(x, y)| x == y || ctx.entails_eq(x, y))
        }
        (NAtom::Var(x), NAtom::Var(y)) => x == y,
        (NAtom::Apply { func: f1, args: x1 }, NAtom::Apply { func: f2, args: x2 }) => {
            f1 == f2 && x1.len() == x2.len() && x1.iter().zip(x2).all(|(p, q)| p.eq_mod_ctx(q, ctx))
        }
        (NAtom::Quot { num: n1, den: d1 }, NAtom::Quot { num: n2, den: d2 }) => {
            n1.eq_mod_ctx(n2, ctx) && d1.eq_mod_ctx(d2, ctx)
        }
        _ => false,
    }
}

/// One symbolic store performed by a VC body.
#[derive(Debug, Clone, PartialEq)]
pub struct Store {
    /// Array written.
    pub array: String,
    /// Affine index per dimension (over the VC's free integer variables).
    pub indices: Vec<Affine>,
    /// The stored value, normalized over the pre-state.
    pub value: NormExpr,
}

/// The symbolic machine state a VC body is executed against.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SymState {
    /// Integer scalars updated by the body, as affine functions of the
    /// pre-state variables. Variables not present map to themselves.
    pub int_env: BTreeMap<String, Affine>,
    /// Real scalars with known symbolic values (from hypotheses or body
    /// assignments), over the pre-state.
    pub real_env: BTreeMap<String, NormExpr>,
    /// Stores performed so far, in execution order.
    pub stores: Vec<Store>,
}

impl SymState {
    /// The affine value of integer scalar `name` in the current state.
    pub fn int_value(&self, name: &str) -> Affine {
        self.int_env
            .get(name)
            .cloned()
            .unwrap_or_else(|| Affine::var(name.to_string()))
    }

    /// Normalizes an integer expression to an affine form over the pre-state
    /// variables.
    pub fn norm_int(&self, e: &IrExpr) -> Option<Affine> {
        match e {
            IrExpr::Int(v) => Some(Affine::constant(*v)),
            IrExpr::Var(name) => Some(self.int_value(name)),
            IrExpr::Bin { op, lhs, rhs } => {
                let l = self.norm_int(lhs)?;
                let r = self.norm_int(rhs)?;
                match op {
                    BinOp::Add => Some(l.add(&r)),
                    BinOp::Sub => Some(l.sub(&r)),
                    BinOp::Mul => {
                        if let Some(c) = l.as_constant() {
                            Some(r.scale(c))
                        } else {
                            r.as_constant().map(|c| l.scale(c))
                        }
                    }
                    BinOp::Div => None,
                }
            }
            _ => None,
        }
    }

    /// Normalizes a data expression over the pre-state, resolving reads of
    /// stored arrays via the linear context.
    ///
    /// # Errors
    ///
    /// Returns [`NormErr::Ambiguous`] when a read cannot be ordered against a
    /// store (the caller should case-split) and [`NormErr::Unsupported`] for
    /// expressions outside the fragment.
    pub fn norm_data(&self, e: &IrExpr, ctx: &LinCtx) -> Result<NormExpr, NormErr> {
        match e {
            IrExpr::Real(v) => Ok(NormExpr::constant(*v)),
            IrExpr::Int(v) => Ok(NormExpr::constant(*v as f64)),
            IrExpr::Var(name) => {
                if let Some(v) = self.real_env.get(name) {
                    Ok(v.clone())
                } else if let Some(aff) = self.int_env.get(name) {
                    aff.as_constant()
                        .map(|c| NormExpr::constant(c as f64))
                        .ok_or_else(|| {
                            NormErr::Unsupported(format!(
                                "integer scalar '{name}' used as data value"
                            ))
                        })
                } else {
                    Ok(NormExpr::var(name.clone()))
                }
            }
            IrExpr::Load { array, indices } => {
                let idx: Option<Vec<Affine>> = indices.iter().map(|ix| self.norm_int(ix)).collect();
                let idx = idx.ok_or_else(|| {
                    NormErr::Unsupported(format!("non-affine index into '{array}'"))
                })?;
                self.resolve_load(array, &idx, ctx)
            }
            IrExpr::Bin { op, lhs, rhs } => {
                let l = self.norm_data(lhs, ctx)?;
                let r = self.norm_data(rhs, ctx)?;
                Ok(match op {
                    BinOp::Add => l.add(&r),
                    BinOp::Sub => l.sub(&r),
                    BinOp::Mul => l.mul(&r),
                    BinOp::Div => l.div(&r),
                })
            }
            IrExpr::Call { func, args } => {
                let mut nargs = Vec::new();
                for a in args {
                    nargs.push(self.norm_data(a, ctx)?);
                }
                Ok(NormExpr::atom(NAtom::Apply {
                    func: func.clone(),
                    args: nargs,
                }))
            }
            other => Err(NormErr::Unsupported(format!(
                "expression '{other}' is not a data expression"
            ))),
        }
    }

    /// Resolves a read of `array` at `indices` against the store list
    /// (read-over-write, most recent store first).
    ///
    /// # Errors
    ///
    /// See [`SymState::norm_data`].
    pub fn resolve_load(
        &self,
        array: &str,
        indices: &[Affine],
        ctx: &LinCtx,
    ) -> Result<NormExpr, NormErr> {
        for store in self.stores.iter().rev() {
            if store.array != array || store.indices.len() != indices.len() {
                continue;
            }
            // Decide componentwise whether the read aliases this store.
            let mut all_equal = true;
            let mut any_unequal = false;
            let mut ambiguous: Option<(Affine, Affine)> = None;
            for (ri, si) in indices.iter().zip(&store.indices) {
                if ctx.entails_eq(ri, si) {
                    continue;
                }
                all_equal = false;
                if ctx.entails_ne(ri, si) {
                    any_unequal = true;
                    break;
                }
                ambiguous = Some((ri.clone(), si.clone()));
            }
            if all_equal {
                return Ok(store.value.clone());
            }
            if any_unequal {
                continue;
            }
            if let Some((read_index, store_index)) = ambiguous {
                return Err(NormErr::Ambiguous {
                    read_index,
                    store_index,
                });
            }
        }
        Ok(NormExpr::load(array.to_string(), indices.to_vec()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn aff(name: &str) -> Affine {
        Affine::var(name.to_string())
    }

    #[test]
    fn ring_normalization_matches() {
        // 2*(x + b[i]) - x - x == 2*b[i]
        let x = NormExpr::var("x");
        let b = NormExpr::load("b", vec![aff("i")]);
        let lhs = NormExpr::constant(2.0).mul(&x.add(&b)).sub(&x).sub(&x);
        let rhs = NormExpr::constant(2.0).mul(&b);
        assert!(lhs.approx_eq(&rhs));
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn store_resolution_equal_and_unequal() {
        let mut ctx = LinCtx::new();
        ctx.assume_eq(&aff("vi"), &aff("i"));
        let state = SymState {
            stores: vec![Store {
                array: "a".into(),
                indices: vec![aff("i")],
                value: NormExpr::var("x"),
            }],
            ..SymState::default()
        };
        // vi = i: the read sees the stored value.
        let v = state.resolve_load("a", &[aff("vi")], &ctx).unwrap();
        assert_eq!(v, NormExpr::var("x"));

        // vj ≤ i - 1: provably different, falls through to the pre-state.
        let mut ctx2 = LinCtx::new();
        let mut i_minus_1 = aff("i");
        i_minus_1.constant -= 1;
        ctx2.assume_le(&aff("vj"), &i_minus_1);
        let v = state.resolve_load("a", &[aff("vj")], &ctx2).unwrap();
        assert_eq!(v, NormExpr::load("a", vec![aff("vj")]));
    }

    #[test]
    fn ambiguous_store_resolution_is_reported() {
        let state = SymState {
            stores: vec![Store {
                array: "a".into(),
                indices: vec![aff("i")],
                value: NormExpr::var("x"),
            }],
            ..SymState::default()
        };
        let err = state
            .resolve_load("a", &[aff("vi")], &LinCtx::new())
            .unwrap_err();
        assert!(matches!(err, NormErr::Ambiguous { .. }));
    }

    #[test]
    fn norm_data_uses_real_env_and_int_env() {
        let mut state = SymState::default();
        state
            .real_env
            .insert("t".into(), NormExpr::load("b", vec![aff("i")]));
        state
            .int_env
            .insert("j".into(), aff("i").add(&Affine::constant(1)));
        let e = IrExpr::add(IrExpr::var("t"), IrExpr::Real(1.0));
        let n = state.norm_data(&e, &LinCtx::new()).unwrap();
        assert_eq!(
            n,
            NormExpr::load("b", vec![aff("i")]).add(&NormExpr::constant(1.0))
        );
        // Index normalization honours the int environment.
        let load = IrExpr::Load {
            array: "b".into(),
            indices: vec![IrExpr::var("j")],
        };
        let n = state.norm_data(&load, &LinCtx::new()).unwrap();
        assert_eq!(
            n,
            NormExpr::load("b", vec![aff("i").add(&Affine::constant(1))])
        );
    }

    #[test]
    fn atom_substitution_rewrites_nested_occurrences() {
        let target = NAtom::Load {
            array: "a".into(),
            indices: vec![aff("vi")],
        };
        let expr = NormExpr::atom(NAtom::Apply {
            func: "exp".into(),
            args: vec![NormExpr::atom(target.clone())],
        })
        .add(&NormExpr::atom(target.clone()));
        let replaced = expr.subst_atom(&target, &NormExpr::var("x"));
        assert!(replaced.loads().is_empty());
        assert!(replaced.to_string().contains("exp(1*x)") || replaced.to_string().contains("exp"));
    }

    #[test]
    fn uninterpreted_functions_respect_congruence_via_normal_form() {
        let a1 = NormExpr::atom(NAtom::Apply {
            func: "exp".into(),
            args: vec![NormExpr::load("b", vec![aff("i")])],
        });
        let a2 = NormExpr::atom(NAtom::Apply {
            func: "exp".into(),
            args: vec![NormExpr::load("b", vec![aff("i")])],
        });
        assert_eq!(a1, a2);
        assert!(a1.sub(&a2).approx_eq(&NormExpr::zero()));
    }
}
