//! Canonical data-value terms with symbolic (affine) array indices, and
//! normalization of IR expressions against a symbolic machine state.
//!
//! This is the verifier-side analogue of `stng_sym::SymExpr`: where the
//! synthesizer's symbolic execution uses concrete indices (loop bounds are
//! concrete), the sound verifier reasons about *all* states, so array indices
//! are affine expressions over the free integer variables of a verification
//! condition. Values are kept in sum-of-products normal form; array reads are
//! resolved against the symbolic store list using the linear context
//! (read-over-write with provable index equality/disequality).
//!
//! Like `SymExpr`, normal forms are **hash-consed**: [`NormExpr`] is a
//! `Copy`able reference to a canonical interned node, equality and hashing
//! are O(1) pointer operations, and the ring operations plus atom
//! substitution are memoized on node identity. The prover's case-split
//! search re-executes VC bodies and re-rewrites goals under many linear
//! contexts; with consing, every re-normalization of an already-seen operand
//! pair is a table hit instead of a tree rebuild.

use crate::lin::LinCtx;
use std::cmp::Ordering;
use std::collections::BTreeMap;
use std::fmt;
use stng_intern::sop::{self, Mono};
use stng_intern::{f64_key, ConsSet, Memo, Symbol};
use stng_ir::ir::{Affine, BinOp, IrExpr};

/// Failures raised during normalization.
#[derive(Debug, Clone, PartialEq)]
pub enum NormErr {
    /// An array read could not be resolved against a store because the index
    /// comparison is neither provably equal nor provably different; the
    /// caller should case-split on the two affine expressions.
    Ambiguous {
        /// Index component of the read.
        read_index: Affine,
        /// Index component of the store it clashed with.
        store_index: Affine,
    },
    /// The expression falls outside the supported fragment.
    Unsupported(String),
}

impl fmt::Display for NormErr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NormErr::Ambiguous {
                read_index,
                store_index,
            } => write!(
                f,
                "ambiguous store resolution: cannot order {read_index:?} against {store_index:?}"
            ),
            NormErr::Unsupported(msg) => write!(f, "unsupported expression: {msg}"),
        }
    }
}

/// An atomic factor of a normalized data term.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum NAtom {
    /// A read of the *pre-state* value of an array at affine indices.
    Load {
        /// Array name.
        array: Symbol,
        /// Affine index per dimension.
        indices: Vec<Affine>,
    },
    /// A free real scalar of the pre-state.
    Var(Symbol),
    /// An application of a pure (uninterpreted) function.
    Apply {
        /// Function name.
        func: Symbol,
        /// Normalized arguments.
        args: Vec<NormExpr>,
    },
    /// An opaque quotient.
    Quot {
        /// Numerator.
        num: NormExpr,
        /// Denominator.
        den: NormExpr,
    },
}

impl PartialOrd for NAtom {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for NAtom {
    fn cmp(&self, other: &Self) -> Ordering {
        fn rank(a: &NAtom) -> u8 {
            match a {
                NAtom::Load { .. } => 0,
                NAtom::Var(_) => 1,
                NAtom::Apply { .. } => 2,
                NAtom::Quot { .. } => 3,
            }
        }
        match (self, other) {
            (
                NAtom::Load {
                    array: a1,
                    indices: i1,
                },
                NAtom::Load {
                    array: a2,
                    indices: i2,
                },
            ) => a1.cmp(a2).then_with(|| i1.cmp(i2)),
            (NAtom::Var(a), NAtom::Var(b)) => a.cmp(b),
            (NAtom::Apply { func: f1, args: x1 }, NAtom::Apply { func: f2, args: x2 }) => {
                f1.cmp(f2).then_with(|| x1.cmp(x2))
            }
            (NAtom::Quot { num: n1, den: d1 }, NAtom::Quot { num: n2, den: d2 }) => {
                n1.cmp(n2).then_with(|| d1.cmp(d2))
            }
            _ => rank(self).cmp(&rank(other)),
        }
    }
}

/// One monomial: coefficient × product of atoms.
#[derive(Debug, Clone)]
pub struct NMono {
    /// Coefficient.
    pub coeff: f64,
    /// Factors and their powers, sorted.
    pub factors: BTreeMap<NAtom, u32>,
}

impl PartialEq for NMono {
    fn eq(&self, other: &Self) -> bool {
        self.coeff == other.coeff && self.factors == other.factors
    }
}

impl Eq for NMono {}

impl std::hash::Hash for NMono {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        f64_key(self.coeff).hash(state);
        self.factors.hash(state);
    }
}

impl PartialOrd for NMono {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for NMono {
    fn cmp(&self, other: &Self) -> Ordering {
        self.key_cmp(other)
            .then_with(|| self.coeff.total_cmp(&other.coeff))
    }
}

impl NMono {
    fn constant(c: f64) -> NMono {
        NMono {
            coeff: c,
            factors: BTreeMap::new(),
        }
    }

    fn atom(a: NAtom) -> NMono {
        let mut factors = BTreeMap::new();
        factors.insert(a, 1);
        NMono {
            coeff: 1.0,
            factors,
        }
    }

    fn mul(&self, other: &NMono) -> NMono {
        NMono {
            coeff: self.coeff * other.coeff,
            factors: sop::merge_pow_maps(&self.factors, &other.factors),
        }
    }
}

impl Mono for NMono {
    fn coeff(&self) -> f64 {
        self.coeff
    }

    fn with_coeff(&self, coeff: f64) -> NMono {
        NMono {
            coeff,
            factors: self.factors.clone(),
        }
    }

    fn key_cmp(&self, other: &NMono) -> Ordering {
        self.factors.iter().cmp(other.factors.iter())
    }
}

/// The interned payload of a [`NormExpr`].
#[derive(Debug, PartialEq, Eq, Hash)]
struct NNode {
    /// Monomials, sorted and merged.
    terms: Vec<NMono>,
}

static NEXPRS: ConsSet<NNode> = ConsSet::new();
static MEMO_ADD: Memo<(usize, usize), NormExpr> = Memo::new();
static MEMO_MUL: Memo<(usize, usize), NormExpr> = Memo::new();
static MEMO_DIV: Memo<(usize, usize), NormExpr> = Memo::new();
static MEMO_NEG: Memo<usize, NormExpr> = Memo::new();
static MEMO_SUBST: Memo<(usize, NAtom, usize), NormExpr> = Memo::new();

/// Occupancy snapshots of the normal-form arena and its memos.
pub fn arena_stats() -> Vec<stng_intern::ArenaStats> {
    vec![
        NEXPRS.stats("solve.nexprs"),
        MEMO_ADD.stats("solve.memo_add"),
        MEMO_MUL.stats("solve.memo_mul"),
        MEMO_DIV.stats("solve.memo_div"),
        MEMO_NEG.stats("solve.memo_neg"),
        MEMO_SUBST.stats("solve.memo_subst"),
    ]
}

/// Sweeps the normal-form arena and memo tables, evicting entries last used
/// before `cutoff`. Returns the total number of entries evicted. Same
/// quiescence contract as `stng_sym::retain_epoch`.
pub fn retain_epoch(cutoff: u64) -> usize {
    MEMO_ADD.retain_epoch(cutoff)
        + MEMO_MUL.retain_epoch(cutoff)
        + MEMO_DIV.retain_epoch(cutoff)
        + MEMO_NEG.retain_epoch(cutoff)
        + MEMO_SUBST.retain_epoch(cutoff)
        + NEXPRS.retain_epoch(cutoff)
}

/// A normalized data expression: sum of monomials, hash-consed.
///
/// `NormExpr` is a `Copy`able reference to the canonical interned node, so
/// structural equality and hashing are O(1) and cloning is free.
#[derive(Clone, Copy)]
pub struct NormExpr(&'static NNode);

impl PartialEq for NormExpr {
    fn eq(&self, other: &Self) -> bool {
        std::ptr::eq(self.0, other.0)
    }
}

impl Eq for NormExpr {}

impl std::hash::Hash for NormExpr {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.key().hash(state);
    }
}

impl PartialOrd for NormExpr {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for NormExpr {
    fn cmp(&self, other: &Self) -> Ordering {
        if std::ptr::eq(self.0, other.0) {
            Ordering::Equal
        } else {
            self.0.terms.cmp(&other.0.terms)
        }
    }
}

impl Default for NormExpr {
    fn default() -> Self {
        NormExpr::zero()
    }
}

impl fmt::Debug for NormExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "NormExpr({self})")
    }
}

impl NormExpr {
    fn cons(terms: Vec<NMono>) -> NormExpr {
        NormExpr(NEXPRS.intern(NNode { terms }))
    }

    fn key(self) -> usize {
        self.0 as *const NNode as usize
    }

    /// Monomials, sorted and merged.
    pub fn terms(self) -> &'static [NMono] {
        &self.0.terms
    }

    /// Number of distinct normal forms interned process-wide (diagnostics).
    pub fn arena_len() -> usize {
        NEXPRS.len()
    }

    /// The zero expression.
    pub fn zero() -> NormExpr {
        NormExpr::cons(Vec::new())
    }

    /// A constant.
    pub fn constant(c: f64) -> NormExpr {
        NormExpr::normalized(vec![NMono::constant(c)])
    }

    /// A single atom.
    pub fn atom(a: NAtom) -> NormExpr {
        NormExpr::cons(vec![NMono::atom(a)])
    }

    /// A free real scalar.
    pub fn var(name: impl Into<Symbol>) -> NormExpr {
        NormExpr::atom(NAtom::Var(name.into()))
    }

    /// A pre-state array read.
    pub fn load(array: impl Into<Symbol>, indices: Vec<Affine>) -> NormExpr {
        NormExpr::atom(NAtom::Load {
            array: array.into(),
            indices,
        })
    }

    /// Sum: one linear merge over the two (already sorted) normal forms.
    pub fn add(&self, other: &NormExpr) -> NormExpr {
        let (a, b) = if self.key() <= other.key() {
            (*self, *other)
        } else {
            (*other, *self)
        };
        let memo_key = (a.key(), b.key());
        if let Some(cached) = MEMO_ADD.get(&memo_key) {
            return cached;
        }
        let result = NormExpr::cons(sop::merge_sum(a.terms(), b.terms()));
        MEMO_ADD.insert(memo_key, result);
        result
    }

    /// Difference.
    pub fn sub(&self, other: &NormExpr) -> NormExpr {
        self.add(&other.neg())
    }

    /// Product.
    pub fn mul(&self, other: &NormExpr) -> NormExpr {
        let (a, b) = if self.key() <= other.key() {
            (*self, *other)
        } else {
            (*other, *self)
        };
        let memo_key = (a.key(), b.key());
        if let Some(cached) = MEMO_MUL.get(&memo_key) {
            return cached;
        }
        let mut terms = Vec::with_capacity(a.terms().len() * b.terms().len());
        for x in a.terms() {
            for y in b.terms() {
                terms.push(x.mul(y));
            }
        }
        let result = NormExpr::normalized(terms);
        MEMO_MUL.insert(memo_key, result);
        result
    }

    /// Negation (canonical without re-sorting: keys are coefficient-free).
    pub fn neg(&self) -> NormExpr {
        if let Some(cached) = MEMO_NEG.get(&self.key()) {
            return cached;
        }
        let terms = self
            .terms()
            .iter()
            .map(|t| NMono {
                coeff: -t.coeff,
                factors: t.factors.clone(),
            })
            .collect();
        let result = NormExpr::cons(terms);
        MEMO_NEG.insert(self.key(), result);
        result
    }

    /// Quotient (kept opaque unless the divisor is a non-zero constant).
    pub fn div(&self, other: &NormExpr) -> NormExpr {
        let memo_key = (self.key(), other.key());
        if let Some(cached) = MEMO_DIV.get(&memo_key) {
            return cached;
        }
        let result = if let Some(c) = other.as_constant() {
            if c.abs() > 1e-12 {
                NormExpr::normalized(
                    self.terms()
                        .iter()
                        .map(|t| NMono {
                            coeff: t.coeff / c,
                            factors: t.factors.clone(),
                        })
                        .collect(),
                )
            } else {
                NormExpr::zero()
            }
        } else if self == other {
            NormExpr::constant(1.0)
        } else {
            NormExpr::atom(NAtom::Quot {
                num: *self,
                den: *other,
            })
        };
        MEMO_DIV.insert(memo_key, result);
        result
    }

    /// Returns `Some(c)` when the expression is the constant `c`.
    pub fn as_constant(&self) -> Option<f64> {
        match self.terms().len() {
            0 => Some(0.0),
            1 if self.terms()[0].factors.is_empty() => Some(self.terms()[0].coeff),
            _ => None,
        }
    }

    /// Structural equality up to a small coefficient tolerance (verification
    /// is with respect to the reals, so tiny floating-point drift from
    /// constant folding must not cause spurious mismatches).
    pub fn approx_eq(&self, other: &NormExpr) -> bool {
        if self == other {
            return true;
        }
        if self.terms().len() != other.terms().len() {
            return false;
        }
        self.terms().iter().zip(other.terms()).all(|(a, b)| {
            a.factors == b.factors && {
                let scale = a.coeff.abs().max(b.coeff.abs()).max(1.0);
                (a.coeff - b.coeff).abs() <= 1e-9 * scale
            }
        })
    }

    /// Structural equality *modulo the linear context*: two expressions are
    /// equal when their monomials can be matched one-to-one with equal
    /// coefficients and factors, where array-read atoms compare by provable
    /// index equality rather than syntactic identity. This is what lets the
    /// verifier accept `b[q!vi, q!vj]` against `b[i, j]` inside a case branch
    /// that has assumed `q!vi = i ∧ q!vj = j`.
    pub fn eq_mod_ctx(&self, other: &NormExpr, ctx: &LinCtx) -> bool {
        if self.approx_eq(other) {
            return true;
        }
        if self.terms().len() != other.terms().len() {
            return false;
        }
        let mut used = vec![false; other.terms().len()];
        'outer: for a in self.terms() {
            for (k, b) in other.terms().iter().enumerate() {
                if used[k] {
                    continue;
                }
                let scale = a.coeff.abs().max(b.coeff.abs()).max(1.0);
                if (a.coeff - b.coeff).abs() > 1e-9 * scale {
                    continue;
                }
                if monomial_factors_eq_mod_ctx(a, b, ctx) {
                    used[k] = true;
                    continue 'outer;
                }
            }
            return false;
        }
        true
    }

    /// All pre-state load atoms occurring at the top level of monomials or
    /// nested inside applications/quotients. Returned as borrows of the
    /// interned ('static) nodes — no index vectors are copied.
    pub fn loads(self) -> Vec<(Symbol, &'static [Affine])> {
        let mut out = Vec::new();
        self.collect_loads(&mut out);
        out
    }

    fn collect_loads(self, out: &mut Vec<(Symbol, &'static [Affine])>) {
        for term in self.terms() {
            for atom in term.factors.keys() {
                match atom {
                    NAtom::Load { array, indices } => {
                        let entry = (*array, indices.as_slice());
                        if !out.contains(&entry) {
                            out.push(entry);
                        }
                    }
                    NAtom::Apply { args, .. } => {
                        for a in args {
                            a.collect_loads(out);
                        }
                    }
                    NAtom::Quot { num, den } => {
                        num.collect_loads(out);
                        den.collect_loads(out);
                    }
                    NAtom::Var(_) => {}
                }
            }
        }
    }

    /// Replaces every occurrence of `target` (a load atom) with `value`,
    /// including inside applications and quotients. Memoized on the consed
    /// identities of the expression and replacement.
    pub fn subst_atom(&self, target: &NAtom, value: &NormExpr) -> NormExpr {
        let memo_key = (self.key(), target.clone(), value.key());
        if let Some(cached) = MEMO_SUBST.get(&memo_key) {
            return cached;
        }
        let mut result = NormExpr::zero();
        for term in self.terms() {
            let mut factor_expr = NormExpr::constant(term.coeff);
            for (atom, power) in &term.factors {
                let replacement = if atom == target {
                    *value
                } else {
                    // Recurse into composite atoms.
                    match atom {
                        NAtom::Apply { func, args } => NormExpr::atom(NAtom::Apply {
                            func: *func,
                            args: args.iter().map(|a| a.subst_atom(target, value)).collect(),
                        }),
                        NAtom::Quot { num, den } => NormExpr::atom(NAtom::Quot {
                            num: num.subst_atom(target, value),
                            den: den.subst_atom(target, value),
                        }),
                        other => NormExpr::atom(other.clone()),
                    }
                };
                for _ in 0..*power {
                    factor_expr = factor_expr.mul(&replacement);
                }
            }
            result = result.add(&factor_expr);
        }
        MEMO_SUBST.insert(memo_key, result);
        result
    }

    fn normalized(terms: Vec<NMono>) -> NormExpr {
        NormExpr::cons(sop::normalize(terms))
    }
}

impl fmt::Display for NormExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.terms().is_empty() {
            return write!(f, "0");
        }
        for (k, term) in self.terms().iter().enumerate() {
            if k > 0 {
                write!(f, " + ")?;
            }
            write!(f, "{}", term.coeff)?;
            for (atom, power) in &term.factors {
                write!(f, "*")?;
                match atom {
                    NAtom::Load { array, indices } => {
                        write!(f, "{array}[")?;
                        for (n, ix) in indices.iter().enumerate() {
                            if n > 0 {
                                write!(f, ",")?;
                            }
                            write!(f, "{}", ix.to_expr())?;
                        }
                        write!(f, "]")?;
                    }
                    NAtom::Var(name) => write!(f, "{name}")?,
                    NAtom::Apply { func, args } => {
                        write!(f, "{func}(")?;
                        for (n, a) in args.iter().enumerate() {
                            if n > 0 {
                                write!(f, ",")?;
                            }
                            write!(f, "{a}")?;
                        }
                        write!(f, ")")?;
                    }
                    NAtom::Quot { num, den } => write!(f, "({num}/{den})")?,
                }
                if *power > 1 {
                    write!(f, "^{power}")?;
                }
            }
        }
        Ok(())
    }
}

fn monomial_factors_eq_mod_ctx(a: &NMono, b: &NMono, ctx: &LinCtx) -> bool {
    if a.factors.len() != b.factors.len() {
        return false;
    }
    let fa: Vec<(&NAtom, &u32)> = a.factors.iter().collect();
    let fb: Vec<(&NAtom, &u32)> = b.factors.iter().collect();
    let mut used = vec![false; fb.len()];
    'outer: for (atom_a, pow_a) in fa {
        for (k, (atom_b, pow_b)) in fb.iter().enumerate() {
            if used[k] || pow_a != *pow_b {
                continue;
            }
            if atom_eq_mod_ctx(atom_a, atom_b, ctx) {
                used[k] = true;
                continue 'outer;
            }
        }
        return false;
    }
    true
}

/// Equality of atoms modulo the linear context (indices of array reads are
/// compared by entailment).
pub fn atom_eq_mod_ctx(a: &NAtom, b: &NAtom, ctx: &LinCtx) -> bool {
    match (a, b) {
        (
            NAtom::Load {
                array: a1,
                indices: i1,
            },
            NAtom::Load {
                array: a2,
                indices: i2,
            },
        ) => {
            a1 == a2
                && i1.len() == i2.len()
                && i1
                    .iter()
                    .zip(i2)
                    .all(|(x, y)| x == y || ctx.entails_eq(x, y))
        }
        (NAtom::Var(x), NAtom::Var(y)) => x == y,
        (NAtom::Apply { func: f1, args: x1 }, NAtom::Apply { func: f2, args: x2 }) => {
            f1 == f2 && x1.len() == x2.len() && x1.iter().zip(x2).all(|(p, q)| p.eq_mod_ctx(q, ctx))
        }
        (NAtom::Quot { num: n1, den: d1 }, NAtom::Quot { num: n2, den: d2 }) => {
            n1.eq_mod_ctx(n2, ctx) && d1.eq_mod_ctx(d2, ctx)
        }
        _ => false,
    }
}

/// One symbolic store performed by a VC body.
#[derive(Debug, Clone, PartialEq)]
pub struct Store {
    /// Array written.
    pub array: Symbol,
    /// Affine index per dimension (over the VC's free integer variables).
    pub indices: Vec<Affine>,
    /// The stored value, normalized over the pre-state.
    pub value: NormExpr,
}

/// The symbolic machine state a VC body is executed against.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SymState {
    /// Integer scalars updated by the body, as affine functions of the
    /// pre-state variables. Variables not present map to themselves. Keyed
    /// by interned name.
    pub int_env: BTreeMap<Symbol, Affine>,
    /// Real scalars with known symbolic values (from hypotheses or body
    /// assignments), over the pre-state. Keyed by interned name and shared
    /// copy-on-write: forking a state for another proof attempt copies a
    /// pointer, not strings and trees.
    pub real_env: std::sync::Arc<BTreeMap<Symbol, NormExpr>>,
    /// Stores performed so far, in execution order.
    pub stores: Vec<Store>,
}

impl SymState {
    /// The affine value of integer scalar `name` in the current state.
    pub fn int_value(&self, name: &str) -> Affine {
        let sym = Symbol::intern(name);
        self.int_env
            .get(&sym)
            .cloned()
            .unwrap_or_else(|| Affine::var(sym))
    }

    /// Normalizes an integer expression to an affine form over the pre-state
    /// variables.
    pub fn norm_int(&self, e: &IrExpr) -> Option<Affine> {
        match e {
            IrExpr::Int(v) => Some(Affine::constant(*v)),
            IrExpr::Var(name) => Some(self.int_value(name)),
            IrExpr::Bin { op, lhs, rhs } => {
                let l = self.norm_int(lhs)?;
                let r = self.norm_int(rhs)?;
                match op {
                    BinOp::Add => Some(l.add(&r)),
                    BinOp::Sub => Some(l.sub(&r)),
                    BinOp::Mul => {
                        if let Some(c) = l.as_constant() {
                            Some(r.scale(c))
                        } else {
                            r.as_constant().map(|c| l.scale(c))
                        }
                    }
                    BinOp::Div => None,
                }
            }
            _ => None,
        }
    }

    /// Normalizes a data expression over the pre-state, resolving reads of
    /// stored arrays via the linear context.
    ///
    /// # Errors
    ///
    /// Returns [`NormErr::Ambiguous`] when a read cannot be ordered against a
    /// store (the caller should case-split) and [`NormErr::Unsupported`] for
    /// expressions outside the fragment.
    pub fn norm_data(&self, e: &IrExpr, ctx: &LinCtx) -> Result<NormExpr, NormErr> {
        match e {
            IrExpr::Real(v) => Ok(NormExpr::constant(*v)),
            IrExpr::Int(v) => Ok(NormExpr::constant(*v as f64)),
            IrExpr::Var(name) => {
                if let Some(v) = self.real_env.get(&Symbol::intern(name)) {
                    Ok(*v)
                } else if let Some(aff) = self.int_env.get(&Symbol::intern(name)) {
                    aff.as_constant()
                        .map(|c| NormExpr::constant(c as f64))
                        .ok_or_else(|| {
                            NormErr::Unsupported(format!(
                                "integer scalar '{name}' used as data value"
                            ))
                        })
                } else {
                    Ok(NormExpr::var(name.as_str()))
                }
            }
            IrExpr::Load { array, indices } => {
                let idx: Option<Vec<Affine>> = indices.iter().map(|ix| self.norm_int(ix)).collect();
                let idx = idx.ok_or_else(|| {
                    NormErr::Unsupported(format!("non-affine index into '{array}'"))
                })?;
                self.resolve_load(Symbol::intern(array), &idx, ctx)
            }
            IrExpr::Bin { op, lhs, rhs } => {
                let l = self.norm_data(lhs, ctx)?;
                let r = self.norm_data(rhs, ctx)?;
                Ok(match op {
                    BinOp::Add => l.add(&r),
                    BinOp::Sub => l.sub(&r),
                    BinOp::Mul => l.mul(&r),
                    BinOp::Div => l.div(&r),
                })
            }
            IrExpr::Call { func, args } => {
                let mut nargs = Vec::new();
                for a in args {
                    nargs.push(self.norm_data(a, ctx)?);
                }
                Ok(NormExpr::atom(NAtom::Apply {
                    func: Symbol::intern(func),
                    args: nargs,
                }))
            }
            other => Err(NormErr::Unsupported(format!(
                "expression '{other}' is not a data expression"
            ))),
        }
    }

    /// Resolves a read of `array` at `indices` against the store list
    /// (read-over-write, most recent store first).
    ///
    /// # Errors
    ///
    /// See [`SymState::norm_data`].
    pub fn resolve_load(
        &self,
        array: impl Into<Symbol>,
        indices: &[Affine],
        ctx: &LinCtx,
    ) -> Result<NormExpr, NormErr> {
        let array = array.into();
        for store in self.stores.iter().rev() {
            if store.array != array || store.indices.len() != indices.len() {
                continue;
            }
            // Decide componentwise whether the read aliases this store.
            let mut all_equal = true;
            let mut any_unequal = false;
            let mut ambiguous: Option<(Affine, Affine)> = None;
            for (ri, si) in indices.iter().zip(&store.indices) {
                if ctx.entails_eq(ri, si) {
                    continue;
                }
                all_equal = false;
                if ctx.entails_ne(ri, si) {
                    any_unequal = true;
                    break;
                }
                ambiguous = Some((ri.clone(), si.clone()));
            }
            if all_equal {
                return Ok(store.value);
            }
            if any_unequal {
                continue;
            }
            if let Some((read_index, store_index)) = ambiguous {
                return Err(NormErr::Ambiguous {
                    read_index,
                    store_index,
                });
            }
        }
        Ok(NormExpr::load(array, indices.to_vec()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn aff(name: &str) -> Affine {
        Affine::var(name.to_string())
    }

    #[test]
    fn ring_normalization_matches() {
        // 2*(x + b[i]) - x - x == 2*b[i]
        let x = NormExpr::var("x");
        let b = NormExpr::load("b", vec![aff("i")]);
        let lhs = NormExpr::constant(2.0).mul(&x.add(&b)).sub(&x).sub(&x);
        let rhs = NormExpr::constant(2.0).mul(&b);
        assert!(lhs.approx_eq(&rhs));
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn store_resolution_equal_and_unequal() {
        let mut ctx = LinCtx::new();
        ctx.assume_eq(&aff("vi"), &aff("i"));
        let state = SymState {
            stores: vec![Store {
                array: "a".into(),
                indices: vec![aff("i")],
                value: NormExpr::var("x"),
            }],
            ..SymState::default()
        };
        // vi = i: the read sees the stored value.
        let v = state.resolve_load("a", &[aff("vi")], &ctx).unwrap();
        assert_eq!(v, NormExpr::var("x"));

        // vj ≤ i - 1: provably different, falls through to the pre-state.
        let mut ctx2 = LinCtx::new();
        let mut i_minus_1 = aff("i");
        i_minus_1.constant -= 1;
        ctx2.assume_le(&aff("vj"), &i_minus_1);
        let v = state.resolve_load("a", &[aff("vj")], &ctx2).unwrap();
        assert_eq!(v, NormExpr::load("a", vec![aff("vj")]));
    }

    #[test]
    fn ambiguous_store_resolution_is_reported() {
        let state = SymState {
            stores: vec![Store {
                array: "a".into(),
                indices: vec![aff("i")],
                value: NormExpr::var("x"),
            }],
            ..SymState::default()
        };
        let err = state
            .resolve_load("a", &[aff("vi")], &LinCtx::new())
            .unwrap_err();
        assert!(matches!(err, NormErr::Ambiguous { .. }));
    }

    #[test]
    fn norm_data_uses_real_env_and_int_env() {
        let mut state = SymState::default();
        std::sync::Arc::make_mut(&mut state.real_env)
            .insert("t".into(), NormExpr::load("b", vec![aff("i")]));
        state
            .int_env
            .insert("j".into(), aff("i").add(&Affine::constant(1)));
        let e = IrExpr::add(IrExpr::var("t"), IrExpr::Real(1.0));
        let n = state.norm_data(&e, &LinCtx::new()).unwrap();
        assert_eq!(
            n,
            NormExpr::load("b", vec![aff("i")]).add(&NormExpr::constant(1.0))
        );
        // Index normalization honours the int environment.
        let load = IrExpr::Load {
            array: "b".into(),
            indices: vec![IrExpr::var("j")],
        };
        let n = state.norm_data(&load, &LinCtx::new()).unwrap();
        assert_eq!(
            n,
            NormExpr::load("b", vec![aff("i").add(&Affine::constant(1))])
        );
    }

    #[test]
    fn atom_substitution_rewrites_nested_occurrences() {
        let target = NAtom::Load {
            array: "a".into(),
            indices: vec![aff("vi")],
        };
        let expr = NormExpr::atom(NAtom::Apply {
            func: "exp".into(),
            args: vec![NormExpr::atom(target.clone())],
        })
        .add(&NormExpr::atom(target.clone()));
        assert_eq!(expr.loads().len(), 1);
        let replaced = expr.subst_atom(&target, &NormExpr::var("x"));
        assert!(replaced.loads().is_empty());
        assert!(replaced.to_string().contains("exp(1*x)") || replaced.to_string().contains("exp"));
    }

    #[test]
    fn uninterpreted_functions_respect_congruence_via_normal_form() {
        let a1 = NormExpr::atom(NAtom::Apply {
            func: "exp".into(),
            args: vec![NormExpr::load("b", vec![aff("i")])],
        });
        let a2 = NormExpr::atom(NAtom::Apply {
            func: "exp".into(),
            args: vec![NormExpr::load("b", vec![aff("i")])],
        });
        assert_eq!(a1, a2);
        assert!(a1.sub(&a2).approx_eq(&NormExpr::zero()));
    }

    #[test]
    fn consed_equality_is_pointer_equality() {
        let a = NormExpr::var("x").add(&NormExpr::load("b", vec![aff("i")]));
        let b = NormExpr::load("b", vec![aff("i")]).add(&NormExpr::var("x"));
        assert!(std::ptr::eq(a.0, b.0));
    }
}
