//! Compilation of verification conditions into slot-addressed bytecode.
//!
//! [`check_vc_on_state`](crate::eval::check_vc_on_state) tree-walks every
//! predicate and re-resolves every variable through a `HashMap` per
//! quantifier point — the dominant cost of the bounded screen on deep nests.
//! This module lowers a [`Vc`] **once** into flat [`Program`]s over
//! pre-resolved slots: evaluating the VC on a captured state is then a tight
//! loop over register-machine ops with zero allocation per quantifier point.
//!
//! Semantics are the tree-walking evaluator's, reproduced exactly —
//! including the order hypotheses are screened in, evaluation (and therefore
//! error) order inside clauses, short-circuit conjunction, and
//! vacuous-on-hypothesis-error. The differential property test in
//! `stng-solve` (`tests/compiled_differential.rs`) pins
//! compiled-vs-interpreted agreement down over the whole corpus, error cases
//! included. Constructs the bytecode cannot reproduce exactly fail to
//! compile with [`CompileErr`], and callers fall back to the interpreter.
//!
//! Quantified variables never touch the state: each clause's bound variables
//! are pinned to low integer registers of its per-point program, so
//! enumeration writes one register per dimension instead of inserting (and
//! restoring) `HashMap` entries.

use crate::eval::{ValueEq, VcOutcome};
use crate::lang::{Pred, QuantClause};
use crate::vcgen::Vc;
use stng_intern::guard::Budget;
use stng_ir::slots::{
    exec_stmts, CompileErr, Compiler, EvalErr, Program, ProgramSet, Scratch, SlotMap, SlotState,
    SlotStmt,
};

/// How many quantifier points the compiled enumerator evaluates between
/// budget polls. Back-edge-only polling: the per-point loop stays free of
/// clock reads and (for unlimited budgets) of atomics entirely.
const POLL_STRIDE: u32 = 256;

/// Maximum quantifier rank the compiled enumerator supports (the corpus
/// maximum is 4); deeper clauses fall back to the interpreter.
const MAX_QUANT: usize = 8;

/// One compiled quantifier bound: inclusive lower/upper bound programs plus
/// the (positive) enumeration stride.
#[derive(Debug)]
struct CompiledBound {
    lo: Program,
    hi: Program,
    step: i64,
}

/// A compiled universally quantified output equation.
#[derive(Debug)]
struct CompiledClause {
    /// Bound programs, evaluated against the state only (bounds may not
    /// reference the clause's own variables, mirroring the interpreter,
    /// which resolves every range before binding anything).
    bounds: Vec<CompiledBound>,
    /// Per-point program: integer registers `0..bounds.len()` are pinned to
    /// the quantifier values; computes the output indices into a contiguous
    /// block and the right-hand side into a data register.
    point: Program,
    /// First register of the output-index block.
    idx: u16,
    /// Output rank.
    rank: u16,
    /// Data register holding the right-hand side.
    rhs: u16,
    /// Output array slot.
    array: u32,
}

/// A compiled predicate. Conjunctions stay driver-level lists so
/// short-circuiting matches the tree walker exactly.
#[derive(Debug)]
enum CompiledPred {
    /// A quantifier-free boolean condition.
    Bool(Program),
    /// `lhs = rhs` over data values; both sides in one program.
    DataEq { prog: Program, lhs: u16, rhs: u16 },
    /// A universally quantified output equation.
    Forall(CompiledClause),
    /// The strided-loop alignment fact `var ≥ lo ∧ step | var − lo`.
    Stride { slot: u32, lo: Program, step: i64 },
    /// Conjunction, evaluated left to right with early exit.
    And(Vec<CompiledPred>),
}

/// One compiled verification condition.
#[derive(Debug)]
pub struct CompiledVc {
    /// The VC's name (for counterexample reporting).
    pub name: String,
    hypotheses: Vec<CompiledPred>,
    body: Vec<SlotStmt>,
    int_scalars: Vec<u32>,
    conclusion: CompiledPred,
}

/// A batch of compiled VCs sharing one constant pool and function table.
#[derive(Debug)]
pub struct CompiledVcSet {
    /// Compiled conditions, in input order.
    pub vcs: Vec<CompiledVc>,
    set: ProgramSet,
}

impl CompiledVcSet {
    /// Compiles every VC against the resolver. Names not yet registered
    /// (quantified variables, say) are registered as new slots; states
    /// captured against a shorter map read those slots as unbound, which is
    /// exactly the hash-map absent-key behaviour.
    ///
    /// # Errors
    ///
    /// Returns [`CompileErr`] when any VC contains a construct whose
    /// interpreter semantics the bytecode cannot reproduce exactly; the
    /// caller then falls back to tree-walking evaluation for the whole set.
    pub fn compile(vcs: &[Vc], map: &SlotMap) -> Result<CompiledVcSet, CompileErr> {
        let mut compiler = Compiler::new(map);
        let mut out = Vec::with_capacity(vcs.len());
        for vc in vcs {
            let hypotheses = vc
                .hypotheses
                .iter()
                .map(|h| compile_pred(&mut compiler, map, h))
                .collect::<Result<_, _>>()?;
            compiler.clear_env();
            let body = compiler.compile_stmts(&vc.body)?;
            let conclusion = compile_pred(&mut compiler, map, &vc.conclusion)?;
            out.push(CompiledVc {
                name: vc.name.clone(),
                hypotheses,
                body,
                int_scalars: vc.int_scalars.iter().map(|n| map.scalar(n)).collect(),
                conclusion,
            });
        }
        Ok(CompiledVcSet {
            vcs: out,
            set: compiler.into_set(),
        })
    }

    /// A scratch space usable with every VC in the set.
    pub fn scratch<V: ValueEq>(&self) -> Scratch<V> {
        Scratch::for_set(&self.set)
    }

    /// Checks VC `k` against one pre-state — the compiled equivalent of
    /// [`check_vc_on_state`](crate::eval::check_vc_on_state).
    ///
    /// # Errors
    ///
    /// Like the interpreter: hypothesis failures are *not* errors (they make
    /// the state vacuous); body and conclusion evaluation failures
    /// propagate, and the bounded checker treats them as rejections.
    pub fn check<V: ValueEq>(
        &self,
        k: usize,
        pre: &SlotState<V>,
        sc: &mut Scratch<V>,
    ) -> Result<VcOutcome, EvalErr> {
        self.check_budgeted(k, pre, sc, &Budget::unlimited())
    }

    /// Like [`check`](Self::check), but polls `budget` at quantifier
    /// back-edges (every [`POLL_STRIDE`] points) and after the body run. A
    /// tripped budget surfaces as [`EvalErr::Budget`]; callers that govern
    /// work must consult [`Budget::exhausted`] to tell an interruption from
    /// an ordinary evaluation failure.
    pub fn check_budgeted<V: ValueEq>(
        &self,
        k: usize,
        pre: &SlotState<V>,
        sc: &mut Scratch<V>,
        budget: &Budget,
    ) -> Result<VcOutcome, EvalErr> {
        let vc = &self.vcs[k];
        for hyp in &vc.hypotheses {
            match eval_pred(hyp, &self.set, pre, sc, budget) {
                Ok(true) => {}
                Ok(false) | Err(_) => return Ok(VcOutcome::Vacuous),
            }
        }
        // Cloning the pre-state is a few flat memcpys plus Arc bumps; arrays
        // are copied only if the body stores into them.
        let mut post = pre.clone();
        for &slot in &vc.int_scalars {
            post.seed_int_slot(slot);
        }
        let mut steps = 0u64;
        exec_stmts(&vc.body, &self.set, &mut post, sc, &mut steps, 1_000_000)?;
        // Charge the body's executed statements as bounded-check fuel.
        if budget.consume_check_fuel(steps).is_err() {
            return Err(EvalErr::Budget);
        }
        if eval_pred(&vc.conclusion, &self.set, &post, sc, budget)? {
            Ok(VcOutcome::Holds)
        } else {
            Ok(VcOutcome::Violated)
        }
    }
}

fn compile_pred(
    compiler: &mut Compiler,
    map: &SlotMap,
    pred: &Pred,
) -> Result<CompiledPred, CompileErr> {
    match pred {
        Pred::Bool(e) => {
            compiler.clear_env();
            Ok(CompiledPred::Bool(compiler.compile_bool(e)?))
        }
        Pred::DataEq { lhs, rhs } => {
            compiler.clear_env();
            let (prog, lhs, rhs) = compiler.compile_data_pair(lhs, rhs)?;
            Ok(CompiledPred::DataEq { prog, lhs, rhs })
        }
        Pred::Forall(clause) => Ok(CompiledPred::Forall(compile_clause(compiler, map, clause)?)),
        Pred::Stride { var, lo, step } => {
            compiler.clear_env();
            Ok(CompiledPred::Stride {
                slot: map.scalar(var),
                lo: compiler.compile_int(lo)?,
                step: *step,
            })
        }
        Pred::And(ps) => Ok(CompiledPred::And(
            ps.iter()
                .map(|p| compile_pred(compiler, map, p))
                .collect::<Result<_, _>>()?,
        )),
    }
}

fn compile_clause(
    compiler: &mut Compiler,
    map: &SlotMap,
    clause: &QuantClause,
) -> Result<CompiledClause, CompileErr> {
    if clause.bounds.len() > MAX_QUANT {
        return Err(CompileErr(format!(
            "clause quantifies {} variables (max {MAX_QUANT})",
            clause.bounds.len()
        )));
    }
    compiler.clear_env();
    let mut bounds = Vec::with_capacity(clause.bounds.len());
    for b in &clause.bounds {
        bounds.push(CompiledBound {
            lo: compiler.compile_int(&b.inclusive_lo())?,
            hi: compiler.compile_int(&b.inclusive_hi())?,
            step: b.step.max(1),
        });
    }
    // Per-point program with the quantified variables pinned to registers.
    let vars: Vec<String> = clause.bounds.iter().map(|b| b.var.clone()).collect();
    compiler.set_env(&vars);
    let (point, idx, rhs) = compiler.compile_indexed_value(&clause.eq.indices, &clause.eq.rhs)?;
    compiler.clear_env();
    Ok(CompiledClause {
        bounds,
        point,
        idx,
        rank: clause.eq.indices.len() as u16,
        rhs,
        array: map.array(&clause.eq.array),
    })
}

fn eval_pred<V: ValueEq>(
    pred: &CompiledPred,
    set: &ProgramSet,
    st: &SlotState<V>,
    sc: &mut Scratch<V>,
    budget: &Budget,
) -> Result<bool, EvalErr> {
    match pred {
        CompiledPred::Bool(p) => p.eval_bool(set, st, sc),
        CompiledPred::DataEq { prog, lhs, rhs } => {
            prog.run(set, st, sc)?;
            Ok(sc.dreg(*lhs).clone().value_eq(sc.dreg(*rhs)))
        }
        CompiledPred::Forall(clause) => eval_clause(clause, set, st, sc, budget),
        CompiledPred::Stride { slot, lo, step } => {
            let v = st.int_slot(*slot).ok_or(EvalErr::UnboundInt(*slot))?;
            let lo = lo.eval_int(set, st, sc)?;
            Ok(v >= lo && (v - lo).rem_euclid(*step) == 0)
        }
        CompiledPred::And(ps) => {
            for p in ps {
                if !eval_pred(p, set, st, sc, budget)? {
                    return Ok(false);
                }
            }
            Ok(true)
        }
    }
}

fn eval_clause<V: ValueEq>(
    clause: &CompiledClause,
    set: &ProgramSet,
    st: &SlotState<V>,
    sc: &mut Scratch<V>,
    budget: &Budget,
) -> Result<bool, EvalErr> {
    let n = clause.bounds.len();
    let mut lo = [0i64; MAX_QUANT];
    let mut hi = [0i64; MAX_QUANT];
    let mut step = [1i64; MAX_QUANT];
    for (k, b) in clause.bounds.iter().enumerate() {
        lo[k] = b.lo.eval_int(set, st, sc)?;
        hi[k] = b.hi.eval_int(set, st, sc)?;
        step[k] = b.step;
    }
    // Empty ranges make the clause vacuously true.
    if (0..n).any(|k| lo[k] > hi[k]) {
        return Ok(true);
    }
    // Size the banks before writing the pinned quantifier registers, and
    // hoist the (state-immutable) output-array lookup out of the loop. The
    // unbound-array failure fires before the first point's index evaluation
    // instead of after it; both reject identically.
    sc.reserve(&clause.point);
    let arr = st
        .array_slot(clause.array)
        .ok_or(EvalErr::UnboundArray(clause.array))?;
    let mut cur = [0i64; MAX_QUANT];
    cur[..n].copy_from_slice(&lo[..n]);
    let mut since_poll: u32 = 0;
    loop {
        sc.iregs[..n].copy_from_slice(&cur[..n]);
        clause.point.run(set, st, sc)?;
        let ix = &sc.iregs[clause.idx as usize..(clause.idx + clause.rank) as usize];
        let holds = arr
            .get(ix)
            .ok_or(EvalErr::OobLoad(clause.array))?
            .value_eq(sc.dreg(clause.rhs));
        if !holds {
            return Ok(false);
        }
        // Back-edge budget poll: only every POLL_STRIDE points, so the per
        // point path adds one increment and one compare.
        since_poll += 1;
        if since_poll == POLL_STRIDE {
            since_poll = 0;
            if budget.consume_check_fuel(POLL_STRIDE as u64).is_err() {
                return Err(EvalErr::Budget);
            }
        }
        // Advance the multi-index, last variable fastest, stepping each
        // dimension by its domain stride.
        let mut dim = n;
        loop {
            if dim == 0 {
                return Ok(true);
            }
            dim -= 1;
            cur[dim] += step[dim];
            if cur[dim] <= hi[dim] {
                break;
            }
            cur[dim] = lo[dim];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::check_vc_on_state;
    use crate::fixtures;
    use crate::vcgen::{analyze_loop_nest, generate_vcs};
    use std::sync::Arc;
    use stng_ir::interp::{run_kernel, ArrayData, State};
    use stng_ir::lower::kernel_from_source;

    fn example() -> (stng_ir::ir::Kernel, State<f64>) {
        let kernel = kernel_from_source(fixtures::RUNNING_EXAMPLE, 0).unwrap();
        let mut state: State<f64> = State::new();
        state
            .set_int("imin", 0)
            .set_int("imax", 4)
            .set_int("jmin", 0)
            .set_int("jmax", 3);
        state.allocate_arrays(&kernel, 0.0).unwrap();
        let b = ArrayData::from_fn(vec![(0, 4), (0, 3)], |ix| {
            (ix[0] * 3 + ix[1] * 7) as f64 * 0.25 + 1.0
        });
        state.set_array("b", b);
        (kernel, state)
    }

    #[test]
    fn compiled_vcs_agree_with_interpreter_on_running_example() {
        let (kernel, mut state) = example();
        let nest = analyze_loop_nest(&kernel).unwrap();
        let vcs = generate_vcs(
            &nest,
            &kernel.assumptions,
            &fixtures::running_example_invariants(),
            &fixtures::running_example_post(),
        );
        let map = Arc::new(stng_ir::slots::SlotMap::for_kernel(&kernel));
        let compiled = CompiledVcSet::compile(&vcs, &map).unwrap();
        let mut sc = compiled.scratch::<f64>();

        // Compare on the initial state and the final state of a full run.
        for _ in 0..2 {
            let slot_state = SlotState::from_state(&state, &map);
            for (k, vc) in vcs.iter().enumerate() {
                let interp = check_vc_on_state(vc, &state);
                let fast = compiled.check(k, &slot_state, &mut sc);
                match (interp, fast) {
                    (Ok(a), Ok(b)) => assert_eq!(a, b, "outcome mismatch on {}", vc.name),
                    (Err(_), Err(_)) => {}
                    (a, b) => panic!("divergence on {}: interp {a:?} vs compiled {b:?}", vc.name),
                }
            }
            run_kernel(&kernel, &mut state).unwrap();
        }
    }

    #[test]
    fn real_binding_shadowing_a_quantifier_matches_interpreter() {
        // The interpreter binds quantifier values into the *integer* cells
        // and data-position reads consult the real cell first, so a stale
        // real binding spelled like the quantified variable shadows the
        // loop value. The compiled engine must reproduce that (Op::DScalarOrReg).
        let (kernel, mut state) = example();
        run_kernel(&kernel, &mut state).unwrap();
        state.set_real("vi", 3.25);
        let mut post = fixtures::running_example_post();
        // `vi` in a data position of the rhs: a[vi, vj] = b[vi, vj] * vi.
        post.clauses[0].eq.rhs = stng_ir::ir::IrExpr::mul(
            stng_ir::ir::IrExpr::Load {
                array: "b".into(),
                indices: vec![
                    stng_ir::ir::IrExpr::var("vi"),
                    stng_ir::ir::IrExpr::var("vj"),
                ],
            },
            stng_ir::ir::IrExpr::var("vi"),
        );
        let vc = Vc {
            name: "shadow".into(),
            hypotheses: vec![],
            body: vec![],
            conclusion: Pred::Forall(post.clauses[0].clone()),
            int_scalars: vec![],
            scope: crate::vcgen::VcScope::Any,
        };
        let map = Arc::new(stng_ir::slots::SlotMap::for_kernel(&kernel));
        let compiled = CompiledVcSet::compile(std::slice::from_ref(&vc), &map).unwrap();
        let mut sc = compiled.scratch::<f64>();
        let slot_state = SlotState::from_state(&state, &map);
        let interp = check_vc_on_state(&vc, &state).unwrap();
        let fast = compiled.check(0, &slot_state, &mut sc).unwrap();
        assert_eq!(interp, fast);
        // And the shadow must actually bite: unbinding the real makes the
        // outcome differ from the shadowed evaluation in both engines alike.
        state.reals.remove("vi");
        let slot_state = SlotState::from_state(
            &state,
            &Arc::new(stng_ir::slots::SlotMap::for_kernel(&kernel)),
        );
        let compiled2 =
            CompiledVcSet::compile(std::slice::from_ref(&vc), slot_state.map()).unwrap();
        let mut sc2 = compiled2.scratch::<f64>();
        let interp2 = check_vc_on_state(&vc, &state).unwrap();
        let fast2 = compiled2.check(0, &slot_state, &mut sc2).unwrap();
        assert_eq!(interp2, fast2);
    }

    #[test]
    fn violated_and_error_cases_agree() {
        let (kernel, mut state) = example();
        run_kernel(&kernel, &mut state).unwrap();
        let nest = analyze_loop_nest(&kernel).unwrap();
        // Wrong postcondition: claims a = b, so the exit VC is violated on
        // the final state; and an out-of-range read makes evaluation error.
        let mut wrong = fixtures::running_example_post();
        wrong.clauses[0].eq.rhs = stng_ir::ir::IrExpr::Load {
            array: "b".into(),
            indices: vec![
                stng_ir::ir::IrExpr::var("vi"),
                stng_ir::ir::IrExpr::var("vj"),
            ],
        };
        let mut erroring = fixtures::running_example_post();
        erroring.clauses[0].eq.rhs = stng_ir::ir::IrExpr::Load {
            array: "b".into(),
            indices: vec![
                stng_ir::ir::IrExpr::add(
                    stng_ir::ir::IrExpr::var("vi"),
                    stng_ir::ir::IrExpr::Int(900),
                ),
                stng_ir::ir::IrExpr::var("vj"),
            ],
        };
        let invariants = fixtures::running_example_invariants();
        for post in [wrong, erroring] {
            let vcs = generate_vcs(&nest, &kernel.assumptions, &invariants, &post);
            let map = Arc::new(stng_ir::slots::SlotMap::for_kernel(&kernel));
            let compiled = CompiledVcSet::compile(&vcs, &map).unwrap();
            let mut sc = compiled.scratch::<f64>();
            let slot_state = SlotState::from_state(&state, &map);
            for (k, vc) in vcs.iter().enumerate() {
                let interp = check_vc_on_state(vc, &state);
                let fast = compiled.check(k, &slot_state, &mut sc);
                match (interp, fast) {
                    (Ok(a), Ok(b)) => assert_eq!(a, b, "outcome mismatch on {}", vc.name),
                    (Err(_), Err(_)) => {}
                    (a, b) => panic!("divergence on {}: interp {a:?} vs compiled {b:?}", vc.name),
                }
            }
        }
    }
}
