//! Compilation of verification conditions into slot-addressed bytecode.
//!
//! [`check_vc_on_state`](crate::eval::check_vc_on_state) tree-walks every
//! predicate and re-resolves every variable through a `HashMap` per
//! quantifier point — the dominant cost of the bounded screen on deep nests.
//! This module lowers a [`Vc`] **once** into flat [`Program`]s over
//! pre-resolved slots: evaluating the VC on a captured state is then a tight
//! loop over register-machine ops with zero allocation per quantifier point.
//!
//! Semantics are the tree-walking evaluator's, reproduced exactly —
//! including the order hypotheses are screened in, evaluation (and therefore
//! error) order inside clauses, short-circuit conjunction, and
//! vacuous-on-hypothesis-error. The differential property test in
//! `stng-solve` (`tests/compiled_differential.rs`) pins
//! compiled-vs-interpreted agreement down over the whole corpus, error cases
//! included. Constructs the bytecode cannot reproduce exactly fail to
//! compile with [`CompileErr`], and callers fall back to the interpreter.
//!
//! Quantified variables never touch the state: each clause's bound variables
//! are pinned to low integer registers of its per-point program, so
//! enumeration writes one register per dimension instead of inserting (and
//! restoring) `HashMap` entries.

use crate::eval::{ValueEq, VcOutcome};
use crate::lang::{Pred, QuantClause};
use crate::vcgen::Vc;
use std::collections::HashMap;
use stng_intern::guard::Budget;
use stng_ir::slots::{
    exec_stmts, lane_mask, lanes_in, BatchScratch, CompileErr, Compiler, EvalErr, Program,
    ProgramSet, Scratch, SlotBatch, SlotMap, SlotState, SlotStmt, SLOT_BATCH_MAX_LANES,
};

/// How many quantifier points the compiled enumerator evaluates between
/// budget polls. Back-edge-only polling: the per-point loop stays free of
/// clock reads and (for unlimited budgets) of atomics entirely.
const POLL_STRIDE: u32 = 256;

/// Maximum quantifier rank the compiled enumerator supports (the corpus
/// maximum is 4); deeper clauses fall back to the interpreter.
const MAX_QUANT: usize = 8;

/// One compiled quantifier bound: inclusive lower/upper bound programs plus
/// the (positive) enumeration stride.
#[derive(Debug)]
struct CompiledBound {
    lo: Program,
    hi: Program,
    step: i64,
}

/// A compiled universally quantified output equation.
#[derive(Debug)]
struct CompiledClause {
    /// Bound programs, evaluated against the state only (bounds may not
    /// reference the clause's own variables, mirroring the interpreter,
    /// which resolves every range before binding anything).
    bounds: Vec<CompiledBound>,
    /// Per-point program: integer registers `0..bounds.len()` are pinned to
    /// the quantifier values; computes the output indices into a contiguous
    /// block and the right-hand side into a data register.
    point: Program,
    /// First register of the output-index block.
    idx: u16,
    /// Output rank.
    rank: u16,
    /// Data register holding the right-hand side.
    rhs: u16,
    /// Output array slot.
    array: u32,
}

/// A compiled predicate. Conjunctions stay driver-level lists so
/// short-circuiting matches the tree walker exactly.
#[derive(Debug)]
enum CompiledPred {
    /// A quantifier-free boolean condition.
    Bool(Program),
    /// `lhs = rhs` over data values; both sides in one program.
    DataEq { prog: Program, lhs: u16, rhs: u16 },
    /// A universally quantified output equation.
    Forall(CompiledClause),
    /// The strided-loop alignment fact `var ≥ lo ∧ step | var − lo`.
    Stride { slot: u32, lo: Program, step: i64 },
    /// Conjunction, evaluated left to right with early exit.
    And(Vec<CompiledPred>),
}

/// One compiled verification condition.
#[derive(Debug)]
pub struct CompiledVc {
    /// The VC's name (for counterexample reporting).
    pub name: String,
    /// Hypotheses, each tagged with a set-wide *structural* id: hypotheses
    /// with identical source predicates share an id, so batch scans can
    /// memoize their per-state verdicts across VCs (a hypothesis verdict is
    /// a pure function of (predicate, pre-state), and `false` and `Err` are
    /// observationally the same — both make the lane vacuous).
    hypotheses: Vec<(u32, CompiledPred)>,
    body: Vec<SlotStmt>,
    int_scalars: Vec<u32>,
    conclusion: CompiledPred,
}

/// Memo of hypothesis verdicts for [`CompiledVcSet::check_batch`], keyed by
/// (structural hypothesis id, caller-chosen state key). Callers share one
/// memo across every VC scanned against the same state set (one capture
/// unit, say) and must not reuse it across state sets.
pub type HypMemo = HashMap<(u32, usize), bool>;

/// A batch of compiled VCs sharing one constant pool and function table.
#[derive(Debug)]
pub struct CompiledVcSet {
    /// Compiled conditions, in input order.
    pub vcs: Vec<CompiledVc>,
    set: ProgramSet,
}

impl CompiledVcSet {
    /// Compiles every VC against the resolver. Names not yet registered
    /// (quantified variables, say) are registered as new slots; states
    /// captured against a shorter map read those slots as unbound, which is
    /// exactly the hash-map absent-key behaviour.
    ///
    /// # Errors
    ///
    /// Returns [`CompileErr`] when any VC contains a construct whose
    /// interpreter semantics the bytecode cannot reproduce exactly; the
    /// caller then falls back to tree-walking evaluation for the whole set.
    pub fn compile(vcs: &[Vc], map: &SlotMap) -> Result<CompiledVcSet, CompileErr> {
        let mut compiler = Compiler::new(map);
        let mut out = Vec::with_capacity(vcs.len());
        // Structural hypothesis ids: VC families share invariant predicates
        // verbatim (the same invariant appears as a hypothesis of several
        // VCs), so identical source predicates get one id for memoization.
        let mut hyp_ids: HashMap<String, u32> = HashMap::new();
        for vc in vcs {
            let hypotheses = vc
                .hypotheses
                .iter()
                .map(|h| {
                    let next = hyp_ids.len() as u32;
                    let uid = *hyp_ids.entry(format!("{h:?}")).or_insert(next);
                    compile_pred(&mut compiler, map, h).map(|p| (uid, p))
                })
                .collect::<Result<_, _>>()?;
            compiler.clear_env();
            let body = compiler.compile_stmts(&vc.body)?;
            let conclusion = compile_pred(&mut compiler, map, &vc.conclusion)?;
            out.push(CompiledVc {
                name: vc.name.clone(),
                hypotheses,
                body,
                int_scalars: vc.int_scalars.iter().map(|n| map.scalar(n)).collect(),
                conclusion,
            });
        }
        Ok(CompiledVcSet {
            vcs: out,
            set: compiler.into_set(),
        })
    }

    /// A scratch space usable with every VC in the set.
    pub fn scratch<V: ValueEq>(&self) -> Scratch<V> {
        Scratch::for_set(&self.set)
    }

    /// Checks VC `k` against one pre-state — the compiled equivalent of
    /// [`check_vc_on_state`](crate::eval::check_vc_on_state).
    ///
    /// # Errors
    ///
    /// Like the interpreter: hypothesis failures are *not* errors (they make
    /// the state vacuous); body and conclusion evaluation failures
    /// propagate, and the bounded checker treats them as rejections.
    pub fn check<V: ValueEq>(
        &self,
        k: usize,
        pre: &SlotState<V>,
        sc: &mut Scratch<V>,
    ) -> Result<VcOutcome, EvalErr> {
        self.check_budgeted(k, pre, sc, &Budget::unlimited())
    }

    /// Like [`check`](Self::check), but polls `budget` at quantifier
    /// back-edges (every [`POLL_STRIDE`] points) and after the body run. A
    /// tripped budget surfaces as [`EvalErr::Budget`]; callers that govern
    /// work must consult [`Budget::exhausted`] to tell an interruption from
    /// an ordinary evaluation failure.
    pub fn check_budgeted<V: ValueEq>(
        &self,
        k: usize,
        pre: &SlotState<V>,
        sc: &mut Scratch<V>,
        budget: &Budget,
    ) -> Result<VcOutcome, EvalErr> {
        let vc = &self.vcs[k];
        for (_, hyp) in &vc.hypotheses {
            match eval_pred(hyp, &self.set, pre, sc, budget) {
                Ok(true) => {}
                Ok(false) | Err(_) => return Ok(VcOutcome::Vacuous),
            }
        }
        // Cloning the pre-state is a few flat memcpys plus Arc bumps; arrays
        // are copied only if the body stores into them.
        let mut post = pre.clone();
        for &slot in &vc.int_scalars {
            post.seed_int_slot(slot);
        }
        let mut steps = 0u64;
        exec_stmts(&vc.body, &self.set, &mut post, sc, &mut steps, 1_000_000)?;
        // Charge the body's executed statements as bounded-check fuel.
        if budget.consume_check_fuel(steps).is_err() {
            return Err(EvalErr::Budget);
        }
        if eval_pred(&vc.conclusion, &self.set, &post, sc, budget)? {
            Ok(VcOutcome::Holds)
        } else {
            Ok(VcOutcome::Violated)
        }
    }

    /// A batch scratch space usable with every VC in the set.
    pub fn batch_scratch<V: ValueEq>(&self) -> BatchScratch<V> {
        BatchScratch::for_set(&self.set)
    }

    /// Checks VC `k` against up to [`SLOT_BATCH_MAX_LANES`] pre-states in
    /// one pass: the batched equivalent of calling
    /// [`check_budgeted`](Self::check_budgeted) per state, with predicate
    /// programs executed op-major/lane-minor over SoA-transposed columns.
    ///
    /// Per-lane outcomes (including which evaluation error fires first)
    /// match the scalar engine exactly: mask narrowing reproduces the
    /// hypothesis short-circuit, bodies run per lane through the scalar
    /// executor, and quantifier clauses sweep the union box in lexicographic
    /// order so each lane visits its own points in its own scalar order.
    /// Fuel is charged at the same rates (1 per body step, 1 per quantifier
    /// point) but polled at batch granularity, so a tripped budget may
    /// surface on a different lane than a scalar sweep would pick.
    ///
    /// `state_keys` names each lane's pre-state (parallel to `pres`) for
    /// the hypothesis `memo`: VC families share invariant hypotheses, so
    /// one memo reused across the VCs of a scan evaluates each distinct
    /// (hypothesis, state) pair once. A hypothesis verdict is a pure
    /// function of that pair, and `false`/`Err` both read as "vacuous", so
    /// memoization is observationally exact.
    #[allow(clippy::too_many_arguments)]
    pub fn check_batch<V: ValueEq>(
        &self,
        k: usize,
        pres: &[&SlotState<V>],
        state_keys: &[usize],
        sc: &mut Scratch<V>,
        bsc: &mut BatchScratch<V>,
        memo: &mut HypMemo,
        budget: &Budget,
        out: &mut Vec<Result<VcOutcome, EvalErr>>,
    ) {
        let lanes = pres.len();
        debug_assert!((1..=SLOT_BATCH_MAX_LANES).contains(&lanes));
        debug_assert_eq!(state_keys.len(), lanes);
        let vc = &self.vcs[k];
        out.clear();
        out.resize(lanes, Ok(VcOutcome::Vacuous));
        let mut errs: Vec<Option<EvalErr>> = vec![None; lanes];
        let pre_refs: Vec<Option<&SlotState<V>>> = pres.iter().map(|s| Some(*s)).collect();
        let pre = SlotBatch::transpose(&pre_refs);
        let mut active = lane_mask(lanes);

        // Hypotheses: a lane whose hypothesis is false *or errors* drops out
        // as vacuous, mirroring the scalar `Ok(false) | Err(_)` arm. Memo
        // hits skip evaluation; misses evaluate batched and are recorded.
        for (uid, hyp) in &vc.hypotheses {
            if active == 0 {
                break;
            }
            let mut miss = 0u64;
            for lane in lanes_in(active) {
                match memo.get(&(*uid, state_keys[lane])) {
                    Some(true) => {}
                    Some(false) => active &= !(1u64 << lane),
                    None => miss |= 1u64 << lane,
                }
            }
            if miss != 0 {
                let passed = eval_pred_batch(
                    hyp, &self.set, &pre, &pre_refs, sc, bsc, miss, budget, &mut errs,
                );
                for lane in lanes_in(miss) {
                    let ok = passed & (1u64 << lane) != 0;
                    memo.insert((*uid, state_keys[lane]), ok);
                    if !ok {
                        active &= !(1u64 << lane);
                    }
                }
            }
        }
        for e in errs.iter_mut() {
            *e = None;
        }
        if active == 0 {
            return;
        }

        // Bodies are loop-free and run per lane through the scalar executor
        // (assignment dispatch is dynamic per state); errors and the body
        // fuel charge match the scalar path lane for lane.
        let mut posts: Vec<Option<SlotState<V>>> = (0..lanes).map(|_| None).collect();
        for lane in lanes_in(active) {
            let mut post = pres[lane].clone();
            for &slot in &vc.int_scalars {
                post.seed_int_slot(slot);
            }
            let mut steps = 0u64;
            match exec_stmts(&vc.body, &self.set, &mut post, sc, &mut steps, 1_000_000) {
                Ok(()) => {}
                Err(e) => {
                    out[lane] = Err(e);
                    active &= !(1u64 << lane);
                    continue;
                }
            }
            if budget.consume_check_fuel(steps).is_err() {
                out[lane] = Err(EvalErr::Budget);
                active &= !(1u64 << lane);
                continue;
            }
            posts[lane] = Some(post);
        }
        if active == 0 {
            return;
        }

        let post_refs: Vec<Option<&SlotState<V>>> = posts.iter().map(Option::as_ref).collect();
        let post = SlotBatch::transpose(&post_refs);
        let held = eval_pred_batch(
            &vc.conclusion,
            &self.set,
            &post,
            &post_refs,
            sc,
            bsc,
            active,
            budget,
            &mut errs,
        );
        for lane in lanes_in(active) {
            out[lane] = if held & (1u64 << lane) != 0 {
                Ok(VcOutcome::Holds)
            } else if let Some(e) = errs[lane] {
                Err(e)
            } else {
                Ok(VcOutcome::Violated)
            };
        }
    }
}

fn compile_pred(
    compiler: &mut Compiler,
    map: &SlotMap,
    pred: &Pred,
) -> Result<CompiledPred, CompileErr> {
    match pred {
        Pred::Bool(e) => {
            compiler.clear_env();
            Ok(CompiledPred::Bool(compiler.compile_bool(e)?))
        }
        Pred::DataEq { lhs, rhs } => {
            compiler.clear_env();
            let (prog, lhs, rhs) = compiler.compile_data_pair(lhs, rhs)?;
            Ok(CompiledPred::DataEq { prog, lhs, rhs })
        }
        Pred::Forall(clause) => Ok(CompiledPred::Forall(compile_clause(compiler, map, clause)?)),
        Pred::Stride { var, lo, step } => {
            compiler.clear_env();
            Ok(CompiledPred::Stride {
                slot: map.scalar(var),
                lo: compiler.compile_int(lo)?,
                step: *step,
            })
        }
        Pred::And(ps) => Ok(CompiledPred::And(
            ps.iter()
                .map(|p| compile_pred(compiler, map, p))
                .collect::<Result<_, _>>()?,
        )),
    }
}

fn compile_clause(
    compiler: &mut Compiler,
    map: &SlotMap,
    clause: &QuantClause,
) -> Result<CompiledClause, CompileErr> {
    if clause.bounds.len() > MAX_QUANT {
        return Err(CompileErr(format!(
            "clause quantifies {} variables (max {MAX_QUANT})",
            clause.bounds.len()
        )));
    }
    compiler.clear_env();
    let mut bounds = Vec::with_capacity(clause.bounds.len());
    for b in &clause.bounds {
        bounds.push(CompiledBound {
            lo: compiler.compile_int(&b.inclusive_lo())?,
            hi: compiler.compile_int(&b.inclusive_hi())?,
            step: b.step.max(1),
        });
    }
    // Per-point program with the quantified variables pinned to registers.
    let vars: Vec<String> = clause.bounds.iter().map(|b| b.var.clone()).collect();
    compiler.set_env(&vars);
    let (point, idx, rhs) = compiler.compile_indexed_value(&clause.eq.indices, &clause.eq.rhs)?;
    compiler.clear_env();
    Ok(CompiledClause {
        bounds,
        point,
        idx,
        rank: clause.eq.indices.len() as u16,
        rhs,
        array: map.array(&clause.eq.array),
    })
}

fn eval_pred<V: ValueEq>(
    pred: &CompiledPred,
    set: &ProgramSet,
    st: &SlotState<V>,
    sc: &mut Scratch<V>,
    budget: &Budget,
) -> Result<bool, EvalErr> {
    match pred {
        CompiledPred::Bool(p) => p.eval_bool(set, st, sc),
        CompiledPred::DataEq { prog, lhs, rhs } => {
            prog.run(set, st, sc)?;
            Ok(sc.dreg(*lhs).clone().value_eq(sc.dreg(*rhs)))
        }
        CompiledPred::Forall(clause) => eval_clause(clause, set, st, sc, budget),
        CompiledPred::Stride { slot, lo, step } => {
            let v = st.int_slot(*slot).ok_or(EvalErr::UnboundInt(*slot))?;
            let lo = lo.eval_int(set, st, sc)?;
            Ok(v >= lo && (v - lo).rem_euclid(*step) == 0)
        }
        CompiledPred::And(ps) => {
            for p in ps {
                if !eval_pred(p, set, st, sc, budget)? {
                    return Ok(false);
                }
            }
            Ok(true)
        }
    }
}

fn eval_clause<V: ValueEq>(
    clause: &CompiledClause,
    set: &ProgramSet,
    st: &SlotState<V>,
    sc: &mut Scratch<V>,
    budget: &Budget,
) -> Result<bool, EvalErr> {
    let n = clause.bounds.len();
    let mut lo = [0i64; MAX_QUANT];
    let mut hi = [0i64; MAX_QUANT];
    let mut step = [1i64; MAX_QUANT];
    for (k, b) in clause.bounds.iter().enumerate() {
        lo[k] = b.lo.eval_int(set, st, sc)?;
        hi[k] = b.hi.eval_int(set, st, sc)?;
        step[k] = b.step;
    }
    // Empty ranges make the clause vacuously true.
    if (0..n).any(|k| lo[k] > hi[k]) {
        return Ok(true);
    }
    // Size the banks before writing the pinned quantifier registers, and
    // hoist the (state-immutable) output-array lookup out of the loop. The
    // unbound-array failure fires before the first point's index evaluation
    // instead of after it; both reject identically.
    sc.reserve(&clause.point);
    let arr = st
        .array_slot(clause.array)
        .ok_or(EvalErr::UnboundArray(clause.array))?;
    let mut cur = [0i64; MAX_QUANT];
    cur[..n].copy_from_slice(&lo[..n]);
    let mut since_poll: u32 = 0;
    loop {
        sc.iregs[..n].copy_from_slice(&cur[..n]);
        clause.point.run(set, st, sc)?;
        let ix = &sc.iregs[clause.idx as usize..(clause.idx + clause.rank) as usize];
        let holds = arr
            .get(ix)
            .ok_or(EvalErr::OobLoad(clause.array))?
            .value_eq(sc.dreg(clause.rhs));
        if !holds {
            return Ok(false);
        }
        // Back-edge budget poll: only every POLL_STRIDE points, so the per
        // point path adds one increment and one compare.
        since_poll += 1;
        if since_poll == POLL_STRIDE {
            since_poll = 0;
            if budget.consume_check_fuel(POLL_STRIDE as u64).is_err() {
                return Err(EvalErr::Budget);
            }
        }
        // Advance the multi-index, last variable fastest, stepping each
        // dimension by its domain stride.
        let mut dim = n;
        loop {
            if dim == 0 {
                return Ok(true);
            }
            dim -= 1;
            cur[dim] += step[dim];
            if cur[dim] <= hi[dim] {
                break;
            }
            cur[dim] = lo[dim];
        }
    }
}

/// Batched [`eval_pred`]: evaluates the predicate for every lane in
/// `active` and returns the mask of lanes where it is *true*. A lane that
/// evaluates to false simply drops out of the returned mask; a lane that
/// errors additionally records its failure in `errs[lane]` (first error per
/// lane wins, matching the scalar engine's error-surfacing order). `states`
/// holds the per-lane originals for the scalar fallbacks (programs with
/// lane-divergent short-circuit jumps, stride-misaligned clause chunks).
#[allow(clippy::too_many_arguments)]
fn eval_pred_batch<V: ValueEq>(
    pred: &CompiledPred,
    set: &ProgramSet,
    batch: &SlotBatch<'_, V>,
    states: &[Option<&SlotState<V>>],
    sc: &mut Scratch<V>,
    bsc: &mut BatchScratch<V>,
    active: u64,
    budget: &Budget,
    errs: &mut [Option<EvalErr>],
) -> u64 {
    match pred {
        CompiledPred::Bool(p) => {
            if p.straight_line() {
                let ran = p.run_batch(set, batch, bsc, active, errs);
                let mut t = 0u64;
                for lane in lanes_in(ran) {
                    if bsc.breg(p.result, lane) {
                        t |= 1u64 << lane;
                    }
                }
                t
            } else {
                // Short-circuit jumps diverge across lanes: scalar per lane.
                let mut t = 0u64;
                for lane in lanes_in(active) {
                    match p.eval_bool(set, states[lane].expect("active lane"), sc) {
                        Ok(true) => t |= 1u64 << lane,
                        Ok(false) => {}
                        Err(e) => errs[lane] = Some(e),
                    }
                }
                t
            }
        }
        CompiledPred::DataEq { prog, lhs, rhs } => {
            let ran = prog.run_batch(set, batch, bsc, active, errs);
            let mut t = 0u64;
            for lane in lanes_in(ran) {
                if bsc.dreg(*lhs, lane).clone().value_eq(bsc.dreg(*rhs, lane)) {
                    t |= 1u64 << lane;
                }
            }
            t
        }
        CompiledPred::Forall(clause) => {
            eval_clause_batch(clause, set, batch, states, sc, bsc, active, budget, errs)
        }
        CompiledPred::Stride { slot, lo, step } => {
            // The scalar engine reads the variable before evaluating `lo`,
            // so an unbound variable must win over a lower-bound error.
            let mut have = 0u64;
            for lane in lanes_in(active) {
                if batch.int(*slot, lane).is_some() {
                    have |= 1u64 << lane;
                } else {
                    errs[lane] = Some(EvalErr::UnboundInt(*slot));
                }
            }
            let ran = lo.run_batch(set, batch, bsc, have, errs);
            let mut t = 0u64;
            for lane in lanes_in(ran) {
                let v = batch.int(*slot, lane).expect("bound lane");
                let l = bsc.ireg(lo.result, lane);
                if v >= l && (v - l).rem_euclid(*step) == 0 {
                    t |= 1u64 << lane;
                }
            }
            t
        }
        CompiledPred::And(ps) => {
            // Mask narrowing *is* the per-lane short-circuit: a lane false
            // or errored in one conjunct never evaluates the next.
            let mut m = active;
            for p in ps {
                if m == 0 {
                    break;
                }
                m = eval_pred_batch(p, set, batch, states, sc, bsc, m, budget, errs);
            }
            m
        }
    }
}

/// Per-lane scalar fallback for clause chunks the batched enumerator cannot
/// share a lattice for.
fn clause_lanes_scalar<V: ValueEq>(
    clause: &CompiledClause,
    set: &ProgramSet,
    states: &[Option<&SlotState<V>>],
    sc: &mut Scratch<V>,
    active: u64,
    budget: &Budget,
    errs: &mut [Option<EvalErr>],
) -> u64 {
    let mut t = 0u64;
    for lane in lanes_in(active) {
        match eval_clause(clause, set, states[lane].expect("active lane"), sc, budget) {
            Ok(true) => t |= 1u64 << lane,
            Ok(false) => {}
            Err(e) => errs[lane] = Some(e),
        }
    }
    t
}

/// Batched [`eval_clause`]: one lexicographic sweep of the lanes' *union*
/// box with per-dimension lane masks selecting which lanes each point
/// belongs to. Restricting the union sweep to a lane's own box preserves
/// lexicographic order, so every lane sees exactly the scalar enumeration —
/// same first violation, same first error — while the point program runs
/// once per point instead of once per (lane, point).
#[allow(clippy::too_many_arguments)]
fn eval_clause_batch<V: ValueEq>(
    clause: &CompiledClause,
    set: &ProgramSet,
    batch: &SlotBatch<'_, V>,
    states: &[Option<&SlotState<V>>],
    sc: &mut Scratch<V>,
    bsc: &mut BatchScratch<V>,
    active: u64,
    budget: &Budget,
    errs: &mut [Option<EvalErr>],
) -> u64 {
    let batchable = clause.point.straight_line()
        && clause
            .bounds
            .iter()
            .all(|b| b.lo.straight_line() && b.hi.straight_line());
    if !batchable {
        return clause_lanes_scalar(clause, set, states, sc, active, budget, errs);
    }
    let n = clause.bounds.len();
    let lanes = batch.lanes();
    // Bounds per lane, evaluated in the scalar order (lo then hi, dimension
    // by dimension) so the first bound error per lane matches the scalar
    // engine; an errored lane skips the remaining bound programs exactly as
    // the scalar `?` would.
    let mut lo = vec![0i64; n * lanes];
    let mut hi = vec![0i64; n * lanes];
    let mut ok = active;
    for (d, b) in clause.bounds.iter().enumerate() {
        ok = b.lo.run_batch(set, batch, bsc, ok, errs);
        for lane in lanes_in(ok) {
            lo[d * lanes + lane] = bsc.ireg(b.lo.result, lane);
        }
        ok = b.hi.run_batch(set, batch, bsc, ok, errs);
        for lane in lanes_in(ok) {
            hi[d * lanes + lane] = bsc.ireg(b.hi.result, lane);
        }
    }
    // Empty ranges are vacuously true.
    let mut t = 0u64;
    let mut enumerate = 0u64;
    for lane in lanes_in(ok) {
        if (0..n).any(|d| lo[d * lanes + lane] > hi[d * lanes + lane]) {
            t |= 1u64 << lane;
        } else {
            enumerate |= 1u64 << lane;
        }
    }
    if enumerate == 0 {
        return t;
    }
    // The scalar engine resolves the output array before the first point.
    for lane in lanes_in(enumerate) {
        if batch.array(clause.array, lane).is_none() {
            errs[lane] = Some(EvalErr::UnboundArray(clause.array));
            enumerate &= !(1u64 << lane);
        }
    }
    if enumerate == 0 {
        return t;
    }
    // A shared lattice per dimension needs every lane's `lo` on the same
    // residue when the stride exceeds 1; disagreeing chunks fall back to
    // per-lane scalar enumeration (no corpus kernel hits this today).
    for (d, b) in clause.bounds.iter().enumerate() {
        if b.step > 1 {
            let mut it = lanes_in(enumerate);
            let r0 = lo[d * lanes + it.next().expect("nonempty mask")].rem_euclid(b.step);
            if it.any(|lane| lo[d * lanes + lane].rem_euclid(b.step) != r0) {
                return t | clause_lanes_scalar(clause, set, states, sc, enumerate, budget, errs);
            }
        }
    }
    // Union box and per-dimension in-range lane masks: `dim_masks[d][j]` is
    // the set of lanes whose range contains lattice point `ulo[d] + j*step`.
    let mut ulo = [0i64; MAX_QUANT];
    for d in 0..n {
        ulo[d] = lanes_in(enumerate)
            .map(|l| lo[d * lanes + l])
            .min()
            .expect("nonempty mask");
    }
    let mut dim_masks: Vec<Vec<u64>> = Vec::with_capacity(n);
    for (d, b) in clause.bounds.iter().enumerate() {
        let uhi = lanes_in(enumerate)
            .map(|l| hi[d * lanes + l])
            .max()
            .expect("nonempty mask");
        let width = ((uhi - ulo[d]).div_euclid(b.step) + 1) as usize;
        let mut col = vec![0u64; width];
        for lane in lanes_in(enumerate) {
            let j0 = ((lo[d * lanes + lane] - ulo[d]) / b.step) as usize;
            let j1 = ((hi[d * lanes + lane] - ulo[d]).div_euclid(b.step)) as usize;
            for m in col.iter_mut().take(j1 + 1).skip(j0) {
                *m |= 1u64 << lane;
            }
        }
        dim_masks.push(col);
    }
    // Lexicographic sweep, last dimension fastest. A lane leaves `alive` the
    // moment its outcome is decided (violation or error); lanes alive after
    // the sweep saw all their points hold.
    bsc.reserve(&clause.point, lanes);
    let mut cur = [0i64; MAX_QUANT];
    let mut jj = [0usize; MAX_QUANT];
    cur[..n].copy_from_slice(&ulo[..n]);
    let mut alive = enumerate;
    let mut since_poll: u64 = 0;
    'points: loop {
        let mut at = alive;
        for d in 0..n {
            at &= dim_masks[d][jj[d]];
        }
        if at != 0 {
            for (d, &c) in cur.iter().enumerate().take(n) {
                bsc.pin_ireg(d as u16, c);
            }
            let ran = clause.point.run_batch(set, batch, bsc, at, errs);
            alive &= !(at & !ran);
            // The target cell is lane-invariant whenever the index registers
            // are (always true for straight quantifier-var indices): resolve
            // the flat offset once and compare per lane.
            let shared = if ran != 0
                && batch.array_dims_uniform(clause.array)
                && (clause.idx..clause.idx + clause.rank).all(|r| bsc.ireg_uniform(r))
            {
                let lane = ran.trailing_zeros() as usize;
                let arr = batch.array(clause.array, lane).expect("checked above");
                let mut ix = [0i64; MAX_QUANT];
                for (i, r) in (clause.idx..clause.idx + clause.rank).enumerate() {
                    ix[i] = bsc.ireg(r, lane);
                }
                Some(arr.offset(&ix[..clause.rank as usize]))
            } else {
                None
            };
            for lane in lanes_in(ran) {
                let arr = batch.array(clause.array, lane).expect("checked above");
                let off = match shared {
                    Some(off) => off,
                    None => {
                        let mut ix = [0i64; MAX_QUANT];
                        for (i, r) in (clause.idx..clause.idx + clause.rank).enumerate() {
                            ix[i] = bsc.ireg(r, lane);
                        }
                        arr.offset(&ix[..clause.rank as usize])
                    }
                };
                match off {
                    Some(o) => {
                        if !arr.data[o].value_eq(bsc.dreg(clause.rhs, lane)) {
                            alive &= !(1u64 << lane);
                        }
                    }
                    None => {
                        errs[lane] = Some(EvalErr::OobLoad(clause.array));
                        alive &= !(1u64 << lane);
                    }
                }
            }
            // Back-edge budget poll at batch granularity: one fuel per
            // (point, lane), charged every >= POLL_STRIDE accumulated.
            since_poll += at.count_ones() as u64;
            if since_poll >= POLL_STRIDE as u64 {
                if budget.consume_check_fuel(since_poll).is_err() {
                    for lane in lanes_in(alive) {
                        errs[lane] = Some(EvalErr::Budget);
                    }
                    alive = 0;
                }
                since_poll = 0;
            }
            if alive == 0 {
                break 'points;
            }
        }
        let mut d = n;
        loop {
            if d == 0 {
                break 'points;
            }
            d -= 1;
            jj[d] += 1;
            cur[d] += clause.bounds[d].step;
            if jj[d] < dim_masks[d].len() {
                break;
            }
            jj[d] = 0;
            cur[d] = ulo[d];
        }
    }
    t | alive
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::check_vc_on_state;
    use crate::fixtures;
    use crate::vcgen::{analyze_loop_nest, generate_vcs};
    use std::sync::Arc;
    use stng_ir::interp::{run_kernel, ArrayData, State};
    use stng_ir::lower::kernel_from_source;

    fn example() -> (stng_ir::ir::Kernel, State<f64>) {
        let kernel = kernel_from_source(fixtures::RUNNING_EXAMPLE, 0).unwrap();
        let mut state: State<f64> = State::new();
        state
            .set_int("imin", 0)
            .set_int("imax", 4)
            .set_int("jmin", 0)
            .set_int("jmax", 3);
        state.allocate_arrays(&kernel, 0.0).unwrap();
        let b = ArrayData::from_fn(vec![(0, 4), (0, 3)], |ix| {
            (ix[0] * 3 + ix[1] * 7) as f64 * 0.25 + 1.0
        });
        state.set_array("b", b);
        (kernel, state)
    }

    #[test]
    fn compiled_vcs_agree_with_interpreter_on_running_example() {
        let (kernel, mut state) = example();
        let nest = analyze_loop_nest(&kernel).unwrap();
        let vcs = generate_vcs(
            &nest,
            &kernel.assumptions,
            &fixtures::running_example_invariants(),
            &fixtures::running_example_post(),
        );
        let map = Arc::new(stng_ir::slots::SlotMap::for_kernel(&kernel));
        let compiled = CompiledVcSet::compile(&vcs, &map).unwrap();
        let mut sc = compiled.scratch::<f64>();

        // Compare on the initial state and the final state of a full run.
        for _ in 0..2 {
            let slot_state = SlotState::from_state(&state, &map);
            for (k, vc) in vcs.iter().enumerate() {
                let interp = check_vc_on_state(vc, &state);
                let fast = compiled.check(k, &slot_state, &mut sc);
                match (interp, fast) {
                    (Ok(a), Ok(b)) => assert_eq!(a, b, "outcome mismatch on {}", vc.name),
                    (Err(_), Err(_)) => {}
                    (a, b) => panic!("divergence on {}: interp {a:?} vs compiled {b:?}", vc.name),
                }
            }
            run_kernel(&kernel, &mut state).unwrap();
        }
    }

    #[test]
    fn real_binding_shadowing_a_quantifier_matches_interpreter() {
        // The interpreter binds quantifier values into the *integer* cells
        // and data-position reads consult the real cell first, so a stale
        // real binding spelled like the quantified variable shadows the
        // loop value. The compiled engine must reproduce that (Op::DScalarOrReg).
        let (kernel, mut state) = example();
        run_kernel(&kernel, &mut state).unwrap();
        state.set_real("vi", 3.25);
        let mut post = fixtures::running_example_post();
        // `vi` in a data position of the rhs: a[vi, vj] = b[vi, vj] * vi.
        post.clauses[0].eq.rhs = stng_ir::ir::IrExpr::mul(
            stng_ir::ir::IrExpr::Load {
                array: "b".into(),
                indices: vec![
                    stng_ir::ir::IrExpr::var("vi"),
                    stng_ir::ir::IrExpr::var("vj"),
                ],
            },
            stng_ir::ir::IrExpr::var("vi"),
        );
        let vc = Vc {
            name: "shadow".into(),
            hypotheses: vec![],
            body: vec![],
            conclusion: Pred::Forall(post.clauses[0].clone()),
            int_scalars: vec![],
            scope: crate::vcgen::VcScope::Any,
        };
        let map = Arc::new(stng_ir::slots::SlotMap::for_kernel(&kernel));
        let compiled = CompiledVcSet::compile(std::slice::from_ref(&vc), &map).unwrap();
        let mut sc = compiled.scratch::<f64>();
        let slot_state = SlotState::from_state(&state, &map);
        let interp = check_vc_on_state(&vc, &state).unwrap();
        let fast = compiled.check(0, &slot_state, &mut sc).unwrap();
        assert_eq!(interp, fast);
        // And the shadow must actually bite: unbinding the real makes the
        // outcome differ from the shadowed evaluation in both engines alike.
        state.reals.remove("vi");
        let slot_state = SlotState::from_state(
            &state,
            &Arc::new(stng_ir::slots::SlotMap::for_kernel(&kernel)),
        );
        let compiled2 =
            CompiledVcSet::compile(std::slice::from_ref(&vc), slot_state.map()).unwrap();
        let mut sc2 = compiled2.scratch::<f64>();
        let interp2 = check_vc_on_state(&vc, &state).unwrap();
        let fast2 = compiled2.check(0, &slot_state, &mut sc2).unwrap();
        assert_eq!(interp2, fast2);
    }

    #[test]
    fn batched_check_agrees_with_scalar_lane_for_lane() {
        // Correct, violated, and erroring postconditions, each checked on a
        // batch mixing the initial and final states: every lane's outcome —
        // including the exact error — must equal the scalar engine's.
        let (kernel, mut state) = example();
        let nest = analyze_loop_nest(&kernel).unwrap();
        let initial = state.clone();
        run_kernel(&kernel, &mut state).unwrap();
        let mut wrong = fixtures::running_example_post();
        wrong.clauses[0].eq.rhs = stng_ir::ir::IrExpr::Load {
            array: "b".into(),
            indices: vec![
                stng_ir::ir::IrExpr::var("vi"),
                stng_ir::ir::IrExpr::var("vj"),
            ],
        };
        let mut erroring = fixtures::running_example_post();
        erroring.clauses[0].eq.rhs = stng_ir::ir::IrExpr::Load {
            array: "b".into(),
            indices: vec![
                stng_ir::ir::IrExpr::add(
                    stng_ir::ir::IrExpr::var("vi"),
                    stng_ir::ir::IrExpr::Int(900),
                ),
                stng_ir::ir::IrExpr::var("vj"),
            ],
        };
        let invariants = fixtures::running_example_invariants();
        for post in [fixtures::running_example_post(), wrong, erroring] {
            let vcs = generate_vcs(&nest, &kernel.assumptions, &invariants, &post);
            let map = Arc::new(stng_ir::slots::SlotMap::for_kernel(&kernel));
            let compiled = CompiledVcSet::compile(&vcs, &map).unwrap();
            let mut sc = compiled.scratch::<f64>();
            let mut bsc = compiled.batch_scratch::<f64>();
            let states: Vec<SlotState<f64>> = [&initial, &state, &initial, &state]
                .iter()
                .map(|s| SlotState::from_state(s, &map))
                .collect();
            let refs: Vec<&SlotState<f64>> = states.iter().collect();
            // Lanes 0/2 and 1/3 carry identical states under shared keys, so
            // the hypothesis memo's cross-lane and cross-VC reuse is on the
            // differential path too.
            let keys = [0usize, 1, 0, 1];
            let mut memo = HypMemo::new();
            let mut out = Vec::new();
            for (k, vc) in vcs.iter().enumerate() {
                compiled.check_batch(
                    k,
                    &refs,
                    &keys,
                    &mut sc,
                    &mut bsc,
                    &mut memo,
                    &Budget::unlimited(),
                    &mut out,
                );
                assert_eq!(out.len(), refs.len());
                for (lane, got) in out.iter().enumerate() {
                    let scalar = compiled.check(k, refs[lane], &mut sc);
                    match (scalar, got) {
                        (Ok(a), Ok(b)) => assert_eq!(a, *b, "lane {lane} on {}", vc.name),
                        (Err(a), Err(b)) => assert_eq!(a, *b, "lane {lane} on {}", vc.name),
                        (a, b) => {
                            panic!("divergence lane {lane} on {}: {a:?} vs {b:?}", vc.name)
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn violated_and_error_cases_agree() {
        let (kernel, mut state) = example();
        run_kernel(&kernel, &mut state).unwrap();
        let nest = analyze_loop_nest(&kernel).unwrap();
        // Wrong postcondition: claims a = b, so the exit VC is violated on
        // the final state; and an out-of-range read makes evaluation error.
        let mut wrong = fixtures::running_example_post();
        wrong.clauses[0].eq.rhs = stng_ir::ir::IrExpr::Load {
            array: "b".into(),
            indices: vec![
                stng_ir::ir::IrExpr::var("vi"),
                stng_ir::ir::IrExpr::var("vj"),
            ],
        };
        let mut erroring = fixtures::running_example_post();
        erroring.clauses[0].eq.rhs = stng_ir::ir::IrExpr::Load {
            array: "b".into(),
            indices: vec![
                stng_ir::ir::IrExpr::add(
                    stng_ir::ir::IrExpr::var("vi"),
                    stng_ir::ir::IrExpr::Int(900),
                ),
                stng_ir::ir::IrExpr::var("vj"),
            ],
        };
        let invariants = fixtures::running_example_invariants();
        for post in [wrong, erroring] {
            let vcs = generate_vcs(&nest, &kernel.assumptions, &invariants, &post);
            let map = Arc::new(stng_ir::slots::SlotMap::for_kernel(&kernel));
            let compiled = CompiledVcSet::compile(&vcs, &map).unwrap();
            let mut sc = compiled.scratch::<f64>();
            let slot_state = SlotState::from_state(&state, &map);
            for (k, vc) in vcs.iter().enumerate() {
                let interp = check_vc_on_state(vc, &state);
                let fast = compiled.check(k, &slot_state, &mut sc);
                match (interp, fast) {
                    (Ok(a), Ok(b)) => assert_eq!(a, b, "outcome mismatch on {}", vc.name),
                    (Err(_), Err(_)) => {}
                    (a, b) => panic!("divergence on {}: interp {a:?} vs compiled {b:?}", vc.name),
                }
            }
        }
    }
}
