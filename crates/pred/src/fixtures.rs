//! Hand-written predicates for the paper's running example (Fig. 1).
//!
//! These fixtures serve three purposes: they document what the synthesizer is
//! expected to find, they seed the test suites of the verifier and the
//! synthesizer, and they are used by the quickstart example.

use crate::lang::{Invariant, OutEq, Postcondition, QuantBound, QuantClause};
use stng_ir::ir::{CmpOp, IrExpr};

/// The Fortran source of the paper's running example (Fig. 1(a)).
pub const RUNNING_EXAMPLE: &str = r#"
procedure sten(imin, imax, jmin, jmax, a, b)
  real (kind=8), dimension(imin:imax, jmin:jmax) :: a
  real (kind=8), dimension(imin:imax, jmin:jmax) :: b
  real :: t
  real :: q
  integer :: i
  integer :: j
  do j = jmin, jmax
    t = b(imin, j)
    do i = imin+1, imax
      q = b(i, j)
      a(i, j) = q + t
      t = q
    enddo
  enddo
end procedure
"#;

fn load(array: &str, indices: Vec<IrExpr>) -> IrExpr {
    IrExpr::Load {
        array: array.to_string(),
        indices,
    }
}

/// The two-point stencil expression `b[vi-1, vj] + b[vi, vj]`.
pub fn running_example_rhs() -> IrExpr {
    IrExpr::add(
        load(
            "b",
            vec![
                IrExpr::sub(IrExpr::var("vi"), IrExpr::Int(1)),
                IrExpr::var("vj"),
            ],
        ),
        load("b", vec![IrExpr::var("vi"), IrExpr::var("vj")]),
    )
}

/// The postcondition of Fig. 1(b):
/// `∀ imin+1 ≤ vi ≤ imax, jmin ≤ vj ≤ jmax. a[vi,vj] = b[vi-1,vj] + b[vi,vj]`.
pub fn running_example_post() -> Postcondition {
    Postcondition {
        clauses: vec![QuantClause {
            bounds: vec![
                QuantBound::inclusive(
                    "vi",
                    IrExpr::add(IrExpr::var("imin"), IrExpr::Int(1)),
                    IrExpr::var("imax"),
                ),
                QuantBound::inclusive("vj", IrExpr::var("jmin"), IrExpr::var("jmax")),
            ],
            eq: OutEq {
                array: "a".into(),
                indices: vec![IrExpr::var("vi"), IrExpr::var("vj")],
                rhs: running_example_rhs(),
            },
        }],
    }
}

/// The loop invariants of the running example: one for the outer loop over
/// `j` (Fig. 1(c)) and one for the inner loop over `i` (which additionally
/// tracks the scalar temporary `t` and the partially completed current row).
pub fn running_example_invariants() -> Vec<Invariant> {
    let completed_rows = QuantClause {
        bounds: vec![
            QuantBound::inclusive(
                "vi",
                IrExpr::add(IrExpr::var("imin"), IrExpr::Int(1)),
                IrExpr::var("imax"),
            ),
            QuantBound::inclusive(
                "vj",
                IrExpr::var("jmin"),
                IrExpr::sub(IrExpr::var("j"), IrExpr::Int(1)),
            ),
        ],
        eq: OutEq {
            array: "a".into(),
            indices: vec![IrExpr::var("vi"), IrExpr::var("vj")],
            rhs: running_example_rhs(),
        },
    };
    let current_row_partial = QuantClause {
        bounds: vec![
            QuantBound::inclusive(
                "vi",
                IrExpr::add(IrExpr::var("imin"), IrExpr::Int(1)),
                IrExpr::sub(IrExpr::var("i"), IrExpr::Int(1)),
            ),
            QuantBound::inclusive("vj", IrExpr::var("j"), IrExpr::var("j")),
        ],
        eq: OutEq {
            array: "a".into(),
            indices: vec![IrExpr::var("vi"), IrExpr::var("vj")],
            rhs: running_example_rhs(),
        },
    };

    let outer = Invariant {
        scalar_conds: vec![IrExpr::cmp(
            CmpOp::Le,
            IrExpr::var("jmin"),
            IrExpr::var("j"),
        )],
        scalar_eqs: vec![],
        clauses: vec![completed_rows.clone()],
    };
    let inner = Invariant {
        scalar_conds: vec![
            IrExpr::cmp(CmpOp::Le, IrExpr::var("jmin"), IrExpr::var("j")),
            IrExpr::cmp(CmpOp::Le, IrExpr::var("j"), IrExpr::var("jmax")),
            IrExpr::cmp(
                CmpOp::Le,
                IrExpr::add(IrExpr::var("imin"), IrExpr::Int(1)),
                IrExpr::var("i"),
            ),
        ],
        scalar_eqs: vec![(
            "t".to_string(),
            load(
                "b",
                vec![
                    IrExpr::sub(IrExpr::var("i"), IrExpr::Int(1)),
                    IrExpr::var("j"),
                ],
            ),
        )],
        clauses: vec![completed_rows, current_row_partial],
    };
    vec![outer, inner]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_have_expected_shapes() {
        let post = running_example_post();
        assert_eq!(post.clauses.len(), 1);
        assert_eq!(post.clauses[0].bounds.len(), 2);
        let invs = running_example_invariants();
        assert_eq!(invs.len(), 2);
        assert_eq!(invs[0].clauses.len(), 1);
        assert_eq!(invs[1].clauses.len(), 2);
        assert_eq!(invs[1].scalar_eqs.len(), 1);
    }
}
