//! Skolemization and partial Skolemization of quantified hypotheses (§4.3).
//!
//! The verification conditions are ∃∀ problems once the unknown invariants
//! are fixed, but invariants themselves contain universal quantifiers that
//! appear in *negative* positions (as hypotheses), which normalizes to an
//! inner existential — an ∃∀∃ alternation no constraint-based synthesizer can
//! consume directly.
//!
//! Full Skolemization would replace the inner existential with an explicit
//! Skolem *function* of the outer universals. STNG instead uses **partial
//! Skolemization**: the existential `∃y. P(x, y)` is replaced by a finite
//! disjunction `⋁_{t ∈ fS(x)} P(x, t)` over a small, syntactically derived
//! set of candidate terms `fS(x)` — the quantified hypotheses are only ever
//! *instantiated* at those terms. This module computes the instantiation
//! sets used by both the synthesizer's checking encoding and the sound
//! verifier: the conclusion's own index expressions, the indices of array
//! stores performed by the VC body, and small constant offsets around both.

use crate::lang::QuantClause;
use std::collections::BTreeMap;
use stng_ir::ir::IrExpr;

/// One instantiation of the quantified variables of a hypothesis clause.
pub type Instantiation = BTreeMap<String, IrExpr>;

/// The set of constant offsets used when widening an anchor term into a
/// partial Skolem set (`x`, `x±1`, …, `x±radius`).
pub fn skolem_offsets(radius: i64) -> Vec<i64> {
    let mut out = vec![0];
    for d in 1..=radius {
        out.push(d);
        out.push(-d);
    }
    out
}

/// Builds the partial Skolem instantiation set for a quantified hypothesis
/// clause, given the anchor index vectors the proof is likely to need:
/// typically the conclusion's target indices and the indices of every store
/// performed by the VC body.
///
/// Each anchor must have the same arity as the clause (one index expression
/// per quantified variable, matched positionally against the clause's own
/// output indices). Anchors of different arity are skipped.
///
/// With `radius = 0` the set contains exactly the anchors themselves — the
/// minimal instantiation set; larger radii add constant offsets, mirroring
/// the `x + i` / `x + j` example in the paper.
pub fn partial_skolem_instances(
    clause: &QuantClause,
    anchors: &[Vec<IrExpr>],
    radius: i64,
) -> Vec<Instantiation> {
    let vars: Vec<&str> = clause.bounds.iter().map(|b| b.var.as_str()).collect();
    let mut out: Vec<Instantiation> = Vec::new();
    let offsets = skolem_offsets(radius);
    for anchor in anchors {
        if anchor.len() != vars.len() {
            continue;
        }
        for &off in &offsets {
            let mut inst = Instantiation::new();
            for (var, base) in vars.iter().zip(anchor) {
                let expr = if off == 0 {
                    base.clone()
                } else if off > 0 {
                    IrExpr::add(base.clone(), IrExpr::Int(off))
                } else {
                    IrExpr::sub(base.clone(), IrExpr::Int(-off))
                };
                inst.insert((*var).to_string(), expr);
            }
            if !out.contains(&inst) {
                out.push(inst);
            }
        }
    }
    out
}

/// Instantiates a clause at a particular assignment of its quantified
/// variables, returning the bound constraints and the instantiated output
/// equation with every quantified variable substituted away.
pub fn instantiate_clause(
    clause: &QuantClause,
    instantiation: &Instantiation,
) -> (Vec<IrExpr>, crate::lang::OutEq) {
    let subst = |e: &IrExpr| -> IrExpr {
        let mut out = e.clone();
        for (var, replacement) in instantiation {
            out = out.subst_var(var, replacement);
        }
        out
    };
    let mut constraints = Vec::new();
    for bound in &clause.bounds {
        let [lower, upper] = bound.to_constraints();
        constraints.push(subst(&lower));
        constraints.push(subst(&upper));
    }
    let eq = crate::lang::OutEq {
        array: clause.eq.array.clone(),
        indices: clause.eq.indices.iter().map(&subst).collect(),
        rhs: subst(&clause.eq.rhs),
    };
    (constraints, eq)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures;

    #[test]
    fn offsets_are_symmetric_and_include_zero() {
        assert_eq!(skolem_offsets(0), vec![0]);
        let offs = skolem_offsets(2);
        assert_eq!(offs.len(), 5);
        assert!(offs.contains(&-2) && offs.contains(&2) && offs.contains(&0));
    }

    #[test]
    fn anchors_generate_instantiations_per_variable() {
        let clause = fixtures::running_example_post().clauses[0].clone();
        let anchors = vec![vec![IrExpr::var("i"), IrExpr::var("j")]];
        let instances = partial_skolem_instances(&clause, &anchors, 0);
        assert_eq!(instances.len(), 1);
        assert_eq!(instances[0]["vi"], IrExpr::var("i"));
        assert_eq!(instances[0]["vj"], IrExpr::var("j"));
        let widened = partial_skolem_instances(&clause, &anchors, 1);
        assert_eq!(widened.len(), 3);
    }

    #[test]
    fn mismatched_anchor_arity_is_skipped() {
        let clause = fixtures::running_example_post().clauses[0].clone();
        let anchors = vec![vec![IrExpr::var("i")]];
        assert!(partial_skolem_instances(&clause, &anchors, 1).is_empty());
    }

    #[test]
    fn instantiation_substitutes_into_bounds_and_rhs() {
        let clause = fixtures::running_example_post().clauses[0].clone();
        let mut inst = Instantiation::new();
        inst.insert("vi".into(), IrExpr::var("i"));
        inst.insert("vj".into(), IrExpr::var("j"));
        let (constraints, eq) = instantiate_clause(&clause, &inst);
        assert_eq!(constraints.len(), 4);
        assert!(eq.rhs.to_string().contains("b[(i - 1), j]"));
        assert!(!eq.rhs.free_vars().contains(&"vi".to_string()));
    }
}
