//! The predicate language (stylized grammar of Fig. 4).
//!
//! Expressions on the right-hand side of `outEq` constraints reuse
//! [`IrExpr`], restricted by construction to the grammar's `exp` production:
//! sums/products of weighted input-array reads, floating-point scalars, and
//! pure function applications, with index expressions of the form
//! `quantified-variable + constant`.

use std::fmt;
use stng_ir::ir::{CmpOp, IrExpr};

/// The bounds of one universally quantified index variable:
/// `lo (<|≤) var (<|≤) hi`, optionally restricted to the arithmetic
/// progression `var ∈ { lo, lo + step, lo + 2·step, … }` when `step > 1`
/// (the §6.5 extension: index variables range over `lo + step·k` for a fresh
/// bound counter `k ≥ 0`).
#[derive(Debug, Clone, PartialEq)]
pub struct QuantBound {
    /// The quantified variable.
    pub var: String,
    /// Lower bound expression.
    pub lo: IrExpr,
    /// `true` when the lower bound is strict (`lo < var`), `false` for `≤`.
    pub lo_strict: bool,
    /// Upper bound expression.
    pub hi: IrExpr,
    /// `true` when the upper bound is strict (`var < hi`), `false` for `≤`.
    pub hi_strict: bool,
    /// Domain stride: `1` for the dense case, otherwise the variable only
    /// takes values congruent to the inclusive lower bound modulo `step`.
    pub step: i64,
}

impl QuantBound {
    /// An inclusive bound `lo ≤ var ≤ hi`.
    pub fn inclusive(var: impl Into<String>, lo: IrExpr, hi: IrExpr) -> QuantBound {
        QuantBound {
            var: var.into(),
            lo,
            lo_strict: false,
            hi,
            hi_strict: false,
            step: 1,
        }
    }

    /// An inclusive strided bound: `var ∈ { lo, lo+step, … } ∩ [lo, hi]`.
    pub fn strided(var: impl Into<String>, lo: IrExpr, hi: IrExpr, step: i64) -> QuantBound {
        QuantBound {
            step,
            ..QuantBound::inclusive(var, lo, hi)
        }
    }

    /// Returns `true` for a dense (`step == 1`) domain.
    pub fn is_dense(&self) -> bool {
        self.step == 1
    }

    /// The inclusive lower bound as an expression (`lo` or `lo + 1`).
    pub fn inclusive_lo(&self) -> IrExpr {
        if self.lo_strict {
            IrExpr::add(self.lo.clone(), IrExpr::Int(1))
        } else {
            self.lo.clone()
        }
    }

    /// The inclusive upper bound as an expression (`hi` or `hi - 1`).
    pub fn inclusive_hi(&self) -> IrExpr {
        if self.hi_strict {
            IrExpr::sub(self.hi.clone(), IrExpr::Int(1))
        } else {
            self.hi.clone()
        }
    }

    /// The bound as a pair of boolean [`IrExpr`] constraints on `var`.
    pub fn to_constraints(&self) -> [IrExpr; 2] {
        let lower = IrExpr::cmp(
            CmpOp::Le,
            self.inclusive_lo(),
            IrExpr::var(self.var.clone()),
        );
        let upper = IrExpr::cmp(
            CmpOp::Le,
            IrExpr::var(self.var.clone()),
            self.inclusive_hi(),
        );
        [lower, upper]
    }

    /// Number of AST nodes contributed by this bound.
    pub fn node_count(&self) -> usize {
        2 + self.lo.node_count() + self.hi.node_count()
    }
}

impl fmt::Display for QuantBound {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let lo_op = if self.lo_strict { "<" } else { "<=" };
        let hi_op = if self.hi_strict { "<" } else { "<=" };
        write!(f, "{} {lo_op} {} {hi_op} {}", self.lo, self.var, self.hi)?;
        if self.step != 1 {
            write!(f, " step {}", self.step)?;
        }
        Ok(())
    }
}

/// An `out[v₁, …, vₙ] = exp` constraint.
#[derive(Debug, Clone, PartialEq)]
pub struct OutEq {
    /// Output array being described.
    pub array: String,
    /// Index expressions (usually exactly the quantified variables).
    pub indices: Vec<IrExpr>,
    /// The defining expression over input arrays, scalars, and pure
    /// functions.
    pub rhs: IrExpr,
}

impl OutEq {
    /// Number of AST nodes in this constraint.
    pub fn node_count(&self) -> usize {
        1 + self.indices.iter().map(IrExpr::node_count).sum::<usize>() + self.rhs.node_count()
    }
}

impl fmt::Display for OutEq {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[", self.array)?;
        for (k, ix) in self.indices.iter().enumerate() {
            if k > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{ix}")?;
        }
        write!(f, "] = {}", self.rhs)
    }
}

/// A universally quantified `outEq` constraint: `∀ bounds. outEq`.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantClause {
    /// Quantified variable bounds (the domain `D`).
    pub bounds: Vec<QuantBound>,
    /// The constrained output equation.
    pub eq: OutEq,
}

impl QuantClause {
    /// Number of AST nodes in the clause.
    pub fn node_count(&self) -> usize {
        1 + self
            .bounds
            .iter()
            .map(QuantBound::node_count)
            .sum::<usize>()
            + self.eq.node_count()
    }
}

impl fmt::Display for QuantClause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "forall ")?;
        for (k, b) in self.bounds.iter().enumerate() {
            if k > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{b}")?;
        }
        write!(f, " . {}", self.eq)
    }
}

/// A predicate: the building block of invariants, postconditions, and
/// verification conditions.
#[derive(Debug, Clone, PartialEq)]
pub enum Pred {
    /// A quantifier-free boolean condition over integer scalars.
    Bool(IrExpr),
    /// An equality between two data-valued expressions (used for scalar
    /// temporaries inside invariants, e.g. `t = b[i-1, j]`).
    DataEq {
        /// Left-hand side (usually a scalar variable).
        lhs: IrExpr,
        /// Right-hand side over input arrays and scalars.
        rhs: IrExpr,
    },
    /// A universally quantified output equation.
    Forall(QuantClause),
    /// The structural alignment fact of a strided loop counter:
    /// `∃ k ≥ 0. var = lo + step·k` (equivalently `var ≥ lo` and
    /// `step | var − lo`). Verification-condition generation emits this at
    /// the loop heads of non-unit-step domains; it is what lets the prover
    /// reason about which cells a strided loop has actually visited.
    Stride {
        /// The loop counter.
        var: String,
        /// The first iterate.
        lo: IrExpr,
        /// The (positive) stride.
        step: i64,
    },
    /// Conjunction of predicates.
    And(Vec<Pred>),
}

impl Pred {
    /// The trivially true predicate (an empty conjunction).
    pub fn truth() -> Pred {
        Pred::And(Vec::new())
    }

    /// Flattens nested conjunctions into a list of leaf predicates.
    pub fn conjuncts(&self) -> Vec<&Pred> {
        let mut out = Vec::new();
        fn go<'a>(p: &'a Pred, out: &mut Vec<&'a Pred>) {
            match p {
                Pred::And(ps) => {
                    for q in ps {
                        go(q, out);
                    }
                }
                other => out.push(other),
            }
        }
        go(self, &mut out);
        out
    }

    /// Number of AST nodes in the predicate (the measure reported in
    /// Table 1's "AST Nodes" column).
    pub fn node_count(&self) -> usize {
        match self {
            Pred::Bool(e) => e.node_count(),
            Pred::DataEq { lhs, rhs } => 1 + lhs.node_count() + rhs.node_count(),
            Pred::Forall(clause) => clause.node_count(),
            Pred::Stride { lo, .. } => 2 + lo.node_count(),
            Pred::And(ps) => 1 + ps.iter().map(Pred::node_count).sum::<usize>(),
        }
    }
}

impl fmt::Display for Pred {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Pred::Bool(e) => write!(f, "{e}"),
            Pred::DataEq { lhs, rhs } => write!(f, "{lhs} = {rhs}"),
            Pred::Forall(clause) => write!(f, "{clause}"),
            Pred::Stride { var, lo, step } => {
                write!(f, "{var} == {lo} (mod {step})")
            }
            Pred::And(ps) => {
                if ps.is_empty() {
                    return write!(f, "true");
                }
                for (k, p) in ps.iter().enumerate() {
                    if k > 0 {
                        write!(f, " /\\ ")?;
                    }
                    write!(f, "({p})")?;
                }
                Ok(())
            }
        }
    }
}

/// A lifted summary: a conjunction of universally quantified output
/// equations, one per output array (the `post` production of Fig. 4).
#[derive(Debug, Clone, PartialEq)]
pub struct Postcondition {
    /// One clause per output array.
    pub clauses: Vec<QuantClause>,
}

impl Postcondition {
    /// Converts the postcondition into a general predicate.
    pub fn to_pred(&self) -> Pred {
        Pred::And(self.clauses.iter().cloned().map(Pred::Forall).collect())
    }

    /// Number of AST nodes (Table 1, "Postcon AST Nodes").
    pub fn node_count(&self) -> usize {
        self.clauses.iter().map(QuantClause::node_count).sum()
    }

    /// The clause describing `array`, if any.
    pub fn clause_for(&self, array: &str) -> Option<&QuantClause> {
        self.clauses.iter().find(|c| c.eq.array == array)
    }
}

impl fmt::Display for Postcondition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (k, c) in self.clauses.iter().enumerate() {
            if k > 0 {
                write!(f, " /\\ ")?;
            }
            write!(f, "{c}")?;
        }
        Ok(())
    }
}

/// A loop invariant: scalar conditions plus quantified clauses (the
/// `invariant` production of Fig. 4, extended with scalar-equality facts for
/// imperfect nests).
#[derive(Debug, Clone, PartialEq)]
pub struct Invariant {
    /// Quantifier-free conditions over loop counters and bounds.
    pub scalar_conds: Vec<IrExpr>,
    /// Scalar-equality facts for floating-point temporaries.
    pub scalar_eqs: Vec<(String, IrExpr)>,
    /// Quantified output equations describing the already-computed region.
    pub clauses: Vec<QuantClause>,
}

impl Invariant {
    /// An invariant with no conjuncts (trivially true).
    pub fn empty() -> Invariant {
        Invariant {
            scalar_conds: Vec::new(),
            scalar_eqs: Vec::new(),
            clauses: Vec::new(),
        }
    }

    /// Converts the invariant into a general predicate.
    pub fn to_pred(&self) -> Pred {
        let mut parts: Vec<Pred> = Vec::new();
        for c in &self.scalar_conds {
            parts.push(Pred::Bool(c.clone()));
        }
        for (name, rhs) in &self.scalar_eqs {
            parts.push(Pred::DataEq {
                lhs: IrExpr::var(name.clone()),
                rhs: rhs.clone(),
            });
        }
        for clause in &self.clauses {
            parts.push(Pred::Forall(clause.clone()));
        }
        Pred::And(parts)
    }

    /// Number of AST nodes in the invariant.
    pub fn node_count(&self) -> usize {
        self.to_pred().node_count()
    }
}

impl fmt::Display for Invariant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_pred())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stng_ir::ir::BinOp;

    /// Builds the running example's postcondition:
    /// `∀ imin+1 ≤ i ≤ imax, jmin ≤ j ≤ jmax. a[i,j] = b[i-1,j] + b[i,j]`.
    pub(crate) fn running_example_post() -> Postcondition {
        let rhs = IrExpr::add(
            IrExpr::Load {
                array: "b".into(),
                indices: vec![
                    IrExpr::sub(IrExpr::var("vi"), IrExpr::Int(1)),
                    IrExpr::var("vj"),
                ],
            },
            IrExpr::Load {
                array: "b".into(),
                indices: vec![IrExpr::var("vi"), IrExpr::var("vj")],
            },
        );
        Postcondition {
            clauses: vec![QuantClause {
                bounds: vec![
                    QuantBound::inclusive(
                        "vi",
                        IrExpr::add(IrExpr::var("imin"), IrExpr::Int(1)),
                        IrExpr::var("imax"),
                    ),
                    QuantBound::inclusive("vj", IrExpr::var("jmin"), IrExpr::var("jmax")),
                ],
                eq: OutEq {
                    array: "a".into(),
                    indices: vec![IrExpr::var("vi"), IrExpr::var("vj")],
                    rhs,
                },
            }],
        }
    }

    #[test]
    fn node_counts_are_positive_and_additive() {
        let post = running_example_post();
        let n = post.node_count();
        assert!(n > 10, "expected a non-trivial node count, got {n}");
        assert_eq!(post.to_pred().node_count(), n + 1); // +1 for the And node
    }

    #[test]
    fn quant_bound_constraint_forms() {
        let b = QuantBound {
            var: "v".into(),
            lo: IrExpr::var("lo"),
            lo_strict: true,
            hi: IrExpr::var("hi"),
            hi_strict: false,
            step: 1,
        };
        assert_eq!(b.inclusive_lo().to_string(), "(lo + 1)");
        assert_eq!(b.inclusive_hi().to_string(), "hi");
        let [lower, upper] = b.to_constraints();
        assert!(lower.to_string().contains("<="));
        assert!(upper.to_string().contains("<="));
    }

    #[test]
    fn strided_bound_display_and_node_count() {
        let b = QuantBound::strided("v", IrExpr::Int(2), IrExpr::var("n"), 2);
        assert!(!b.is_dense());
        assert_eq!(b.to_string(), "2 <= v <= n step 2");
        let p = Pred::Stride {
            var: "i".into(),
            lo: IrExpr::Int(1),
            step: 4,
        };
        assert_eq!(p.to_string(), "i == 1 (mod 4)");
        assert!(p.node_count() > 0);
    }

    #[test]
    fn display_matches_paper_style() {
        let post = running_example_post();
        let text = post.to_string();
        assert!(text.contains("forall"));
        assert!(text.contains("a[vi, vj]"));
        assert!(text.contains("b[(vi - 1), vj]"));
    }

    #[test]
    fn conjuncts_flatten_nested_ands() {
        let p = Pred::And(vec![
            Pred::Bool(IrExpr::cmp(
                stng_ir::ir::CmpOp::Le,
                IrExpr::var("i"),
                IrExpr::var("n"),
            )),
            Pred::And(vec![
                Pred::DataEq {
                    lhs: IrExpr::var("t"),
                    rhs: IrExpr::bin(BinOp::Add, IrExpr::var("x"), IrExpr::var("y")),
                },
                Pred::truth(),
            ]),
        ]);
        assert_eq!(p.conjuncts().len(), 2);
    }

    #[test]
    fn invariant_to_pred_includes_all_conjunct_kinds() {
        let inv = Invariant {
            scalar_conds: vec![IrExpr::cmp(
                stng_ir::ir::CmpOp::Le,
                IrExpr::var("j"),
                IrExpr::add(IrExpr::var("jmax"), IrExpr::Int(1)),
            )],
            scalar_eqs: vec![(
                "t".to_string(),
                IrExpr::Load {
                    array: "b".into(),
                    indices: vec![IrExpr::sub(IrExpr::var("i"), IrExpr::Int(1))],
                },
            )],
            clauses: running_example_post().clauses,
        };
        let conjuncts = inv.to_pred();
        assert_eq!(conjuncts.conjuncts().len(), 3);
        assert!(inv.node_count() > 0);
        assert!(inv.to_string().contains("t = b["));
    }
}
