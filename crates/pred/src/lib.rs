//! The predicate language of the paper (Fig. 4), Hoare verification-condition
//! generation (Fig. 2), predicate evaluation over concrete states, and the
//! Skolemization machinery of §4.3.
//!
//! Postconditions are conjunctions of universally quantified `outEq`
//! constraints (`∀ v⃗ ∈ D. out[v⃗] = expr(v⃗)`). Loop invariants additionally
//! carry scalar inequalities on loop counters and scalar-equality facts for
//! floating-point temporaries (the `t = b[i-1, j]`-style conjuncts required
//! to prove preservation of imperfect loop nests).
//!
//! Verification conditions are represented as Hoare triples with straight-line
//! bodies: a set of hypothesis predicates over the pre-state, a loop-free
//! statement list, and a conclusion predicate over the post-state. Bounded
//! checking evaluates them on concrete states ([`eval`]); the sound verifier
//! in `stng-solve` proves them for all states.

pub mod compile;
pub mod eval;
pub mod fixtures;
pub mod lang;
pub mod skolem;
pub mod vcgen;

pub use lang::{Invariant, OutEq, Postcondition, Pred, QuantBound, QuantClause};
pub use vcgen::{analyze_loop_nest, generate_vcs, LoopLevel, LoopNest, Vc, VcScope};
