//! Hoare verification-condition generation for loop nests (Fig. 2 of the
//! paper).
//!
//! A kernel's single loop nest is first decomposed into [`LoopLevel`]s: at
//! every nesting depth there may be straight-line statements before and after
//! the (unique) nested loop, which is exactly the shape of the imperfect
//! nests produced by scalar-temporary optimizations in real stencils.
//!
//! Given one candidate invariant per level and a candidate postcondition,
//! [`generate_vcs`] produces the standard initiation / preservation /
//! descend / ascend / exit conditions. Each [`Vc`] is a Hoare triple with a
//! loop-free body; counter updates (`j := j + 1`, `i := lo`) are appended to
//! the body so that conclusions are always evaluated on the triple's
//! post-state, which keeps both the bounded checker and the sound verifier
//! simple and uniform.

use crate::lang::{Invariant, Postcondition, Pred};
use stng_ir::ir::{CmpOp, IrExpr, IrStmt, IterDomain, Kernel};

/// One level of a (possibly imperfect) loop nest. Dereferences to its
/// [`IterDomain`], so `level.var`, `level.lo`, `level.hi`, and `level.step`
/// read through.
#[derive(Debug, Clone, PartialEq)]
pub struct LoopLevel {
    /// The level's iteration domain (counter, bounds, and stride).
    pub domain: IterDomain,
    /// Straight-line statements executed before the nested loop (for the
    /// innermost level: the whole body).
    pub pre: Vec<IrStmt>,
    /// Straight-line statements executed after the nested loop.
    pub post: Vec<IrStmt>,
}

impl std::ops::Deref for LoopLevel {
    type Target = IterDomain;

    fn deref(&self) -> &IterDomain {
        &self.domain
    }
}

impl LoopLevel {
    /// The structural alignment fact of this level's counter: for a strided
    /// domain, `step | var − lo`; `None` for dense levels (where it is
    /// trivially true).
    pub fn stride_fact(&self) -> Option<Pred> {
        (self.step != 1).then(|| Pred::Stride {
            var: self.var.clone(),
            lo: self.lo.clone(),
            step: self.step,
        })
    }
}

/// A decomposed loop nest: levels from outermost to innermost.
#[derive(Debug, Clone, PartialEq)]
pub struct LoopNest {
    /// Levels, outermost first.
    pub levels: Vec<LoopLevel>,
}

impl LoopNest {
    /// Nesting depth.
    pub fn depth(&self) -> usize {
        self.levels.len()
    }

    /// Loop counter variables, outermost first.
    pub fn vars(&self) -> Vec<String> {
        self.levels.iter().map(|l| l.var.clone()).collect()
    }
}

/// Decomposes a kernel whose body is a single loop nest with at most one
/// nested loop per level and no conditionals.
///
/// # Errors
///
/// Returns a human-readable reason when the kernel does not have that shape
/// (the lifter then reports the kernel as untranslated).
pub fn analyze_loop_nest(kernel: &Kernel) -> Result<LoopNest, String> {
    let mut loops = kernel
        .body
        .iter()
        .filter(|s| matches!(s, IrStmt::Loop { .. }));
    let first = loops
        .next()
        .ok_or_else(|| "kernel has no loops".to_string())?;
    if loops.next().is_some() {
        return Err("kernel has more than one top-level loop".to_string());
    }
    if kernel
        .body
        .iter()
        .any(|s| !matches!(s, IrStmt::Loop { .. }))
    {
        return Err("kernel has statements outside the loop nest".to_string());
    }
    let mut levels = Vec::new();
    decompose(first, &mut levels)?;
    Ok(LoopNest { levels })
}

fn decompose(stmt: &IrStmt, levels: &mut Vec<LoopLevel>) -> Result<(), String> {
    let IrStmt::Loop { domain, body } = stmt else {
        return Err("expected a loop".to_string());
    };
    let var = &domain.var;
    if domain.step < 0 {
        return Err(format!(
            "loop over '{var}' is decrementing (step {})",
            domain.step
        ));
    }
    let mut pre = Vec::new();
    let mut post = Vec::new();
    let mut nested: Option<&IrStmt> = None;
    for s in body {
        match s {
            IrStmt::Loop { .. } => {
                if nested.is_some() {
                    return Err(format!(
                        "loop over '{var}' contains more than one nested loop"
                    ));
                }
                nested = Some(s);
            }
            IrStmt::If { .. } => {
                return Err(format!("loop over '{var}' contains a conditional"));
            }
            other => {
                if nested.is_none() {
                    pre.push(other.clone());
                } else {
                    post.push(other.clone());
                }
            }
        }
    }
    levels.push(LoopLevel {
        domain: domain.clone(),
        pre,
        post,
    });
    if let Some(inner) = nested {
        decompose(inner, levels)?;
    }
    Ok(())
}

/// The program point a VC's Hoare triple is instantiated at. Bounded
/// checking uses this to evaluate each VC only on the reachable states of
/// its own point instead of on every captured state — the screen's
/// rejection power lives exactly at these points (a violated initiation /
/// descend / preservation / ascend condition manifests on the states of the
/// loop it steps), and the product `all states × all VCs` is the dominant
/// cost of CEGIS on deep nests. Soundness is unaffected: bounded checking
/// is only a filter, and the prover re-checks survivors for all states.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VcScope {
    /// Before any loop has executed.
    Initial,
    /// At the head of each iteration of the named loop.
    LoopHead(String),
    /// Immediately after the named loop exits.
    LoopExit(String),
    /// After the whole nest has executed.
    Final,
    /// No specific point (checked against every state).
    Any,
}

/// A verification condition: `hypotheses ⊢ {body} conclusion` where `body` is
/// loop-free. The condition is valid when, for every state satisfying all
/// hypotheses, executing `body` yields a state satisfying the conclusion.
#[derive(Debug, Clone, PartialEq)]
pub struct Vc {
    /// Human-readable name (e.g. `"preservation(i)"`).
    pub name: String,
    /// Hypotheses over the pre-state.
    pub hypotheses: Vec<Pred>,
    /// Loop-free statements transforming the pre-state into the post-state.
    pub body: Vec<IrStmt>,
    /// Conclusion over the post-state.
    pub conclusion: Pred,
    /// Names of scalars known to be integers (loop counters); everything
    /// else assigned by the body is treated as floating-point data.
    pub int_scalars: Vec<String>,
    /// The program point this condition is anchored at (bounded checking
    /// evaluates it on exactly those reachable states).
    pub scope: VcScope,
}

impl Vc {
    /// All quantified-variable names appearing in the hypotheses and the
    /// conclusion (useful for diagnostics).
    pub fn quantified_vars(&self) -> Vec<String> {
        let mut out = Vec::new();
        let mut visit = |p: &Pred| {
            if let Pred::Forall(clause) = p {
                for b in &clause.bounds {
                    if !out.contains(&b.var) {
                        out.push(b.var.clone());
                    }
                }
            }
        };
        for h in &self.hypotheses {
            for c in h.conjuncts() {
                visit(c);
            }
        }
        for c in self.conclusion.conjuncts() {
            visit(c);
        }
        out
    }
}

/// Generates the verification conditions of Fig. 2 for a loop nest, given one
/// invariant per level and a postcondition.
///
/// `assumptions` are the kernel's `STNG: assume(...)` facts; they are added
/// to the hypotheses of every condition.
///
/// # Panics
///
/// Panics if `invariants.len()` differs from the nest depth.
pub fn generate_vcs(
    nest: &LoopNest,
    assumptions: &[IrExpr],
    invariants: &[Invariant],
    post: &Postcondition,
) -> Vec<Vc> {
    assert_eq!(
        invariants.len(),
        nest.levels.len(),
        "one invariant per loop level is required"
    );
    let _span = stng_obs::span(&stng_obs::names::PRED_VCGEN);
    let depth = nest.levels.len();
    let assume_preds: Vec<Pred> = assumptions.iter().cloned().map(Pred::Bool).collect();
    let int_scalars = nest.vars();
    let mut vcs = Vec::new();

    let in_range = |level: &LoopLevel| {
        Pred::Bool(IrExpr::cmp(
            CmpOp::Le,
            IrExpr::var(level.var.clone()),
            level.hi.clone(),
        ))
    };
    let past_range = |level: &LoopLevel| {
        Pred::Bool(IrExpr::cmp(
            CmpOp::Gt,
            IrExpr::var(level.var.clone()),
            level.hi.clone(),
        ))
    };
    let set_counter = |var: &str, value: IrExpr| IrStmt::AssignScalar {
        name: var.to_string(),
        value,
    };
    // Counters advance by their domain's step.
    let increment = |level: &LoopLevel| IrStmt::AssignScalar {
        name: level.var.clone(),
        value: IrExpr::add(IrExpr::var(level.var.clone()), IrExpr::Int(level.step)),
    };
    // Structural alignment facts for the counters of strided levels
    // `0..=upto`: at any program point where those loops are "in flight"
    // (loop head, or just past their exit), the counter is `lo + step·k` by
    // construction — it starts at `lo` and only ever advances by `step`.
    // These are hypotheses the prover may rely on, exactly like the loop
    // guard `var ≤ hi`; they are established by `var := lo` and preserved by
    // `var := var + step`, so they need no synthesized invariant.
    let stride_facts = |upto: usize| -> Vec<Pred> {
        nest.levels[0..=upto]
            .iter()
            .filter_map(LoopLevel::stride_fact)
            .collect()
    };

    // Initiation of the outermost invariant: counters start at the lower
    // bound, nothing has executed yet.
    {
        let level = &nest.levels[0];
        vcs.push(Vc {
            name: format!("initiation({})", level.var),
            hypotheses: assume_preds.clone(),
            body: vec![set_counter(&level.var, level.lo.clone())],
            conclusion: invariants[0].to_pred(),
            int_scalars: int_scalars.clone(),
            scope: VcScope::Initial,
        });
    }

    // Descend: entering the loop at level d+1 from level d.
    for d in 0..depth.saturating_sub(1) {
        let outer = &nest.levels[d];
        let inner = &nest.levels[d + 1];
        let mut hyps = assume_preds.clone();
        hyps.push(invariants[d].to_pred());
        hyps.push(in_range(outer));
        hyps.extend(stride_facts(d));
        let mut body = outer.pre.clone();
        body.push(set_counter(&inner.var, inner.lo.clone()));
        vcs.push(Vc {
            name: format!("descend({}->{})", outer.var, inner.var),
            hypotheses: hyps,
            body,
            conclusion: invariants[d + 1].to_pred(),
            int_scalars: int_scalars.clone(),
            scope: VcScope::LoopHead(outer.var.clone()),
        });
    }

    // Innermost preservation: one full iteration of the innermost body.
    {
        let level = &nest.levels[depth - 1];
        let mut hyps = assume_preds.clone();
        hyps.push(invariants[depth - 1].to_pred());
        hyps.push(in_range(level));
        hyps.extend(stride_facts(depth - 1));
        let mut body = level.pre.clone();
        body.extend(level.post.clone());
        body.push(increment(level));
        vcs.push(Vc {
            name: format!("preservation({})", level.var),
            hypotheses: hyps,
            body,
            conclusion: invariants[depth - 1].to_pred(),
            int_scalars: int_scalars.clone(),
            scope: VcScope::LoopHead(level.var.clone()),
        });
    }

    // Ascend: the loop at level d+1 exits, so the iteration of level d
    // finishes (its trailing statements run and its counter advances).
    for d in (0..depth.saturating_sub(1)).rev() {
        let outer = &nest.levels[d];
        let inner = &nest.levels[d + 1];
        let mut hyps = assume_preds.clone();
        hyps.push(invariants[d + 1].to_pred());
        hyps.push(past_range(inner));
        // The iteration guard of the outer level still held when the inner
        // loop started; keep it as a hypothesis so the ascend step can reason
        // about the outer counter's range. The inner counter is one step past
        // its last iterate, still aligned to its stride.
        hyps.push(in_range(outer));
        hyps.extend(stride_facts(d + 1));
        let mut body = outer.post.clone();
        body.push(increment(outer));
        vcs.push(Vc {
            name: format!("ascend({}->{})", inner.var, outer.var),
            hypotheses: hyps,
            body,
            conclusion: invariants[d].to_pred(),
            int_scalars: int_scalars.clone(),
            scope: VcScope::LoopExit(inner.var.clone()),
        });
    }

    // Exit: the outermost loop finishes, establishing the postcondition.
    {
        let level = &nest.levels[0];
        let mut hyps = assume_preds.clone();
        hyps.push(invariants[0].to_pred());
        hyps.push(past_range(level));
        hyps.extend(stride_facts(0));
        vcs.push(Vc {
            name: "exit".to_string(),
            hypotheses: hyps,
            body: Vec::new(),
            conclusion: post.to_pred(),
            int_scalars: int_scalars.clone(),
            scope: VcScope::Final,
        });
    }

    vcs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures;
    use stng_ir::lower::kernel_from_source;

    #[test]
    fn running_example_decomposes_into_two_levels() {
        let kernel = kernel_from_source(fixtures::RUNNING_EXAMPLE, 0).unwrap();
        let nest = analyze_loop_nest(&kernel).unwrap();
        assert_eq!(nest.depth(), 2);
        assert_eq!(nest.vars(), vec!["j".to_string(), "i".to_string()]);
        // Outer level: one pre statement (t = b(imin, j)), no post statement.
        assert_eq!(nest.levels[0].pre.len(), 1);
        assert_eq!(nest.levels[0].post.len(), 0);
        // Inner level: the three body statements.
        assert_eq!(nest.levels[1].pre.len(), 3);
    }

    #[test]
    fn conditional_bodies_are_rejected() {
        let src = r#"
procedure p(n, a, b)
  real, dimension(1:n) :: a
  real, dimension(1:n) :: b
  integer :: i
  do i = 1, n
    if (b(i) > 0.0) then
      a(i) = b(i)
    endif
  enddo
end procedure
"#;
        let kernel = kernel_from_source(src, 0).unwrap();
        let err = analyze_loop_nest(&kernel).unwrap_err();
        assert!(err.contains("conditional"));
    }

    #[test]
    fn two_sibling_inner_loops_are_rejected() {
        let src = r#"
procedure p(n, m, a, b)
  real, dimension(1:n, 1:m) :: a
  real, dimension(1:n, 1:m) :: b
  integer :: i
  integer :: j
  do j = 1, m
    do i = 1, n
      a(i, j) = b(i, j)
    enddo
    do i = 1, n
      a(i, j) = a(i, j) + 1.0
    enddo
  enddo
end procedure
"#;
        let kernel = kernel_from_source(src, 0).unwrap();
        let err = analyze_loop_nest(&kernel).unwrap_err();
        assert!(err.contains("more than one nested loop"));
    }

    #[test]
    fn vc_set_matches_figure_2_structure() {
        let kernel = kernel_from_source(fixtures::RUNNING_EXAMPLE, 0).unwrap();
        let nest = analyze_loop_nest(&kernel).unwrap();
        let invariants = fixtures::running_example_invariants();
        let post = fixtures::running_example_post();
        let vcs = generate_vcs(&nest, &kernel.assumptions, &invariants, &post);
        let names: Vec<&str> = vcs.iter().map(|vc| vc.name.as_str()).collect();
        assert_eq!(
            names,
            vec![
                "initiation(j)",
                "descend(j->i)",
                "preservation(i)",
                "ascend(i->j)",
                "exit"
            ]
        );
        // The preservation VC's body ends with the counter increment.
        let pres = &vcs[2];
        assert!(matches!(
            pres.body.last(),
            Some(IrStmt::AssignScalar { name, .. }) if name == "i"
        ));
        assert!(pres.quantified_vars().contains(&"vi".to_string()));
    }

    #[test]
    fn strided_nest_decomposes_and_keeps_steps() {
        let src = r#"
procedure p(n, a, b)
  real, dimension(0:n) :: a
  real, dimension(0:n) :: b
  integer :: i
  do i = 2, n, 2
    a(i) = b(i-1)
  enddo
end procedure
"#;
        let kernel = kernel_from_source(src, 0).unwrap();
        let nest = analyze_loop_nest(&kernel).unwrap();
        assert_eq!(nest.depth(), 1);
        assert_eq!(nest.levels[0].step, 2);
        assert_eq!(nest.levels[0].var, "i");
    }

    #[test]
    fn strided_loop_head_vcs_carry_the_divisibility_invariant() {
        // The loop-head hypotheses of a strided loop must include the
        // structural fact `step | (i - lo)` (as a Pred::Stride), and the
        // preservation body must advance the counter by the step.
        let src = r#"
procedure p(n, a, b)
  real, dimension(0:n) :: a
  real, dimension(0:n) :: b
  integer :: i
  do i = 2, n, 4
    a(i) = b(i-1)
  enddo
end procedure
"#;
        let kernel = kernel_from_source(src, 0).unwrap();
        let nest = analyze_loop_nest(&kernel).unwrap();
        let post = Postcondition { clauses: vec![] };
        let vcs = generate_vcs(&nest, &[], &[Invariant::empty()], &post);

        let pres = vcs
            .iter()
            .find(|vc| vc.name == "preservation(i)")
            .expect("preservation VC exists");
        let has_stride = pres.hypotheses.iter().any(|h| {
            h.conjuncts().iter().any(|c| {
                matches!(
                    c,
                    Pred::Stride { var, lo, step: 4 }
                        if var == "i" && *lo == IrExpr::Int(2)
                )
            })
        });
        assert!(has_stride, "preservation hypotheses: {:?}", pres.hypotheses);
        // Counter update is i := i + 4.
        let Some(IrStmt::AssignScalar { name, value }) = pres.body.last() else {
            panic!("preservation body must end in the counter update")
        };
        assert_eq!(name, "i");
        assert_eq!(value.to_string(), "(i + 4)");

        // The exit VC carries the stride fact too (the counter is one step
        // past its last iterate, still aligned).
        let exit = vcs.iter().find(|vc| vc.name == "exit").unwrap();
        assert!(exit
            .hypotheses
            .iter()
            .any(|h| matches!(h, Pred::Stride { .. })));

        // The initiation VC does not assume alignment — it establishes it by
        // setting the counter to the lower bound.
        let init = vcs.iter().find(|vc| vc.name == "initiation(i)").unwrap();
        assert!(!init
            .hypotheses
            .iter()
            .any(|h| matches!(h, Pred::Stride { .. })));
    }

    #[test]
    fn unit_step_vcs_have_no_stride_hypotheses() {
        let kernel = kernel_from_source(fixtures::RUNNING_EXAMPLE, 0).unwrap();
        let nest = analyze_loop_nest(&kernel).unwrap();
        let invariants = fixtures::running_example_invariants();
        let post = fixtures::running_example_post();
        let vcs = generate_vcs(&nest, &kernel.assumptions, &invariants, &post);
        for vc in &vcs {
            assert!(
                !vc.hypotheses
                    .iter()
                    .any(|h| matches!(h, Pred::Stride { .. })),
                "{} should not carry stride facts",
                vc.name
            );
        }
    }

    #[test]
    #[should_panic(expected = "one invariant per loop level")]
    fn wrong_invariant_count_panics() {
        let kernel = kernel_from_source(fixtures::RUNNING_EXAMPLE, 0).unwrap();
        let nest = analyze_loop_nest(&kernel).unwrap();
        let post = fixtures::running_example_post();
        let _ = generate_vcs(&nest, &[], &[Invariant::empty()], &post);
    }
}
