//! Evaluation of predicates and verification conditions on concrete states.
//!
//! This is the "bounded checking" half of the paper's checking hierarchy
//! (§3.1): predicates are evaluated against small concrete states, with
//! universal quantifiers expanded by enumeration. The sound half lives in
//! `stng-solve`.

use crate::lang::{Pred, QuantClause};
use crate::vcgen::Vc;
use stng_ir::error::Result;
use stng_ir::interp::{eval_bool_expr, eval_data_expr, eval_int_expr, run_stmts, State};
use stng_ir::value::{DataValue, ModInt};

/// Equality of data values as used by predicate evaluation. Floating-point
/// values compare approximately (lifting only guarantees equality over the
/// reals, and both sides of an `outEq` may associate operations differently);
/// modular and symbolic values compare exactly.
pub trait ValueEq: DataValue {
    /// Returns `true` when the two values are to be considered equal.
    fn value_eq(&self, other: &Self) -> bool;
}

impl ValueEq for f64 {
    fn value_eq(&self, other: &Self) -> bool {
        let scale = self.abs().max(other.abs()).max(1.0);
        (self - other).abs() <= 1e-9 * scale
    }
}

impl ValueEq for ModInt {
    fn value_eq(&self, other: &Self) -> bool {
        self == other
    }
}

/// Outcome of checking one verification condition on one concrete state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VcOutcome {
    /// Some hypothesis was false: the state says nothing about validity.
    Vacuous,
    /// All hypotheses held and the conclusion held after the body.
    Holds,
    /// All hypotheses held but the conclusion failed: a counterexample.
    Violated,
}

/// Evaluates a predicate on a state.
///
/// # Errors
///
/// Propagates interpreter errors (unbound variables, out-of-bounds indices).
pub fn eval_pred<V: ValueEq>(pred: &Pred, state: &mut State<V>) -> Result<bool> {
    match pred {
        Pred::Bool(e) => eval_bool_expr(e, state),
        Pred::DataEq { lhs, rhs } => {
            let l = eval_data_expr(lhs, state)?;
            let r = eval_data_expr(rhs, state)?;
            Ok(l.value_eq(&r))
        }
        Pred::Forall(clause) => eval_quant_clause(clause, state),
        Pred::Stride { var, lo, step } => {
            let v = state.int(var).ok_or_else(|| {
                stng_ir::error::Error::interp(format!("unbound loop counter '{var}'"))
            })?;
            let lo = eval_int_expr(lo, state)?;
            Ok(v >= lo && (v - lo).rem_euclid(*step) == 0)
        }
        Pred::And(ps) => {
            for p in ps {
                if !eval_pred(p, state)? {
                    return Ok(false);
                }
            }
            Ok(true)
        }
    }
}

/// Evaluates a universally quantified clause by enumerating the (finite)
/// domain of its index variables.
///
/// # Errors
///
/// Propagates interpreter errors from bound or body evaluation.
pub fn eval_quant_clause<V: ValueEq>(clause: &QuantClause, state: &mut State<V>) -> Result<bool> {
    // Resolve the concrete range of every quantified variable. Strided
    // bounds enumerate the arithmetic progression lo, lo+step, … ≤ hi.
    let mut ranges = Vec::new();
    for bound in &clause.bounds {
        let lo = eval_int_expr(&bound.inclusive_lo(), state)?;
        let hi = eval_int_expr(&bound.inclusive_hi(), state)?;
        ranges.push((bound.var.clone(), lo, hi, bound.step.max(1)));
    }
    // Empty ranges make the clause vacuously true.
    if ranges.iter().any(|(_, lo, hi, _)| lo > hi) {
        return Ok(true);
    }
    // Save previous bindings of the quantified variables so evaluation does
    // not clobber the caller's state.
    let saved: Vec<(String, Option<i64>)> = ranges
        .iter()
        .map(|(var, _, _, _)| (var.clone(), state.int(var)))
        .collect();

    let mut current: Vec<i64> = ranges.iter().map(|(_, lo, _, _)| *lo).collect();
    let mut ok = true;
    'outer: loop {
        for (k, (var, _, _, _)) in ranges.iter().enumerate() {
            state.set_int(var.clone(), current[k]);
        }
        // Evaluate out[indices] = rhs at this point.
        let mut idx = Vec::with_capacity(clause.eq.indices.len());
        for e in &clause.eq.indices {
            idx.push(eval_int_expr(e, state)?);
        }
        let rhs = eval_data_expr(&clause.eq.rhs, state)?;
        let lhs = {
            let arr = state.array(&clause.eq.array).ok_or_else(|| {
                stng_ir::error::Error::interp(format!("unbound array '{}'", clause.eq.array))
            })?;
            arr.get(&idx).cloned().ok_or_else(|| {
                stng_ir::error::Error::interp(format!(
                    "index {idx:?} out of bounds for '{}'",
                    clause.eq.array
                ))
            })?
        };
        if !lhs.value_eq(&rhs) {
            ok = false;
            break 'outer;
        }
        // Advance the multi-index (last variable fastest), stepping each
        // dimension by its domain stride.
        let mut dim = ranges.len();
        loop {
            if dim == 0 {
                break 'outer;
            }
            dim -= 1;
            current[dim] += ranges[dim].3;
            if current[dim] <= ranges[dim].2 {
                break;
            }
            current[dim] = ranges[dim].1;
        }
    }

    // Restore the caller's bindings.
    for (var, old) in saved {
        match old {
            Some(v) => {
                state.set_int(var, v);
            }
            None => {
                state.ints.remove(&var);
            }
        }
    }
    Ok(ok)
}

/// Checks one verification condition against one concrete pre-state.
///
/// # Errors
///
/// Propagates interpreter errors encountered while evaluating hypotheses,
/// executing the body, or evaluating the conclusion.
pub fn check_vc_on_state<V: ValueEq>(vc: &Vc, pre_state: &State<V>) -> Result<VcOutcome> {
    let mut state = pre_state.clone();
    for hyp in &vc.hypotheses {
        // A hypothesis that cannot even be evaluated (it mentions variables
        // the state does not bind) says nothing about this state.
        match eval_pred(hyp, &mut state) {
            Ok(true) => {}
            Ok(false) | Err(_) => return Ok(VcOutcome::Vacuous),
        }
    }
    // Loop counters the body assigns must live in the integer part of the
    // state even when the pre-state does not bind them yet (e.g. the
    // initiation condition checked on the initial state).
    for name in &vc.int_scalars {
        state.ints.entry(name.clone()).or_insert(0);
    }
    run_stmts(&vc.body, &mut state, 1_000_000)?;
    if eval_pred(&vc.conclusion, &mut state)? {
        Ok(VcOutcome::Holds)
    } else {
        Ok(VcOutcome::Violated)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures;
    use crate::vcgen::{analyze_loop_nest, generate_vcs};
    use stng_ir::interp::{run_kernel, ArrayData};
    use stng_ir::lower::kernel_from_source;

    fn example_state(imax: i64, jmax: i64) -> (stng_ir::ir::Kernel, State<f64>) {
        let kernel = kernel_from_source(fixtures::RUNNING_EXAMPLE, 0).unwrap();
        let mut state: State<f64> = State::new();
        state
            .set_int("imin", 0)
            .set_int("imax", imax)
            .set_int("jmin", 0)
            .set_int("jmax", jmax);
        state.allocate_arrays(&kernel, 0.0).unwrap();
        let b = ArrayData::from_fn(vec![(0, imax), (0, jmax)], |ix| {
            (ix[0] * 3 + ix[1] * 7) as f64 * 0.25 + 1.0
        });
        state.set_array("b", b);
        (kernel, state)
    }

    #[test]
    fn postcondition_holds_after_execution() {
        let (kernel, mut state) = example_state(5, 4);
        run_kernel(&kernel, &mut state).unwrap();
        let post = fixtures::running_example_post();
        assert!(eval_pred(&post.to_pred(), &mut state).unwrap());
    }

    #[test]
    fn postcondition_fails_on_untouched_state() {
        let (_kernel, mut state) = example_state(5, 4);
        let post = fixtures::running_example_post();
        assert!(!eval_pred(&post.to_pred(), &mut state).unwrap());
    }

    #[test]
    fn wrong_postcondition_fails_after_execution() {
        let (kernel, mut state) = example_state(5, 4);
        run_kernel(&kernel, &mut state).unwrap();
        // Claim a wrong stencil: a[vi,vj] = b[vi,vj] only.
        let mut post = fixtures::running_example_post();
        post.clauses[0].eq.rhs = stng_ir::ir::IrExpr::Load {
            array: "b".into(),
            indices: vec![
                stng_ir::ir::IrExpr::var("vi"),
                stng_ir::ir::IrExpr::var("vj"),
            ],
        };
        assert!(!eval_pred(&post.to_pred(), &mut state).unwrap());
    }

    #[test]
    fn empty_quantifier_range_is_vacuously_true() {
        let (_kernel, mut state) = example_state(5, 4);
        state.set_int("imax", -3); // makes the vi range empty
        let post = fixtures::running_example_post();
        assert!(eval_pred(&post.to_pred(), &mut state).unwrap());
    }

    #[test]
    fn vcs_hold_on_reachable_states_for_correct_candidates() {
        // Build the full VC set with the hand-written invariants and check
        // the exit VC on the final state of a run.
        let (kernel, mut state) = example_state(4, 3);
        let nest = analyze_loop_nest(&kernel).unwrap();
        let invariants = fixtures::running_example_invariants();
        let post = fixtures::running_example_post();
        let vcs = generate_vcs(&nest, &kernel.assumptions, &invariants, &post);
        run_kernel(&kernel, &mut state).unwrap();
        // After the loop, j = jmax + 1 (Fortran semantics) and i = imax + 1,
        // so the exit VC's hypotheses hold on the final state.
        let exit = vcs.iter().find(|vc| vc.name == "exit").unwrap();
        assert_eq!(check_vc_on_state(exit, &state).unwrap(), VcOutcome::Holds);
        // The preservation VC is vacuous on the final state (i > imax).
        let pres = vcs.iter().find(|vc| vc.name == "preservation(i)").unwrap();
        assert_eq!(check_vc_on_state(pres, &state).unwrap(), VcOutcome::Vacuous);
    }

    #[test]
    fn violated_vc_detected_with_wrong_invariant() {
        let (kernel, mut state) = example_state(4, 3);
        let nest = analyze_loop_nest(&kernel).unwrap();
        // Deliberately wrong: claim the whole output is done at loop exit
        // even though the invariant says nothing about it.
        let invariants = vec![
            crate::lang::Invariant::empty(),
            crate::lang::Invariant::empty(),
        ];
        let post = fixtures::running_example_post();
        let vcs = generate_vcs(&nest, &kernel.assumptions, &invariants, &post);
        let exit = vcs.iter().find(|vc| vc.name == "exit").unwrap();
        // On a state where the kernel has NOT run, hypotheses (empty invariant,
        // j > jmax) can be made true, but the postcondition fails.
        state.set_int("j", 100);
        assert_eq!(
            check_vc_on_state(exit, &state).unwrap(),
            VcOutcome::Violated
        );
    }

    #[test]
    fn quantifier_evaluation_restores_bindings() {
        let (kernel, mut state) = example_state(4, 3);
        run_kernel(&kernel, &mut state).unwrap();
        state.set_int("vi", 77);
        let post = fixtures::running_example_post();
        eval_pred(&post.to_pred(), &mut state).unwrap();
        assert_eq!(state.int("vi"), Some(77));
    }
}
