//! Anti-unification of symbolic expressions into templates (§4.2, "Template
//! Generation").
//!
//! Given the symbolic value of every written output cell, the template
//! generator computes the *intersection* of all the expressions: sub-terms
//! that agree across every observation are kept, and sub-terms that disagree
//! are replaced by holes (`MakeHole` in the paper). The resulting
//! [`Template`] both narrows the synthesizer's search space and determines
//! the number of "control bits" the equivalent SKETCH encoding would need.

use crate::expr::{Atom, SymExpr};
use std::fmt;

/// Identifier of a hole within a template.
pub type HoleId = usize;

/// Index position inside a templated array read: either a concrete value that
/// agreed across all observations, or a hole to be synthesized as `vᵢ + c`.
#[derive(Debug, Clone, PartialEq)]
pub enum IndexTemplate {
    /// All observations agreed on this concrete index.
    Fixed(i64),
    /// Observations disagreed; the synthesizer must find an index expression.
    Hole(HoleId),
}

/// A templated expression: the common shape of all observed cell values.
#[derive(Debug, Clone, PartialEq)]
pub enum TemplateExpr {
    /// A constant that agreed across observations.
    Const(f64),
    /// A floating-point constant hole (the `w` weights of the grammar).
    ConstHole(HoleId),
    /// A read of a specific input array whose index positions may be holes.
    Read {
        /// Array name.
        array: String,
        /// One entry per dimension.
        index: Vec<IndexTemplate>,
    },
    /// A named scalar input that agreed across observations.
    Var(String),
    /// Application of a pure function to templated arguments.
    Apply {
        /// Function name.
        func: String,
        /// Templated arguments.
        args: Vec<TemplateExpr>,
    },
    /// Sum of templated terms.
    Sum(Vec<TemplateExpr>),
    /// Product of templated factors (constant coefficients appear as
    /// `Const`/`ConstHole` factors).
    Prod(Vec<TemplateExpr>),
    /// Quotient of templated expressions.
    Quot(Box<TemplateExpr>, Box<TemplateExpr>),
    /// A completely unconstrained expression hole.
    Hole(HoleId),
}

impl fmt::Display for TemplateExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TemplateExpr::Const(v) => write!(f, "{v}"),
            TemplateExpr::ConstHole(id) => write!(f, "w{id}()"),
            TemplateExpr::Read { array, index } => {
                write!(f, "{array}[")?;
                for (k, ix) in index.iter().enumerate() {
                    if k > 0 {
                        write!(f, ", ")?;
                    }
                    match ix {
                        IndexTemplate::Fixed(v) => write!(f, "{v}")?,
                        IndexTemplate::Hole(id) => write!(f, "pt{id}()")?,
                    }
                }
                write!(f, "]")
            }
            TemplateExpr::Var(name) => write!(f, "{name}"),
            TemplateExpr::Apply { func, args } => {
                write!(f, "{func}(")?;
                for (k, a) in args.iter().enumerate() {
                    if k > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
            TemplateExpr::Sum(terms) => {
                write!(f, "(")?;
                for (k, t) in terms.iter().enumerate() {
                    if k > 0 {
                        write!(f, " + ")?;
                    }
                    write!(f, "{t}")?;
                }
                write!(f, ")")
            }
            TemplateExpr::Prod(factors) => {
                write!(f, "(")?;
                for (k, t) in factors.iter().enumerate() {
                    if k > 0 {
                        write!(f, " * ")?;
                    }
                    write!(f, "{t}")?;
                }
                write!(f, ")")
            }
            TemplateExpr::Quot(num, den) => write!(f, "({num} / {den})"),
            TemplateExpr::Hole(id) => write!(f, "hole{id}()"),
        }
    }
}

impl TemplateExpr {
    /// Converts a concrete symbolic expression into a hole-free template.
    pub fn from_sym(expr: &SymExpr) -> TemplateExpr {
        if let Some(c) = expr.as_constant() {
            return TemplateExpr::Const(c);
        }
        let mut terms = Vec::new();
        for mono in expr.terms() {
            let mut factors = Vec::new();
            if (mono.coeff - 1.0).abs() > 1e-12 || mono.factors.is_empty() {
                factors.push(TemplateExpr::Const(mono.coeff));
            }
            for (atom, power) in &mono.factors {
                for _ in 0..*power {
                    factors.push(Self::from_atom(atom));
                }
            }
            terms.push(if factors.len() == 1 {
                factors.pop().expect("one factor")
            } else {
                TemplateExpr::Prod(factors)
            });
        }
        if terms.len() == 1 {
            terms.pop().expect("one term")
        } else {
            TemplateExpr::Sum(terms)
        }
    }

    fn from_atom(atom: &Atom) -> TemplateExpr {
        match atom {
            Atom::Read { array, indices } => TemplateExpr::Read {
                array: array.as_str().to_string(),
                index: indices.iter().map(|&v| IndexTemplate::Fixed(v)).collect(),
            },
            Atom::Var(name) => TemplateExpr::Var(name.as_str().to_string()),
            Atom::Apply { func, args } => TemplateExpr::Apply {
                func: func.as_str().to_string(),
                args: args.iter().map(TemplateExpr::from_sym).collect(),
            },
            Atom::Quot { num, den } => TemplateExpr::Quot(
                Box::new(TemplateExpr::from_sym(num)),
                Box::new(TemplateExpr::from_sym(den)),
            ),
        }
    }

    /// Total number of holes (of all kinds) in the template.
    pub fn hole_count(&self) -> usize {
        let mut n = 0usize;
        self.visit_holes(&mut |_| n += 1);
        n
    }

    /// Number of index holes (`pt()` holes inside array reads).
    pub fn index_hole_count(&self) -> usize {
        let mut n = 0usize;
        if let TemplateExpr::Read { index, .. } = self {
            n += index
                .iter()
                .filter(|ix| matches!(ix, IndexTemplate::Hole(_)))
                .count();
        }
        match self {
            TemplateExpr::Sum(xs) | TemplateExpr::Prod(xs) => {
                n += xs.iter().map(|x| x.index_hole_count()).sum::<usize>();
            }
            TemplateExpr::Apply { args, .. } => {
                n += args.iter().map(|x| x.index_hole_count()).sum::<usize>();
            }
            TemplateExpr::Quot(a, b) => {
                n += a.index_hole_count() + b.index_hole_count();
            }
            _ => {}
        }
        n
    }

    fn visit_holes(&self, visit: &mut impl FnMut(HoleId)) {
        match self {
            TemplateExpr::Const(_) | TemplateExpr::Var(_) => {}
            TemplateExpr::ConstHole(id) | TemplateExpr::Hole(id) => visit(*id),
            TemplateExpr::Read { index, .. } => {
                for ix in index {
                    if let IndexTemplate::Hole(id) = ix {
                        visit(*id);
                    }
                }
            }
            TemplateExpr::Apply { args, .. } => {
                for a in args {
                    a.visit_holes(visit);
                }
            }
            TemplateExpr::Sum(xs) | TemplateExpr::Prod(xs) => {
                for x in xs {
                    x.visit_holes(visit);
                }
            }
            TemplateExpr::Quot(a, b) => {
                a.visit_holes(visit);
                b.visit_holes(visit);
            }
        }
    }

    /// Names of input arrays read by the template.
    pub fn arrays_read(&self) -> Vec<String> {
        let mut out = Vec::new();
        fn go(t: &TemplateExpr, out: &mut Vec<String>) {
            match t {
                TemplateExpr::Read { array, .. } if !out.contains(array) => {
                    out.push(array.clone());
                }
                TemplateExpr::Apply { args, .. } => {
                    for a in args {
                        go(a, out);
                    }
                }
                TemplateExpr::Sum(xs) | TemplateExpr::Prod(xs) => {
                    for x in xs {
                        go(x, out);
                    }
                }
                TemplateExpr::Quot(a, b) => {
                    go(a, out);
                    go(b, out);
                }
                _ => {}
            }
        }
        go(self, &mut out);
        out
    }
}

/// The result of generalizing a set of observations.
#[derive(Debug, Clone, PartialEq)]
pub struct Template {
    /// The shared shape of the observed expressions.
    pub expr: TemplateExpr,
    /// Number of holes allocated while generalizing.
    pub holes: usize,
}

/// State shared while anti-unifying: the next fresh hole identifier.
#[derive(Debug, Default)]
struct HoleAllocator {
    next: HoleId,
}

impl HoleAllocator {
    fn fresh(&mut self) -> HoleId {
        let id = self.next;
        self.next += 1;
        id
    }
}

/// Anti-unifies two symbolic expressions into their least general
/// generalization under the template grammar (the paper's `u(e1, e2)`).
pub fn anti_unify(e1: &SymExpr, e2: &SymExpr) -> Template {
    let mut alloc = HoleAllocator::default();
    let expr = unify_t(
        &TemplateExpr::from_sym(e1),
        &TemplateExpr::from_sym(e2),
        &mut alloc,
    );
    Template {
        expr,
        holes: alloc.next,
    }
}

/// Generalizes a whole set of observations by folding [`anti_unify`] over
/// them. Returns `None` for an empty set.
pub fn generalize(observations: &[SymExpr]) -> Option<Template> {
    let first = observations.first()?;
    let mut alloc = HoleAllocator::default();
    let mut acc = TemplateExpr::from_sym(first);
    for obs in &observations[1..] {
        acc = unify_t(&acc, &TemplateExpr::from_sym(obs), &mut alloc);
    }
    Some(Template {
        expr: acc,
        holes: alloc.next,
    })
}

fn unify_t(a: &TemplateExpr, b: &TemplateExpr, alloc: &mut HoleAllocator) -> TemplateExpr {
    use TemplateExpr::*;
    match (a, b) {
        _ if a == b => a.clone(),
        // Existing holes absorb anything.
        (Hole(id), _) | (_, Hole(id)) => Hole(*id),
        (ConstHole(id), Const(_)) | (Const(_), ConstHole(id)) => ConstHole(*id),
        (Const(_), Const(_)) => ConstHole(alloc.fresh()),
        (
            Read {
                array: a1,
                index: i1,
            },
            Read {
                array: a2,
                index: i2,
            },
        ) if a1 == a2 && i1.len() == i2.len() => {
            let index = i1
                .iter()
                .zip(i2)
                .map(|(x, y)| match (x, y) {
                    (IndexTemplate::Fixed(v1), IndexTemplate::Fixed(v2)) if v1 == v2 => {
                        IndexTemplate::Fixed(*v1)
                    }
                    (IndexTemplate::Hole(id), _) | (_, IndexTemplate::Hole(id)) => {
                        IndexTemplate::Hole(*id)
                    }
                    _ => IndexTemplate::Hole(alloc.fresh()),
                })
                .collect();
            Read {
                array: a1.clone(),
                index,
            }
        }
        (Apply { func: f1, args: x1 }, Apply { func: f2, args: x2 })
            if f1 == f2 && x1.len() == x2.len() =>
        {
            Apply {
                func: f1.clone(),
                args: x1
                    .iter()
                    .zip(x2)
                    .map(|(p, q)| unify_t(p, q, alloc))
                    .collect(),
            }
        }
        (Sum(x1), Sum(x2)) if x1.len() == x2.len() => Sum(x1
            .iter()
            .zip(x2)
            .map(|(p, q)| unify_t(p, q, alloc))
            .collect()),
        (Prod(x1), Prod(x2)) if x1.len() == x2.len() => Prod(
            x1.iter()
                .zip(x2)
                .map(|(p, q)| unify_t(p, q, alloc))
                .collect(),
        ),
        (Quot(n1, d1), Quot(n2, d2)) => Quot(
            Box::new(unify_t(n1, n2, alloc)),
            Box::new(unify_t(d1, d2, alloc)),
        ),
        _ => Hole(alloc.fresh()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stng_ir::value::DataValue;

    fn b(i: i64, j: i64) -> SymExpr {
        SymExpr::read("b", vec![i, j])
    }

    #[test]
    fn running_example_template_has_two_index_holes_per_read() {
        // Cells of the running example: b[i-1,j] + b[i,j] for several (i,j).
        let observations = vec![
            b(0, 0).add(&b(1, 0)),
            b(1, 0).add(&b(2, 0)),
            b(0, 1).add(&b(1, 1)),
            b(3, 2).add(&b(4, 2)),
        ];
        let template = generalize(&observations).unwrap();
        // The shape is a sum of exactly two reads of b with index holes.
        match &template.expr {
            TemplateExpr::Sum(terms) => {
                assert_eq!(terms.len(), 2);
                for t in terms {
                    assert!(matches!(t, TemplateExpr::Read { array, .. } if array == "b"));
                }
            }
            other => panic!("expected a sum of reads, got {other}"),
        }
        assert_eq!(template.expr.index_hole_count(), 4);
        assert_eq!(template.expr.arrays_read(), vec!["b".to_string()]);
    }

    #[test]
    fn equal_expressions_generalize_without_holes() {
        let e = b(1, 1).add(&SymExpr::constant(2.0));
        let template = generalize(&[e, e]).unwrap();
        assert_eq!(template.holes, 0);
        assert_eq!(template.expr.hole_count(), 0);
    }

    #[test]
    fn differing_constants_become_constant_holes() {
        let e1 = b(1, 1).mul(&SymExpr::constant(2.0));
        let e2 = b(2, 1).mul(&SymExpr::constant(3.0));
        let template = anti_unify(&e1, &e2);
        let mut const_holes = 0;
        fn count(t: &TemplateExpr, n: &mut usize) {
            match t {
                TemplateExpr::ConstHole(_) => *n += 1,
                TemplateExpr::Sum(xs) | TemplateExpr::Prod(xs) => {
                    xs.iter().for_each(|x| count(x, n))
                }
                TemplateExpr::Apply { args, .. } => args.iter().for_each(|x| count(x, n)),
                TemplateExpr::Quot(a, b) => {
                    count(a, n);
                    count(b, n);
                }
                _ => {}
            }
        }
        count(&template.expr, &mut const_holes);
        assert_eq!(const_holes, 1);
    }

    #[test]
    fn structurally_different_expressions_collapse_to_a_hole() {
        let e1 = b(1, 1).add(&b(2, 2));
        let e2 = SymExpr::apply("exp", vec![b(1, 1)]);
        let template = anti_unify(&e1, &e2);
        assert!(matches!(template.expr, TemplateExpr::Hole(_)));
    }

    #[test]
    fn uninterpreted_function_arguments_are_recursed_into() {
        let e1 = SymExpr::apply("exp", vec![b(1, 1)]);
        let e2 = SymExpr::apply("exp", vec![b(2, 1)]);
        let template = anti_unify(&e1, &e2);
        match &template.expr {
            TemplateExpr::Apply { func, args } => {
                assert_eq!(func, "exp");
                assert_eq!(args[0].index_hole_count(), 1);
            }
            other => panic!("expected apply, got {other}"),
        }
    }

    #[test]
    fn display_of_template_mentions_pt_holes() {
        let template = anti_unify(&b(1, 1).add(&b(2, 1)), &b(2, 2).add(&b(3, 2)));
        let text = template.expr.to_string();
        assert!(text.contains("pt"), "display was {text}");
    }
}
