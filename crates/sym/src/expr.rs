//! Canonical symbolic expressions over array reads, scalar inputs, constants,
//! and pure functions.
//!
//! Values are kept in a sum-of-products normal form: an expression is a sum
//! of monomials, each monomial a rational coefficient times a sorted multiset
//! of atomic factors. Atoms are array reads at concrete indices, named scalar
//! inputs, applications of pure functions, and quotients (kept opaque).
//! Normalization makes semantically equal expressions (modulo associativity,
//! commutativity, and distributivity over the reals) structurally equal,
//! which is what both anti-unification and the verifier's equality checks
//! rely on.

use std::cmp::Ordering;
use std::collections::BTreeMap;
use std::fmt;

use stng_ir::value::DataValue;

/// An atomic (non-arithmetic) factor of a monomial.
#[derive(Debug, Clone, PartialEq)]
pub enum Atom {
    /// A read of an input array at concrete indices (symbolic execution runs
    /// with concrete loop bounds, so indices are always concrete integers).
    Read { array: String, indices: Vec<i64> },
    /// A named symbolic scalar input.
    Var(String),
    /// An application of a pure (uninterpreted) function.
    Apply { func: String, args: Vec<SymExpr> },
    /// A quotient `numerator / denominator`, kept opaque (no rational
    /// function simplification beyond constant folding).
    Quot { num: Box<SymExpr>, den: Box<SymExpr> },
}

impl Eq for Atom {}

impl PartialOrd for Atom {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Atom {
    fn cmp(&self, other: &Self) -> Ordering {
        fn rank(a: &Atom) -> u8 {
            match a {
                Atom::Read { .. } => 0,
                Atom::Var(_) => 1,
                Atom::Apply { .. } => 2,
                Atom::Quot { .. } => 3,
            }
        }
        match (self, other) {
            (
                Atom::Read {
                    array: a1,
                    indices: i1,
                },
                Atom::Read {
                    array: a2,
                    indices: i2,
                },
            ) => a1.cmp(a2).then_with(|| i1.cmp(i2)),
            (Atom::Var(a), Atom::Var(b)) => a.cmp(b),
            (
                Atom::Apply {
                    func: f1,
                    args: x1,
                },
                Atom::Apply {
                    func: f2,
                    args: x2,
                },
            ) => f1.cmp(f2).then_with(|| x1.cmp(x2)),
            (Atom::Quot { num: n1, den: d1 }, Atom::Quot { num: n2, den: d2 }) => {
                n1.cmp(n2).then_with(|| d1.cmp(d2))
            }
            _ => rank(self).cmp(&rank(other)),
        }
    }
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Atom::Read { array, indices } => {
                write!(f, "{array}[")?;
                for (k, ix) in indices.iter().enumerate() {
                    if k > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{ix}")?;
                }
                write!(f, "]")
            }
            Atom::Var(name) => write!(f, "{name}"),
            Atom::Apply { func, args } => {
                write!(f, "{func}(")?;
                for (k, a) in args.iter().enumerate() {
                    if k > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
            Atom::Quot { num, den } => write!(f, "({num} / {den})"),
        }
    }
}

/// One monomial: a coefficient times a multiset of atoms (atom → power).
#[derive(Debug, Clone, PartialEq)]
pub struct Monomial {
    /// Multiplicative coefficient.
    pub coeff: f64,
    /// Atom powers, sorted by atom.
    pub factors: BTreeMap<Atom, u32>,
}

impl Monomial {
    /// The constant monomial `coeff`.
    pub fn constant(coeff: f64) -> Monomial {
        Monomial {
            coeff,
            factors: BTreeMap::new(),
        }
    }

    /// The monomial `1 · atom`.
    pub fn atom(atom: Atom) -> Monomial {
        let mut factors = BTreeMap::new();
        factors.insert(atom, 1);
        Monomial {
            coeff: 1.0,
            factors,
        }
    }

    /// Product of two monomials.
    pub fn mul(&self, other: &Monomial) -> Monomial {
        let mut factors = self.factors.clone();
        for (a, p) in &other.factors {
            *factors.entry(a.clone()).or_insert(0) += p;
        }
        Monomial {
            coeff: self.coeff * other.coeff,
            factors,
        }
    }

    /// The sorting/grouping key of the monomial (its factors, ignoring the
    /// coefficient).
    fn key(&self) -> Vec<(Atom, u32)> {
        self.factors
            .iter()
            .map(|(a, p)| (a.clone(), *p))
            .collect()
    }
}

impl Eq for Monomial {}

impl PartialOrd for Monomial {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Monomial {
    fn cmp(&self, other: &Self) -> Ordering {
        self.key()
            .cmp(&other.key())
            .then_with(|| self.coeff.total_cmp(&other.coeff))
    }
}

/// A symbolic expression in sum-of-products normal form.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SymExpr {
    /// The monomials of the sum, sorted by their factor keys. Zero-coefficient
    /// monomials are removed.
    pub terms: Vec<Monomial>,
}

impl SymExpr {
    /// The zero expression.
    pub fn zero() -> SymExpr {
        SymExpr { terms: Vec::new() }
    }

    /// A constant expression.
    pub fn constant(value: f64) -> SymExpr {
        SymExpr {
            terms: vec![Monomial::constant(value)],
        }
        .normalized()
    }

    /// A named symbolic scalar.
    pub fn var(name: impl Into<String>) -> SymExpr {
        SymExpr {
            terms: vec![Monomial::atom(Atom::Var(name.into()))],
        }
    }

    /// A read of `array` at concrete `indices`.
    pub fn read(array: impl Into<String>, indices: Vec<i64>) -> SymExpr {
        SymExpr {
            terms: vec![Monomial::atom(Atom::Read {
                array: array.into(),
                indices,
            })],
        }
    }

    /// An application of a pure function.
    pub fn apply(func: impl Into<String>, args: Vec<SymExpr>) -> SymExpr {
        SymExpr {
            terms: vec![Monomial::atom(Atom::Apply {
                func: func.into(),
                args,
            })],
        }
    }

    /// Returns `Some(c)` when the expression is the constant `c`.
    pub fn as_constant(&self) -> Option<f64> {
        match self.terms.len() {
            0 => Some(0.0),
            1 if self.terms[0].factors.is_empty() => Some(self.terms[0].coeff),
            _ => None,
        }
    }

    /// Returns the single atom when the expression is exactly `1 · atom`.
    pub fn as_single_atom(&self) -> Option<&Atom> {
        if self.terms.len() == 1
            && (self.terms[0].coeff - 1.0).abs() < 1e-12
            && self.terms[0].factors.len() == 1
        {
            let (atom, power) = self.terms[0].factors.iter().next().unwrap();
            if *power == 1 {
                return Some(atom);
            }
        }
        None
    }

    /// All distinct array reads appearing (recursively) in the expression.
    pub fn reads(&self) -> Vec<(String, Vec<i64>)> {
        let mut out = Vec::new();
        self.collect_reads(&mut out);
        out
    }

    fn collect_reads(&self, out: &mut Vec<(String, Vec<i64>)>) {
        for term in &self.terms {
            for atom in term.factors.keys() {
                match atom {
                    Atom::Read { array, indices } => {
                        let entry = (array.clone(), indices.clone());
                        if !out.contains(&entry) {
                            out.push(entry);
                        }
                    }
                    Atom::Apply { args, .. } => {
                        for a in args {
                            a.collect_reads(out);
                        }
                    }
                    Atom::Quot { num, den } => {
                        num.collect_reads(out);
                        den.collect_reads(out);
                    }
                    Atom::Var(_) => {}
                }
            }
        }
    }

    /// Re-sorts terms and merges monomials with identical factor keys.
    fn normalized(mut self) -> SymExpr {
        self.terms.sort_by(|a, b| a.key().cmp(&b.key()));
        let mut merged: Vec<Monomial> = Vec::new();
        for term in self.terms {
            if let Some(last) = merged.last_mut() {
                if last.key() == term.key() {
                    last.coeff += term.coeff;
                    continue;
                }
            }
            merged.push(term);
        }
        merged.retain(|m| m.coeff.abs() > 1e-12);
        SymExpr { terms: merged }
    }
}

impl Eq for SymExpr {}

impl PartialOrd for SymExpr {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for SymExpr {
    fn cmp(&self, other: &Self) -> Ordering {
        self.terms.cmp(&other.terms)
    }
}

impl fmt::Display for SymExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.terms.is_empty() {
            return write!(f, "0");
        }
        for (k, term) in self.terms.iter().enumerate() {
            if k > 0 {
                write!(f, " + ")?;
            }
            let mut wrote = false;
            if (term.coeff - 1.0).abs() > 1e-12 || term.factors.is_empty() {
                write!(f, "{}", term.coeff)?;
                wrote = true;
            }
            for (atom, power) in &term.factors {
                if wrote {
                    write!(f, "*")?;
                }
                write!(f, "{atom}")?;
                if *power > 1 {
                    write!(f, "^{power}")?;
                }
                wrote = true;
            }
        }
        Ok(())
    }
}

impl DataValue for SymExpr {
    fn from_const(value: f64) -> Self {
        SymExpr::constant(value)
    }

    fn add(&self, other: &Self) -> Self {
        let mut terms = self.terms.clone();
        terms.extend(other.terms.clone());
        SymExpr { terms }.normalized()
    }

    fn sub(&self, other: &Self) -> Self {
        self.add(&other.neg())
    }

    fn mul(&self, other: &Self) -> Self {
        let mut terms = Vec::new();
        for a in &self.terms {
            for b in &other.terms {
                terms.push(a.mul(b));
            }
        }
        SymExpr { terms }.normalized()
    }

    fn div(&self, other: &Self) -> Self {
        if let Some(c) = other.as_constant() {
            if c.abs() > 1e-12 {
                let mut out = self.clone();
                for term in &mut out.terms {
                    term.coeff /= c;
                }
                return out.normalized();
            }
            return SymExpr::zero();
        }
        if self == other {
            return SymExpr::constant(1.0);
        }
        SymExpr {
            terms: vec![Monomial::atom(Atom::Quot {
                num: Box::new(self.clone()),
                den: Box::new(other.clone()),
            })],
        }
    }

    fn neg(&self) -> Self {
        let mut out = self.clone();
        for term in &mut out.terms {
            term.coeff = -term.coeff;
        }
        out
    }

    fn apply(func: &str, args: &[Self]) -> Self {
        SymExpr::apply(func, args.to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(i: i64, j: i64) -> SymExpr {
        SymExpr::read("b", vec![i, j])
    }

    #[test]
    fn addition_is_commutative_and_associative_structurally() {
        let lhs = b(1, 2).add(&b(3, 4)).add(&SymExpr::constant(2.0));
        let rhs = SymExpr::constant(2.0).add(&b(3, 4)).add(&b(1, 2));
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn distribution_normalizes() {
        // (x + y) * 2 == 2x + 2y
        let x = SymExpr::var("x");
        let y = SymExpr::var("y");
        let lhs = x.add(&y).mul(&SymExpr::constant(2.0));
        let rhs = x.mul(&SymExpr::constant(2.0)).add(&y.mul(&SymExpr::constant(2.0)));
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn subtraction_cancels() {
        let e = b(1, 1).add(&b(2, 2)).sub(&b(2, 2));
        assert_eq!(e, b(1, 1));
        let zero = b(1, 1).sub(&b(1, 1));
        assert_eq!(zero, SymExpr::zero());
        assert_eq!(zero.as_constant(), Some(0.0));
    }

    #[test]
    fn constant_folding() {
        let e = SymExpr::constant(2.0)
            .mul(&SymExpr::constant(3.0))
            .add(&SymExpr::constant(1.0));
        assert_eq!(e.as_constant(), Some(7.0));
    }

    #[test]
    fn division_by_constant_scales() {
        let e = b(0, 0).mul(&SymExpr::constant(4.0)).div(&SymExpr::constant(2.0));
        assert_eq!(e, b(0, 0).mul(&SymExpr::constant(2.0)));
        // x / x = 1.
        assert_eq!(b(0, 0).div(&b(0, 0)).as_constant(), Some(1.0));
    }

    #[test]
    fn uninterpreted_functions_are_atoms() {
        let e = SymExpr::apply("exp", vec![b(1, 1)]);
        assert!(e.as_single_atom().is_some());
        let sum = e.add(&e);
        // exp(b) + exp(b) = 2 exp(b): one monomial with coefficient 2.
        assert_eq!(sum.terms.len(), 1);
        assert_eq!(sum.terms[0].coeff, 2.0);
    }

    #[test]
    fn reads_are_collected_recursively() {
        let e = SymExpr::apply("exp", vec![b(1, 2)]).add(&b(3, 4));
        let reads = e.reads();
        assert!(reads.contains(&("b".to_string(), vec![1, 2])));
        assert!(reads.contains(&("b".to_string(), vec![3, 4])));
    }

    #[test]
    fn display_is_stable() {
        let e = b(1, 2).add(&SymExpr::constant(2.0)).add(&b(0, 0));
        let s = e.to_string();
        assert!(s.contains("b[1, 2]"));
        assert!(s.contains("2"));
    }
}
