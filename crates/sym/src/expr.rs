//! Canonical symbolic expressions over array reads, scalar inputs, constants,
//! and pure functions.
//!
//! Values are kept in a sum-of-products normal form: an expression is a sum
//! of monomials, each monomial a rational coefficient times a sorted multiset
//! of atomic factors. Atoms are array reads at concrete indices, named scalar
//! inputs, applications of pure functions, and quotients (kept opaque).
//! Normalization makes semantically equal expressions (modulo associativity,
//! commutativity, and distributivity over the reals) structurally equal,
//! which is what both anti-unification and the verifier's equality checks
//! rely on.
//!
//! Expressions are **hash-consed**: every distinct normal form is interned
//! exactly once in a global arena, and [`SymExpr`] is a `Copy`able reference
//! to the canonical node. Structural equality and hashing are therefore O(1)
//! pointer operations, and the ring operations are memoized on node identity,
//! so a subexpression shared by thousands of output cells (the common case in
//! symbolic execution of stencils) is normalized once. Names are interned
//! [`Symbol`]s, whose ordering matches string ordering, so the sorted factor
//! multisets iterate exactly as the `String`-keyed originals did.

use std::cmp::Ordering;
use std::collections::BTreeMap;
use std::fmt;

use stng_intern::sop::{self, Mono};
use stng_intern::{f64_key, ConsSet, Memo, Symbol};
use stng_ir::value::DataValue;

/// An atomic (non-arithmetic) factor of a monomial.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Atom {
    /// A read of an input array at concrete indices (symbolic execution runs
    /// with concrete loop bounds, so indices are always concrete integers).
    Read {
        /// Array name.
        array: Symbol,
        /// Concrete index per dimension.
        indices: Vec<i64>,
    },
    /// A named symbolic scalar input.
    Var(Symbol),
    /// An application of a pure (uninterpreted) function.
    Apply {
        /// Function name.
        func: Symbol,
        /// Argument expressions.
        args: Vec<SymExpr>,
    },
    /// A quotient `numerator / denominator`, kept opaque (no rational
    /// function simplification beyond constant folding).
    Quot {
        /// Numerator.
        num: SymExpr,
        /// Denominator.
        den: SymExpr,
    },
}

impl PartialOrd for Atom {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Atom {
    fn cmp(&self, other: &Self) -> Ordering {
        fn rank(a: &Atom) -> u8 {
            match a {
                Atom::Read { .. } => 0,
                Atom::Var(_) => 1,
                Atom::Apply { .. } => 2,
                Atom::Quot { .. } => 3,
            }
        }
        match (self, other) {
            (
                Atom::Read {
                    array: a1,
                    indices: i1,
                },
                Atom::Read {
                    array: a2,
                    indices: i2,
                },
            ) => a1.cmp(a2).then_with(|| i1.cmp(i2)),
            (Atom::Var(a), Atom::Var(b)) => a.cmp(b),
            (Atom::Apply { func: f1, args: x1 }, Atom::Apply { func: f2, args: x2 }) => {
                f1.cmp(f2).then_with(|| x1.cmp(x2))
            }
            (Atom::Quot { num: n1, den: d1 }, Atom::Quot { num: n2, den: d2 }) => {
                n1.cmp(n2).then_with(|| d1.cmp(d2))
            }
            _ => rank(self).cmp(&rank(other)),
        }
    }
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Atom::Read { array, indices } => {
                write!(f, "{array}[")?;
                for (k, ix) in indices.iter().enumerate() {
                    if k > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{ix}")?;
                }
                write!(f, "]")
            }
            Atom::Var(name) => write!(f, "{name}"),
            Atom::Apply { func, args } => {
                write!(f, "{func}(")?;
                for (k, a) in args.iter().enumerate() {
                    if k > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
            Atom::Quot { num, den } => write!(f, "({num} / {den})"),
        }
    }
}

/// One monomial: a coefficient times a multiset of atoms (atom → power).
#[derive(Debug, Clone)]
pub struct Monomial {
    /// Multiplicative coefficient.
    pub coeff: f64,
    /// Atom powers, sorted by atom.
    pub factors: BTreeMap<Atom, u32>,
}

impl Monomial {
    /// The constant monomial `coeff`.
    pub fn constant(coeff: f64) -> Monomial {
        Monomial {
            coeff,
            factors: BTreeMap::new(),
        }
    }

    /// The monomial `1 · atom`.
    pub fn atom(atom: Atom) -> Monomial {
        let mut factors = BTreeMap::new();
        factors.insert(atom, 1);
        Monomial {
            coeff: 1.0,
            factors,
        }
    }

    /// Product of two monomials: one merge pass over the sorted factor maps.
    pub fn mul(&self, other: &Monomial) -> Monomial {
        Monomial {
            coeff: self.coeff * other.coeff,
            factors: sop::merge_pow_maps(&self.factors, &other.factors),
        }
    }
}

impl Mono for Monomial {
    fn coeff(&self) -> f64 {
        self.coeff
    }

    fn with_coeff(&self, coeff: f64) -> Monomial {
        Monomial {
            coeff,
            factors: self.factors.clone(),
        }
    }

    fn key_cmp(&self, other: &Monomial) -> Ordering {
        self.factors.iter().cmp(other.factors.iter())
    }
}

impl PartialEq for Monomial {
    fn eq(&self, other: &Self) -> bool {
        self.coeff == other.coeff && self.factors == other.factors
    }
}

impl Eq for Monomial {}

impl std::hash::Hash for Monomial {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        f64_key(self.coeff).hash(state);
        self.factors.hash(state);
    }
}

impl PartialOrd for Monomial {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Monomial {
    fn cmp(&self, other: &Self) -> Ordering {
        self.key_cmp(other)
            .then_with(|| self.coeff.total_cmp(&other.coeff))
    }
}

/// The interned payload of a [`SymExpr`].
#[derive(Debug, PartialEq, Eq, Hash)]
struct Node {
    /// The monomials of the sum, sorted by their factor keys.
    /// Zero-coefficient monomials are removed.
    terms: Vec<Monomial>,
}

/// The global hash-consing arena and the operation memo tables. Keys are the
/// canonical node addresses, so a memo hit is two pointer reads.
static EXPRS: ConsSet<Node> = ConsSet::new();
static MEMO_ADD: Memo<(usize, usize), SymExpr> = Memo::new();
static MEMO_MUL: Memo<(usize, usize), SymExpr> = Memo::new();
static MEMO_DIV: Memo<(usize, usize), SymExpr> = Memo::new();
static MEMO_NEG: Memo<usize, SymExpr> = Memo::new();

/// Occupancy snapshots of the expression arena and its operation memos, in
/// a fixed order (arena first).
pub fn arena_stats() -> Vec<stng_intern::ArenaStats> {
    vec![
        EXPRS.stats("sym.exprs"),
        MEMO_ADD.stats("sym.memo_add"),
        MEMO_MUL.stats("sym.memo_mul"),
        MEMO_DIV.stats("sym.memo_div"),
        MEMO_NEG.stats("sym.memo_neg"),
    ]
}

/// Sweeps the expression arena and memo tables, evicting entries last used
/// before `cutoff` (see `stng_intern::epoch`). Returns the total number of
/// entries evicted. Callers must be quiescent: no `SymExpr` handle obtained
/// before the sweep may be compared against ones built after it.
pub fn retain_epoch(cutoff: u64) -> usize {
    // Memos before the arena: their values point at arena nodes, and the
    // insertion-tag ordering (entry tag ≤ value-node tag) makes this order
    // safe even mid-epoch.
    MEMO_ADD.retain_epoch(cutoff)
        + MEMO_MUL.retain_epoch(cutoff)
        + MEMO_DIV.retain_epoch(cutoff)
        + MEMO_NEG.retain_epoch(cutoff)
        + EXPRS.retain_epoch(cutoff)
}

/// A symbolic expression in sum-of-products normal form, hash-consed.
///
/// `SymExpr` is a `Copy`able reference to the canonical interned node:
/// structural equality is pointer equality and hashing hashes the pointer,
/// both O(1).
#[derive(Clone, Copy)]
pub struct SymExpr(&'static Node);

impl SymExpr {
    /// Interns a term vector that is already in normal form.
    fn cons(terms: Vec<Monomial>) -> SymExpr {
        SymExpr(EXPRS.intern(Node { terms }))
    }

    /// The canonical node address (memoization key).
    fn key(self) -> usize {
        self.0 as *const Node as usize
    }

    /// The monomials of the sum, sorted by their factor keys.
    pub fn terms(self) -> &'static [Monomial] {
        &self.0.terms
    }

    /// Number of distinct expressions interned process-wide (diagnostics).
    pub fn arena_len() -> usize {
        EXPRS.len()
    }

    /// The zero expression.
    pub fn zero() -> SymExpr {
        SymExpr::cons(Vec::new())
    }

    /// A constant expression.
    pub fn constant(value: f64) -> SymExpr {
        SymExpr::normalized(vec![Monomial::constant(value)])
    }

    /// A named symbolic scalar.
    pub fn var(name: impl Into<Symbol>) -> SymExpr {
        SymExpr::cons(vec![Monomial::atom(Atom::Var(name.into()))])
    }

    /// A read of `array` at concrete `indices`.
    pub fn read(array: impl Into<Symbol>, indices: Vec<i64>) -> SymExpr {
        SymExpr::cons(vec![Monomial::atom(Atom::Read {
            array: array.into(),
            indices,
        })])
    }

    /// An application of a pure function.
    pub fn apply(func: impl Into<Symbol>, args: Vec<SymExpr>) -> SymExpr {
        SymExpr::cons(vec![Monomial::atom(Atom::Apply {
            func: func.into(),
            args,
        })])
    }

    /// Returns `Some(c)` when the expression is the constant `c`.
    pub fn as_constant(self) -> Option<f64> {
        match self.terms().len() {
            0 => Some(0.0),
            1 if self.terms()[0].factors.is_empty() => Some(self.terms()[0].coeff),
            _ => None,
        }
    }

    /// Returns the single atom when the expression is exactly `1 · atom`.
    pub fn as_single_atom(self) -> Option<&'static Atom> {
        let terms = self.terms();
        if terms.len() == 1 && (terms[0].coeff - 1.0).abs() < 1e-12 && terms[0].factors.len() == 1 {
            let (atom, power) = terms[0].factors.iter().next().expect("one factor");
            if *power == 1 {
                return Some(atom);
            }
        }
        None
    }

    /// All distinct array reads appearing (recursively) in the expression.
    pub fn reads(self) -> Vec<(Symbol, Vec<i64>)> {
        let mut out = Vec::new();
        self.collect_reads(&mut out);
        out
    }

    fn collect_reads(self, out: &mut Vec<(Symbol, Vec<i64>)>) {
        for term in self.terms() {
            for atom in term.factors.keys() {
                match atom {
                    Atom::Read { array, indices } => {
                        let entry = (*array, indices.clone());
                        if !out.contains(&entry) {
                            out.push(entry);
                        }
                    }
                    Atom::Apply { args, .. } => {
                        for a in args {
                            a.collect_reads(out);
                        }
                    }
                    Atom::Quot { num, den } => {
                        num.collect_reads(out);
                        den.collect_reads(out);
                    }
                    Atom::Var(_) => {}
                }
            }
        }
    }

    /// Sorts, merges monomials with identical factor keys, drops zeros, and
    /// interns the result.
    fn normalized(terms: Vec<Monomial>) -> SymExpr {
        SymExpr::cons(sop::normalize(terms))
    }
}

impl Default for SymExpr {
    fn default() -> Self {
        SymExpr::zero()
    }
}

impl PartialEq for SymExpr {
    fn eq(&self, other: &Self) -> bool {
        std::ptr::eq(self.0, other.0)
    }
}

impl Eq for SymExpr {}

impl std::hash::Hash for SymExpr {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.key().hash(state);
    }
}

impl PartialOrd for SymExpr {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for SymExpr {
    fn cmp(&self, other: &Self) -> Ordering {
        if std::ptr::eq(self.0, other.0) {
            Ordering::Equal
        } else {
            self.0.terms.cmp(&other.0.terms)
        }
    }
}

impl fmt::Debug for SymExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SymExpr({self})")
    }
}

impl fmt::Display for SymExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let terms = self.terms();
        if terms.is_empty() {
            return write!(f, "0");
        }
        for (k, term) in terms.iter().enumerate() {
            if k > 0 {
                write!(f, " + ")?;
            }
            let mut wrote = false;
            if (term.coeff - 1.0).abs() > 1e-12 || term.factors.is_empty() {
                write!(f, "{}", term.coeff)?;
                wrote = true;
            }
            for (atom, power) in &term.factors {
                if wrote {
                    write!(f, "*")?;
                }
                write!(f, "{atom}")?;
                if *power > 1 {
                    write!(f, "^{power}")?;
                }
                wrote = true;
            }
        }
        Ok(())
    }
}

impl DataValue for SymExpr {
    fn from_const(value: f64) -> Self {
        SymExpr::constant(value)
    }

    fn add(&self, other: &Self) -> Self {
        // Commutative: canonicalize the memo key order.
        let (a, b) = if self.key() <= other.key() {
            (*self, *other)
        } else {
            (*other, *self)
        };
        let memo_key = (a.key(), b.key());
        if let Some(cached) = MEMO_ADD.get(&memo_key) {
            return cached;
        }
        // Both sides are in normal form: one linear merge, no re-sort.
        let result = SymExpr::cons(sop::merge_sum(a.terms(), b.terms()));
        MEMO_ADD.insert(memo_key, result);
        result
    }

    fn sub(&self, other: &Self) -> Self {
        self.add(&other.neg())
    }

    fn mul(&self, other: &Self) -> Self {
        let (a, b) = if self.key() <= other.key() {
            (*self, *other)
        } else {
            (*other, *self)
        };
        let memo_key = (a.key(), b.key());
        if let Some(cached) = MEMO_MUL.get(&memo_key) {
            return cached;
        }
        let mut terms = Vec::with_capacity(a.terms().len() * b.terms().len());
        for x in a.terms() {
            for y in b.terms() {
                terms.push(x.mul(y));
            }
        }
        let result = SymExpr::normalized(terms);
        MEMO_MUL.insert(memo_key, result);
        result
    }

    fn div(&self, other: &Self) -> Self {
        let memo_key = (self.key(), other.key());
        if let Some(cached) = MEMO_DIV.get(&memo_key) {
            return cached;
        }
        let result = if let Some(c) = other.as_constant() {
            if c.abs() > 1e-12 {
                SymExpr::normalized(
                    self.terms()
                        .iter()
                        .map(|t| Monomial {
                            coeff: t.coeff / c,
                            factors: t.factors.clone(),
                        })
                        .collect(),
                )
            } else {
                SymExpr::zero()
            }
        } else if self == other {
            SymExpr::constant(1.0)
        } else {
            SymExpr::cons(vec![Monomial::atom(Atom::Quot {
                num: *self,
                den: *other,
            })])
        };
        MEMO_DIV.insert(memo_key, result);
        result
    }

    fn neg(&self) -> Self {
        if let Some(cached) = MEMO_NEG.get(&self.key()) {
            return cached;
        }
        // Negating coefficients keeps the key order, so the result is
        // already canonical.
        let terms = self
            .terms()
            .iter()
            .map(|t| Monomial {
                coeff: -t.coeff,
                factors: t.factors.clone(),
            })
            .collect();
        let result = SymExpr::cons(terms);
        MEMO_NEG.insert(self.key(), result);
        result
    }

    fn apply(func: &str, args: &[Self]) -> Self {
        SymExpr::apply(func, args.to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(i: i64, j: i64) -> SymExpr {
        SymExpr::read("b", vec![i, j])
    }

    #[test]
    fn addition_is_commutative_and_associative_structurally() {
        let lhs = b(1, 2).add(&b(3, 4)).add(&SymExpr::constant(2.0));
        let rhs = SymExpr::constant(2.0).add(&b(3, 4)).add(&b(1, 2));
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn distribution_normalizes() {
        // (x + y) * 2 == 2x + 2y
        let x = SymExpr::var("x");
        let y = SymExpr::var("y");
        let lhs = x.add(&y).mul(&SymExpr::constant(2.0));
        let rhs = x
            .mul(&SymExpr::constant(2.0))
            .add(&y.mul(&SymExpr::constant(2.0)));
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn subtraction_cancels() {
        let e = b(1, 1).add(&b(2, 2)).sub(&b(2, 2));
        assert_eq!(e, b(1, 1));
        let zero = b(1, 1).sub(&b(1, 1));
        assert_eq!(zero, SymExpr::zero());
        assert_eq!(zero.as_constant(), Some(0.0));
    }

    #[test]
    fn constant_folding() {
        let e = SymExpr::constant(2.0)
            .mul(&SymExpr::constant(3.0))
            .add(&SymExpr::constant(1.0));
        assert_eq!(e.as_constant(), Some(7.0));
    }

    #[test]
    fn division_by_constant_scales() {
        let e = b(0, 0)
            .mul(&SymExpr::constant(4.0))
            .div(&SymExpr::constant(2.0));
        assert_eq!(e, b(0, 0).mul(&SymExpr::constant(2.0)));
        // x / x = 1.
        assert_eq!(b(0, 0).div(&b(0, 0)).as_constant(), Some(1.0));
    }

    #[test]
    fn uninterpreted_functions_are_atoms() {
        let e = SymExpr::apply("exp", vec![b(1, 1)]);
        assert!(e.as_single_atom().is_some());
        let sum = e.add(&e);
        // exp(b) + exp(b) = 2 exp(b): one monomial with coefficient 2.
        assert_eq!(sum.terms().len(), 1);
        assert_eq!(sum.terms()[0].coeff, 2.0);
    }

    #[test]
    fn reads_are_collected_recursively() {
        let e = SymExpr::apply("exp", vec![b(1, 2)]).add(&b(3, 4));
        let reads = e.reads();
        assert!(reads.contains(&(Symbol::intern("b"), vec![1, 2])));
        assert!(reads.contains(&(Symbol::intern("b"), vec![3, 4])));
    }

    #[test]
    fn display_is_stable() {
        let e = b(1, 2).add(&SymExpr::constant(2.0)).add(&b(0, 0));
        let s = e.to_string();
        assert!(s.contains("b[1, 2]"));
        assert!(s.contains("2"));
    }

    #[test]
    fn consing_makes_equality_pointer_equality() {
        let a = b(1, 2).add(&b(3, 4));
        let c = b(3, 4).add(&b(1, 2));
        // Same normal form — same interned node.
        assert!(std::ptr::eq(a.0, c.0));
        // Memoized: repeating the op returns the identical node.
        let again = b(1, 2).add(&b(3, 4));
        assert!(std::ptr::eq(a.0, again.0));
    }
}
