//! Symbolic value algebra, combined concrete/symbolic execution, and
//! anti-unification for inductive template generation (§4.2 of the paper).
//!
//! The paper runs each candidate kernel through an interpreter backed by a
//! computer algebra system (SymPy), with loop bounds set to small concrete
//! values and array contents left symbolic. The resulting per-output-cell
//! expressions are then *anti-unified* into a template whose holes the
//! synthesizer fills. This crate provides the same facilities natively:
//!
//! * [`expr::SymExpr`] — symbolic expressions over array reads, scalar
//!   inputs, constants, and pure (uninterpreted) functions, kept in a
//!   canonical sum-of-products normal form so that semantically equal
//!   expressions compare equal structurally,
//! * [`exec`] — symbolic execution of a kernel using the interpreter from
//!   `stng-ir` instantiated at the symbolic domain, and
//! * [`anti`] — the `u(e1, e2)` anti-unification procedure with `MakeHole`,
//!   producing [`anti::Template`]s.

pub mod anti;
pub mod exec;
pub mod expr;

pub use anti::{anti_unify, generalize, Template, TemplateExpr};
pub use exec::{choose_small_bounds, symbolic_execute, SymbolicRun};
pub use expr::{arena_stats, retain_epoch, SymExpr};
