//! Combined concrete/symbolic execution of kernels (§4.2, "Symbolic
//! Execution").
//!
//! Loop bounds and array sizes are fixed to small concrete values while array
//! contents and real scalar parameters stay symbolic. Executing the kernel
//! then yields, for every written output cell, a symbolic expression over the
//! inputs — the raw material for anti-unification — and, at every loop head,
//! a snapshot of the symbolic values of scalar temporaries, which drives the
//! synthesis of the scalar-equality conjuncts of loop invariants.

use crate::expr::SymExpr;
use std::collections::{BTreeMap, HashMap};
use stng_ir::error::{Error, Result};
use stng_ir::interp::{eval_bool_expr, eval_data_expr, eval_int_expr, ArrayData, State};
use stng_ir::ir::{IrStmt, Kernel, ParamKind};

/// A snapshot of the scalar environment at the head of one loop iteration.
#[derive(Debug, Clone, PartialEq)]
pub struct LoopHeadSnapshot {
    /// Current values of all loop counters in scope (outermost first).
    pub counters: Vec<(String, i64)>,
    /// Symbolic values of the real scalar locals at this point.
    pub scalars: HashMap<String, SymExpr>,
}

/// The result of symbolically executing a kernel once.
#[derive(Debug, Clone)]
pub struct SymbolicRun {
    /// The concrete integer bindings used for the run.
    pub bounds: HashMap<String, i64>,
    /// Final contents of every array.
    pub finals: HashMap<String, ArrayData<SymExpr>>,
    /// For every output array: the cells actually written and their final
    /// symbolic values, in index order.
    pub writes: BTreeMap<String, Vec<(Vec<i64>, SymExpr)>>,
    /// Per loop variable, the snapshots taken at the head of each iteration.
    pub loop_heads: HashMap<String, Vec<LoopHeadSnapshot>>,
}

/// Picks small concrete values for the integer parameters of a kernel so the
/// iteration spaces are non-degenerate: `*min`-style parameters get `0`,
/// `*max`-style parameters get `base`, and plain size parameters get `base`.
/// Assumptions from annotations are honoured by nudging values when violated.
pub fn choose_small_bounds(kernel: &Kernel, base: i64) -> HashMap<String, i64> {
    let mut bounds = HashMap::new();
    let mut params = kernel.int_params();
    params.sort();
    // Distinct parameters get distinct values so that bound expressions that
    // merely coincide on one run (e.g. `imax` vs `jmax`) are told apart.
    let mut min_counter = 0i64;
    let mut max_counter = 0i64;
    for name in params {
        let lower = name.to_lowercase();
        let value = if lower.ends_with("min") || lower.ends_with("lo") || lower.ends_with("_l") {
            // Scale the spacing with the base size so that two runs at
            // different bases also disambiguate lower-bound expressions.
            let v = min_counter * (base - 3).max(0);
            min_counter += 1;
            v
        } else {
            let v = base + max_counter;
            max_counter += 1;
            v
        };
        bounds.insert(name, value);
    }
    // Nudge values until the kernel's assumptions hold (bounded effort).
    if !kernel.assumptions.is_empty() {
        let mut state: State<f64> = State::new();
        for (k, v) in &bounds {
            state.set_int(k.clone(), *v);
        }
        for _ in 0..16 {
            let all_ok = kernel
                .assumptions
                .iter()
                .all(|a| eval_bool_expr(a, &state).unwrap_or(true));
            if all_ok {
                break;
            }
            for assumption in &kernel.assumptions {
                if !eval_bool_expr(assumption, &state).unwrap_or(true) {
                    if let Some(var) = assumption.free_vars().into_iter().next() {
                        let cur = state.int(&var).unwrap_or(0);
                        state.set_int(var.clone(), cur + 1);
                    }
                }
            }
        }
        for name in kernel.int_params() {
            if let Some(v) = state.int(&name) {
                bounds.insert(name, v);
            }
        }
    }
    bounds
}

/// Symbolically executes `kernel` with the given integer bindings.
///
/// # Errors
///
/// Fails when the kernel accesses arrays out of bounds under these bindings
/// or exceeds the execution step budget.
pub fn symbolic_execute(kernel: &Kernel, bounds: &HashMap<String, i64>) -> Result<SymbolicRun> {
    let _span = stng_obs::span(&stng_obs::names::SYM_EXEC);
    let mut state: State<SymExpr> = State::new();
    for (name, value) in bounds {
        state.set_int(name.clone(), *value);
    }
    // Real scalar parameters stay symbolic.
    for name in kernel.real_params() {
        state.set_real(name.clone(), SymExpr::var(name.clone()));
    }
    // Allocate arrays and fill them with their own read atoms.
    for param in &kernel.params {
        if let ParamKind::Array { dims } = &param.kind {
            let mut concrete = Vec::new();
            for (lo, hi) in dims {
                let lo = eval_int_expr(lo, &state)?;
                let hi = eval_int_expr(hi, &state)?;
                if hi < lo {
                    return Err(Error::interp(format!(
                        "array '{}' has empty dimension under chosen bounds",
                        param.name
                    )));
                }
                concrete.push((lo, hi));
            }
            let name = param.name.clone();
            let array =
                ArrayData::from_fn(concrete, |idx| SymExpr::read(name.clone(), idx.to_vec()));
            state.set_array(param.name.clone(), array);
        }
    }

    let mut exec = SymExecutor {
        loop_heads: HashMap::new(),
        counters: Vec::new(),
        real_locals: kernel
            .locals
            .iter()
            .filter(|p| p.kind == ParamKind::RealScalar)
            .map(|p| p.name.clone())
            .collect(),
        steps: 0,
        max_steps: 4_000_000,
    };
    exec.run(&kernel.body, &mut state)?;

    let mut writes: BTreeMap<String, Vec<(Vec<i64>, SymExpr)>> = BTreeMap::new();
    for array_name in kernel.output_arrays() {
        let final_array = state
            .array(&array_name)
            .expect("output array exists in state");
        let mut cells = Vec::new();
        for (idx, value) in final_array.iter_indexed() {
            let untouched = SymExpr::read(array_name.clone(), idx.clone());
            if *value != untouched {
                cells.push((idx, *value));
            }
        }
        writes.insert(array_name, cells);
    }

    Ok(SymbolicRun {
        bounds: bounds.clone(),
        finals: state.arrays.clone(),
        writes,
        loop_heads: exec.loop_heads,
    })
}

/// A small dedicated executor that mirrors `stng_ir::interp::run_kernel` but
/// records a snapshot of scalar values at the head of every loop iteration.
struct SymExecutor {
    loop_heads: HashMap<String, Vec<LoopHeadSnapshot>>,
    counters: Vec<(String, i64)>,
    real_locals: Vec<String>,
    steps: u64,
    max_steps: u64,
}

impl SymExecutor {
    fn run(&mut self, stmts: &[IrStmt], state: &mut State<SymExpr>) -> Result<()> {
        for stmt in stmts {
            self.steps += 1;
            if self.steps > self.max_steps {
                return Err(Error::interp("symbolic execution step budget exhausted"));
            }
            match stmt {
                IrStmt::AssignScalar { name, value } => {
                    if state.ints.contains_key(name) {
                        let v = eval_int_expr(value, state)?;
                        state.ints.insert(name.clone(), v);
                    } else {
                        let v = eval_data_expr(value, state)?;
                        state.reals.insert(name.clone(), v);
                    }
                }
                IrStmt::Store {
                    array,
                    indices,
                    value,
                } => {
                    let idx: Result<Vec<i64>> =
                        indices.iter().map(|ix| eval_int_expr(ix, state)).collect();
                    let idx = idx?;
                    let v = eval_data_expr(value, state)?;
                    let arr = state
                        .arrays
                        .get_mut(array)
                        .ok_or_else(|| Error::interp(format!("unbound array '{array}'")))?;
                    if !arr.set(&idx, v) {
                        return Err(Error::interp(format!(
                            "store index {idx:?} out of bounds for '{array}'"
                        )));
                    }
                }
                IrStmt::Loop { domain, body } => {
                    let lo = eval_int_expr(&domain.lo, state)?;
                    let hi = eval_int_expr(&domain.hi, state)?;
                    let step = domain.step;
                    if step == 0 {
                        return Err(Error::interp("loop with zero step"));
                    }
                    let var = &domain.var;
                    let mut cur = lo;
                    loop {
                        let in_range = if step > 0 { cur <= hi } else { cur >= hi };
                        if !in_range {
                            break;
                        }
                        state.ints.insert(var.clone(), cur);
                        self.counters.push((var.clone(), cur));
                        self.snapshot(var, state);
                        self.run(body, state)?;
                        self.counters.pop();
                        cur += step;
                    }
                    state.ints.insert(var.clone(), cur);
                }
                IrStmt::If {
                    cond,
                    then_body,
                    else_body,
                } => {
                    // Conditions in lifted kernels are integer comparisons;
                    // data-dependent conditions cannot be executed symbolically
                    // (the lifter rejects them before this point).
                    let taken = eval_bool_expr(cond, state)?;
                    if taken {
                        self.run(then_body, state)?;
                    } else {
                        self.run(else_body, state)?;
                    }
                }
            }
        }
        Ok(())
    }

    fn snapshot(&mut self, loop_var: &str, state: &State<SymExpr>) {
        let scalars: HashMap<String, SymExpr> = self
            .real_locals
            .iter()
            .filter_map(|name| state.reals.get(name).map(|v| (name.clone(), *v)))
            .collect();
        self.loop_heads
            .entry(loop_var.to_string())
            .or_default()
            .push(LoopHeadSnapshot {
                counters: self.counters.clone(),
                scalars,
            });
    }
}

/// Convenience: symbolically executes a kernel with heuristically chosen
/// small bounds.
///
/// # Errors
///
/// See [`symbolic_execute`].
pub fn symbolic_execute_small(kernel: &Kernel, base: i64) -> Result<SymbolicRun> {
    let bounds = choose_small_bounds(kernel, base);
    symbolic_execute(kernel, &bounds)
}

#[cfg(test)]
mod tests {
    use super::*;
    use stng_ir::lower::kernel_from_source;
    use stng_ir::value::DataValue;

    const RUNNING_EXAMPLE: &str = r#"
procedure sten(imin, imax, jmin, jmax, a, b)
  real (kind=8), dimension(imin:imax, jmin:jmax) :: a
  real (kind=8), dimension(imin:imax, jmin:jmax) :: b
  real :: t
  real :: q
  integer :: i
  integer :: j
  do j = jmin, jmax
    t = b(imin, j)
    do i = imin+1, imax
      q = b(i, j)
      a(i, j) = q + t
      t = q
    enddo
  enddo
end procedure
"#;

    #[test]
    fn choose_small_bounds_heuristics() {
        let kernel = kernel_from_source(RUNNING_EXAMPLE, 0).unwrap();
        let bounds = choose_small_bounds(&kernel, 4);
        // Lower bounds start near zero, upper bounds near the base size, and
        // distinct parameters get distinct values so bound expressions that
        // coincide by accident can be told apart.
        assert!(bounds["imin"] < bounds["imax"]);
        assert!(bounds["jmin"] < bounds["jmax"]);
        assert_ne!(bounds["imax"], bounds["jmax"]);
        assert_ne!(bounds["imin"], bounds["jmin"]);
    }

    #[test]
    fn running_example_produces_two_point_symbolic_values() {
        let kernel = kernel_from_source(RUNNING_EXAMPLE, 0).unwrap();
        let run = symbolic_execute_small(&kernel, 4).unwrap();
        let writes = &run.writes["a"];
        let rows = run.bounds["imax"] - run.bounds["imin"];
        let cols = run.bounds["jmax"] - run.bounds["jmin"] + 1;
        assert_eq!(writes.len(), (rows * cols) as usize);
        for (idx, value) in writes {
            let (i, j) = (idx[0], idx[1]);
            let expected = SymExpr::read("b", vec![i - 1, j]).add(&SymExpr::read("b", vec![i, j]));
            assert_eq!(*value, expected, "cell ({i},{j})");
        }
        // The paper's example: a(4, 2) = b[3,2] + b[4,2].
        let cell = writes.iter().find(|(idx, _)| idx == &vec![4, 2]).unwrap();
        assert_eq!(
            cell.1,
            SymExpr::read("b", vec![3, 2]).add(&SymExpr::read("b", vec![4, 2]))
        );
    }

    #[test]
    fn loop_head_snapshots_capture_scalar_temporaries() {
        let kernel = kernel_from_source(RUNNING_EXAMPLE, 0).unwrap();
        let run = symbolic_execute_small(&kernel, 3).unwrap();
        let inner = &run.loop_heads["i"];
        assert!(!inner.is_empty());
        for snap in inner {
            let i = snap.counters.iter().find(|(v, _)| v == "i").unwrap().1;
            let j = snap.counters.iter().find(|(v, _)| v == "j").unwrap().1;
            // At the head of each inner iteration, t == b[i-1, j].
            assert_eq!(snap.scalars["t"], SymExpr::read("b", vec![i - 1, j]));
        }
    }

    #[test]
    fn assumption_nudging_separates_equal_parameters() {
        let src = r#"
procedure p(n, sz0, sz1, a)
  integer :: sz0
  integer :: sz1
  real, dimension(1:n) :: a
  integer :: i
  ! STNG: assume(sz0 /= sz1)
  do i = 1, n
    a(i) = 1.0
  enddo
end procedure
"#;
        let kernel = kernel_from_source(src, 0).unwrap();
        let bounds = choose_small_bounds(&kernel, 4);
        assert_ne!(bounds["sz0"], bounds["sz1"]);
    }

    #[test]
    fn untouched_output_cells_are_not_reported_as_writes() {
        let kernel = kernel_from_source(RUNNING_EXAMPLE, 0).unwrap();
        let run = symbolic_execute_small(&kernel, 4).unwrap();
        // Column i = imin is never written.
        assert!(run.writes["a"].iter().all(|(idx, _)| idx[0] != 0));
    }
}
