//! Property tests for the hash-consed expression representation: the O(1)
//! pointer equality of interned `SymExpr`s must agree exactly with deep
//! structural equality of their normal forms, and `Atom` ordering (hence the
//! iteration order of sorted factor multisets, which anti-unification and
//! `Display` depend on) must match the string ordering the pre-interning
//! `String`-keyed representation used.
//!
//! Hand-rolled with a seeded SplitMix64 generator (no crates.io access for
//! proptest); failures are reproducible from the printed seed and case index.

use stng_intern::Symbol;
use stng_ir::value::DataValue;
use stng_sym::expr::{Atom, SymExpr};

struct Gen {
    state: u64,
}

impl Gen {
    fn new(seed: u64) -> Gen {
        Gen { state: seed }
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn in_range(&mut self, lo: i64, hi: i64) -> i64 {
        lo + (self.next_u64() % (hi - lo + 1) as u64) as i64
    }

    fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[(self.next_u64() as usize) % items.len()]
    }

    /// A random expression of bounded depth built through the public ring
    /// operations (so every value is in normal form, as in the pipeline).
    fn expr(&mut self, depth: usize) -> SymExpr {
        let arrays = ["a", "b", "c"];
        let vars = ["x", "y", "w"];
        let funcs = ["exp", "sqrt"];
        if depth == 0 {
            return match self.in_range(0, 3) {
                0 => SymExpr::read(
                    *self.pick(&arrays),
                    vec![self.in_range(-2, 2), self.in_range(-2, 2)],
                ),
                1 => SymExpr::var(*self.pick(&vars)),
                2 => SymExpr::constant(self.in_range(-3, 3) as f64 * 0.5),
                _ => SymExpr::apply(*self.pick(&funcs), vec![SymExpr::var(*self.pick(&vars))]),
            };
        }
        let lhs = self.expr(depth - 1);
        let rhs = self.expr(depth - 1);
        match self.in_range(0, 3) {
            0 => lhs.add(&rhs),
            1 => lhs.sub(&rhs),
            2 => lhs.mul(&rhs),
            _ => lhs.div(&rhs),
        }
    }
}

/// Deep structural equality, the way the pre-interning representation
/// compared expressions (term vectors, coefficients, and factor multisets,
/// recursively). This is the specification that pointer equality must match.
fn structural_eq(a: SymExpr, b: SymExpr) -> bool {
    let (ta, tb) = (a.terms(), b.terms());
    ta.len() == tb.len()
        && ta.iter().zip(tb).all(|(x, y)| {
            x.coeff == y.coeff
                && x.factors.len() == y.factors.len()
                && x.factors
                    .iter()
                    .zip(&y.factors)
                    .all(|((p, m), (q, n))| m == n && atom_structural_eq(p, q))
        })
}

fn atom_structural_eq(a: &Atom, b: &Atom) -> bool {
    match (a, b) {
        (
            Atom::Read {
                array: a1,
                indices: i1,
            },
            Atom::Read {
                array: a2,
                indices: i2,
            },
        ) => a1.as_str() == a2.as_str() && i1 == i2,
        (Atom::Var(x), Atom::Var(y)) => x.as_str() == y.as_str(),
        (Atom::Apply { func: f1, args: x1 }, Atom::Apply { func: f2, args: x2 }) => {
            f1.as_str() == f2.as_str()
                && x1.len() == x2.len()
                && x1.iter().zip(x2).all(|(p, q)| structural_eq(*p, *q))
        }
        (Atom::Quot { num: n1, den: d1 }, Atom::Quot { num: n2, den: d2 }) => {
            structural_eq(*n1, *n2) && structural_eq(*d1, *d2)
        }
        _ => false,
    }
}

#[test]
fn interned_equality_agrees_with_structural_equality() {
    let mut generator = Gen::new(0xc0_115ed);
    let exprs: Vec<SymExpr> = (0..60).map(|_| generator.expr(3)).collect();
    for (i, &a) in exprs.iter().enumerate() {
        for &b in &exprs[i..] {
            assert_eq!(
                a == b,
                structural_eq(a, b),
                "pointer equality disagrees with structural equality:\n  {a}\n  {b}"
            );
        }
    }
}

#[test]
fn rebuilding_the_same_value_interns_to_the_same_node() {
    let mut g1 = Gen::new(42);
    let mut g2 = Gen::new(42);
    for case in 0..40 {
        let a = g1.expr(3);
        let b = g2.expr(3);
        assert_eq!(
            a, b,
            "case {case}: same construction must cons to the same node"
        );
    }
}

#[test]
fn commuted_sums_and_products_cons_identically() {
    let mut generator = Gen::new(7);
    for case in 0..40 {
        let a = generator.expr(2);
        let b = generator.expr(2);
        assert_eq!(a.add(&b), b.add(&a), "case {case}: a+b vs b+a");
        assert_eq!(a.mul(&b), b.mul(&a), "case {case}: a*b vs b*a");
        // Associativity of the normal form.
        let c = generator.expr(2);
        assert_eq!(a.add(&b).add(&c), a.add(&b.add(&c)), "case {case}: assoc");
    }
}

/// The ordering the `String`-keyed seed representation used: rank first
/// (Read < Var < Apply < Quot), then name *as a string*, then payload.
fn seed_atom_cmp(a: &Atom, b: &Atom) -> std::cmp::Ordering {
    fn rank(a: &Atom) -> u8 {
        match a {
            Atom::Read { .. } => 0,
            Atom::Var(_) => 1,
            Atom::Apply { .. } => 2,
            Atom::Quot { .. } => 3,
        }
    }
    match (a, b) {
        (
            Atom::Read {
                array: a1,
                indices: i1,
            },
            Atom::Read {
                array: a2,
                indices: i2,
            },
        ) => a1.as_str().cmp(a2.as_str()).then_with(|| i1.cmp(i2)),
        (Atom::Var(x), Atom::Var(y)) => x.as_str().cmp(y.as_str()),
        (Atom::Apply { func: f1, args: x1 }, Atom::Apply { func: f2, args: x2 }) => {
            f1.as_str().cmp(f2.as_str()).then_with(|| x1.cmp(x2))
        }
        (Atom::Quot { num: n1, den: d1 }, Atom::Quot { num: n2, den: d2 }) => {
            n1.cmp(n2).then_with(|| d1.cmp(d2))
        }
        _ => rank(a).cmp(&rank(b)),
    }
}

#[test]
fn atom_ordering_is_preserved_across_interning() {
    let mut generator = Gen::new(0x0a_70e5);
    let mut atoms: Vec<Atom> = Vec::new();
    for _ in 0..80 {
        let e = generator.expr(2);
        for term in e.terms() {
            for atom in term.factors.keys() {
                atoms.push(atom.clone());
            }
        }
    }
    for a in &atoms {
        for b in &atoms {
            assert_eq!(
                a.cmp(b),
                seed_atom_cmp(a, b),
                "interned Atom ordering diverges from string ordering: {a} vs {b}"
            );
        }
    }
    // Symbols themselves order by string, never by interning order.
    let names = ["zz", "aa", "mm", "ab", "z", "a", ""];
    for x in names {
        for y in names {
            assert_eq!(Symbol::intern(x).cmp(&Symbol::intern(y)), x.cmp(y));
        }
    }
}
