//! Counter-example guided inductive synthesis (CEGIS) of postconditions and
//! loop invariants from inductive templates (§3 and §4 of the paper).
//!
//! The synthesis pipeline mirrors STNG:
//!
//! 1. **Inductive template generation** — the kernel is executed with small
//!    concrete bounds and symbolic array contents (`stng-sym`); the observed
//!    per-cell expressions are anti-unified into a template whose holes must
//!    be filled ([`postcond`]).
//! 2. **Candidate generation** — index holes are solved against the
//!    observations (the space of `vᵢ + c` index expressions of Fig. 4),
//!    quantifier domains are matched to the written region, and invariant
//!    candidates are derived from the postcondition with a small set of
//!    structural choices per loop level ([`invariant`]).
//! 3. **CEGIS** — candidates are screened by bounded checking on reachable
//!    states (counterexamples prune the candidate space) and the survivors
//!    are proven sound by the SMT-lite verifier ([`cegis`]).
//!
//! The synthesizer also reports the **control bits** the equivalent SKETCH
//! encoding would need (the measure in Table 1), and the [`conditional`]
//! module reproduces the §6.6 study of how conditional grammars inflate the
//! search space.

pub mod cegis;
pub mod conditional;
pub mod control;
pub mod invariant;
pub mod postcond;

pub use cegis::{synthesize, PhaseTimings, SynthesisConfig, SynthesisFailure, SynthesisOutcome};
pub use control::ControlBits;
pub use postcond::PostcondCandidate;
