//! The CEGIS driver: ties template generation, candidate enumeration,
//! bounded checking, and sound verification together (§3 of the paper).

use crate::control::ControlBits;
use crate::invariant::invariant_candidates;
use crate::postcond::PostcondSynthesizer;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};
use stng_intern::guard::{fault, Budget, DegradeReason};
use stng_intern::Symbol;
use stng_ir::interp::{run_kernel, ArrayData, State};
use stng_ir::ir::{Kernel, ParamKind};
use stng_ir::lower::liftability_check;
use stng_ir::value::{ModInt, MOD_FIELD};
use stng_obs::metrics::MetricSet;
use stng_obs::{event, names, span};
use stng_pred::eval::eval_pred;
use stng_pred::lang::{Invariant, Postcondition};
use stng_pred::vcgen::{analyze_loop_nest, generate_vcs};
use stng_solve::bounded::CheckSession;
use stng_solve::{BoundedChecker, ProverSession, SmtLite};
use stng_sym::{choose_small_bounds, symbolic_execute};

/// Why synthesis failed for a kernel.
#[derive(Debug, Clone, PartialEq)]
pub enum SynthesisFailure {
    /// The kernel is outside the liftable subset (conditionals, decrementing
    /// loops, no output arrays, unsupported nest shape).
    NotLiftable(String),
    /// No postcondition in the restricted grammar matches the observations.
    NoPostcondition(String),
    /// A postcondition was found but it could not be validated even by
    /// bounded checking.
    NotValidated(String),
    /// The resource budget ran out before even the bounded-validation
    /// fallback could finish; nothing can be said about the kernel.
    Timeout {
        reason: DegradeReason,
        detail: String,
    },
    /// A candidate worker panicked; the panic was isolated to this kernel.
    Crashed { panic: String },
}

impl std::fmt::Display for SynthesisFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SynthesisFailure::NotLiftable(m) => write!(f, "not liftable: {m}"),
            SynthesisFailure::NoPostcondition(m) => write!(f, "no postcondition found: {m}"),
            SynthesisFailure::NotValidated(m) => write!(f, "candidate not validated: {m}"),
            SynthesisFailure::Timeout { reason, detail } => {
                write!(f, "timed out ({reason}): {detail}")
            }
            SynthesisFailure::Crashed { panic } => write!(f, "worker crashed: {panic}"),
        }
    }
}

impl std::error::Error for SynthesisFailure {}

/// Configuration of the whole synthesis pipeline.
#[derive(Debug, Clone)]
pub struct SynthesisConfig {
    /// Postcondition synthesis settings.
    pub postcond: PostcondSynthesizer,
    /// Bounded checker used inside the CEGIS loop.
    pub bounded: BoundedChecker,
    /// Sound verifier used on surviving candidates.
    pub prover: SmtLite,
    /// When `true`, a kernel whose invariants cannot be proven sound is
    /// rejected; when `false` (the default), it is accepted with
    /// `soundly_verified = false` after extended bounded validation, and the
    /// caller reports that distinction.
    pub require_sound_proof: bool,
    /// Grid sizes used for the extended bounded validation fallback.
    pub validation_sizes: Vec<i64>,
    /// Worker threads for checking independent CEGIS candidates (and
    /// validation sizes) concurrently. Candidate checks are pure functions
    /// over shared immutable data; the accepted candidate is deterministic
    /// (lowest index) regardless of the thread count.
    pub parallelism: usize,
}

impl Default for SynthesisConfig {
    fn default() -> Self {
        SynthesisConfig {
            postcond: PostcondSynthesizer::default(),
            bounded: BoundedChecker::default(),
            prover: SmtLite {
                max_split_depth: 6,
                max_attempts: 4000,
            },
            require_sound_proof: false,
            validation_sizes: vec![3, 4, 6],
            parallelism: stng_intern::parallel::default_parallelism(),
        }
    }
}

/// Wall-clock breakdown of the checking phases of one synthesis run, plus
/// the capture-reuse counter the benchmarks assert on.
///
/// Durations are nanoseconds (exact integers, so reports survive cache
/// round trips bit-for-bit). `bounded_ns` accumulates across candidates —
/// on a multi-core host concurrent candidate scans sum their individual
/// times, so it can exceed wall clock there.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PhaseTimings {
    /// Time spent capturing reachable states (once per CEGIS session).
    pub capture_ns: u64,
    /// Time spent scanning captured states against candidate VCs, plus the
    /// extended bounded-validation fallback when it runs.
    pub bounded_ns: u64,
    /// Time spent in the sound prover.
    pub prove_ns: u64,
    /// Number of (size, trial) state captures performed. With session reuse
    /// this is exactly `grid_sizes × trials_per_size` however many
    /// candidates were screened — the invariant the bench gate pins.
    pub captures: usize,
    /// Proof obligations answered from the kernel's prover-session memo
    /// (case-split subtrees shared across sibling branches and candidates).
    pub oblig_hits: u64,
    /// Proof obligations the prover actually had to work on.
    pub oblig_misses: u64,
    /// Feasibility queries short-circuited by a learned infeasibility core
    /// during this kernel's proving phase. The core store is global, so
    /// under cross-kernel parallelism this delta can include siblings' hits
    /// — a profiling signal, not an invariant (and, like all timing fields,
    /// excluded from canonical reports).
    pub core_hits: u64,
    /// Candidates screened by the adaptive bounded checker (one per
    /// `find_counterexample` call on the session).
    pub screened: u64,
    /// Screened candidates that survived every tier and went to the prover.
    pub survivors: u64,
    /// Batched SoA program sweeps executed (one per ≤64-state chunk per VC
    /// per unit actually scanned). Schedule-dependent under multi-threaded
    /// screening — a profiling signal, excluded from canonical reports.
    pub batch_scans: u64,
}

impl PhaseTimings {
    /// Derives the façade from a per-kernel [`MetricSet`]. The metrics
    /// registry is the aggregation point; this struct is its stable report
    /// shape (codec, bench gates, and `--profile` consume it unchanged).
    pub fn from_metrics(set: &MetricSet) -> PhaseTimings {
        let ids = stng_obs::metrics::phase();
        PhaseTimings {
            capture_ns: set.get(ids.capture_ns),
            bounded_ns: set.get(ids.bounded_ns),
            prove_ns: set.get(ids.prove_ns),
            captures: set.get(ids.captures) as usize,
            oblig_hits: set.get(ids.oblig_hits),
            oblig_misses: set.get(ids.oblig_misses),
            core_hits: set.get(ids.core_hits),
            screened: set.get(ids.screened),
            survivors: set.get(ids.survivors),
            batch_scans: set.get(ids.batch_scans),
        }
    }

    /// Accumulates another kernel's (or run's) timings into this one — the
    /// one merge every aggregator (profile totals, bench suites, warm-run
    /// comparisons) shares instead of summing fields by hand.
    pub fn absorb(&mut self, other: &PhaseTimings) {
        self.capture_ns += other.capture_ns;
        self.bounded_ns += other.bounded_ns;
        self.prove_ns += other.prove_ns;
        self.captures += other.captures;
        self.oblig_hits += other.oblig_hits;
        self.oblig_misses += other.oblig_misses;
        self.core_hits += other.core_hits;
        self.screened += other.screened;
        self.survivors += other.survivors;
        self.batch_scans += other.batch_scans;
    }

    /// Capture time in milliseconds.
    pub fn capture_ms(&self) -> f64 {
        self.capture_ns as f64 / 1e6
    }

    /// Bounded-checking time in milliseconds.
    pub fn bounded_ms(&self) -> f64 {
        self.bounded_ns as f64 / 1e6
    }

    /// Proving time in milliseconds.
    pub fn prove_ms(&self) -> f64 {
        self.prove_ns as f64 / 1e6
    }

    /// Fraction of proof obligations answered from the session memo, or
    /// `None` when the prover never ran.
    pub fn oblig_hit_rate(&self) -> Option<f64> {
        let total = self.oblig_hits + self.oblig_misses;
        (total > 0).then(|| self.oblig_hits as f64 / total as f64)
    }
}

/// The result of lifting one kernel to a summary.
#[derive(Debug, Clone)]
pub struct SynthesisOutcome {
    /// The synthesized postcondition (the lifted summary).
    pub post: Postcondition,
    /// The loop invariants proving it, when sound verification succeeded.
    pub invariants: Option<Vec<Invariant>>,
    /// Control-bit accounting (Table 1).
    pub control_bits: ControlBits,
    /// AST-node count of the postcondition (Table 1).
    pub postcond_nodes: usize,
    /// Number of CEGIS candidate iterations (bounded-check rejections plus
    /// verifier rejections) before the accepted candidate.
    pub cegis_iterations: usize,
    /// Proof attempts spent by the sound verifier on the accepted candidate
    /// (0 when the bounded-validation fallback was used).
    pub prover_attempts: usize,
    /// Number of invariant candidates enumerated for this kernel (the peak
    /// size of the CEGIS candidate set).
    pub peak_candidates: usize,
    /// Whether the summary is backed by a full proof from the verifier.
    pub soundly_verified: bool,
    /// When the resource budget cut the sound-proof stage short and the
    /// summary was accepted through the bounded-validation fallback, the
    /// first limit that tripped. `None` for ungoverned (or ungoverned-
    /// equivalent) runs — including ordinary "prover answered Unknown"
    /// degradations, which are not budget-induced.
    pub degraded: Option<DegradeReason>,
    /// Wall-clock time spent synthesizing (Table 1, "Sketch Time").
    pub synthesis_time: Duration,
    /// Per-phase checking times and the capture-reuse counter.
    pub phase: PhaseTimings,
}

/// Synthesizes a verified summary for a kernel using the default
/// configuration.
///
/// # Errors
///
/// See [`SynthesisFailure`].
pub fn synthesize(kernel: &Kernel) -> Result<SynthesisOutcome, SynthesisFailure> {
    synthesize_with(kernel, &SynthesisConfig::default())
}

/// Synthesizes a verified summary for a kernel.
///
/// # Errors
///
/// See [`SynthesisFailure`].
pub fn synthesize_with(
    kernel: &Kernel,
    config: &SynthesisConfig,
) -> Result<SynthesisOutcome, SynthesisFailure> {
    synthesize_with_phases(kernel, config).0
}

/// Like [`synthesize_with`], but also returns the phase timings of whatever
/// checking ran — including on the failure paths, where there is no
/// [`SynthesisOutcome`] to carry them (a kernel that screens every CEGIS
/// candidate and then fails validation still spent its capture and
/// bounded-check time, and per-kernel reports should say so). On success
/// the tuple's timings are identical to `outcome.phase` (both are set from
/// the same measurement); the tuple exists for the `Err` arm.
pub fn synthesize_with_phases(
    kernel: &Kernel,
    config: &SynthesisConfig,
) -> (Result<SynthesisOutcome, SynthesisFailure>, PhaseTimings) {
    synthesize_governed_with_phases(kernel, config, &Budget::unlimited())
}

/// Budget-governed synthesis. The [`Budget`] is threaded cooperatively
/// through all three engines — the candidate loop (polled per candidate),
/// the case-split prover (polled per proof attempt), and the bounded
/// checker (fuel per capture step / VC check, deadline at back-edges). The
/// degradation ladder on exhaustion:
///
/// 1. prover attempts run dry → the bounded-validation fallback still runs;
///    an accepted summary carries `soundly_verified = false` and
///    `degraded = Some(ProverAttempts)`;
/// 2. deadline/fuel/cancellation trip → [`SynthesisFailure::Timeout`];
/// 3. a candidate worker panics → the panic is caught, the remaining
///    candidates are skipped, and the kernel fails with
///    [`SynthesisFailure::Crashed`] — never the whole process.
pub fn synthesize_governed_with_phases(
    kernel: &Kernel,
    config: &SynthesisConfig,
    budget: &Budget,
) -> (Result<SynthesisOutcome, SynthesisFailure>, PhaseTimings) {
    let start = Instant::now();
    if let Err(reason) = budget.check_time() {
        event(
            &names::BUDGET_TIMEOUT,
            Some(Symbol::intern(&reason.to_string())),
            0,
        );
        return (
            Err(SynthesisFailure::Timeout {
                reason,
                detail: "budget exhausted before synthesis started".to_string(),
            }),
            PhaseTimings::default(),
        );
    }
    if let Err(reason) = liftability_check(kernel) {
        return (
            Err(SynthesisFailure::NotLiftable(reason)),
            PhaseTimings::default(),
        );
    }

    // Step 1: postcondition from inductive templates.
    let candidate = match config.postcond.synthesize(kernel) {
        Ok(candidate) => candidate,
        Err(reason) => {
            return (
                Err(SynthesisFailure::NoPostcondition(reason)),
                PhaseTimings::default(),
            )
        }
    };
    let mut control_bits = candidate.control_bits;
    let post = candidate.post;
    let postcond_nodes = post.node_count();
    let mut iterations = 0usize;

    // Step 2: invariants + Hoare proof, when the nest shape is supported.
    let mut peak_candidates = 0usize;
    let mut phase = PhaseTimings::default();
    let nest = analyze_loop_nest(kernel);
    if let Ok(nest) = nest {
        let run = symbolic_execute(
            kernel,
            &choose_small_bounds(kernel, config.postcond.sizes.0),
        );
        if let Ok(run) = run {
            if let Ok(inv_candidates) = invariant_candidates(kernel, &nest, &post, &run) {
                control_bits.merge(&inv_candidates.control_bits);
                peak_candidates = inv_candidates.candidates.len();
                // Screen candidates concurrently: each check (VC generation,
                // bounded screen, sound proof) is a pure function of shared
                // immutable inputs. `find_first` keeps sequential semantics —
                // the lowest-index candidate that proves sound wins. The
                // bounded checker's own worker count is divided by the number
                // of candidates in flight so the two levels of parallelism
                // never multiply past the configured budget.
                let in_flight = config.parallelism.clamp(1, peak_candidates);
                let bounded = BoundedChecker {
                    parallelism: (config.bounded.parallelism / in_flight).max(1),
                    ..config.bounded.clone()
                };
                // One session for the whole candidate set: reachable states
                // depend only on the kernel and the (size, trial) seeds, so
                // they are captured once and scanned per candidate; only
                // the candidate-dependent VCs are recompiled between
                // iterations. Capture errors reject every candidate, as
                // they would have per candidate before.
                let session = CheckSession::with_budget(bounded, kernel.clone(), budget.clone());
                // One prover session for the whole candidate set: settled
                // case-split subtrees are shared across candidates (most VCs
                // — loop bounds, frame conditions — are identical from one
                // candidate to the next), and memo hits charge neither
                // attempts nor the governed budget.
                let prover_session = ProverSession::new();
                let core_hits_before = stng_solve::lin::core_hit_count();
                let prove_ns = AtomicU64::new(0);
                // A caught worker panic is recorded here and halts the scan;
                // the first panic message wins (candidates race, but the
                // kernel fails with Crashed either way).
                let panicked: Mutex<Option<String>> = Mutex::new(None);
                let halt = AtomicBool::new(false);
                let accepted = stng_intern::parallel::find_first(
                    &inv_candidates.candidates,
                    config.parallelism,
                    |k, invariants| {
                        // First-success semantics under cancellation: a
                        // tripped budget (or a crashed sibling) skips the
                        // remaining candidates instead of screening them.
                        if halt.load(Ordering::Relaxed) || budget.exhausted().is_some() {
                            return None;
                        }
                        let mut candidate_span = span(&names::CEGIS_CANDIDATE);
                        candidate_span.arg(k as u64);
                        let checked = catch_unwind(AssertUnwindSafe(|| {
                            if fault::panic_candidate(&kernel.name) {
                                event(
                                    &names::FAULT_INJECTED,
                                    Some(Symbol::intern("panic_candidate")),
                                    k as u64,
                                );
                                panic!("injected candidate panic");
                            }
                            let vcs = generate_vcs(&nest, &kernel.assumptions, invariants, &post);
                            // Fast screen: bounded checking on reachable states.
                            match session.find_counterexample(&vcs) {
                                Ok(None) => {}
                                Ok(Some(_)) | Err(_) => return None,
                            }
                            // Sound check.
                            if let Some(stall) = fault::prover_stall(&kernel.name) {
                                event(
                                    &names::FAULT_INJECTED,
                                    Some(Symbol::intern("prover_stall")),
                                    k as u64,
                                );
                                std::thread::sleep(stall);
                            }
                            let proving = Instant::now();
                            let prove_span = span(&names::PROVE_SESSION);
                            let (verdict, attempts) =
                                config
                                    .prover
                                    .verify_all_session(&vcs, budget, &prover_session);
                            drop(prove_span);
                            prove_ns
                                .fetch_add(proving.elapsed().as_nanos() as u64, Ordering::Relaxed);
                            verdict.is_valid().then_some(attempts)
                        }));
                        match checked {
                            Ok(result) => result,
                            Err(payload) => {
                                let msg = panic_message(payload.as_ref());
                                event(&names::WORKER_CRASHED, None, k as u64);
                                let mut slot = panicked.lock().unwrap();
                                slot.get_or_insert(msg);
                                halt.store(true, Ordering::Relaxed);
                                None
                            }
                        }
                    },
                );
                // Per-kernel aggregation goes through the metrics registry:
                // fill a `MetricSet` from the session counters, derive the
                // `PhaseTimings` façade from it, and flush it into the
                // process-wide cells `--metrics-json` exports.
                let ids = stng_obs::metrics::phase();
                let kernel_metrics = MetricSet::new();
                kernel_metrics.add(ids.capture_ns, session.capture_ns());
                kernel_metrics.add(ids.bounded_ns, session.check_ns());
                kernel_metrics.add(ids.captures, session.capture_count() as u64);
                kernel_metrics.add(ids.screened, session.screened());
                kernel_metrics.add(ids.survivors, session.survivors());
                kernel_metrics.add(ids.batch_scans, session.batch_scans());
                kernel_metrics.add(ids.prove_ns, prove_ns.into_inner());
                kernel_metrics.add(ids.oblig_hits, prover_session.hits());
                kernel_metrics.add(ids.oblig_misses, prover_session.misses());
                kernel_metrics.add(
                    ids.core_hits,
                    stng_solve::lin::core_hit_count().saturating_sub(core_hits_before),
                );
                phase = PhaseTimings::from_metrics(&kernel_metrics);
                kernel_metrics.flush();
                if let Some((k, attempts)) = accepted {
                    return (
                        Ok(SynthesisOutcome {
                            post,
                            invariants: Some(inv_candidates.candidates[k].clone()),
                            control_bits,
                            postcond_nodes,
                            cegis_iterations: k + 1,
                            prover_attempts: attempts,
                            peak_candidates,
                            soundly_verified: true,
                            degraded: None,
                            synthesis_time: start.elapsed(),
                            phase,
                        }),
                        phase,
                    );
                }
                if let Some(panic) = panicked.into_inner().unwrap() {
                    return (Err(SynthesisFailure::Crashed { panic }), phase);
                }
                iterations = peak_candidates;
            }
        }
    }

    if config.require_sound_proof {
        return (
            Err(SynthesisFailure::NotValidated(
                "no invariant candidate could be proven sound".to_string(),
            )),
            phase,
        );
    }

    // Whatever limit cut the sound-proof stage short is what the fallback
    // result gets stamped with; an untripped budget means the prover just
    // answered Unknown, which is not a budget degradation.
    let degraded = budget.exhausted();
    if let Some(reason) = degraded {
        event(
            &names::BUDGET_DEGRADED,
            Some(Symbol::intern(&reason.to_string())),
            0,
        );
    }

    // Step 3 (fallback): extended bounded validation of the postcondition
    // against full concrete executions. The result is flagged as not soundly
    // verified; callers surface that distinction (see DESIGN.md §6). A
    // budget whose deadline or fuel is already gone cannot validate anything
    // — that is the Timeout rung of the ladder.
    let validating = Instant::now();
    let validate_span = span(&names::CEGIS_VALIDATE);
    let validated = validate_post_bounded(
        kernel,
        &post,
        &config.validation_sizes,
        config.parallelism,
        budget,
    );
    drop(validate_span);
    let validate_ns = validating.elapsed().as_nanos() as u64;
    phase.bounded_ns += validate_ns;
    stng_obs::metrics::add_global(stng_obs::metrics::phase().bounded_ns, validate_ns);
    if let Err(reason) = validated {
        if let Some(tripped) = budget.exhausted().filter(|r| r.halts_validation()) {
            event(
                &names::BUDGET_TIMEOUT,
                Some(Symbol::intern(&tripped.to_string())),
                0,
            );
            return (
                Err(SynthesisFailure::Timeout {
                    reason: tripped,
                    detail: reason,
                }),
                phase,
            );
        }
        return (Err(SynthesisFailure::NotValidated(reason)), phase);
    }
    (
        Ok(SynthesisOutcome {
            post,
            invariants: None,
            control_bits,
            postcond_nodes,
            cegis_iterations: iterations,
            prover_attempts: 0,
            peak_candidates,
            soundly_verified: false,
            degraded,
            synthesis_time: start.elapsed(),
            phase,
        }),
        phase,
    )
}

/// Renders a caught panic payload as a message.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with non-string payload".to_string()
    }
}

/// Validates a postcondition by running the kernel concretely (modular data
/// domain) at several sizes and evaluating the predicate on the final state.
fn validate_post_bounded(
    kernel: &Kernel,
    post: &Postcondition,
    sizes: &[i64],
    parallelism: usize,
    budget: &Budget,
) -> Result<(), String> {
    let indexed: Vec<(usize, i64)> = sizes.iter().copied().enumerate().collect();
    let results = stng_intern::parallel::map(&indexed, parallelism, |&(trial, size)| {
        // One deadline/fuel poll per validation unit; the concrete runs
        // themselves are bounded by the interpreter's own fuel.
        if let Err(reason) = budget.check_time() {
            return Err(format!("validation interrupted: {reason} exhausted"));
        }
        if budget.consume_check_fuel(1).is_err() {
            return Err("validation interrupted: check-fuel exhausted".to_string());
        }
        validate_post_at_size(kernel, post, trial, size)
    });
    results.into_iter().collect()
}

/// One concrete validation execution at a given grid size.
fn validate_post_at_size(
    kernel: &Kernel,
    post: &Postcondition,
    trial: usize,
    size: i64,
) -> Result<(), String> {
    let bounds = choose_small_bounds(kernel, size);
    let mut state: State<ModInt> = State::new();
    for (name, value) in &bounds {
        state.set_int(name.clone(), *value);
    }
    for (k, name) in kernel.real_params().into_iter().enumerate() {
        state.set_real(name, ModInt::new((trial as i64 + k as i64 + 2) % MOD_FIELD));
    }
    for param in &kernel.params {
        if let ParamKind::Array { dims } = &param.kind {
            let mut concrete = Vec::new();
            for (lo, hi) in dims {
                let lo = stng_ir::interp::eval_int_expr(lo, &state).map_err(|e| e.to_string())?;
                let hi = stng_ir::interp::eval_int_expr(hi, &state).map_err(|e| e.to_string())?;
                concrete.push((lo, hi));
            }
            let seed = trial as i64;
            let array = ArrayData::from_fn(concrete, |idx| {
                ModInt::new(
                    idx.iter()
                        .enumerate()
                        .map(|(d, v)| (d as i64 + 2) * v)
                        .sum::<i64>()
                        + seed,
                )
            });
            state.set_array(param.name.clone(), array);
        }
    }
    run_kernel(kernel, &mut state).map_err(|e| e.to_string())?;
    if !eval_pred(&post.to_pred(), &mut state).map_err(|e| e.to_string())? {
        return Err(format!(
            "postcondition fails on a concrete execution at size {size}"
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use stng_ir::lower::kernel_from_source;
    use stng_pred::fixtures;

    #[test]
    fn running_example_is_soundly_lifted() {
        let kernel = kernel_from_source(fixtures::RUNNING_EXAMPLE, 0).unwrap();
        let outcome = synthesize(&kernel).unwrap();
        assert!(outcome.soundly_verified);
        assert!(outcome.invariants.is_some());
        assert!(outcome.postcond_nodes > 10);
        assert!(outcome.control_bits.total() > 0);
        let text = outcome.post.to_string();
        assert!(text.contains("b[(v0 - 1), v1]"));
    }

    #[test]
    fn strided_kernel_is_soundly_lifted() {
        // A step-2 loop: the §6.5 machinery end-to-end. The summary must
        // quantify over the strided domain and carry a full Hoare proof —
        // initiation/preservation/exit over `i = lo + 2k` with the
        // divisibility fact discharged by the stride-aware prover.
        let src = r#"
procedure p(n, a, b)
  real, dimension(0:n) :: a
  real, dimension(0:n) :: b
  integer :: i
  do i = 1, n-1, 2
    a(i) = b(i-1) + b(i+1)
  enddo
end procedure
"#;
        let kernel = kernel_from_source(src, 0).unwrap();
        let outcome = synthesize(&kernel).unwrap();
        assert!(
            outcome.soundly_verified,
            "strided kernel should get a full proof"
        );
        assert!(outcome.invariants.is_some());
        let text = outcome.post.to_string();
        assert!(text.contains("step 2"), "post: {text}");
    }

    #[test]
    fn strided_2d_kernel_is_soundly_lifted() {
        // Stride in one dimension of a 2D nest (a red-black-style half
        // sweep over rows).
        let src = r#"
procedure p(n, m, a, b)
  real, dimension(0:n, 0:m) :: a
  real, dimension(0:n, 0:m) :: b
  integer :: i
  integer :: j
  do j = 1, m, 2
    do i = 1, n
      a(i, j) = b(i-1, j) + b(i, j-1)
    enddo
  enddo
end procedure
"#;
        let kernel = kernel_from_source(src, 0).unwrap();
        let outcome = synthesize(&kernel).unwrap();
        assert!(
            outcome.soundly_verified,
            "2D strided kernel should get a full proof"
        );
        let text = outcome.post.to_string();
        assert!(text.contains("step 2"), "post: {text}");
    }

    #[test]
    fn prover_attempt_budget_degrades_to_bounded_validation() {
        let kernel = kernel_from_source(fixtures::RUNNING_EXAMPLE, 0).unwrap();
        // One prover attempt is nowhere near enough for the Hoare proof; the
        // kernel must still be accepted, through the validation fallback,
        // with the degradation recorded.
        let budget = Budget::limited(None, Some(1), None);
        let (result, _) =
            synthesize_governed_with_phases(&kernel, &SynthesisConfig::default(), &budget);
        let outcome = result.unwrap();
        assert!(!outcome.soundly_verified);
        assert_eq!(outcome.degraded, Some(DegradeReason::ProverAttempts));
        assert!(outcome.invariants.is_none());
        assert_eq!(budget.exhausted(), Some(DegradeReason::ProverAttempts));
    }

    #[test]
    fn memo_miss_charging_is_deterministic_across_runs() {
        // PR 5 pinned counter-only budget determinism at the service layer;
        // with obligation memoization the charged quantity is memo *misses*,
        // which must be just as deterministic: the same kernel synthesized
        // twice from fresh, equal attempt budgets (single-threaded) must
        // agree on outcome, degradation, attempt count, and exhaustion —
        // even though the second run sees warm global FM memos and learned
        // cores (those accelerate queries; they must not change verdicts or
        // charging).
        let kernel = kernel_from_source(fixtures::RUNNING_EXAMPLE, 0).unwrap();
        let config = SynthesisConfig {
            parallelism: 1,
            bounded: BoundedChecker {
                parallelism: 1,
                ..BoundedChecker::default()
            },
            ..SynthesisConfig::default()
        };
        for attempts in [Some(2), None] {
            let run = || {
                let budget = Budget::limited(None, attempts, None);
                let (result, phase) = synthesize_governed_with_phases(&kernel, &config, &budget);
                let outcome = result.unwrap();
                (
                    outcome.soundly_verified,
                    outcome.degraded,
                    outcome.prover_attempts,
                    budget.exhausted(),
                    phase.oblig_misses,
                )
            };
            let first = run();
            let second = run();
            assert_eq!(first, second, "attempt budget {attempts:?}");
            match attempts {
                // Two attempts cannot finish the Hoare proof: the kernel
                // must land on the degradation ladder, identically.
                Some(_) => assert_eq!(first.1, Some(DegradeReason::ProverAttempts)),
                // Ungoverned: soundly verified with no degradation.
                None => {
                    assert!(first.0);
                    assert_eq!(first.1, None);
                }
            }
        }
    }

    #[test]
    fn exhausted_fuel_times_out_instead_of_validating() {
        let kernel = kernel_from_source(fixtures::RUNNING_EXAMPLE, 0).unwrap();
        // Ten fuel units cannot even capture one bounded-check state, and
        // fuel exhaustion also halts the validation fallback: the ladder
        // bottoms out at Timeout, not at a silent bogus acceptance.
        let budget = Budget::limited(None, None, Some(10));
        let (result, _) =
            synthesize_governed_with_phases(&kernel, &SynthesisConfig::default(), &budget);
        match result {
            Err(SynthesisFailure::Timeout { reason, .. }) => {
                assert_eq!(reason, DegradeReason::CheckFuel);
            }
            other => panic!("expected Timeout, got {other:?}"),
        }
    }

    #[test]
    fn dead_deadline_times_out_before_synthesis() {
        let kernel = kernel_from_source(fixtures::RUNNING_EXAMPLE, 0).unwrap();
        let budget = Budget::limited(Some(Duration::from_nanos(0)), None, None);
        std::thread::sleep(Duration::from_millis(1));
        let (result, _) =
            synthesize_governed_with_phases(&kernel, &SynthesisConfig::default(), &budget);
        assert!(matches!(
            result,
            Err(SynthesisFailure::Timeout {
                reason: DegradeReason::Deadline,
                ..
            })
        ));
    }

    #[test]
    fn ungoverned_run_reports_no_degradation() {
        let kernel = kernel_from_source(fixtures::RUNNING_EXAMPLE, 0).unwrap();
        let outcome = synthesize(&kernel).unwrap();
        assert_eq!(outcome.degraded, None);
    }

    #[test]
    fn conditional_kernel_is_rejected_as_not_liftable() {
        let src = r#"
procedure k(n, a, b)
  real, dimension(0:n) :: a
  real, dimension(0:n) :: b
  integer :: i
  do i = 1, n
    if (b(i) > 0.0) then
      a(i) = b(i)
    endif
  enddo
end procedure
"#;
        let kernel = kernel_from_source(src, 0).unwrap();
        assert!(matches!(
            synthesize(&kernel),
            Err(SynthesisFailure::NotLiftable(_))
        ));
    }

    #[test]
    fn reduction_is_rejected_as_non_stencil() {
        let src = r#"
procedure k(n, b)
  real, dimension(0:n) :: b
  real :: s
  integer :: i
  do i = 1, n
    s = s + b(i)
  enddo
end procedure
"#;
        let kernel = kernel_from_source(src, 0).unwrap();
        assert!(matches!(
            synthesize(&kernel),
            Err(SynthesisFailure::NotLiftable(_))
        ));
    }

    #[test]
    fn three_dimensional_seven_point_stencil_lifts() {
        let src = r#"
procedure heat(n, a, b)
  real, dimension(0:n, 0:n, 0:n) :: a
  real, dimension(0:n, 0:n, 0:n) :: b
  integer :: i
  integer :: j
  integer :: k
  do k = 1, n-1
    do j = 1, n-1
      do i = 1, n-1
        a(i, j, k) = b(i-1, j, k) + b(i+1, j, k) + b(i, j-1, k) + b(i, j+1, k) + b(i, j, k-1) + b(i, j, k+1) - 6.0 * b(i, j, k)
      enddo
    enddo
  enddo
end procedure
"#;
        let kernel = kernel_from_source(src, 0).unwrap();
        let outcome = synthesize(&kernel).unwrap();
        assert!(outcome.post.to_string().contains("b[(v0 - 1), v1, v2]"));
        assert!(outcome.postcond_nodes > 30);
    }
}
