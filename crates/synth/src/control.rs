//! Accounting of "control bits": the size of the search space the equivalent
//! SKETCH encoding would expose to the constraint solver (reported per kernel
//! in Table 1 of the paper).

/// Breakdown of the synthesis search space for one kernel, measured in bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ControlBits {
    /// Bits spent on index holes (`pt()` holes inside array reads).
    pub index_bits: usize,
    /// Bits spent on floating-point constant holes (`w` weights).
    pub const_bits: usize,
    /// Bits spent choosing quantifier bounds for the postcondition region.
    pub bound_bits: usize,
    /// Bits spent on invariant structural choices (region truncation points,
    /// scalar-equality facts).
    pub invariant_bits: usize,
    /// Bits contributed by conditional grammars (§6.6 experiments only).
    pub conditional_bits: usize,
}

impl ControlBits {
    /// Total number of control bits.
    pub fn total(&self) -> usize {
        self.index_bits
            + self.const_bits
            + self.bound_bits
            + self.invariant_bits
            + self.conditional_bits
    }

    /// Adds another breakdown to this one.
    pub fn merge(&mut self, other: &ControlBits) {
        self.index_bits += other.index_bits;
        self.const_bits += other.const_bits;
        self.bound_bits += other.bound_bits;
        self.invariant_bits += other.invariant_bits;
        self.conditional_bits += other.conditional_bits;
    }
}

/// Number of bits needed to pick one element out of `choices`.
pub fn bits_for_choices(choices: usize) -> usize {
    if choices <= 1 {
        0
    } else {
        (usize::BITS - (choices - 1).leading_zeros()) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bits_for_choices_is_ceil_log2() {
        assert_eq!(bits_for_choices(0), 0);
        assert_eq!(bits_for_choices(1), 0);
        assert_eq!(bits_for_choices(2), 1);
        assert_eq!(bits_for_choices(3), 2);
        assert_eq!(bits_for_choices(8), 3);
        assert_eq!(bits_for_choices(9), 4);
    }

    #[test]
    fn totals_and_merge() {
        let mut a = ControlBits {
            index_bits: 10,
            const_bits: 4,
            bound_bits: 6,
            invariant_bits: 8,
            conditional_bits: 0,
        };
        assert_eq!(a.total(), 28);
        let b = ControlBits {
            conditional_bits: 63,
            ..ControlBits::default()
        };
        a.merge(&b);
        assert_eq!(a.total(), 91);
    }
}
