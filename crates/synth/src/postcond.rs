//! Postcondition synthesis from inductive templates (§4.2).
//!
//! The kernel is symbolically executed twice with different small bounds.
//! For every output array, the observed per-cell expressions are anti-unified
//! into a template; each index hole is then solved against the observations
//! (the offset of a quantified variable must be consistent across all written
//! cells and both runs), the quantifier domain is matched to the written
//! region, and the resulting candidate is re-checked against every
//! observation — the inductive half of CEGIS.

use crate::control::{bits_for_choices, ControlBits};
use std::collections::HashMap;
use stng_ir::interp::{eval_data_expr, eval_int_expr, ArrayData, State};
use stng_ir::ir::{IrExpr, Kernel, ParamKind};
use stng_pred::lang::{OutEq, Postcondition, QuantBound, QuantClause};
use stng_sym::anti::{generalize, IndexTemplate, TemplateExpr};
use stng_sym::{choose_small_bounds, symbolic_execute, SymExpr, SymbolicRun};

/// The result of synthesizing a postcondition.
#[derive(Debug, Clone)]
pub struct PostcondCandidate {
    /// The synthesized summary.
    pub post: Postcondition,
    /// Search-space accounting.
    pub control_bits: ControlBits,
    /// Number of observation cells the candidate was checked against.
    pub observations_checked: usize,
    /// For every output array, the output dimension driven by each quantified
    /// variable (identity by construction: `v{k}` drives dimension `k`).
    pub quant_vars: HashMap<String, Vec<String>>,
}

/// Configuration of postcondition synthesis.
#[derive(Debug, Clone, PartialEq)]
pub struct PostcondSynthesizer {
    /// The two grid sizes used for the symbolic runs.
    pub sizes: (i64, i64),
    /// Maximum |offset| considered when solving index holes.
    pub max_offset: i64,
    /// Worker threads for synthesizing independent output arrays
    /// concurrently.
    pub parallelism: usize,
}

impl Default for PostcondSynthesizer {
    fn default() -> Self {
        PostcondSynthesizer {
            sizes: (4, 5),
            max_offset: 4,
            parallelism: stng_intern::parallel::default_parallelism(),
        }
    }
}

impl PostcondSynthesizer {
    /// Creates a synthesizer with default settings.
    pub fn new() -> Self {
        Self::default()
    }

    /// Synthesizes the postcondition of `kernel`.
    ///
    /// # Errors
    ///
    /// Returns a human-readable reason when no postcondition in the grammar
    /// matches the observed behaviour.
    pub fn synthesize(&self, kernel: &Kernel) -> Result<PostcondCandidate, String> {
        let run_a = symbolic_execute(kernel, &choose_small_bounds(kernel, self.sizes.0))
            .map_err(|e| format!("symbolic execution failed: {e}"))?;
        let run_b = symbolic_execute(kernel, &choose_small_bounds(kernel, self.sizes.1))
            .map_err(|e| format!("symbolic execution failed: {e}"))?;

        // Each output array is synthesized independently from the shared
        // runs; check them concurrently and merge in array order.
        let arrays = kernel.output_arrays();
        let per_array = stng_intern::parallel::map(&arrays, self.parallelism, |array| {
            self.synthesize_array(kernel, &run_a, &run_b, array)
        });

        let mut clauses = Vec::new();
        let mut bits = ControlBits::default();
        let mut quant_vars = HashMap::new();
        let mut observations = 0usize;
        for result in per_array {
            let (clause, array_bits, array_obs, vars) = result?;
            bits.merge(&array_bits);
            observations += array_obs;
            quant_vars.insert(clause.eq.array.clone(), vars);
            clauses.push(clause);
        }

        Ok(PostcondCandidate {
            post: Postcondition { clauses },
            control_bits: bits,
            observations_checked: observations,
            quant_vars,
        })
    }

    /// Synthesizes the clause for one output array from the two runs.
    fn synthesize_array(
        &self,
        kernel: &Kernel,
        run_a: &SymbolicRun,
        run_b: &SymbolicRun,
        array: &str,
    ) -> Result<(QuantClause, ControlBits, usize, Vec<String>), String> {
        let mut bits = ControlBits::default();
        let mut observations = 0usize;
        let array = array.to_string();
        let writes_a = run_a.writes.get(&array).cloned().unwrap_or_default();
        let writes_b = run_b.writes.get(&array).cloned().unwrap_or_default();
        if writes_a.is_empty() || writes_b.is_empty() {
            return Err(format!("output array '{array}' is never written"));
        }
        let rank = writes_a[0].0.len();
        let vars: Vec<String> = (0..rank).map(|k| format!("v{k}")).collect();

        // 1. Quantifier domain: match the written region against bound
        //    expressions from the loop nest and the integer parameters.
        //    Each dimension's stride is inferred from the gaps between the
        //    written indices (gcd across both runs), so strided kernels get
        //    domains of the form `lo + step·k` instead of failing to match.
        let mut bounds = Vec::new();
        #[allow(clippy::needless_range_loop)]
        for dim in 0..rank {
            let stride_a = observed_stride(&writes_a, dim);
            let stride_b = observed_stride(&writes_b, dim);
            let stride = gcd(stride_a, stride_b).max(1);
            if stride > 1 {
                // One extra structural choice: the domain's stride.
                bits.bound_bits += bits_for_choices(2);
            }
            let (lo, lo_bits) = self.solve_region_bound(
                kernel, run_a, run_b, &writes_a, &writes_b, dim, true, stride,
            )?;
            let (hi, hi_bits) = self.solve_region_bound(
                kernel, run_a, run_b, &writes_a, &writes_b, dim, false, stride,
            )?;
            bits.bound_bits += lo_bits + hi_bits;
            bounds.push(QuantBound::strided(vars[dim].clone(), lo, hi, stride));
        }

        // 2. Template from anti-unification over all observations.
        let all_values: Vec<SymExpr> = writes_a
            .iter()
            .chain(writes_b.iter())
            .map(|(_, v)| *v)
            .collect();
        let template =
            generalize(&all_values).ok_or_else(|| format!("no observations for '{array}'"))?;

        // 3. Solve the holes against the observations.
        let mut all_obs: Vec<(&[i64], &SymExpr)> = Vec::new();
        for (p, v) in writes_a.iter().chain(writes_b.iter()) {
            all_obs.push((p.as_slice(), v));
        }
        let rhs = self.solve_template(&template.expr, &all_obs, &vars, &mut bits)?;

        // 4. Inductive check: the instantiated right-hand side must
        //    reproduce every observation in both runs.
        for run in [&run_a, &run_b] {
            observations += self.check_against_run(kernel, run, &array, &vars, &rhs)?;
        }

        let clause = QuantClause {
            bounds,
            eq: OutEq {
                array,
                indices: vars.iter().map(|v| IrExpr::var(v.clone())).collect(),
                rhs,
            },
        };
        Ok((clause, bits, observations, vars))
    }

    /// Finds an expression over the integer parameters matching the written
    /// region's lower (`want_lo`) or upper bound in dimension `dim` of both
    /// runs. Returns the expression and the bits spent choosing it.
    ///
    /// For a strided dimension the upper bound need not be the last written
    /// index itself: a candidate expression matches when the last iterate of
    /// the progression `lo, lo+stride, … ≤ candidate` is the observed
    /// maximum (exactly how a `do i = lo, hi, s` loop treats its bound).
    #[allow(clippy::too_many_arguments)]
    fn solve_region_bound(
        &self,
        kernel: &Kernel,
        run_a: &SymbolicRun,
        run_b: &SymbolicRun,
        writes_a: &[(Vec<i64>, SymExpr)],
        writes_b: &[(Vec<i64>, SymExpr)],
        dim: usize,
        want_lo: bool,
        stride: i64,
    ) -> Result<(IrExpr, usize), String> {
        let observed = |writes: &[(Vec<i64>, SymExpr)]| -> (i64, i64) {
            let mut min = i64::MAX;
            let mut max = i64::MIN;
            for (p, _) in writes {
                min = min.min(p[dim]);
                max = max.max(p[dim]);
            }
            (min, max)
        };
        let (min_a, max_a) = observed(writes_a);
        let (min_b, max_b) = observed(writes_b);
        let (target_a, target_b) = if want_lo {
            (min_a, min_b)
        } else {
            (max_a, max_b)
        };

        // Candidate bound expressions: loop bounds of the nest, integer
        // parameters with small offsets, and plain constants.
        let mut candidates: Vec<IrExpr> = Vec::new();
        for info in kernel.loops() {
            candidates.push(info.lo.clone());
            candidates.push(info.hi.clone());
        }
        for p in kernel.int_params() {
            for off in -2..=2i64 {
                let base = IrExpr::var(p.clone());
                candidates.push(match off.cmp(&0) {
                    std::cmp::Ordering::Equal => base,
                    std::cmp::Ordering::Greater => IrExpr::add(base, IrExpr::Int(off)),
                    std::cmp::Ordering::Less => IrExpr::sub(base, IrExpr::Int(-off)),
                });
            }
        }
        candidates.push(IrExpr::Int(target_a));
        let total = candidates.len();

        let eval_in = |expr: &IrExpr, bounds: &HashMap<String, i64>| -> Option<i64> {
            let mut state: State<f64> = State::new();
            for (k, v) in bounds {
                state.set_int(k.clone(), *v);
            }
            eval_int_expr(expr, &state).ok()
        };
        // A candidate matches a target when it evaluates to it exactly —
        // or, for the upper bound of a strided dimension, when clipping the
        // progression from the observed minimum at the candidate lands on
        // the target.
        let matches = |value: i64, target: i64, min: i64| -> bool {
            if value == target {
                return true;
            }
            !want_lo
                && stride > 1
                && stng_ir::ir::IterDomain::last_iterate(min, value, stride) == Some(target)
        };
        for cand in candidates {
            let hit_a = eval_in(&cand, &run_a.bounds).is_some_and(|v| matches(v, target_a, min_a));
            let hit_b = eval_in(&cand, &run_b.bounds).is_some_and(|v| matches(v, target_b, min_b));
            if hit_a && hit_b {
                return Ok((cand, bits_for_choices(total)));
            }
        }
        Err(format!(
            "no bound expression matches the written region (dim {dim}, {} bound)",
            if want_lo { "lower" } else { "upper" }
        ))
    }

    /// Converts a template into a concrete right-hand-side expression by
    /// solving every hole against the observations.
    fn solve_template(
        &self,
        template: &TemplateExpr,
        observations: &[(&[i64], &SymExpr)],
        vars: &[String],
        bits: &mut ControlBits,
    ) -> Result<IrExpr, String> {
        // Per observation, extract the concrete value of every hole by
        // walking the template against the observation's own template form.
        let mut index_hole_values: HashMap<usize, Vec<(Vec<i64>, i64)>> = HashMap::new();
        let mut const_hole_values: HashMap<usize, Vec<f64>> = HashMap::new();
        for (point, value) in observations {
            let concrete = TemplateExpr::from_sym(value);
            if !extract_holes(
                template,
                &concrete,
                point,
                &mut index_hole_values,
                &mut const_hole_values,
            ) {
                return Err("observation does not match the generalized template".to_string());
            }
        }

        // Solve index holes: the hole must be `v_dim + c` for a consistent
        // (dim, c), or a constant.
        let mut index_solutions: HashMap<usize, IrExpr> = HashMap::new();
        for (hole, values) in &index_hole_values {
            let solved = solve_index_hole(values, vars, self.max_offset)
                .ok_or_else(|| format!("index hole {hole} has no consistent solution"))?;
            // Search space: one of `rank` variables × (2·max_offset+1)
            // offsets, or a small constant.
            bits.index_bits +=
                bits_for_choices(vars.len() * (2 * self.max_offset as usize + 1) + 1);
            index_solutions.insert(*hole, solved);
        }
        let mut const_solutions: HashMap<usize, f64> = HashMap::new();
        for (hole, values) in &const_hole_values {
            let first = values[0];
            if values.iter().any(|v| (v - first).abs() > 1e-9) {
                return Err(format!("constant hole {hole} is not constant across cells"));
            }
            bits.const_bits += 8;
            const_solutions.insert(*hole, first);
        }

        template_to_expr(template, &index_solutions, &const_solutions)
    }

    /// Evaluates the candidate right-hand side on every written cell of a run
    /// and compares against the observed symbolic value. Returns the number
    /// of cells checked.
    fn check_against_run(
        &self,
        kernel: &Kernel,
        run: &SymbolicRun,
        array: &str,
        vars: &[String],
        rhs: &IrExpr,
    ) -> Result<usize, String> {
        // Build a state with pristine symbolic arrays (pre-state contents).
        let mut state: State<SymExpr> = State::new();
        for (name, value) in &run.bounds {
            state.set_int(name.clone(), *value);
        }
        for name in kernel.real_params() {
            state.set_real(name.clone(), SymExpr::var(name.clone()));
        }
        for param in &kernel.params {
            if let ParamKind::Array { dims } = &param.kind {
                let mut concrete = Vec::new();
                for (lo, hi) in dims {
                    let lo = eval_int_expr(lo, &state).map_err(|e| e.to_string())?;
                    let hi = eval_int_expr(hi, &state).map_err(|e| e.to_string())?;
                    concrete.push((lo, hi));
                }
                let name = param.name.clone();
                let arr =
                    ArrayData::from_fn(concrete, |idx| SymExpr::read(name.clone(), idx.to_vec()));
                state.set_array(param.name.clone(), arr);
            }
        }
        let writes = run.writes.get(array).cloned().unwrap_or_default();
        for (point, observed) in &writes {
            for (var, value) in vars.iter().zip(point) {
                state.set_int(var.clone(), *value);
            }
            let predicted = eval_data_expr(rhs, &state).map_err(|e| e.to_string())?;
            if predicted != *observed {
                return Err(format!(
                    "candidate disagrees with the observation at {point:?}: {predicted} vs {observed}"
                ));
            }
        }
        Ok(writes.len())
    }
}

use stng_ir::ir::gcd;

/// The stride of the written indices of one run in dimension `dim`: the gcd
/// of all gaps from the smallest written index. Densely written dimensions
/// (and dimensions with a single written index) report `1`... a stride of
/// `g > 1` means every written index is congruent to the minimum mod `g`.
fn observed_stride(writes: &[(Vec<i64>, SymExpr)], dim: usize) -> i64 {
    let min = writes.iter().map(|(p, _)| p[dim]).min().unwrap_or(0);
    let mut g = 0i64;
    for (p, _) in writes {
        g = gcd(g, p[dim] - min);
    }
    g.max(1)
}

/// Walks a template against the (hole-free) template form of one observation,
/// recording the concrete value under every hole. Returns `false` when the
/// structures do not match.
fn extract_holes(
    template: &TemplateExpr,
    concrete: &TemplateExpr,
    point: &[i64],
    index_values: &mut HashMap<usize, Vec<(Vec<i64>, i64)>>,
    const_values: &mut HashMap<usize, Vec<f64>>,
) -> bool {
    use TemplateExpr::*;
    match (template, concrete) {
        (Const(a), Const(b)) => (a - b).abs() < 1e-12,
        (ConstHole(id), Const(v)) => {
            const_values.entry(*id).or_default().push(*v);
            true
        }
        (Hole(_), _) => false,
        (Var(a), Var(b)) => a == b,
        (
            Read {
                array: a1,
                index: i1,
            },
            Read {
                array: a2,
                index: i2,
            },
        ) => {
            if a1 != a2 || i1.len() != i2.len() {
                return false;
            }
            for (t, c) in i1.iter().zip(i2) {
                match (t, c) {
                    (IndexTemplate::Fixed(x), IndexTemplate::Fixed(y)) => {
                        if x != y {
                            return false;
                        }
                    }
                    (IndexTemplate::Hole(id), IndexTemplate::Fixed(y)) => {
                        index_values
                            .entry(*id)
                            .or_default()
                            .push((point.to_vec(), *y));
                    }
                    _ => return false,
                }
            }
            true
        }
        (Apply { func: f1, args: x1 }, Apply { func: f2, args: x2 }) => {
            f1 == f2
                && x1.len() == x2.len()
                && x1
                    .iter()
                    .zip(x2)
                    .all(|(p, q)| extract_holes(p, q, point, index_values, const_values))
        }
        (Sum(x1), Sum(x2)) | (Prod(x1), Prod(x2)) => {
            x1.len() == x2.len()
                && x1
                    .iter()
                    .zip(x2)
                    .all(|(p, q)| extract_holes(p, q, point, index_values, const_values))
        }
        (Quot(n1, d1), Quot(n2, d2)) => {
            extract_holes(n1, n2, point, index_values, const_values)
                && extract_holes(d1, d2, point, index_values, const_values)
        }
        _ => false,
    }
}

/// Solves one index hole: finds `v_dim + c` (or a constant) consistent with
/// every `(output point, observed index)` pair.
fn solve_index_hole(
    values: &[(Vec<i64>, i64)],
    vars: &[String],
    max_offset: i64,
) -> Option<IrExpr> {
    for (dim, var) in vars.iter().enumerate() {
        let offset = values[0].1 - values[0].0[dim];
        if offset.abs() > max_offset {
            continue;
        }
        if values.iter().all(|(p, v)| v - p[dim] == offset) {
            let base = IrExpr::var(var.clone());
            return Some(match offset.cmp(&0) {
                std::cmp::Ordering::Equal => base,
                std::cmp::Ordering::Greater => IrExpr::add(base, IrExpr::Int(offset)),
                std::cmp::Ordering::Less => IrExpr::sub(base, IrExpr::Int(-offset)),
            });
        }
    }
    // Constant index (e.g. a fixed column read).
    let first = values[0].1;
    if values.iter().all(|(_, v)| *v == first) {
        return Some(IrExpr::Int(first));
    }
    None
}

/// Instantiates a template as an [`IrExpr`] using the solved holes.
fn template_to_expr(
    template: &TemplateExpr,
    index_solutions: &HashMap<usize, IrExpr>,
    const_solutions: &HashMap<usize, f64>,
) -> Result<IrExpr, String> {
    use TemplateExpr::*;
    match template {
        Const(v) => Ok(IrExpr::Real(*v)),
        ConstHole(id) => const_solutions
            .get(id)
            .map(|v| IrExpr::Real(*v))
            .ok_or_else(|| format!("unsolved constant hole {id}")),
        Var(name) => Ok(IrExpr::var(name.clone())),
        Read { array, index } => {
            let mut indices = Vec::new();
            for ix in index {
                match ix {
                    IndexTemplate::Fixed(v) => indices.push(IrExpr::Int(*v)),
                    IndexTemplate::Hole(id) => indices.push(
                        index_solutions
                            .get(id)
                            .cloned()
                            .ok_or_else(|| format!("unsolved index hole {id}"))?,
                    ),
                }
            }
            Ok(IrExpr::Load {
                array: array.clone(),
                indices,
            })
        }
        Apply { func, args } => {
            let args = args
                .iter()
                .map(|a| template_to_expr(a, index_solutions, const_solutions))
                .collect::<Result<Vec<_>, _>>()?;
            Ok(IrExpr::Call {
                func: func.clone(),
                args,
            })
        }
        Sum(terms) => {
            let mut out: Option<IrExpr> = None;
            for t in terms {
                let e = template_to_expr(t, index_solutions, const_solutions)?;
                out = Some(match out {
                    Some(acc) => IrExpr::add(acc, e),
                    None => e,
                });
            }
            out.ok_or_else(|| "empty sum in template".to_string())
        }
        Prod(factors) => {
            let mut out: Option<IrExpr> = None;
            for t in factors {
                let e = template_to_expr(t, index_solutions, const_solutions)?;
                out = Some(match out {
                    Some(acc) => IrExpr::mul(acc, e),
                    None => e,
                });
            }
            out.ok_or_else(|| "empty product in template".to_string())
        }
        Quot(num, den) => Ok(IrExpr::bin(
            stng_ir::ir::BinOp::Div,
            template_to_expr(num, index_solutions, const_solutions)?,
            template_to_expr(den, index_solutions, const_solutions)?,
        )),
        Hole(id) => Err(format!("template contains an unconstrained hole {id}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stng_ir::lower::kernel_from_source;
    use stng_pred::fixtures;

    #[test]
    fn running_example_postcondition_is_synthesized() {
        let kernel = kernel_from_source(fixtures::RUNNING_EXAMPLE, 0).unwrap();
        let candidate = PostcondSynthesizer::new().synthesize(&kernel).unwrap();
        assert_eq!(candidate.post.clauses.len(), 1);
        let clause = &candidate.post.clauses[0];
        assert_eq!(clause.eq.array, "a");
        let text = clause.to_string();
        assert!(
            text.contains("b[(v0 - 1), v1]") && text.contains("b[v0, v1]"),
            "unexpected rhs: {text}"
        );
        assert!(text.contains("(imin + 1)"));
        assert!(candidate.control_bits.total() > 0);
        assert!(candidate.observations_checked > 0);
    }

    #[test]
    fn weighted_three_point_stencil_recovers_constants() {
        let src = r#"
procedure smooth(n, a, b, w)
  real, dimension(0:n) :: a
  real, dimension(0:n) :: b
  real :: w
  integer :: i
  do i = 1, n-1
    a(i) = 0.25 * b(i-1) + 0.5 * b(i) + 0.25 * b(i+1) + w
  enddo
end procedure
"#;
        let kernel = kernel_from_source(src, 0).unwrap();
        let candidate = PostcondSynthesizer::new().synthesize(&kernel).unwrap();
        let text = candidate.post.to_string();
        assert!(text.contains("0.25"), "rhs: {text}");
        assert!(text.contains('w'), "rhs: {text}");
    }

    #[test]
    fn strided_kernel_gets_a_strided_quantifier_domain() {
        let src = r#"
procedure p(n, a, b)
  real, dimension(0:n) :: a
  real, dimension(0:n) :: b
  integer :: i
  do i = 2, n, 2
    a(i) = b(i-1) + b(i)
  enddo
end procedure
"#;
        let kernel = kernel_from_source(src, 0).unwrap();
        let candidate = PostcondSynthesizer::new().synthesize(&kernel).unwrap();
        let clause = &candidate.post.clauses[0];
        assert_eq!(clause.bounds.len(), 1);
        let bound = &clause.bounds[0];
        assert_eq!(bound.step, 2, "domain: {bound}");
        assert_eq!(bound.lo.to_string(), "2");
        let text = clause.to_string();
        assert!(text.contains("step 2"), "clause: {text}");
        assert!(text.contains("b[(v0 - 1)]"), "clause: {text}");
    }

    #[test]
    fn dense_kernels_keep_unit_stride_domains() {
        let kernel = kernel_from_source(fixtures::RUNNING_EXAMPLE, 0).unwrap();
        let candidate = PostcondSynthesizer::new().synthesize(&kernel).unwrap();
        for bound in &candidate.post.clauses[0].bounds {
            assert!(bound.is_dense());
        }
    }

    #[test]
    fn boundary_conditionals_defeat_postcondition_synthesis() {
        // A kernel whose cells are not all described by one expression.
        let src = r#"
procedure k(n, a, b)
  real, dimension(0:n) :: a
  real, dimension(0:n) :: b
  integer :: i
  do i = 1, n-1
    if (i == 1) then
      a(i) = 0.0
    else
      a(i) = b(i-1) + b(i)
    endif
  enddo
end procedure
"#;
        let kernel = kernel_from_source(src, 0).unwrap();
        assert!(PostcondSynthesizer::new().synthesize(&kernel).is_err());
    }

    #[test]
    fn uninterpreted_function_stencils_are_supported() {
        let src = r#"
procedure k(n, a, b)
  real, dimension(0:n) :: a
  real, dimension(0:n) :: b
  integer :: i
  do i = 1, n
    a(i) = exp(b(i-1)) + sqrt(b(i))
  enddo
end procedure
"#;
        let kernel = kernel_from_source(src, 0).unwrap();
        let candidate = PostcondSynthesizer::new().synthesize(&kernel).unwrap();
        let text = candidate.post.to_string();
        assert!(text.contains("exp("), "rhs: {text}");
        assert!(text.contains("sqrt("), "rhs: {text}");
    }
}
