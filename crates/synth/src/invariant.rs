//! Loop-invariant candidate generation (§4.1's restricted invariant
//! structure, plus the scalar-equality facts needed by imperfect nests).
//!
//! Given the synthesized postcondition, the invariant for each loop level is
//! derived structurally: the already-computed region of every output array is
//! described lexicographically in terms of the enclosing loop counters, with
//! a small set of candidate *truncation points* per level (the CEGIS choices
//! the bounded checker and the verifier subsequently discriminate). Scalar
//! temporaries are related to the input arrays by anti-unifying their values
//! observed at loop heads during symbolic execution.

use crate::control::{bits_for_choices, ControlBits};
use std::collections::HashMap;
use stng_ir::ir::{CmpOp, IrExpr, IrStmt, Kernel};
use stng_pred::lang::{Invariant, OutEq, Postcondition, QuantBound, QuantClause};
use stng_pred::vcgen::LoopNest;
use stng_sym::anti::{generalize, IndexTemplate, TemplateExpr};
use stng_sym::SymbolicRun;

/// A full candidate: one invariant per loop level.
pub type InvariantSet = Vec<Invariant>;

/// The output of invariant candidate generation.
#[derive(Debug, Clone)]
pub struct InvariantCandidates {
    /// Candidate invariant sets, most likely first.
    pub candidates: Vec<InvariantSet>,
    /// Search-space accounting for the structural choices.
    pub control_bits: ControlBits,
}

/// Generates invariant candidates for a kernel whose postcondition is known.
///
/// # Errors
///
/// Returns a reason when the loop structure falls outside the supported
/// shape (e.g. a loop level that does not drive any output dimension).
pub fn invariant_candidates(
    kernel: &Kernel,
    nest: &LoopNest,
    post: &Postcondition,
    run: &SymbolicRun,
) -> Result<InvariantCandidates, String> {
    let mut bits = ControlBits::default();

    // Which output dimension does each loop level drive, per output array?
    // A level drives the dimension whose store index mentions its counter.
    let mut driven: Vec<HashMap<String, usize>> = Vec::new();
    for level in &nest.levels {
        let mut per_array = HashMap::new();
        for clause in &post.clauses {
            if let Some(dim) = driven_dimension(kernel, &clause.eq.array, &level.var) {
                per_array.insert(clause.eq.array.clone(), dim);
            }
        }
        if per_array.is_empty() {
            return Err(format!(
                "loop over '{}' does not drive any output dimension (unsupported nest shape)",
                level.var
            ));
        }
        driven.push(per_array);
    }

    // Truncation choices per level: the completed region in the driven
    // dimension stops at counter−step (the common case: everything strictly
    // before the current iterate, which for strided domains is a whole
    // stride back) or at the counter itself; CEGIS discriminates between
    // them.
    let truncations: Vec<Vec<IrExpr>> = nest
        .levels
        .iter()
        .map(|level| {
            vec![
                IrExpr::sub(IrExpr::var(level.var.clone()), IrExpr::Int(level.step)),
                IrExpr::var(level.var.clone()),
            ]
        })
        .collect();
    for t in &truncations {
        bits.invariant_bits += bits_for_choices(t.len());
    }

    // Scalar-equality facts per level, from the loop-head snapshots.
    let scalar_eqs: Vec<Vec<(String, IrExpr)>> = nest
        .levels
        .iter()
        .map(|level| scalar_equalities(run, &level.var))
        .collect();
    for eqs in &scalar_eqs {
        bits.invariant_bits += eqs.len();
    }

    // Enumerate the cartesian product of truncation choices (small: 2^depth).
    let depth = nest.levels.len();
    let mut candidates = Vec::new();
    let combinations = 1usize << depth;
    for mask in 0..combinations {
        let choice: Vec<&IrExpr> = (0..depth)
            .map(|d| &truncations[d][(mask >> d) & 1])
            .collect();
        candidates.push(build_invariant_set(
            nest,
            post,
            &driven,
            &choice,
            &scalar_eqs,
        ));
    }

    Ok(InvariantCandidates {
        candidates,
        control_bits: bits,
    })
}

/// Builds one invariant per level for a particular truncation choice.
fn build_invariant_set(
    nest: &LoopNest,
    post: &Postcondition,
    driven: &[HashMap<String, usize>],
    truncation: &[&IrExpr],
    scalar_eqs: &[Vec<(String, IrExpr)>],
) -> InvariantSet {
    let depth = nest.levels.len();
    let mut set = Vec::new();
    #[allow(clippy::needless_range_loop)]
    for d in 0..depth {
        let mut inv = Invariant::empty();
        // Scalar conditions: every enclosing counter has passed its lower
        // bound.
        for level in &nest.levels[0..=d] {
            inv.scalar_conds.push(IrExpr::cmp(
                CmpOp::Le,
                level.lo.clone(),
                IrExpr::var(level.var.clone()),
            ));
        }
        // Scalar-equality facts observed at this level's loop head.
        inv.scalar_eqs = scalar_eqs[d].clone();
        // Region clauses: lexicographic decomposition of the completed part
        // of every output array.
        for clause in &post.clauses {
            let array = &clause.eq.array;
            for e in 0..=d {
                let Some(&dim_e) = driven[e].get(array) else {
                    continue;
                };
                let mut bounds = clause.bounds.clone();
                let mut empty_region = false;
                // Levels before `e` pin their driven dimension to the current
                // iteration.
                for (f, level_f) in nest.levels.iter().enumerate().take(e) {
                    if let Some(&dim_f) = driven[f].get(array) {
                        bounds[dim_f] = QuantBound::inclusive(
                            bounds[dim_f].var.clone(),
                            IrExpr::var(level_f.var.clone()),
                            IrExpr::var(level_f.var.clone()),
                        );
                    }
                }
                // Level `e` truncates its driven dimension, keeping the
                // postcondition domain's stride.
                let full = &clause.bounds[dim_e];
                bounds[dim_e] = QuantBound::strided(
                    full.var.clone(),
                    full.inclusive_lo(),
                    truncation[e].clone(),
                    full.step,
                );
                if empty_region {
                    continue;
                }
                empty_region = false;
                let _ = empty_region;
                set_push_clause(&mut inv, bounds, clause);
            }
        }
        set.push(inv);
    }
    set
}

fn set_push_clause(inv: &mut Invariant, bounds: Vec<QuantBound>, clause: &QuantClause) {
    inv.clauses.push(QuantClause {
        bounds,
        eq: OutEq {
            array: clause.eq.array.clone(),
            indices: clause.eq.indices.clone(),
            rhs: clause.eq.rhs.clone(),
        },
    });
}

/// The output dimension of `array` whose store index mentions `var`, if any.
fn driven_dimension(kernel: &Kernel, array: &str, var: &str) -> Option<usize> {
    let mut found = None;
    for stmt in &kernel.body {
        stmt.walk(&mut |s| {
            if let IrStmt::Store {
                array: a, indices, ..
            } = s
            {
                if a == array {
                    for (dim, ix) in indices.iter().enumerate() {
                        if ix.free_vars().iter().any(|v| v == var) && found.is_none() {
                            found = Some(dim);
                        }
                    }
                }
            }
        });
    }
    found
}

/// Synthesizes `scalar = expr(input arrays, counters)` facts from the values
/// observed at the head of every iteration of the loop over `var`.
fn scalar_equalities(run: &SymbolicRun, var: &str) -> Vec<(String, IrExpr)> {
    let Some(snapshots) = run.loop_heads.get(var) else {
        return Vec::new();
    };
    if snapshots.is_empty() {
        return Vec::new();
    }
    // Scalars present in every snapshot.
    let mut names: Vec<String> = snapshots[0].scalars.keys().cloned().collect();
    names.retain(|n| snapshots.iter().all(|s| s.scalars.contains_key(n)));
    names.sort();

    let mut out = Vec::new();
    'scalars: for name in names {
        let values: Vec<_> = snapshots.iter().map(|s| s.scalars[&name]).collect();
        let Some(template) = generalize(&values) else {
            continue;
        };
        // Solve every index hole as `counter + offset`, consistent across all
        // snapshots.
        let counters: Vec<String> = snapshots[0]
            .counters
            .iter()
            .map(|(v, _)| v.clone())
            .collect();
        let mut hole_values: HashMap<usize, Vec<(Vec<i64>, i64)>> = HashMap::new();
        for snap in snapshots {
            let point: Vec<i64> = snap.counters.iter().map(|(_, v)| *v).collect();
            let concrete = TemplateExpr::from_sym(&snap.scalars[&name]);
            if !collect_index_holes(&template.expr, &concrete, &point, &mut hole_values) {
                continue 'scalars;
            }
        }
        let mut solutions: HashMap<usize, IrExpr> = HashMap::new();
        for (hole, vals) in &hole_values {
            match solve_counter_hole(vals, &counters) {
                Some(expr) => {
                    solutions.insert(*hole, expr);
                }
                None => continue 'scalars,
            }
        }
        if let Some(expr) = instantiate(&template.expr, &solutions) {
            out.push((name, expr));
        }
    }
    out
}

fn collect_index_holes(
    template: &TemplateExpr,
    concrete: &TemplateExpr,
    point: &[i64],
    out: &mut HashMap<usize, Vec<(Vec<i64>, i64)>>,
) -> bool {
    use TemplateExpr::*;
    match (template, concrete) {
        (Const(a), Const(b)) => (a - b).abs() < 1e-12,
        (Var(a), Var(b)) => a == b,
        (
            Read {
                array: a1,
                index: i1,
            },
            Read {
                array: a2,
                index: i2,
            },
        ) => {
            if a1 != a2 || i1.len() != i2.len() {
                return false;
            }
            for (t, c) in i1.iter().zip(i2) {
                match (t, c) {
                    (IndexTemplate::Fixed(x), IndexTemplate::Fixed(y)) => {
                        if x != y {
                            return false;
                        }
                    }
                    (IndexTemplate::Hole(id), IndexTemplate::Fixed(y)) => {
                        out.entry(*id).or_default().push((point.to_vec(), *y));
                    }
                    _ => return false,
                }
            }
            true
        }
        (Apply { func: f1, args: x1 }, Apply { func: f2, args: x2 }) => {
            f1 == f2
                && x1.len() == x2.len()
                && x1
                    .iter()
                    .zip(x2)
                    .all(|(p, q)| collect_index_holes(p, q, point, out))
        }
        (Sum(x1), Sum(x2)) | (Prod(x1), Prod(x2)) => {
            x1.len() == x2.len()
                && x1
                    .iter()
                    .zip(x2)
                    .all(|(p, q)| collect_index_holes(p, q, point, out))
        }
        (Quot(n1, d1), Quot(n2, d2)) => {
            collect_index_holes(n1, n2, point, out) && collect_index_holes(d1, d2, point, out)
        }
        _ => false,
    }
}

fn solve_counter_hole(values: &[(Vec<i64>, i64)], counters: &[String]) -> Option<IrExpr> {
    for (k, counter) in counters.iter().enumerate() {
        let offset = values[0].1 - values[0].0[k];
        if values.iter().all(|(p, v)| v - p[k] == offset) {
            let base = IrExpr::var(counter.clone());
            return Some(match offset.cmp(&0) {
                std::cmp::Ordering::Equal => base,
                std::cmp::Ordering::Greater => IrExpr::add(base, IrExpr::Int(offset)),
                std::cmp::Ordering::Less => IrExpr::sub(base, IrExpr::Int(-offset)),
            });
        }
    }
    let first = values[0].1;
    if values.iter().all(|(_, v)| *v == first) {
        return Some(IrExpr::Int(first));
    }
    None
}

fn instantiate(template: &TemplateExpr, solutions: &HashMap<usize, IrExpr>) -> Option<IrExpr> {
    use TemplateExpr::*;
    match template {
        Const(v) => Some(IrExpr::Real(*v)),
        Var(name) => Some(IrExpr::var(name.clone())),
        Read { array, index } => {
            let mut indices = Vec::new();
            for ix in index {
                match ix {
                    IndexTemplate::Fixed(v) => indices.push(IrExpr::Int(*v)),
                    IndexTemplate::Hole(id) => indices.push(solutions.get(id)?.clone()),
                }
            }
            Some(IrExpr::Load {
                array: array.clone(),
                indices,
            })
        }
        Apply { func, args } => {
            let args = args
                .iter()
                .map(|a| instantiate(a, solutions))
                .collect::<Option<Vec<_>>>()?;
            Some(IrExpr::Call {
                func: func.clone(),
                args,
            })
        }
        Sum(terms) => {
            let mut out: Option<IrExpr> = None;
            for t in terms {
                let e = instantiate(t, solutions)?;
                out = Some(match out {
                    Some(acc) => IrExpr::add(acc, e),
                    None => e,
                });
            }
            out
        }
        Prod(factors) => {
            let mut out: Option<IrExpr> = None;
            for t in factors {
                let e = instantiate(t, solutions)?;
                out = Some(match out {
                    Some(acc) => IrExpr::mul(acc, e),
                    None => e,
                });
            }
            out
        }
        Quot(num, den) => Some(IrExpr::bin(
            stng_ir::ir::BinOp::Div,
            instantiate(num, solutions)?,
            instantiate(den, solutions)?,
        )),
        ConstHole(_) | Hole(_) => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::postcond::PostcondSynthesizer;
    use stng_ir::lower::kernel_from_source;
    use stng_pred::fixtures;
    use stng_pred::vcgen::analyze_loop_nest;
    use stng_sym::exec::symbolic_execute_small;

    #[test]
    fn running_example_candidates_include_the_correct_invariants() {
        let kernel = kernel_from_source(fixtures::RUNNING_EXAMPLE, 0).unwrap();
        let nest = analyze_loop_nest(&kernel).unwrap();
        let post = PostcondSynthesizer::new().synthesize(&kernel).unwrap().post;
        let run = symbolic_execute_small(&kernel, 4).unwrap();
        let result = invariant_candidates(&kernel, &nest, &post, &run).unwrap();
        assert_eq!(result.candidates.len(), 4); // 2 truncation choices × 2 levels
                                                // Every candidate has one invariant per level and the inner one knows
                                                // about the scalar temporary `t`.
        for set in &result.candidates {
            assert_eq!(set.len(), 2);
            assert!(set[1].scalar_eqs.iter().any(|(name, _)| name == "t"));
            assert_eq!(set[0].clauses.len(), 1);
            assert_eq!(set[1].clauses.len(), 2);
        }
        assert!(result.control_bits.total() > 0);
    }

    #[test]
    fn scalar_equalities_recover_the_carried_temporary() {
        let kernel = kernel_from_source(fixtures::RUNNING_EXAMPLE, 0).unwrap();
        let run = symbolic_execute_small(&kernel, 4).unwrap();
        let eqs = scalar_equalities(&run, "i");
        let t = eqs.iter().find(|(name, _)| name == "t").unwrap();
        assert_eq!(t.1.to_string(), "b[(i - 1), j]");
    }
}
