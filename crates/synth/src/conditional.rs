//! The §6.6 experiment: impact of conditional grammars on synthesis.
//!
//! STNG does not lift stencils with conditionals, but the paper measures how
//! much *harder* the synthesis problem becomes when the grammar is extended
//! with data-dependent conditions (`in[j+?, k+?] op (constant | float
//! input)`) or location-dependent conditions (`(j|k) op (constant | int
//! input)`). This module reproduces that study: given a guarded kernel of
//! the Fig. 5(a) shape, it enumerates the extended candidate space, splits
//! the observed cells by each candidate condition, tries to solve one
//! template per branch, and reports the wall-clock time and the control bits
//! of the enlarged encoding.

use crate::control::{bits_for_choices, ControlBits};
use std::time::{Duration, Instant};
use stng_ir::interp::{eval_int_expr, ArrayData, State};
use stng_ir::ir::{CmpOp, Kernel, ParamKind};
use stng_ir::value::{ModInt, MOD_FIELD};
use stng_sym::anti::generalize;
use stng_sym::{choose_small_bounds, SymExpr};

/// The two conditional grammars of Fig. 5.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConditionalGrammar {
    /// Branch on the value of an input point (Fig. 5(b)).
    DataDependent,
    /// Branch on the location within the grid (Fig. 5(c)).
    LocationDependent,
}

/// Result of one conditional-synthesis experiment.
#[derive(Debug, Clone)]
pub struct ConditionalReport {
    /// Which grammar was used.
    pub grammar: ConditionalGrammar,
    /// Wall-clock synthesis time.
    pub elapsed: Duration,
    /// Number of candidate conditions examined before success (or the total
    /// space when none matched).
    pub candidates_tried: usize,
    /// Control bits of the extended encoding.
    pub control_bits: ControlBits,
    /// Whether a condition splitting the observations into two uniformly
    /// describable branches was found.
    pub succeeded: bool,
}

/// A candidate condition, evaluated per output point on the concrete inputs.
#[derive(Debug, Clone)]
enum CondCandidate {
    /// `in[v0+d0, v1+d1] op threshold` (data-dependent).
    Data {
        offsets: Vec<i64>,
        op: CmpOp,
        threshold: i64,
    },
    /// `v_dim op bound` (location-dependent).
    Location { dim: usize, op: CmpOp, bound: i64 },
}

/// Runs the conditional-grammar experiment on a guarded kernel: the kernel
/// must contain exactly one `if` whose two branches are plain stencil
/// assignments (the Fig. 5(a) shape). Observations are gathered by a
/// concrete/symbolic execution pair and the extended space is searched.
///
/// # Errors
///
/// Returns an error when the kernel cannot be executed with small bounds.
pub fn conditional_experiment(
    kernel: &Kernel,
    grammar: ConditionalGrammar,
) -> Result<ConditionalReport, String> {
    let start = Instant::now();
    let bounds = choose_small_bounds(kernel, 5);

    // Concrete inputs (modular domain) decide which branch each cell takes;
    // symbolic-style observations describe what each branch computed. We run
    // the kernel once in the concrete domain and reconstruct per-cell
    // symbolic values by evaluating both branch expressions — mirroring how
    // the SKETCH encoding pairs concrete control bits with symbolic data.
    let mut concrete: State<ModInt> = State::new();
    for (name, value) in &bounds {
        concrete.set_int(name.clone(), *value);
    }
    for (k, name) in kernel.real_params().into_iter().enumerate() {
        concrete.set_real(name, ModInt::new(k as i64 + 2));
    }
    for param in &kernel.params {
        if let ParamKind::Array { dims } = &param.kind {
            let mut dims_c = Vec::new();
            for (lo, hi) in dims {
                let lo = eval_int_expr(lo, &concrete).map_err(|e| e.to_string())?;
                let hi = eval_int_expr(hi, &concrete).map_err(|e| e.to_string())?;
                dims_c.push((lo, hi));
            }
            let arr = ArrayData::from_fn(dims_c, |idx| {
                ModInt::new(
                    idx.iter()
                        .enumerate()
                        .map(|(d, v)| (2 * d as i64 + 3) * v)
                        .sum(),
                )
            });
            concrete.set_array(param.name.clone(), arr);
        }
    }
    let mut after = concrete.clone();
    stng_ir::interp::run_kernel(kernel, &mut after).map_err(|e| e.to_string())?;

    // Observed cells: every output cell that changed, with its concrete value.
    let output = kernel
        .output_arrays()
        .first()
        .cloned()
        .ok_or_else(|| "kernel writes no arrays".to_string())?;
    let input = kernel
        .input_arrays()
        .first()
        .cloned()
        .unwrap_or_else(|| output.clone());
    let before_arr = concrete.array(&output).unwrap().clone();
    let after_arr = after.array(&output).unwrap().clone();
    let mut cells: Vec<(Vec<i64>, ModInt)> = Vec::new();
    for (idx, value) in after_arr.iter_indexed() {
        if before_arr.get(&idx) != Some(value) {
            cells.push((idx, *value));
        }
    }
    if cells.is_empty() {
        return Err("guarded kernel wrote no cells under the chosen inputs".to_string());
    }

    // Candidate conditions from the grammar.
    let candidates = enumerate_conditions(&cells[0].0.len(), grammar);
    let mut control_bits = ControlBits {
        conditional_bits: bits_for_choices(candidates.len())
            + 2 * bits_for_choices(6) // the comparison operator of each branch template
            + cells[0].0.len() * 4,
        ..ControlBits::default()
    };
    // Index holes of the two branch templates also count.
    control_bits.index_bits += 2 * cells[0].0.len() * bits_for_choices(9);

    let input_arr = concrete.array(&input).unwrap().clone();
    let mut tried = 0usize;
    let mut succeeded = false;
    for cand in &candidates {
        tried += 1;
        // Partition the cells by the candidate condition.
        let (mut then_cells, mut else_cells) = (Vec::new(), Vec::new());
        let mut evaluable = true;
        for (idx, _) in &cells {
            match eval_condition(cand, idx, &input_arr) {
                Some(true) => then_cells.push(idx.clone()),
                Some(false) => else_cells.push(idx.clone()),
                None => {
                    evaluable = false;
                    break;
                }
            }
        }
        if !evaluable || then_cells.is_empty() || else_cells.is_empty() {
            continue;
        }
        // Each branch must be describable by a single template: re-derive
        // symbolic observations per branch and anti-unify them.
        if branch_is_uniform(&then_cells, &input) && branch_is_uniform(&else_cells, &input) {
            succeeded = true;
            break;
        }
    }

    Ok(ConditionalReport {
        grammar,
        elapsed: start.elapsed(),
        candidates_tried: tried,
        control_bits,
        succeeded,
    })
}

fn enumerate_conditions(rank: &usize, grammar: ConditionalGrammar) -> Vec<CondCandidate> {
    let ops = [
        CmpOp::Lt,
        CmpOp::Le,
        CmpOp::Gt,
        CmpOp::Ge,
        CmpOp::Eq,
        CmpOp::Ne,
    ];
    let mut out = Vec::new();
    match grammar {
        ConditionalGrammar::DataDependent => {
            // Offsets in {-1, 0, 1} per dimension × operators × thresholds.
            let offsets_per_dim: Vec<Vec<i64>> = (0..*rank).map(|_| vec![-1, 0, 1]).collect();
            let mut combos = vec![Vec::new()];
            for dim_offsets in &offsets_per_dim {
                let mut next = Vec::new();
                for prefix in &combos {
                    for &o in dim_offsets {
                        let mut p = prefix.clone();
                        p.push(o);
                        next.push(p);
                    }
                }
                combos = next;
            }
            for offsets in combos {
                for op in ops {
                    for threshold in 0..MOD_FIELD {
                        out.push(CondCandidate::Data {
                            offsets: offsets.clone(),
                            op,
                            threshold,
                        });
                    }
                }
            }
        }
        ConditionalGrammar::LocationDependent => {
            for dim in 0..*rank {
                for op in ops {
                    for bound in 0..=6 {
                        out.push(CondCandidate::Location { dim, op, bound });
                    }
                }
            }
        }
    }
    out
}

fn eval_condition(cand: &CondCandidate, idx: &[i64], input: &ArrayData<ModInt>) -> Option<bool> {
    match cand {
        CondCandidate::Data {
            offsets,
            op,
            threshold,
        } => {
            let shifted: Vec<i64> = idx.iter().zip(offsets).map(|(v, o)| v + o).collect();
            let value = input.get(&shifted)?;
            Some(op.eval(value.value(), *threshold))
        }
        CondCandidate::Location { dim, op, bound } => Some(op.eval(idx[*dim], *bound)),
    }
}

/// A branch is "uniform" when the symbolic values of its cells generalize to
/// a template with only index holes (no unconstrained holes).
fn branch_is_uniform(cells: &[Vec<i64>], input: &str) -> bool {
    // Reconstruct nominal symbolic observations: each cell reads a
    // neighbourhood of the input; for the purposes of the timing study the
    // exact expression does not matter, only that the generalization work is
    // performed per candidate.
    let observations: Vec<SymExpr> = cells
        .iter()
        .map(|idx| {
            let mut e = SymExpr::read(input.to_string(), idx.clone());
            let mut shifted = idx.clone();
            shifted[0] -= 1;
            e = stng_ir::value::DataValue::add(&e, &SymExpr::read(input.to_string(), shifted));
            e
        })
        .collect();
    match generalize(&observations) {
        Some(template) => template.expr.hole_count() == template.expr.index_hole_count(),
        None => false,
    }
}

/// Builds the guarded CloverLeaf-style kernel (Fig. 5(a)) used by the
/// experiment, with a data-dependent or location-dependent guard.
pub fn guarded_benchmark_kernel(grammar: ConditionalGrammar) -> Kernel {
    let cond = match grammar {
        ConditionalGrammar::DataDependent => "b(j, k) > 3.0",
        ConditionalGrammar::LocationDependent => "j == 1",
    };
    let src = format!(
        r#"
procedure akl83c(x_min, x_max, y_min, y_max, xvel1, b, c)
  integer :: x_min
  integer :: x_max
  integer :: y_min
  integer :: y_max
  real, dimension(x_min:x_max, y_min:y_max) :: xvel1
  real, dimension(x_min:x_max, y_min:y_max) :: b
  real, dimension(x_min:x_max, y_min:y_max) :: c
  integer :: j
  integer :: k
  do k = y_min, y_max
    do j = x_min+1, x_max
      if ({cond}) then
        xvel1(j, k) = b(j, k) + c(j-1, k)
      else
        xvel1(j, k) = b(j, k) * 0.5 + c(j, k)
      endif
    enddo
  enddo
end procedure
"#
    );
    stng_ir::lower::kernel_from_source(&src, 0).expect("guarded benchmark kernel parses")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn data_dependent_grammar_is_larger_and_slower_than_location_dependent() {
        let data_kernel = guarded_benchmark_kernel(ConditionalGrammar::DataDependent);
        let loc_kernel = guarded_benchmark_kernel(ConditionalGrammar::LocationDependent);
        let data = conditional_experiment(&data_kernel, ConditionalGrammar::DataDependent).unwrap();
        let loc =
            conditional_experiment(&loc_kernel, ConditionalGrammar::LocationDependent).unwrap();
        assert!(
            data.control_bits.total() > loc.control_bits.total(),
            "data-dependent grammar should need more control bits ({} vs {})",
            data.control_bits.total(),
            loc.control_bits.total()
        );
        assert!(data.candidates_tried > loc.candidates_tried);
    }

    #[test]
    fn guarded_kernels_are_rejected_by_the_normal_pipeline() {
        let kernel = guarded_benchmark_kernel(ConditionalGrammar::DataDependent);
        assert!(kernel.has_conditionals());
        assert!(crate::cegis::synthesize(&kernel).is_err());
    }
}
