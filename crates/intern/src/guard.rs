//! Resource governance for the lifting engines.
//!
//! The three unbounded searches in the pipeline — the CEGIS candidate loop,
//! the Fourier–Motzkin case-split prover, and the compiled bounded checker —
//! are each individually terminating in the common case but have no shared
//! notion of "this kernel has used up its slice". A [`Budget`] is a cheaply
//! clonable token carrying up to three limits:
//!
//! * a **wall-clock deadline** (checked with `Instant::now`, so only polled
//!   at coarse-grained points: prover attempts, capture units, and quantifier
//!   back-edges every few hundred points),
//! * a **prover-attempt budget** — a counter decremented once per
//!   `ProofSession` attempt across every candidate of a kernel,
//! * **bounded-check fuel** — an abstract counter decremented by the bounded
//!   checker (capture steps, per-state VC checks, quantifier points).
//!
//! The counters are deterministic; only the deadline depends on the clock.
//! Determinism tests therefore pin behaviour with counter budgets and a
//! single worker thread.
//!
//! A budget never *stops* anything by itself — engines poll it cooperatively
//! and bail out with a soft failure. The first limit to trip is recorded as a
//! [`DegradeReason`] and stays visible via [`Budget::exhausted`], so the
//! synthesis driver can distinguish "prover ran out of attempts, fall back to
//! bounded validation" from "deadline passed, report a timeout".
//!
//! Budgets nest: a per-kernel budget created with [`Budget::child`] also
//! consumes from (and observes the trip state of) the batch-wide budget, so a
//! global `--deadline-ms` cuts every kernel short no matter what its local
//! slice says.
//!
//! The [`fault`] submodule is the deterministic fault-injection registry used
//! by the chaos harness. It is always compiled (a single relaxed atomic load
//! when disarmed, i.e. always in production) so that injection points do not
//! need cross-crate cargo features; only the harness that *arms* it lives
//! behind the `fault-inject` feature of `stng-service`.

use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU8, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Why a budget stopped the work it governed. The first limit to trip wins
/// and is sticky for the lifetime of the budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DegradeReason {
    /// The wall-clock deadline passed.
    Deadline,
    /// The kernel-level pool of prover attempts ran dry.
    ProverAttempts,
    /// The bounded-checking fuel counter ran dry.
    CheckFuel,
    /// The budget was cancelled explicitly (e.g. another worker crashed).
    Cancelled,
}

impl DegradeReason {
    pub fn as_str(self) -> &'static str {
        match self {
            DegradeReason::Deadline => "deadline",
            DegradeReason::ProverAttempts => "prover-attempts",
            DegradeReason::CheckFuel => "check-fuel",
            DegradeReason::Cancelled => "cancelled",
        }
    }

    /// Whether this reason also rules out the bounded-validation fallback.
    ///
    /// Running out of prover attempts only abandons the *sound proof*; the
    /// extended bounded validation can still run and produce a degraded
    /// (bounded-validated) result. A dead deadline, exhausted fuel, or an
    /// explicit cancellation halt the fallback too.
    pub fn halts_validation(self) -> bool {
        !matches!(self, DegradeReason::ProverAttempts)
    }

    pub fn parse(s: &str) -> Option<DegradeReason> {
        match s {
            "deadline" => Some(DegradeReason::Deadline),
            "prover-attempts" => Some(DegradeReason::ProverAttempts),
            "check-fuel" => Some(DegradeReason::CheckFuel),
            "cancelled" => Some(DegradeReason::Cancelled),
            _ => None,
        }
    }
}

impl std::fmt::Display for DegradeReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

#[derive(Debug)]
struct Inner {
    deadline: Option<Instant>,
    /// Remaining prover attempts; `None` means unlimited.
    prover_attempts: Option<AtomicI64>,
    /// Remaining bounded-check fuel; `None` means unlimited.
    check_fuel: Option<AtomicI64>,
    cancelled: AtomicBool,
    /// 0 = live; otherwise `DegradeReason` discriminant + 1 of the first
    /// limit that tripped.
    tripped: AtomicU8,
    parent: Option<Budget>,
}

fn reason_code(r: DegradeReason) -> u8 {
    match r {
        DegradeReason::Deadline => 1,
        DegradeReason::ProverAttempts => 2,
        DegradeReason::CheckFuel => 3,
        DegradeReason::Cancelled => 4,
    }
}

fn code_reason(code: u8) -> Option<DegradeReason> {
    match code {
        1 => Some(DegradeReason::Deadline),
        2 => Some(DegradeReason::ProverAttempts),
        3 => Some(DegradeReason::CheckFuel),
        4 => Some(DegradeReason::Cancelled),
        _ => None,
    }
}

/// A shared, cheaply-pollable resource budget. `Clone` is an `Arc` bump;
/// the unlimited budget is a null handle, so the disarmed poll is a single
/// `Option` check.
#[derive(Debug, Clone, Default)]
pub struct Budget {
    inner: Option<Arc<Inner>>,
}

impl Budget {
    /// A budget with no limits. Polling it never fails and costs one branch.
    pub fn unlimited() -> Budget {
        Budget { inner: None }
    }

    /// A root budget with the given limits (`None` limits are unlimited).
    pub fn limited(
        deadline: Option<Duration>,
        prover_attempts: Option<u64>,
        check_fuel: Option<u64>,
    ) -> Budget {
        Budget::build(deadline, prover_attempts, check_fuel, None)
    }

    /// A child budget: its own (typically tighter) limits, but every consume
    /// and every poll also charges/observes `self`. Deriving a child from an
    /// unlimited budget yields a root budget with the given limits.
    pub fn child(
        &self,
        deadline: Option<Duration>,
        prover_attempts: Option<u64>,
        check_fuel: Option<u64>,
    ) -> Budget {
        let parent = self.inner.is_some().then(|| self.clone());
        Budget::build(deadline, prover_attempts, check_fuel, parent)
    }

    fn build(
        deadline: Option<Duration>,
        prover_attempts: Option<u64>,
        check_fuel: Option<u64>,
        parent: Option<Budget>,
    ) -> Budget {
        if deadline.is_none() && prover_attempts.is_none() && check_fuel.is_none() {
            return match parent {
                Some(p) => p,
                None => Budget::unlimited(),
            };
        }
        let clamp = |n: u64| AtomicI64::new(n.min(i64::MAX as u64) as i64);
        Budget {
            inner: Some(Arc::new(Inner {
                deadline: deadline.map(|d| Instant::now() + d),
                prover_attempts: prover_attempts.map(clamp),
                check_fuel: check_fuel.map(clamp),
                cancelled: AtomicBool::new(false),
                tripped: AtomicU8::new(0),
                parent,
            })),
        }
    }

    pub fn is_unlimited(&self) -> bool {
        self.inner.is_none()
    }

    /// Cancel the budget (and transitively everything observing it).
    pub fn cancel(&self) {
        if let Some(inner) = &self.inner {
            inner.cancelled.store(true, Ordering::Relaxed);
            self.trip(DegradeReason::Cancelled);
        }
    }

    /// The first limit that tripped, if any — on this budget or an ancestor.
    pub fn exhausted(&self) -> Option<DegradeReason> {
        let mut cur = self.inner.as_deref();
        while let Some(inner) = cur {
            if let Some(r) = code_reason(inner.tripped.load(Ordering::Relaxed)) {
                return Some(r);
            }
            cur = inner.parent.as_ref().and_then(|p| p.inner.as_deref());
        }
        None
    }

    /// Record the first limit to trip on this budget. The recorded reason is
    /// what [`Budget::exhausted`] reports; polls return whatever condition
    /// fired *now*, which may differ if e.g. a deadline passes after the
    /// attempt pool ran dry.
    fn trip(&self, reason: DegradeReason) {
        if let Some(inner) = &self.inner {
            let code = reason_code(reason);
            let _ = inner
                .tripped
                .compare_exchange(0, code, Ordering::Relaxed, Ordering::Relaxed);
        }
    }

    /// Poll the clock-dependent limits (deadline, cancellation) on this
    /// budget and its ancestors. Counter limits are *not* consulted here.
    pub fn check_time(&self) -> Result<(), DegradeReason> {
        if let Some(r) = self.exhausted() {
            if r.halts_validation() {
                return Err(r);
            }
        }
        let mut cur = self;
        loop {
            let Some(inner) = cur.inner.as_deref() else {
                return Ok(());
            };
            if inner.cancelled.load(Ordering::Relaxed) {
                cur.trip(DegradeReason::Cancelled);
                return Err(DegradeReason::Cancelled);
            }
            if let Some(deadline) = inner.deadline {
                if Instant::now() >= deadline {
                    cur.trip(DegradeReason::Deadline);
                    return Err(DegradeReason::Deadline);
                }
            }
            match &inner.parent {
                Some(p) => cur = p,
                None => return Ok(()),
            }
        }
    }

    /// Charge `n` prover attempts against this budget chain; also polls the
    /// clock. Exhaustion is sticky.
    pub fn consume_prover_attempts(&self, n: u64) -> Result<(), DegradeReason> {
        self.consume(
            n,
            |inner| inner.prover_attempts.as_ref(),
            DegradeReason::ProverAttempts,
        )?;
        self.check_time()
    }

    /// Charge `n` units of bounded-check fuel against this budget chain;
    /// also polls the clock. Exhaustion is sticky.
    pub fn consume_check_fuel(&self, n: u64) -> Result<(), DegradeReason> {
        self.consume(
            n,
            |inner| inner.check_fuel.as_ref(),
            DegradeReason::CheckFuel,
        )?;
        self.check_time()
    }

    fn consume(
        &self,
        n: u64,
        counter: impl Fn(&Inner) -> Option<&AtomicI64>,
        reason: DegradeReason,
    ) -> Result<(), DegradeReason> {
        // Sticky short-circuit — but only for trip reasons that actually
        // bar this consumption: a dry prover-attempt pool must not starve
        // the bounded-validation fallback of fuel.
        if let Some(r) = self.exhausted() {
            if r.halts_validation() || r == reason {
                return Err(r);
            }
        }
        let n = n.min(i64::MAX as u64) as i64;
        let mut cur = self;
        loop {
            let Some(inner) = cur.inner.as_deref() else {
                return Ok(());
            };
            if let Some(c) = counter(inner) {
                if c.fetch_sub(n, Ordering::Relaxed) < n {
                    cur.trip(reason);
                    return Err(reason);
                }
            }
            match &inner.parent {
                Some(p) => cur = p,
                None => return Ok(()),
            }
        }
    }

    /// Remaining fuel on the nearest fuel-limited budget in the chain
    /// (`None` if fuel is unlimited). For diagnostics only.
    pub fn fuel_remaining(&self) -> Option<u64> {
        let mut cur = self.inner.as_deref();
        while let Some(inner) = cur {
            if let Some(c) = &inner.check_fuel {
                return Some(c.load(Ordering::Relaxed).max(0) as u64);
            }
            cur = inner.parent.as_ref().and_then(|p| p.inner.as_deref());
        }
        None
    }
}

pub mod fault {
    //! Deterministic fault-injection registry.
    //!
    //! Injection points are compiled in unconditionally but cost a single
    //! relaxed atomic load while disarmed (the production state). A test
    //! arms a seeded [`FaultPlan`]; firing is a pure function of the plan
    //! and per-site call counters, so a single-threaded run replays the
    //! same faults every time.

    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
    use std::sync::Mutex;
    use std::time::Duration;

    /// What to inject, and where. All fields default to "never fire".
    #[derive(Debug, Clone, Default)]
    pub struct FaultPlan {
        /// Seed; offsets the phase of the periodic counters so different
        /// seeds tear different writes.
        pub seed: u64,
        /// Tear every `period`-th disk-cache write (truncate the payload
        /// mid-file, simulating a crash during the write). 0 = never.
        pub torn_write_period: u64,
        /// Fail every `period`-th disk-cache read with a transient error.
        /// 0 = never.
        pub read_error_period: u64,
        /// Kernels (matched by substring of the kernel name) whose CEGIS
        /// candidate workers panic.
        pub panic_kernels: Vec<String>,
        /// Kernels (matched by substring) whose prover calls stall.
        pub stall_kernels: Vec<String>,
        /// How long an injected prover stall sleeps.
        pub stall_ms: u64,
        /// Kernels (matched by substring) whose lazy adaptive-tier capture
        /// panics *inside* the `OnceLock::get_or_init` initializer — the
        /// poisoned-tier scenario. The cell is left uninitialized (std
        /// propagates the panic), so the session must surface `Crashed`
        /// rather than wedge.
        pub tier_panic_kernels: Vec<String>,
        /// Kernels (matched by substring) whose lazy tier capture stalls
        /// (sleeps `stall_ms`) inside the initializer, so a wall-deadline
        /// budget trips mid-escalation.
        pub tier_stall_kernels: Vec<String>,
        /// Kernels (matched by substring) whose escalation to any tier
        /// *beyond the smallest* captures torn state: the tier materializes
        /// with a synthetic capture error instead of usable states. The
        /// screen must surface the error for surviving candidates, never
        /// hang or fabricate a verdict.
        pub torn_tier_kernels: Vec<String>,
    }

    /// Counts of faults actually injected since the registry was last armed.
    #[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
    pub struct Injected {
        pub torn_writes: u64,
        pub read_errors: u64,
        pub candidate_panics: u64,
        pub prover_stalls: u64,
        pub tier_panics: u64,
        pub tier_stalls: u64,
        pub torn_tiers: u64,
    }

    static ARMED: AtomicBool = AtomicBool::new(false);
    static PLAN: Mutex<Option<FaultPlan>> = Mutex::new(None);
    static WRITE_CALLS: AtomicU64 = AtomicU64::new(0);
    static READ_CALLS: AtomicU64 = AtomicU64::new(0);
    static INJ_TORN: AtomicU64 = AtomicU64::new(0);
    static INJ_READ: AtomicU64 = AtomicU64::new(0);
    static INJ_PANIC: AtomicU64 = AtomicU64::new(0);
    static INJ_STALL: AtomicU64 = AtomicU64::new(0);
    static INJ_TIER_PANIC: AtomicU64 = AtomicU64::new(0);
    static INJ_TIER_STALL: AtomicU64 = AtomicU64::new(0);
    static INJ_TORN_TIER: AtomicU64 = AtomicU64::new(0);

    fn splitmix(mut x: u64) -> u64 {
        x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
        x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        x ^ (x >> 31)
    }

    /// Arm the registry with a plan. Resets all call and injection counters.
    pub fn arm(plan: FaultPlan) {
        let mut slot = PLAN.lock().unwrap();
        WRITE_CALLS.store(0, Ordering::Relaxed);
        READ_CALLS.store(0, Ordering::Relaxed);
        INJ_TORN.store(0, Ordering::Relaxed);
        INJ_READ.store(0, Ordering::Relaxed);
        INJ_PANIC.store(0, Ordering::Relaxed);
        INJ_STALL.store(0, Ordering::Relaxed);
        INJ_TIER_PANIC.store(0, Ordering::Relaxed);
        INJ_TIER_STALL.store(0, Ordering::Relaxed);
        INJ_TORN_TIER.store(0, Ordering::Relaxed);
        *slot = Some(plan);
        ARMED.store(true, Ordering::Release);
    }

    /// Disarm the registry; injection points revert to a single atomic load.
    pub fn disarm() {
        ARMED.store(false, Ordering::Release);
        *PLAN.lock().unwrap() = None;
    }

    pub fn armed() -> bool {
        ARMED.load(Ordering::Relaxed)
    }

    pub fn injected() -> Injected {
        Injected {
            torn_writes: INJ_TORN.load(Ordering::Relaxed),
            read_errors: INJ_READ.load(Ordering::Relaxed),
            candidate_panics: INJ_PANIC.load(Ordering::Relaxed),
            prover_stalls: INJ_STALL.load(Ordering::Relaxed),
            tier_panics: INJ_TIER_PANIC.load(Ordering::Relaxed),
            tier_stalls: INJ_TIER_STALL.load(Ordering::Relaxed),
            torn_tiers: INJ_TORN_TIER.load(Ordering::Relaxed),
        }
    }

    /// Matches `kernel` against a substring list of an armed plan, bumping
    /// `counter` on a hit. The shared shape of every by-kernel-name site.
    fn fires_for_kernel(
        kernel: &str,
        pick: impl Fn(&FaultPlan) -> &[String],
        counter: &AtomicU64,
    ) -> bool {
        if !armed() {
            return false;
        }
        let guard = PLAN.lock().unwrap();
        let Some(plan) = guard.as_ref() else {
            return false;
        };
        let fire = pick(plan).iter().any(|k| kernel.contains(k.as_str()));
        if fire {
            counter.fetch_add(1, Ordering::Relaxed);
        }
        fire
    }

    fn fires_periodic(period: u64, seed: u64, tag: u64, calls: &AtomicU64) -> bool {
        if period == 0 {
            return false;
        }
        let i = calls.fetch_add(1, Ordering::Relaxed);
        let phase = splitmix(seed ^ tag) % period;
        i % period == phase
    }

    /// Should this disk-cache write be torn? (Call once per write.)
    pub fn tear_write() -> bool {
        if !armed() {
            return false;
        }
        let guard = PLAN.lock().unwrap();
        let Some(plan) = guard.as_ref() else {
            return false;
        };
        let fire = fires_periodic(plan.torn_write_period, plan.seed, 0x7ea4, &WRITE_CALLS);
        if fire {
            INJ_TORN.fetch_add(1, Ordering::Relaxed);
        }
        fire
    }

    /// Should this disk-cache read fail with a transient error?
    pub fn fail_read() -> bool {
        if !armed() {
            return false;
        }
        let guard = PLAN.lock().unwrap();
        let Some(plan) = guard.as_ref() else {
            return false;
        };
        let fire = fires_periodic(plan.read_error_period, plan.seed, 0x4ead, &READ_CALLS);
        if fire {
            INJ_READ.fetch_add(1, Ordering::Relaxed);
        }
        fire
    }

    /// Should the candidate worker for this kernel panic?
    pub fn panic_candidate(kernel: &str) -> bool {
        if !armed() {
            return false;
        }
        let guard = PLAN.lock().unwrap();
        let Some(plan) = guard.as_ref() else {
            return false;
        };
        let fire = plan
            .panic_kernels
            .iter()
            .any(|k| kernel.contains(k.as_str()));
        if fire {
            INJ_PANIC.fetch_add(1, Ordering::Relaxed);
        }
        fire
    }

    /// How long the prover for this kernel should stall, if at all.
    pub fn prover_stall(kernel: &str) -> Option<Duration> {
        if !armed() {
            return None;
        }
        let guard = PLAN.lock().unwrap();
        let plan = guard.as_ref()?;
        if plan.stall_ms > 0
            && plan
                .stall_kernels
                .iter()
                .any(|k| kernel.contains(k.as_str()))
        {
            INJ_STALL.fetch_add(1, Ordering::Relaxed);
            return Some(Duration::from_millis(plan.stall_ms));
        }
        None
    }

    /// Should the lazy adaptive-tier capture for this kernel panic inside
    /// its `OnceLock` initializer? (PR 8 adaptive tiers; the cell stays
    /// uninitialized after the propagated panic.)
    pub fn tier_capture_panic(kernel: &str) -> bool {
        fires_for_kernel(kernel, |p| &p.tier_panic_kernels, &INJ_TIER_PANIC)
    }

    /// How long the lazy tier capture for this kernel should stall, if at
    /// all (sleeps inside the initializer, so a wall deadline trips
    /// mid-escalation).
    pub fn tier_capture_stall(kernel: &str) -> Option<Duration> {
        if !armed() {
            return None;
        }
        let guard = PLAN.lock().unwrap();
        let plan = guard.as_ref()?;
        if plan.stall_ms > 0
            && plan
                .tier_stall_kernels
                .iter()
                .any(|k| kernel.contains(k.as_str()))
        {
            INJ_TIER_STALL.fetch_add(1, Ordering::Relaxed);
            return Some(Duration::from_millis(plan.stall_ms));
        }
        None
    }

    /// Should escalation to a tier beyond the smallest capture torn state
    /// for this kernel (a synthetic capture error instead of usable
    /// states)?
    pub fn torn_tier_capture(kernel: &str) -> bool {
        fires_for_kernel(kernel, |p| &p.torn_tier_kernels, &INJ_TORN_TIER)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_budget_never_trips() {
        let b = Budget::unlimited();
        assert!(b.check_time().is_ok());
        assert!(b.consume_prover_attempts(1_000_000).is_ok());
        assert!(b.consume_check_fuel(u64::MAX).is_ok());
        assert_eq!(b.exhausted(), None);
    }

    #[test]
    fn prover_attempt_budget_trips_and_is_sticky() {
        let b = Budget::limited(None, Some(3), None);
        assert!(b.consume_prover_attempts(1).is_ok());
        assert!(b.consume_prover_attempts(2).is_ok());
        assert_eq!(
            b.consume_prover_attempts(1),
            Err(DegradeReason::ProverAttempts)
        );
        assert_eq!(b.exhausted(), Some(DegradeReason::ProverAttempts));
        // Sticky: further attempt consumes keep failing with that reason.
        assert_eq!(
            b.consume_prover_attempts(1),
            Err(DegradeReason::ProverAttempts)
        );
        // But attempt exhaustion does not halt the validation fallback:
        // the clock and (unlimited) fuel stay available.
        assert!(b.check_time().is_ok());
        assert!(b.consume_check_fuel(1).is_ok());
    }

    #[test]
    fn fuel_trips_with_its_own_reason_and_halts_validation() {
        let b = Budget::limited(None, None, Some(10));
        assert!(b.consume_check_fuel(10).is_ok());
        assert_eq!(b.consume_check_fuel(1), Err(DegradeReason::CheckFuel));
        assert_eq!(b.check_time(), Err(DegradeReason::CheckFuel));
    }

    #[test]
    fn deadline_in_the_past_trips_on_poll() {
        let b = Budget::limited(Some(Duration::from_nanos(0)), None, None);
        std::thread::sleep(Duration::from_millis(1));
        assert_eq!(b.check_time(), Err(DegradeReason::Deadline));
        assert_eq!(b.exhausted(), Some(DegradeReason::Deadline));
    }

    #[test]
    fn child_consumes_from_parent() {
        let parent = Budget::limited(None, Some(5), None);
        let child = parent.child(None, Some(100), None);
        assert!(child.consume_prover_attempts(5).is_ok());
        // Child has 95 left, but the parent pool is dry.
        assert_eq!(
            child.consume_prover_attempts(1),
            Err(DegradeReason::ProverAttempts)
        );
        assert_eq!(parent.exhausted(), Some(DegradeReason::ProverAttempts));
        assert_eq!(child.exhausted(), Some(DegradeReason::ProverAttempts));
    }

    #[test]
    fn child_of_unlimited_is_a_root() {
        let child = Budget::unlimited().child(None, Some(1), None);
        assert!(child.consume_prover_attempts(1).is_ok());
        assert_eq!(
            child.consume_prover_attempts(1),
            Err(DegradeReason::ProverAttempts)
        );
    }

    #[test]
    fn cancellation_halts_everything() {
        let b = Budget::limited(None, Some(1_000), None);
        b.cancel();
        assert_eq!(b.check_time(), Err(DegradeReason::Cancelled));
        assert_eq!(b.consume_prover_attempts(1), Err(DegradeReason::Cancelled));
    }

    #[test]
    fn degrade_reason_round_trips_through_strings() {
        for r in [
            DegradeReason::Deadline,
            DegradeReason::ProverAttempts,
            DegradeReason::CheckFuel,
            DegradeReason::Cancelled,
        ] {
            assert_eq!(DegradeReason::parse(r.as_str()), Some(r));
        }
        assert_eq!(DegradeReason::parse("bogus"), None);
    }

    #[test]
    fn fault_registry_is_deterministic_and_off_by_default() {
        assert!(!fault::armed());
        assert!(!fault::tear_write());
        assert!(fault::prover_stall("anything").is_none());
    }
}
