//! Interning and hash-consing primitives shared by the lifting pipeline.
//!
//! The synthesizer and verifier spend essentially all of their time building,
//! comparing, and hashing symbolic expressions. In the original
//! representation every atom carried an owned `String` and every structural
//! equality check walked whole trees. This crate provides the shared
//! machinery that makes those operations O(1):
//!
//! * [`Symbol`] — a globally interned string. Copyable, pointer-equal,
//!   pointer-hashed, but *ordered by string content* so collections keyed by
//!   symbols iterate in the same order as the `String`-keyed originals.
//! * [`ConsSet`] — a hash-consing arena: structurally equal values are
//!   interned to the same `&'static T`, so node identity (a pointer compare)
//!   coincides with structural equality.
//! * [`Memo`] — a concurrent memo table for caching operation results keyed
//!   on consed node identities.
//! * [`parallel`] — scoped-thread work distribution (the container has no
//!   crates.io access, so this stands in for rayon on embarrassingly parallel
//!   CEGIS workloads).
//!
//! Interned data is leaked deliberately: arenas are global, append-only, and
//! deduplicated, so the resident set is bounded by the number of *distinct*
//! values ever built, which the consing itself keeps small.

use std::collections::{HashMap, HashSet};
use std::fmt;
use std::hash::Hash;
use std::sync::{OnceLock, RwLock};

/// A globally interned, copyable string.
///
/// Equality and hashing are by pointer (O(1)); ordering is by string content,
/// so replacing `String` keys with `Symbol` keys preserves the iteration
/// order of sorted containers — a property the expression normal forms rely
/// on.
#[derive(Clone, Copy)]
pub struct Symbol(&'static str);

static SYMBOLS: OnceLock<RwLock<HashSet<&'static str>>> = OnceLock::new();

impl Symbol {
    /// Interns `name`, returning the canonical symbol for it.
    pub fn intern(name: &str) -> Symbol {
        let lock = SYMBOLS.get_or_init(Default::default);
        if let Some(&found) = lock.read().expect("symbol table poisoned").get(name) {
            return Symbol(found);
        }
        let mut table = lock.write().expect("symbol table poisoned");
        if let Some(&found) = table.get(name) {
            return Symbol(found);
        }
        let leaked: &'static str = Box::leak(name.to_owned().into_boxed_str());
        table.insert(leaked);
        Symbol(leaked)
    }

    /// The interned string.
    pub fn as_str(self) -> &'static str {
        self.0
    }
}

impl PartialEq for Symbol {
    fn eq(&self, other: &Self) -> bool {
        std::ptr::eq(self.0, other.0)
    }
}

impl Eq for Symbol {}

impl Hash for Symbol {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        (self.0.as_ptr() as usize).hash(state);
    }
}

impl PartialOrd for Symbol {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Symbol {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        if std::ptr::eq(self.0, other.0) {
            std::cmp::Ordering::Equal
        } else {
            self.0.cmp(other.0)
        }
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.0)
    }
}

impl fmt::Debug for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}", self.0)
    }
}

impl From<&str> for Symbol {
    fn from(name: &str) -> Symbol {
        Symbol::intern(name)
    }
}

impl From<&String> for Symbol {
    fn from(name: &String) -> Symbol {
        Symbol::intern(name)
    }
}

impl From<String> for Symbol {
    fn from(name: String) -> Symbol {
        Symbol::intern(&name)
    }
}

/// A hash-consing arena: [`ConsSet::intern`] returns the canonical
/// `&'static T` for each distinct value, so two interned references are
/// structurally equal iff they are pointer-equal.
///
/// Declare as a `static`: `static ARENA: ConsSet<Node> = ConsSet::new();`
pub struct ConsSet<T: 'static> {
    inner: OnceLock<RwLock<HashSet<&'static T>>>,
}

impl<T: Hash + Eq> ConsSet<T> {
    /// An empty arena (usable in `static` position).
    pub const fn new() -> ConsSet<T> {
        ConsSet {
            inner: OnceLock::new(),
        }
    }

    /// Interns `value`, returning its canonical leaked reference.
    pub fn intern(&self, value: T) -> &'static T {
        let lock = self.inner.get_or_init(Default::default);
        if let Some(&found) = lock.read().expect("cons arena poisoned").get(&value) {
            return found;
        }
        let mut set = lock.write().expect("cons arena poisoned");
        if let Some(&found) = set.get(&value) {
            return found;
        }
        let leaked: &'static T = Box::leak(Box::new(value));
        set.insert(leaked);
        leaked
    }

    /// Number of distinct values interned so far.
    pub fn len(&self) -> usize {
        self.inner
            .get()
            .map(|l| l.read().expect("cons arena poisoned").len())
            .unwrap_or(0)
    }

    /// True when nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T: Hash + Eq> Default for ConsSet<T> {
    fn default() -> Self {
        ConsSet::new()
    }
}

/// A concurrent memo table for operation results keyed on consed identities.
///
/// Values must be `Copy` (they are consed references or small ids in
/// practice), which keeps lookups allocation-free.
pub struct Memo<K: 'static, V: 'static> {
    inner: OnceLock<RwLock<HashMap<K, V>>>,
}

impl<K: Hash + Eq, V: Copy> Memo<K, V> {
    /// An empty memo table (usable in `static` position).
    pub const fn new() -> Memo<K, V> {
        Memo {
            inner: OnceLock::new(),
        }
    }

    /// Looks up a cached result.
    pub fn get(&self, key: &K) -> Option<V> {
        self.inner
            .get()?
            .read()
            .expect("memo table poisoned")
            .get(key)
            .copied()
    }

    /// Caches `value` under `key`.
    pub fn insert(&self, key: K, value: V) {
        self.inner
            .get_or_init(Default::default)
            .write()
            .expect("memo table poisoned")
            .insert(key, value);
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.inner
            .get()
            .map(|l| l.read().expect("memo table poisoned").len())
            .unwrap_or(0)
    }

    /// True when the table is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<K: Hash + Eq, V: Copy> Default for Memo<K, V> {
    fn default() -> Self {
        Memo::new()
    }
}

/// Canonical bit pattern of an `f64` for hashing/consing: collapses `-0.0`
/// onto `+0.0` so consing equality agrees with `==` on the coefficients the
/// pipeline produces.
pub fn f64_key(x: f64) -> u64 {
    if x == 0.0 {
        0.0f64.to_bits()
    } else {
        x.to_bits()
    }
}

pub mod sop {
    //! Shared sum-of-products machinery for the two expression normal forms
    //! (`stng_sym::SymExpr` over concrete indices, `stng_solve::NormExpr`
    //! over affine indices).
    //!
    //! Both keep values as a sorted vector of monomials, each a float
    //! coefficient times a sorted atom→power multiset; the subtle merge
    //! loops (and the cancellation threshold) live here once so the two
    //! representations cannot silently diverge.

    use std::cmp::Ordering;
    use std::collections::BTreeMap;

    /// Coefficients with magnitude at or below this are treated as zero and
    /// dropped during normalization and sum merging.
    pub const CANCEL_EPS: f64 = 1e-12;

    /// A monomial of a sum-of-products normal form, as seen by the shared
    /// merge algorithms: a coefficient plus an ordering on the factor
    /// multiset (the grouping key).
    pub trait Mono: Clone {
        /// The multiplicative coefficient.
        fn coeff(&self) -> f64;
        /// The same monomial with a different coefficient.
        fn with_coeff(&self, coeff: f64) -> Self;
        /// Compares the factor multisets, ignoring the coefficient.
        fn key_cmp(&self, other: &Self) -> Ordering;
    }

    /// Product of two sorted atom→power maps: one merge pass, cloning each
    /// atom exactly once (no whole-map clone, no per-atom entry lookups).
    pub fn merge_pow_maps<A: Ord + Clone>(
        left: &BTreeMap<A, u32>,
        right: &BTreeMap<A, u32>,
    ) -> BTreeMap<A, u32> {
        let mut merged = BTreeMap::new();
        let mut left = left.iter().peekable();
        let mut right = right.iter().peekable();
        loop {
            let take_left = match (left.peek(), right.peek()) {
                (Some((a, _)), Some((b, _))) => match a.cmp(b) {
                    Ordering::Less => true,
                    Ordering::Greater => false,
                    Ordering::Equal => {
                        let (atom, p) = left.next().expect("peeked");
                        let (_, q) = right.next().expect("peeked");
                        merged.insert(atom.clone(), p + q);
                        continue;
                    }
                },
                (Some(_), None) => true,
                (None, Some(_)) => false,
                (None, None) => break,
            };
            let (atom, p) = if take_left {
                left.next().expect("peeked")
            } else {
                right.next().expect("peeked")
            };
            merged.insert(atom.clone(), *p);
        }
        merged
    }

    /// Sum of two normal forms (both already sorted by key with one monomial
    /// per key): one linear merge, combining coefficients on equal keys and
    /// dropping cancellations. No re-sort.
    pub fn merge_sum<M: Mono>(a: &[M], b: &[M]) -> Vec<M> {
        let mut terms = Vec::with_capacity(a.len() + b.len());
        let mut left = a.iter().peekable();
        let mut right = b.iter().peekable();
        loop {
            let take_left = match (left.peek(), right.peek()) {
                (Some(x), Some(y)) => match x.key_cmp(y) {
                    Ordering::Less => true,
                    Ordering::Greater => false,
                    Ordering::Equal => {
                        let x = left.next().expect("peeked");
                        let y = right.next().expect("peeked");
                        let coeff = x.coeff() + y.coeff();
                        if coeff.abs() > CANCEL_EPS {
                            terms.push(x.with_coeff(coeff));
                        }
                        continue;
                    }
                },
                (Some(_), None) => true,
                (None, Some(_)) => false,
                (None, None) => break,
            };
            let mono = if take_left {
                left.next().expect("peeked")
            } else {
                right.next().expect("peeked")
            };
            terms.push(mono.clone());
        }
        terms
    }

    /// Canonicalizes an arbitrary term vector: sort by key (stable, so
    /// equal-key coefficients are summed in construction order, exactly as
    /// the pre-interning representation did), combine equal keys, drop
    /// cancellations.
    pub fn normalize<M: Mono>(mut terms: Vec<M>) -> Vec<M> {
        terms.sort_by(|a, b| a.key_cmp(b));
        let mut merged: Vec<M> = Vec::new();
        for term in terms {
            if let Some(last) = merged.last_mut() {
                if last.key_cmp(&term) == Ordering::Equal {
                    *last = last.with_coeff(last.coeff() + term.coeff());
                    continue;
                }
            }
            merged.push(term);
        }
        merged.retain(|m| m.coeff().abs() > CANCEL_EPS);
        merged
    }
}

pub mod parallel {
    //! Scoped-thread work distribution for embarrassingly parallel stages.
    //!
    //! The CEGIS screening loop checks independent candidates with pure
    //! functions over shared immutable data; these helpers spread that work
    //! over `std::thread::scope` threads while keeping results deterministic
    //! (a parallel search returns the same element the sequential scan would
    //! have).

    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;

    /// Number of worker threads to use by default.
    pub fn default_parallelism() -> usize {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    }

    /// Applies `f` to every item, in parallel across `threads` workers, and
    /// returns the results in input order. Falls back to a sequential map
    /// when `threads <= 1` or there is at most one item.
    pub fn map<T: Sync, R: Send>(
        items: &[T],
        threads: usize,
        f: impl Fn(&T) -> R + Sync,
    ) -> Vec<R> {
        let threads = threads.min(items.len());
        if threads <= 1 {
            return items.iter().map(f).collect();
        }
        let next = AtomicUsize::new(0);
        let results: Mutex<Vec<(usize, R)>> = Mutex::new(Vec::with_capacity(items.len()));
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| loop {
                    let k = next.fetch_add(1, Ordering::Relaxed);
                    if k >= items.len() {
                        break;
                    }
                    let r = f(&items[k]);
                    results.lock().expect("result vector poisoned").push((k, r));
                });
            }
        });
        let mut results = results.into_inner().expect("result vector poisoned");
        results.sort_by_key(|(k, _)| *k);
        results.into_iter().map(|(_, r)| r).collect()
    }

    /// Finds the item with the **lowest index** for which `f` returns
    /// `Some`, evaluating candidates in parallel. Matches the sequential
    /// first-success semantics of a `for` loop with early return, which is
    /// what keeps a parallelized CEGIS scan deterministic.
    ///
    /// Workers skip indices above the best success seen so far, so the extra
    /// work past the winner stays bounded.
    pub fn find_first<T: Sync, R: Send>(
        items: &[T],
        threads: usize,
        f: impl Fn(usize, &T) -> Option<R> + Sync,
    ) -> Option<(usize, R)> {
        let threads = threads.min(items.len());
        if threads <= 1 {
            return items
                .iter()
                .enumerate()
                .find_map(|(k, item)| f(k, item).map(|r| (k, r)));
        }
        let next = AtomicUsize::new(0);
        let best = AtomicUsize::new(usize::MAX);
        let found: Mutex<Option<(usize, R)>> = Mutex::new(None);
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| loop {
                    let k = next.fetch_add(1, Ordering::Relaxed);
                    if k >= items.len() || k > best.load(Ordering::Acquire) {
                        break;
                    }
                    if let Some(r) = f(k, &items[k]) {
                        best.fetch_min(k, Ordering::AcqRel);
                        let mut slot = found.lock().expect("result slot poisoned");
                        if slot.as_ref().map(|(j, _)| k < *j).unwrap_or(true) {
                            *slot = Some((k, r));
                        }
                        break;
                    }
                });
            }
        });
        found.into_inner().expect("result slot poisoned")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn symbols_are_pointer_equal_and_string_ordered() {
        let a = Symbol::intern("alpha");
        let b = Symbol::intern("alpha");
        let c = Symbol::intern("beta");
        assert_eq!(a, b);
        assert!(std::ptr::eq(a.as_str(), b.as_str()));
        assert_ne!(a, c);
        assert!(a < c);
        assert_eq!(a.cmp(&b), std::cmp::Ordering::Equal);
        // Ordering agrees with string ordering for arbitrary pairs.
        for (x, y) in [("a", "b"), ("zz", "za"), ("m", "m"), ("", "a")] {
            assert_eq!(
                Symbol::intern(x).cmp(&Symbol::intern(y)),
                x.cmp(y),
                "{x:?} vs {y:?}"
            );
        }
    }

    #[test]
    fn cons_set_dedupes_structurally() {
        static ARENA: ConsSet<Vec<i64>> = ConsSet::new();
        let a = ARENA.intern(vec![1, 2, 3]);
        let b = ARENA.intern(vec![1, 2, 3]);
        let c = ARENA.intern(vec![4]);
        assert!(std::ptr::eq(a, b));
        assert!(!std::ptr::eq(a, c));
        assert!(ARENA.len() >= 2);
    }

    #[test]
    fn memo_round_trips() {
        static MEMO: Memo<(usize, usize), usize> = Memo::new();
        assert_eq!(MEMO.get(&(1, 2)), None);
        MEMO.insert((1, 2), 3);
        assert_eq!(MEMO.get(&(1, 2)), Some(3));
    }

    #[test]
    fn f64_key_canonicalizes_negative_zero() {
        assert_eq!(f64_key(-0.0), f64_key(0.0));
        assert_ne!(f64_key(1.0), f64_key(2.0));
    }

    #[test]
    fn parallel_map_preserves_order() {
        let items: Vec<usize> = (0..100).collect();
        let out = parallel::map(&items, 8, |x| x * 2);
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_find_first_matches_sequential_semantics() {
        let items: Vec<usize> = (0..64).collect();
        // Successes at 17, 20, 40: the sequential scan returns 17.
        let hit = |_k: usize, x: &usize| -> Option<usize> {
            if [17, 20, 40].contains(x) {
                Some(*x * 10)
            } else {
                None
            }
        };
        for threads in [1, 2, 8] {
            assert_eq!(
                parallel::find_first(&items, threads, hit),
                Some((17, 170)),
                "threads = {threads}"
            );
        }
        assert_eq!(parallel::find_first(&items, 8, |_, _| None::<()>), None);
    }
}
