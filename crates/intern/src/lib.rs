//! Interning and hash-consing primitives shared by the lifting pipeline.
//!
//! The synthesizer and verifier spend essentially all of their time building,
//! comparing, and hashing symbolic expressions. In the original
//! representation every atom carried an owned `String` and every structural
//! equality check walked whole trees. This crate provides the shared
//! machinery that makes those operations O(1):
//!
//! * [`Symbol`] — a globally interned string. Copyable, pointer-equal,
//!   pointer-hashed, but *ordered by string content* so collections keyed by
//!   symbols iterate in the same order as the `String`-keyed originals.
//! * [`ConsSet`] — a hash-consing arena: structurally equal values are
//!   interned to the same `&'static T`, so node identity (a pointer compare)
//!   coincides with structural equality.
//! * [`Memo`] — a concurrent memo table for caching operation results keyed
//!   on consed node identities.
//! * [`parallel`] — scoped-thread work distribution (the container has no
//!   crates.io access, so this stands in for rayon on embarrassingly parallel
//!   CEGIS workloads).
//!
//! Interned data is leaked deliberately, so a handle is a plain `&'static`
//! reference — but the tables themselves are **not** append-only: every entry
//! carries the [`epoch`] in which it was last interned (arenas also re-tag on
//! lookup hits), and [`ConsSet::retain_epoch`] / [`Memo::retain_epoch`] sweep
//! entries older than a cutoff. A long-running service advances the epoch and
//! sweeps between batches; within an epoch all `Copy` handles stay canonical.
//! See `docs/service.md` for the eviction contract.

use std::collections::{HashMap, HashSet};
use std::fmt;
use std::hash::Hash;
use std::sync::atomic::{AtomicU64, Ordering as AtomicOrdering};
use std::sync::{OnceLock, RwLock};

pub mod guard;

pub mod epoch {
    //! The global arena epoch: a monotone generation counter used to tag
    //! interned entries for eviction.
    //!
    //! The contract: `Copy` handles (`SymExpr`, `NormExpr`, …) obtained
    //! during one epoch are canonical for that whole epoch. After
    //! [`advance`] + a `retain_epoch` sweep, handles from earlier epochs
    //! remain *valid* (nodes are never freed, so no dangling references)
    //! but may stop being canonical: a structurally equal value interned
    //! later gets a fresh node, so pointer equality across a sweep boundary
    //! is meaningless. Callers therefore sweep only at quiescent points
    //! (between batches), when no expression handles are live.
    use super::{AtomicOrdering, AtomicU64};

    static EPOCH: AtomicU64 = AtomicU64::new(1);

    /// The current epoch (starts at 1).
    pub fn current() -> u64 {
        EPOCH.load(AtomicOrdering::Acquire)
    }

    /// Advances to the next epoch and returns it. Entries tagged before the
    /// returned value are eligible for `retain_epoch(returned)` sweeps.
    pub fn advance() -> u64 {
        EPOCH.fetch_add(1, AtomicOrdering::AcqRel) + 1
    }
}

/// Occupancy snapshot of one arena or memo table (the observable the batch
/// driver prints so eviction is auditable).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArenaStats {
    /// Table name (e.g. `"sym.exprs"`, `"solve.fm_memo"`).
    pub name: &'static str,
    /// Number of live entries.
    pub entries: usize,
    /// Shallow resident-size estimate in bytes: entry payload size plus
    /// per-entry table overhead. Heap data owned by entries (vectors, maps)
    /// is not traversed, so this is a lower bound.
    pub approx_bytes: usize,
}

impl ArenaStats {
    /// Builds a snapshot from an entry count and a per-entry shallow size.
    pub fn new(name: &'static str, entries: usize, entry_bytes: usize) -> ArenaStats {
        // Two words of hash-table overhead per entry plus the epoch tag.
        let overhead = 2 * std::mem::size_of::<usize>() + std::mem::size_of::<u64>();
        ArenaStats {
            name,
            entries,
            approx_bytes: entries * (entry_bytes + overhead),
        }
    }
}

/// A globally interned, copyable string.
///
/// Equality and hashing are by pointer (O(1)); ordering is by string content,
/// so replacing `String` keys with `Symbol` keys preserves the iteration
/// order of sorted containers — a property the expression normal forms rely
/// on.
#[derive(Clone, Copy)]
pub struct Symbol(&'static str);

static SYMBOLS: OnceLock<RwLock<HashSet<&'static str>>> = OnceLock::new();

impl Symbol {
    /// Interns `name`, returning the canonical symbol for it.
    pub fn intern(name: &str) -> Symbol {
        let lock = SYMBOLS.get_or_init(Default::default);
        if let Some(&found) = lock.read().expect("symbol table poisoned").get(name) {
            return Symbol(found);
        }
        let mut table = lock.write().expect("symbol table poisoned");
        if let Some(&found) = table.get(name) {
            return Symbol(found);
        }
        let leaked: &'static str = Box::leak(name.to_owned().into_boxed_str());
        table.insert(leaked);
        Symbol(leaked)
    }

    /// Interns a string that is already `'static` (span/metric name
    /// constants): a miss inserts the reference itself instead of leaking a
    /// copy. Symbols are exempt from epoch sweeps, so names interned this
    /// way stay valid for the life of the process — the property the
    /// `stng-obs` recorder relies on for events that outlive arena sweeps.
    pub fn intern_static(name: &'static str) -> Symbol {
        let lock = SYMBOLS.get_or_init(Default::default);
        if let Some(&found) = lock.read().expect("symbol table poisoned").get(name) {
            return Symbol(found);
        }
        let mut table = lock.write().expect("symbol table poisoned");
        if let Some(&found) = table.get(name) {
            return Symbol(found);
        }
        table.insert(name);
        Symbol(name)
    }

    /// The interned string.
    pub fn as_str(self) -> &'static str {
        self.0
    }

    /// Occupancy snapshot of the global symbol table. Symbols are tiny,
    /// shared by every layer, and embedded in long-lived structures
    /// (`Affine` keys, cached reports), so they are never swept; this exists
    /// so the batch driver can report them alongside the sweepable arenas.
    pub fn table_stats() -> ArenaStats {
        let Some(lock) = SYMBOLS.get() else {
            return ArenaStats::new("intern.symbols", 0, 0);
        };
        let table = lock.read().expect("symbol table poisoned");
        let bytes: usize = table
            .iter()
            .map(|s| s.len() + std::mem::size_of::<&str>())
            .sum();
        ArenaStats {
            name: "intern.symbols",
            entries: table.len(),
            approx_bytes: bytes,
        }
    }
}

impl PartialEq for Symbol {
    fn eq(&self, other: &Self) -> bool {
        std::ptr::eq(self.0, other.0)
    }
}

impl Eq for Symbol {}

impl Hash for Symbol {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        (self.0.as_ptr() as usize).hash(state);
    }
}

impl PartialOrd for Symbol {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Symbol {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        if std::ptr::eq(self.0, other.0) {
            std::cmp::Ordering::Equal
        } else {
            self.0.cmp(other.0)
        }
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.0)
    }
}

impl fmt::Debug for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}", self.0)
    }
}

impl From<&str> for Symbol {
    fn from(name: &str) -> Symbol {
        Symbol::intern(name)
    }
}

impl From<&String> for Symbol {
    fn from(name: &String) -> Symbol {
        Symbol::intern(name)
    }
}

impl From<String> for Symbol {
    fn from(name: String) -> Symbol {
        Symbol::intern(&name)
    }
}

/// A hash-consing arena: [`ConsSet::intern`] returns the canonical
/// `&'static T` for each distinct value, so two interned references are
/// structurally equal iff they are pointer-equal.
///
/// Every entry carries the [`epoch`] in which it was last interned (initial
/// insert or lookup hit); [`ConsSet::retain_epoch`] evicts entries last used
/// before a cutoff. Evicted nodes are *removed from the table but never
/// freed* — outstanding `&'static T` handles stay valid — so the first
/// re-intern of an equal value after a sweep produces a fresh canonical node.
///
/// Declare as a `static`: `static ARENA: ConsSet<Node> = ConsSet::new();`
pub struct ConsSet<T: 'static> {
    inner: OnceLock<RwLock<HashMap<&'static T, AtomicU64>>>,
}

impl<T: Hash + Eq> ConsSet<T> {
    /// An empty arena (usable in `static` position).
    pub const fn new() -> ConsSet<T> {
        ConsSet {
            inner: OnceLock::new(),
        }
    }

    /// Interns `value`, returning its canonical leaked reference. Re-tags the
    /// entry with the current epoch on every call (touch-on-hit), so values
    /// still in use survive `retain_epoch` sweeps with older cutoffs.
    pub fn intern(&self, value: T) -> &'static T {
        let lock = self.inner.get_or_init(Default::default);
        let now = epoch::current();
        if let Some((&found, tag)) = lock
            .read()
            .expect("cons arena poisoned")
            .get_key_value(&value)
        {
            // The tag is atomic precisely so a lookup hit can re-tag under
            // the shared read lock.
            tag.store(now, AtomicOrdering::Relaxed);
            return found;
        }
        let mut set = lock.write().expect("cons arena poisoned");
        if let Some((&found, tag)) = set.get_key_value(&value) {
            tag.store(now, AtomicOrdering::Relaxed);
            return found;
        }
        let leaked: &'static T = Box::leak(Box::new(value));
        set.insert(leaked, AtomicU64::new(now));
        leaked
    }

    /// Number of distinct values interned so far.
    pub fn len(&self) -> usize {
        self.inner
            .get()
            .map(|l| l.read().expect("cons arena poisoned").len())
            .unwrap_or(0)
    }

    /// True when nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Evicts every entry last interned before `cutoff` (keeps entries with
    /// tag ≥ `cutoff`) and returns the number evicted. Node allocations are
    /// intentionally not reclaimed — see the type-level contract.
    pub fn retain_epoch(&self, cutoff: u64) -> usize {
        let Some(lock) = self.inner.get() else {
            return 0;
        };
        let mut set = lock.write().expect("cons arena poisoned");
        let before = set.len();
        set.retain(|_, tag| tag.load(AtomicOrdering::Relaxed) >= cutoff);
        set.shrink_to_fit();
        before - set.len()
    }

    /// Occupancy snapshot under `name` (shallow bytes, see [`ArenaStats`]).
    pub fn stats(&self, name: &'static str) -> ArenaStats {
        ArenaStats::new(name, self.len(), std::mem::size_of::<T>())
    }
}

impl<T: Hash + Eq> Default for ConsSet<T> {
    fn default() -> Self {
        ConsSet::new()
    }
}

/// A concurrent memo table for operation results keyed on consed identities.
///
/// Values must be `Copy` (they are consed references or small ids in
/// practice), which keeps lookups allocation-free.
///
/// Entries are tagged with the [`epoch`] of their *insertion* and are **not**
/// re-tagged on hits. This ordering discipline is what makes sweeping sound:
/// a memo value handle is interned (and therefore arena-tagged) at the moment
/// its entry is inserted, and arena tags only move forward, so an entry's tag
/// is always ≤ the tag of the node its value points to. Sweeping memos and
/// arenas with the same cutoff can then never leave a memo entry whose value
/// node was evicted — the entry always dies first.
pub struct Memo<K: 'static, V: 'static> {
    inner: OnceLock<RwLock<HashMap<K, (V, u64)>>>,
}

impl<K: Hash + Eq, V: Copy> Memo<K, V> {
    /// An empty memo table (usable in `static` position).
    pub const fn new() -> Memo<K, V> {
        Memo {
            inner: OnceLock::new(),
        }
    }

    /// Looks up a cached result.
    pub fn get(&self, key: &K) -> Option<V> {
        self.inner
            .get()?
            .read()
            .expect("memo table poisoned")
            .get(key)
            .map(|(v, _)| *v)
    }

    /// Caches `value` under `key`, tagged with the current epoch.
    pub fn insert(&self, key: K, value: V) {
        self.inner
            .get_or_init(Default::default)
            .write()
            .expect("memo table poisoned")
            .insert(key, (value, epoch::current()));
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.inner
            .get()
            .map(|l| l.read().expect("memo table poisoned").len())
            .unwrap_or(0)
    }

    /// True when the table is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Evicts every entry inserted before `cutoff` and returns the number
    /// evicted.
    pub fn retain_epoch(&self, cutoff: u64) -> usize {
        let Some(lock) = self.inner.get() else {
            return 0;
        };
        let mut map = lock.write().expect("memo table poisoned");
        let before = map.len();
        map.retain(|_, (_, tag)| *tag >= cutoff);
        map.shrink_to_fit();
        before - map.len()
    }

    /// Occupancy snapshot under `name` (shallow bytes, see [`ArenaStats`]).
    pub fn stats(&self, name: &'static str) -> ArenaStats {
        ArenaStats::new(
            name,
            self.len(),
            std::mem::size_of::<K>() + std::mem::size_of::<V>(),
        )
    }
}

impl<K: Hash + Eq, V: Copy> Default for Memo<K, V> {
    fn default() -> Self {
        Memo::new()
    }
}

/// Canonical bit pattern of an `f64` for hashing/consing: collapses `-0.0`
/// onto `+0.0` so consing equality agrees with `==` on the coefficients the
/// pipeline produces.
pub fn f64_key(x: f64) -> u64 {
    if x == 0.0 {
        0.0f64.to_bits()
    } else {
        x.to_bits()
    }
}

pub mod sop {
    //! Shared sum-of-products machinery for the two expression normal forms
    //! (`stng_sym::SymExpr` over concrete indices, `stng_solve::NormExpr`
    //! over affine indices).
    //!
    //! Both keep values as a sorted vector of monomials, each a float
    //! coefficient times a sorted atom→power multiset; the subtle merge
    //! loops (and the cancellation threshold) live here once so the two
    //! representations cannot silently diverge.

    use std::cmp::Ordering;
    use std::collections::BTreeMap;

    /// Coefficients with magnitude at or below this are treated as zero and
    /// dropped during normalization and sum merging.
    pub const CANCEL_EPS: f64 = 1e-12;

    /// A monomial of a sum-of-products normal form, as seen by the shared
    /// merge algorithms: a coefficient plus an ordering on the factor
    /// multiset (the grouping key).
    pub trait Mono: Clone {
        /// The multiplicative coefficient.
        fn coeff(&self) -> f64;
        /// The same monomial with a different coefficient.
        fn with_coeff(&self, coeff: f64) -> Self;
        /// Compares the factor multisets, ignoring the coefficient.
        fn key_cmp(&self, other: &Self) -> Ordering;
    }

    /// Product of two sorted atom→power maps: one merge pass, cloning each
    /// atom exactly once (no whole-map clone, no per-atom entry lookups).
    pub fn merge_pow_maps<A: Ord + Clone>(
        left: &BTreeMap<A, u32>,
        right: &BTreeMap<A, u32>,
    ) -> BTreeMap<A, u32> {
        let mut merged = BTreeMap::new();
        let mut left = left.iter().peekable();
        let mut right = right.iter().peekable();
        loop {
            let take_left = match (left.peek(), right.peek()) {
                (Some((a, _)), Some((b, _))) => match a.cmp(b) {
                    Ordering::Less => true,
                    Ordering::Greater => false,
                    Ordering::Equal => {
                        let (atom, p) = left.next().expect("peeked");
                        let (_, q) = right.next().expect("peeked");
                        merged.insert(atom.clone(), p + q);
                        continue;
                    }
                },
                (Some(_), None) => true,
                (None, Some(_)) => false,
                (None, None) => break,
            };
            let (atom, p) = if take_left {
                left.next().expect("peeked")
            } else {
                right.next().expect("peeked")
            };
            merged.insert(atom.clone(), *p);
        }
        merged
    }

    /// Sum of two normal forms (both already sorted by key with one monomial
    /// per key): one linear merge, combining coefficients on equal keys and
    /// dropping cancellations. No re-sort.
    pub fn merge_sum<M: Mono>(a: &[M], b: &[M]) -> Vec<M> {
        let mut terms = Vec::with_capacity(a.len() + b.len());
        let mut left = a.iter().peekable();
        let mut right = b.iter().peekable();
        loop {
            let take_left = match (left.peek(), right.peek()) {
                (Some(x), Some(y)) => match x.key_cmp(y) {
                    Ordering::Less => true,
                    Ordering::Greater => false,
                    Ordering::Equal => {
                        let x = left.next().expect("peeked");
                        let y = right.next().expect("peeked");
                        let coeff = x.coeff() + y.coeff();
                        if coeff.abs() > CANCEL_EPS {
                            terms.push(x.with_coeff(coeff));
                        }
                        continue;
                    }
                },
                (Some(_), None) => true,
                (None, Some(_)) => false,
                (None, None) => break,
            };
            let mono = if take_left {
                left.next().expect("peeked")
            } else {
                right.next().expect("peeked")
            };
            terms.push(mono.clone());
        }
        terms
    }

    /// Canonicalizes an arbitrary term vector: sort by key (stable, so
    /// equal-key coefficients are summed in construction order, exactly as
    /// the pre-interning representation did), combine equal keys, drop
    /// cancellations.
    pub fn normalize<M: Mono>(mut terms: Vec<M>) -> Vec<M> {
        terms.sort_by(|a, b| a.key_cmp(b));
        let mut merged: Vec<M> = Vec::new();
        for term in terms {
            if let Some(last) = merged.last_mut() {
                if last.key_cmp(&term) == Ordering::Equal {
                    *last = last.with_coeff(last.coeff() + term.coeff());
                    continue;
                }
            }
            merged.push(term);
        }
        merged.retain(|m| m.coeff().abs() > CANCEL_EPS);
        merged
    }
}

pub mod parallel {
    //! Scoped-thread work distribution for embarrassingly parallel stages.
    //!
    //! The CEGIS screening loop checks independent candidates with pure
    //! functions over shared immutable data; these helpers spread that work
    //! over `std::thread::scope` threads while keeping results deterministic
    //! (a parallel search returns the same element the sequential scan would
    //! have).

    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;

    /// Number of worker threads to use by default.
    pub fn default_parallelism() -> usize {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    }

    /// Applies `f` to every item, in parallel across `threads` workers, and
    /// returns the results in input order. Falls back to a sequential map
    /// when `threads <= 1` or there is at most one item.
    pub fn map<T: Sync, R: Send>(
        items: &[T],
        threads: usize,
        f: impl Fn(&T) -> R + Sync,
    ) -> Vec<R> {
        let threads = threads.min(items.len());
        if threads <= 1 {
            return items.iter().map(f).collect();
        }
        let next = AtomicUsize::new(0);
        let results: Mutex<Vec<(usize, R)>> = Mutex::new(Vec::with_capacity(items.len()));
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| loop {
                    let k = next.fetch_add(1, Ordering::Relaxed);
                    if k >= items.len() {
                        break;
                    }
                    let r = f(&items[k]);
                    results.lock().expect("result vector poisoned").push((k, r));
                });
            }
        });
        let mut results = results.into_inner().expect("result vector poisoned");
        results.sort_by_key(|(k, _)| *k);
        results.into_iter().map(|(_, r)| r).collect()
    }

    /// Finds the item with the **lowest index** for which `f` returns
    /// `Some`, evaluating candidates in parallel. Matches the sequential
    /// first-success semantics of a `for` loop with early return, which is
    /// what keeps a parallelized CEGIS scan deterministic.
    ///
    /// Workers skip indices above the best success seen so far, so the extra
    /// work past the winner stays bounded.
    pub fn find_first<T: Sync, R: Send>(
        items: &[T],
        threads: usize,
        f: impl Fn(usize, &T) -> Option<R> + Sync,
    ) -> Option<(usize, R)> {
        let threads = threads.min(items.len());
        if threads <= 1 {
            return items
                .iter()
                .enumerate()
                .find_map(|(k, item)| f(k, item).map(|r| (k, r)));
        }
        let next = AtomicUsize::new(0);
        let best = AtomicUsize::new(usize::MAX);
        let found: Mutex<Option<(usize, R)>> = Mutex::new(None);
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| loop {
                    let k = next.fetch_add(1, Ordering::Relaxed);
                    if k >= items.len() || k > best.load(Ordering::Acquire) {
                        break;
                    }
                    if let Some(r) = f(k, &items[k]) {
                        best.fetch_min(k, Ordering::AcqRel);
                        let mut slot = found.lock().expect("result slot poisoned");
                        if slot.as_ref().map(|(j, _)| k < *j).unwrap_or(true) {
                            *slot = Some((k, r));
                        }
                        break;
                    }
                });
            }
        });
        found.into_inner().expect("result slot poisoned")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn symbols_are_pointer_equal_and_string_ordered() {
        let a = Symbol::intern("alpha");
        let b = Symbol::intern("alpha");
        let c = Symbol::intern("beta");
        assert_eq!(a, b);
        assert!(std::ptr::eq(a.as_str(), b.as_str()));
        assert_ne!(a, c);
        assert!(a < c);
        assert_eq!(a.cmp(&b), std::cmp::Ordering::Equal);
        // Ordering agrees with string ordering for arbitrary pairs.
        for (x, y) in [("a", "b"), ("zz", "za"), ("m", "m"), ("", "a")] {
            assert_eq!(
                Symbol::intern(x).cmp(&Symbol::intern(y)),
                x.cmp(y),
                "{x:?} vs {y:?}"
            );
        }
    }

    #[test]
    fn cons_set_dedupes_structurally() {
        static ARENA: ConsSet<Vec<i64>> = ConsSet::new();
        let a = ARENA.intern(vec![1, 2, 3]);
        let b = ARENA.intern(vec![1, 2, 3]);
        let c = ARENA.intern(vec![4]);
        assert!(std::ptr::eq(a, b));
        assert!(!std::ptr::eq(a, c));
        assert!(ARENA.len() >= 2);
    }

    #[test]
    fn memo_round_trips() {
        static MEMO: Memo<(usize, usize), usize> = Memo::new();
        assert_eq!(MEMO.get(&(1, 2)), None);
        MEMO.insert((1, 2), 3);
        assert_eq!(MEMO.get(&(1, 2)), Some(3));
    }

    #[test]
    fn retain_epoch_sweeps_stale_entries_and_keeps_touched_ones() {
        static ARENA: ConsSet<(u64, u64)> = ConsSet::new();
        static MEMO: Memo<(u64, u64), u64> = Memo::new();
        let e0 = epoch::current();
        let stale = ARENA.intern((1, 1));
        ARENA.intern((2, 2));
        MEMO.insert((1, 1), 10);
        assert_eq!(ARENA.len(), 2);

        let e1 = epoch::advance();
        assert!(e1 > e0);
        // Touch (2,2) in the new epoch: it must survive a sweep at e1.
        let kept = ARENA.intern((2, 2));
        MEMO.insert((2, 2), 20);
        let evicted = ARENA.retain_epoch(e1);
        assert_eq!(evicted, 1);
        assert_eq!(ARENA.len(), 1);
        assert_eq!(MEMO.retain_epoch(e1), 1);
        assert_eq!(MEMO.get(&(1, 1)), None);
        assert_eq!(MEMO.get(&(2, 2)), Some(20));

        // The stale handle stays valid (nodes are never freed) but is no
        // longer canonical: re-interning mints a fresh node.
        assert_eq!(*stale, (1, 1));
        let fresh = ARENA.intern((1, 1));
        assert!(!std::ptr::eq(stale, fresh));
        assert_eq!(*fresh, (1, 1));
        // The survivor is still canonical.
        assert!(std::ptr::eq(kept, ARENA.intern((2, 2))));
    }

    #[test]
    fn stats_report_entries_and_bytes() {
        static ARENA: ConsSet<u64> = ConsSet::new();
        ARENA.intern(7);
        ARENA.intern(8);
        let s = ARENA.stats("test.arena");
        assert_eq!(s.entries, 2);
        assert!(s.approx_bytes >= 2 * std::mem::size_of::<u64>());
        Symbol::intern("stats_probe");
        let sym = Symbol::table_stats();
        assert!(sym.entries >= 1);
        assert!(sym.approx_bytes > 0);
    }

    #[test]
    fn f64_key_canonicalizes_negative_zero() {
        assert_eq!(f64_key(-0.0), f64_key(0.0));
        assert_ne!(f64_key(1.0), f64_key(2.0));
    }

    #[test]
    fn parallel_map_preserves_order() {
        let items: Vec<usize> = (0..100).collect();
        let out = parallel::map(&items, 8, |x| x * 2);
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_find_first_matches_sequential_semantics() {
        let items: Vec<usize> = (0..64).collect();
        // Successes at 17, 20, 40: the sequential scan returns 17.
        let hit = |_k: usize, x: &usize| -> Option<usize> {
            if [17, 20, 40].contains(x) {
                Some(*x * 10)
            } else {
                None
            }
        };
        for threads in [1, 2, 8] {
            assert_eq!(
                parallel::find_first(&items, threads, hit),
                Some((17, 170)),
                "threads = {threads}"
            );
        }
        assert_eq!(parallel::find_first(&items, 8, |_, _| None::<()>), None);
    }
}
