//! The end-to-end STNG pipeline (Fig. 3): identify → lift → verify →
//! generate DSL code, with a per-kernel report of everything Table 1 and
//! Table 2 need.

use crate::translate::StencilSummary;
use std::sync::Arc;
use std::time::Duration;
use stng_intern::guard::{Budget, DegradeReason};
use stng_intern::Symbol;
use stng_ir::canon::{canonicalize, Canon};
use stng_ir::identify::classify_loops;
use stng_ir::ir::Kernel;
use stng_ir::lower::{liftability_check, lower_fragment};
use stng_ir::parser::parse_program;
use stng_obs::{names, span};
use stng_pred::lang::Postcondition;
use stng_synth::cegis::{synthesize_governed_with_phases, SynthesisConfig, SynthesisFailure};
use stng_synth::{ControlBits, PhaseTimings};

/// A pluggable lifting-result cache, consulted by [`Stng`] after lowering
/// and before synthesis (the expensive stage).
///
/// Implementations key on the *structural fingerprint* of the lowered
/// kernel ([`Canon`], computed once per kernel by the pipeline and shared
/// between the lookup and the record) plus a digest of the synthesis
/// configuration, so a renamed or reformatted duplicate of an
/// already-lifted kernel is a hit. The reference implementation is
/// `stng-service`'s two-tier (memory + disk) cache; the pipeline itself
/// only defines the hook points.
pub trait LiftCache: Send + Sync {
    /// Returns a previously computed report for `kernel`, rewritten to this
    /// kernel's actual symbol names, or `None` on a miss. `fragment_name` is
    /// the name the returned report should carry.
    fn lookup(
        &self,
        kernel: &Kernel,
        canon: &Canon,
        fragment_name: &str,
        config: &SynthesisConfig,
    ) -> Option<KernelReport>;

    /// Records a freshly computed report (called for both translated and
    /// untranslated outcomes; lowering failures never reach the cache since
    /// there is no kernel to fingerprint). `canon` is the same value the
    /// preceding [`LiftCache::lookup`] received.
    fn record(
        &self,
        kernel: &Kernel,
        canon: &Canon,
        config: &SynthesisConfig,
        report: &KernelReport,
    );
}

/// Outcome of attempting to lift one candidate kernel.
#[derive(Debug, Clone, PartialEq)]
pub enum KernelOutcome {
    /// The kernel was lifted; the summary and generated code are attached.
    Translated {
        /// The lifted summary.
        post: Postcondition,
        /// The summary translated to mini-Halide.
        summary: StencilSummary,
        /// Whether the summary is backed by a full proof (as opposed to the
        /// extended bounded validation fallback documented in DESIGN.md).
        soundly_verified: bool,
        /// Number of CEGIS iterations.
        cegis_iterations: usize,
        /// When a resource budget cut the sound-proof stage short and the
        /// summary was accepted through bounded validation instead, the
        /// limit that tripped. `None` for ungoverned runs.
        degraded: Option<DegradeReason>,
    },
    /// The kernel was a candidate but could not be lifted.
    Untranslated {
        /// Why lifting failed.
        reason: String,
    },
    /// The resource budget ran out before even bounded validation could
    /// finish; the kernel was abandoned, the rest of the batch unaffected.
    Timeout {
        /// The limit that tripped.
        reason: DegradeReason,
        /// Human-readable context.
        detail: String,
    },
    /// A worker panicked while lifting this kernel; the panic was isolated
    /// and the rest of the batch completed normally.
    Crashed {
        /// The panic message.
        panic: String,
    },
}

impl KernelOutcome {
    /// True when the kernel was lifted.
    pub fn is_translated(&self) -> bool {
        matches!(self, KernelOutcome::Translated { .. })
    }

    /// True when a budget or a caught panic (rather than the kernel itself)
    /// decided this outcome — such results are never cached.
    pub fn is_budget_affected(&self) -> bool {
        match self {
            KernelOutcome::Translated { degraded, .. } => degraded.is_some(),
            KernelOutcome::Untranslated { .. } => false,
            KernelOutcome::Timeout { .. } | KernelOutcome::Crashed { .. } => true,
        }
    }
}

/// Everything the pipeline learned about one candidate kernel.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelReport {
    /// Kernel (fragment) name.
    pub name: String,
    /// The lowered kernel, when lowering succeeded.
    pub kernel: Option<Kernel>,
    /// Lifting outcome.
    pub outcome: KernelOutcome,
    /// Wall-clock synthesis time (Table 1, "Sketch Time").
    pub synthesis_time: Duration,
    /// Control bits of the synthesis encoding (Table 1).
    pub control_bits: ControlBits,
    /// AST-node count of the postcondition (Table 1).
    pub postcond_nodes: usize,
    /// Proof attempts spent by the sound verifier on the accepted candidate.
    pub prover_attempts: usize,
    /// Number of invariant candidates enumerated (peak CEGIS candidate set).
    pub peak_candidates: usize,
    /// Structural fingerprint of the lowered kernel (hex), present when a
    /// lifting cache was attached (the pipeline computes the canonical form
    /// anyway for the cache key, so reports surface it for observability).
    pub fingerprint: Option<String>,
    /// Whether this report was served by the lifting cache (memory or disk)
    /// instead of a fresh synthesis run. Set by the pipeline on the lookup
    /// path; never persisted (a rehydrated report is marked at lookup time,
    /// so the disk schema is unchanged).
    pub cached: bool,
    /// Per-phase checking times (capture / bounded check / prove) and the
    /// capture-reuse counter of the synthesis run.
    pub phase: PhaseTimings,
}

/// The report for a whole source file.
#[derive(Debug, Clone, Default)]
pub struct LiftReport {
    /// One entry per candidate kernel, in source order.
    pub kernels: Vec<KernelReport>,
    /// Number of outermost loops that were not even flagged as candidates.
    pub skipped_loops: usize,
}

impl LiftReport {
    /// Number of candidate kernels (Table 2, "Candidates").
    pub fn candidates(&self) -> usize {
        self.kernels.len()
    }

    /// Number of translated kernels (Table 2, "Translated").
    pub fn translated(&self) -> usize {
        self.kernels
            .iter()
            .filter(|k| k.outcome.is_translated())
            .count()
    }

    /// Kernel reports for translated kernels.
    pub fn translated_kernels(&self) -> Vec<&KernelReport> {
        self.kernels
            .iter()
            .filter(|k| k.outcome.is_translated())
            .collect()
    }
}

/// The STNG compiler front object.
#[derive(Clone, Default)]
pub struct Stng {
    /// Synthesis configuration used for every kernel.
    pub config: SynthesisConfig,
    /// Optional lifting-result cache consulted between lowering and
    /// synthesis.
    pub cache: Option<Arc<dyn LiftCache>>,
    /// Resource budget threaded through synthesis for every kernel. The
    /// default is unlimited — identical behaviour to an ungoverned
    /// pipeline. Deliberately *not* part of [`SynthesisConfig`]: budgets
    /// describe how long a run may take, not what it computes, so they
    /// must not perturb cache config digests.
    pub budget: Budget,
}

impl std::fmt::Debug for Stng {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Stng")
            .field("config", &self.config)
            .field("cache", &self.cache.as_ref().map(|_| "<LiftCache>"))
            .field("budget", &self.budget)
            .finish()
    }
}

impl Stng {
    /// Creates a pipeline with the default synthesis configuration.
    pub fn new() -> Stng {
        Stng::default()
    }

    /// Attaches a lifting-result cache; every subsequent
    /// [`Stng::lift_source`] consults it per kernel before synthesizing.
    pub fn with_cache(mut self, cache: Arc<dyn LiftCache>) -> Stng {
        self.cache = Some(cache);
        self
    }

    /// Attaches a resource budget governing every subsequent lift.
    pub fn with_budget(mut self, budget: Budget) -> Stng {
        self.budget = budget;
        self
    }

    /// Lifts every candidate kernel in a Fortran-subset source file.
    ///
    /// # Errors
    ///
    /// Returns a parse error message when the source is malformed; failures
    /// of individual kernels are reported per kernel, not as errors.
    pub fn lift_source(&self, source: &str) -> Result<LiftReport, String> {
        let program = parse_program(source).map_err(|e| e.to_string())?;
        let mut report = LiftReport::default();
        for proc in &program.procedures {
            let classification = classify_loops(proc);
            report.skipped_loops += classification.skipped.len();
            for fragment in &classification.candidates {
                report.kernels.push(self.lift_fragment(proc, fragment));
            }
        }
        Ok(report)
    }

    fn lift_fragment(
        &self,
        proc: &stng_ir::ast::Procedure,
        fragment: &stng_ir::identify::CandidateFragment,
    ) -> KernelReport {
        let started = std::time::Instant::now();
        let mut kernel_span = span(&names::LIFT_KERNEL);
        if stng_obs::armed() {
            kernel_span.detail_sym(Symbol::intern(&fragment.name));
        }
        let lowering = span(&names::LIFT_LOWER);
        let lowered = lower_fragment(proc, fragment);
        drop(lowering);
        let kernel = match lowered {
            Ok(kernel) => kernel,
            Err(err) => {
                return KernelReport {
                    name: fragment.name.clone(),
                    kernel: None,
                    outcome: KernelOutcome::Untranslated {
                        reason: err.to_string(),
                    },
                    synthesis_time: started.elapsed(),
                    control_bits: ControlBits::default(),
                    postcond_nodes: 0,
                    prover_attempts: 0,
                    peak_candidates: 0,
                    fingerprint: None,
                    cached: false,
                    phase: PhaseTimings::default(),
                }
            }
        };
        // Cache hook: a structural duplicate of an already-lifted kernel
        // skips the whole synthesize/verify stage. The canonical form is
        // computed once and shared by the lookup and the record.
        let canon = self.cache.as_ref().map(|_| {
            let _fp = span(&names::LIFT_FINGERPRINT);
            canonicalize(&kernel)
        });
        if let (Some(cache), Some(canon)) = (&self.cache, &canon) {
            let mut lookup_span = span(&names::CACHE_LOOKUP);
            let hit = cache.lookup(&kernel, canon, &fragment.name, &self.config);
            lookup_span.detail(if hit.is_some() {
                &names::HIT
            } else {
                &names::MISS
            });
            drop(lookup_span);
            if let Some(mut hit) = hit {
                hit.fingerprint = Some(canon.fingerprint_hex());
                hit.cached = true;
                return hit;
            }
        }
        let mut report = self.lift_lowered(&fragment.name, kernel, started);
        if let (Some(cache), Some(canon)) = (&self.cache, &canon) {
            // Budget-affected outcomes (degraded, timed out, crashed) say
            // nothing durable about the kernel, so they never enter the
            // cache — but `record` is still called: it is also how the
            // single-flight claim on this fingerprint is released.
            if let Some(kernel) = &report.kernel {
                cache.record(kernel, canon, &self.config, &report);
            }
            report.fingerprint = Some(canon.fingerprint_hex());
        }
        report
    }

    /// Synthesizes and verifies one already-lowered kernel (the stage the
    /// lifting cache short-circuits).
    fn lift_lowered(
        &self,
        fragment_name: &str,
        kernel: Kernel,
        started: std::time::Instant,
    ) -> KernelReport {
        // A fragment may contain several consecutive top-level loop nests;
        // the lifter handles the (dominant) single-nest case and reports the
        // rest as untranslated, mirroring §5.4's engineering limitations.
        if let Err(reason) = liftability_check(&kernel) {
            return KernelReport {
                name: fragment_name.to_string(),
                kernel: Some(kernel),
                outcome: KernelOutcome::Untranslated { reason },
                synthesis_time: started.elapsed(),
                control_bits: ControlBits::default(),
                postcond_nodes: 0,
                prover_attempts: 0,
                peak_candidates: 0,
                fingerprint: None,
                cached: false,
                phase: PhaseTimings::default(),
            };
        }
        let (result, failure_phase) =
            synthesize_governed_with_phases(&kernel, &self.config, &self.budget);
        match result {
            Ok(outcome) => {
                let summary = StencilSummary::from_postcondition(&kernel.name, &outcome.post);
                match summary {
                    Ok(summary) => KernelReport {
                        name: fragment_name.to_string(),
                        kernel: Some(kernel),
                        outcome: KernelOutcome::Translated {
                            post: outcome.post,
                            summary,
                            soundly_verified: outcome.soundly_verified,
                            cegis_iterations: outcome.cegis_iterations,
                            degraded: outcome.degraded,
                        },
                        synthesis_time: outcome.synthesis_time,
                        control_bits: outcome.control_bits,
                        postcond_nodes: outcome.postcond_nodes,
                        prover_attempts: outcome.prover_attempts,
                        peak_candidates: outcome.peak_candidates,
                        fingerprint: None,
                        cached: false,
                        phase: outcome.phase,
                    },
                    Err(err) => KernelReport {
                        name: fragment_name.to_string(),
                        kernel: Some(kernel),
                        outcome: KernelOutcome::Untranslated {
                            reason: format!("summary could not be translated to the DSL: {err}"),
                        },
                        synthesis_time: outcome.synthesis_time,
                        control_bits: outcome.control_bits,
                        postcond_nodes: outcome.postcond_nodes,
                        prover_attempts: outcome.prover_attempts,
                        peak_candidates: outcome.peak_candidates,
                        fingerprint: None,
                        cached: false,
                        phase: outcome.phase,
                    },
                }
            }
            Err(err) => KernelReport {
                name: fragment_name.to_string(),
                kernel: Some(kernel),
                outcome: match err {
                    SynthesisFailure::Timeout { reason, detail } => {
                        KernelOutcome::Timeout { reason, detail }
                    }
                    SynthesisFailure::Crashed { panic } => KernelOutcome::Crashed { panic },
                    other => KernelOutcome::Untranslated {
                        reason: other.to_string(),
                    },
                },
                synthesis_time: started.elapsed(),
                control_bits: ControlBits::default(),
                postcond_nodes: 0,
                prover_attempts: 0,
                peak_candidates: 0,
                fingerprint: None,
                cached: false,
                // Failed kernels still ran the bounded screen; report where
                // their checking time went.
                phase: failure_phase,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stng_pred::fixtures;

    #[test]
    fn running_example_lifts_end_to_end() {
        let report = Stng::new().lift_source(fixtures::RUNNING_EXAMPLE).unwrap();
        assert_eq!(report.candidates(), 1);
        assert_eq!(report.translated(), 1);
        let kernel = &report.kernels[0];
        match &kernel.outcome {
            KernelOutcome::Translated {
                summary,
                soundly_verified,
                ..
            } => {
                assert!(*soundly_verified);
                assert_eq!(summary.funcs.len(), 1);
                assert!(summary.halide_cpp().contains("ImageParam b"));
            }
            other => panic!("expected translation, got {other:?}"),
        }
        assert!(kernel.postcond_nodes > 10);
        assert!(kernel.control_bits.total() > 0);
    }

    #[test]
    fn mixed_file_reports_untranslated_and_skipped_loops() {
        let src = r#"
procedure mixed(n, a, b, idx)
  real, dimension(0:n) :: a
  real, dimension(0:n) :: b
  real, dimension(0:n) :: idx
  real :: s
  integer :: i
  do i = 1, n
    a(i) = b(i-1) + b(i)
  enddo
  s = 0.0
  do i = 1, n
    s = s + 1.0
  enddo
  s = 1.0
  do i = n, 1, -1
    a(i) = b(i)
  enddo
end procedure
"#;
        let report = Stng::new().lift_source(src).unwrap();
        // Loop 1: translated. Loop 2: not even a candidate (no arrays).
        // Loop 3: candidate but decrementing, so untranslated.
        assert_eq!(report.candidates(), 2);
        assert_eq!(report.translated(), 1);
        assert_eq!(report.skipped_loops, 1);
        assert!(matches!(
            report.kernels[1].outcome,
            KernelOutcome::Untranslated { .. }
        ));
    }
}
