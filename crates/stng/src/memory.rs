//! Process-wide expression-memory management for long-running services.
//!
//! The hash-cons arenas and operation memos that make lifting fast
//! (`stng-sym`, `stng-solve`, see `docs/perf.md`) are global. A one-shot
//! compile never notices, but the service layer lifts batch after batch, so
//! this module aggregates every table behind two operations:
//!
//! * [`arena_stats`] — an occupancy snapshot (entries + shallow bytes) of
//!   each arena and memo table, plus the symbol table.
//! * [`sweep`] — advance the [`stng_intern::epoch`] and evict everything not
//!   used in the new epoch. Called between batches (at a quiescent point —
//!   no live `SymExpr`/`NormExpr` handles), it returns the tables to their
//!   empty state while keeping previously returned reports valid: cached
//!   [`crate::pipeline::KernelReport`]s hold `IrExpr` trees and strings, not
//!   arena handles.
//!
//! Symbols are exempt: they are tiny, embedded in long-lived structures, and
//! shared by every layer, so sweeping them would buy little and cost
//! re-interning every name on the next batch.

pub use stng_intern::ArenaStats;

/// Occupancy snapshot of every expression arena and memo table in the
/// process, in a stable order (sym tables, solve tables, symbol table last).
pub fn arena_stats() -> Vec<ArenaStats> {
    let mut out = stng_sym::arena_stats();
    out.extend(stng_solve::arena_stats());
    out.push(stng_intern::Symbol::table_stats());
    out
}

/// Total live entries across all sweepable tables (everything except the
/// symbol table). The quantity [`sweep`] strictly reduces when non-zero.
pub fn sweepable_entries() -> usize {
    stng_sym::arena_stats()
        .iter()
        .chain(stng_solve::arena_stats().iter())
        .map(|s| s.entries)
        .sum()
}

/// Result of one epoch sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SweepReport {
    /// The epoch that became current.
    pub epoch: u64,
    /// Entries evicted across all arenas and memo tables.
    pub evicted: usize,
}

/// Advances the global epoch and evicts every arena/memo entry last used
/// before it. See the module docs for the quiescence contract; subsequent
/// lifts re-intern what they need and behave identically.
pub fn sweep() -> SweepReport {
    let epoch = stng_intern::epoch::advance();
    let evicted = stng_sym::retain_epoch(epoch) + stng_solve::retain_epoch(epoch);
    SweepReport { epoch, evicted }
}

// Sweeping is tested in `tests/memory_sweep.rs`: a sweep is only legal at
// quiescent points, and the unit-test harness runs other lifting tests
// concurrently in the same process, so the test needs its own binary.
