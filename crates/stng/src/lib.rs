//! STNG: verified lifting of stencil computations, end to end.
//!
//! This is the crate a user of the reproduction interacts with. It wires the
//! substrates together exactly as Fig. 3 of the paper describes the STNG
//! toolchain:
//!
//! 1. the **code fragment identifier** and **parser** (`stng-ir`) find
//!    candidate loop nests in Fortran-subset source,
//! 2. the **VC computation**, **postcondition synthesizer**, and **formal
//!    verifier** (`stng-pred`, `stng-synth`, `stng-solve`) search for a
//!    provably correct summary of each kernel,
//! 3. the **Halide code generator** (`stng-halide` plus [`translate`])
//!    converts accepted summaries into runnable stencil functions, Halide C++
//!    generator sources, and de-optimized serial C.
//!
//! The main entry point is [`pipeline::Stng::lift_source`], which returns a
//! [`pipeline::LiftReport`] with one entry per candidate kernel: either the
//! lifted summary plus generated code, or the reason lifting failed.

pub mod memory;
pub mod pipeline;
pub mod translate;

/// Resource governance (budgets, degradation reasons, fault injection) —
/// re-exported from `stng-intern`, the lowest crate all three engines see.
/// See `docs/robustness.md` for the degradation ladder.
pub mod guard {
    pub use stng_intern::guard::{fault, Budget, DegradeReason};
}

/// Observability — the span recorder, metrics registry, and trace exporters
/// of `stng-obs`, re-exported so pipeline users arm tracing and export
/// traces without depending on the substrate crate directly. See
/// `docs/observability.md`.
pub mod obs {
    pub use stng_obs::{arm, armed, chrome, disarm, event, metrics, names, recorder, span};
}

pub use pipeline::{KernelOutcome, KernelReport, LiftCache, LiftReport, Stng};
pub use translate::{StencilSummary, TranslationError};
