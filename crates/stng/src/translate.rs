//! Translation of lifted summaries into the mini-Halide DSL (§5.3).
//!
//! A postcondition clause `∀ v⃗ ∈ D. out[v⃗] = expr(v⃗)` maps directly onto a
//! Halide pure function: the quantified variables become the function's grid
//! variables, input-array reads at `vᵢ + c` become image accesses at constant
//! offsets, scalar parameters become runtime parameters, and the quantifier
//! domain `D` becomes the realization region. One Halide function is emitted
//! per output array (clause), matching how STNG works around Halide's
//! single-output restriction.

use std::collections::HashMap;
use stng_halide::func::{Func, HExpr, HIndex};
use stng_halide::schedule::Region;
use stng_ir::interp::{eval_int_expr, State};
use stng_ir::ir::{BinOp, IrExpr};
use stng_pred::lang::{Postcondition, QuantClause};

/// Errors raised during summary-to-DSL translation.
#[derive(Debug, Clone, PartialEq)]
pub enum TranslationError {
    /// The right-hand side uses a construct with no Halide counterpart.
    Unsupported(String),
    /// An index expression is not of the `vᵢ + c` form.
    BadIndex(String),
}

impl std::fmt::Display for TranslationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TranslationError::Unsupported(m) => write!(f, "unsupported expression: {m}"),
            TranslationError::BadIndex(m) => write!(f, "unsupported index expression: {m}"),
        }
    }
}

impl std::error::Error for TranslationError {}

/// A lifted stencil ready to run: one mini-Halide function per output array,
/// plus the information needed to compute realization regions from the
/// kernel's integer parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct StencilSummary {
    /// One function per output array (clause), in postcondition order.
    pub funcs: Vec<(Func, QuantClause)>,
    /// Names of scalar (floating-point) parameters referenced by the summary.
    pub scalar_params: Vec<String>,
}

impl StencilSummary {
    /// Translates a postcondition into mini-Halide functions.
    ///
    /// # Errors
    ///
    /// Returns [`TranslationError`] when the summary uses constructs outside
    /// the DSL (which the synthesis grammar rules out by construction).
    pub fn from_postcondition(
        kernel_name: &str,
        post: &Postcondition,
    ) -> Result<StencilSummary, TranslationError> {
        let mut funcs = Vec::new();
        let mut scalar_params = Vec::new();
        for (k, clause) in post.clauses.iter().enumerate() {
            let vars: Vec<String> = clause.bounds.iter().map(|b| b.var.clone()).collect();
            let expr = translate_expr(&clause.eq.rhs, &vars, &mut scalar_params)?;
            let name = if post.clauses.len() == 1 {
                format!("{kernel_name}_halide")
            } else {
                format!("{kernel_name}_halide_{k}")
            };
            // The quantifier domain's strides become the Func's realization
            // steps: a strided summary runs only over its progression points.
            let steps: Vec<i64> = clause.bounds.iter().map(|b| b.step).collect();
            funcs.push((Func::strided(name, vars.len(), steps, expr), clause.clone()));
        }
        Ok(StencilSummary {
            funcs,
            scalar_params,
        })
    }

    /// Computes the realization region of clause `k` given concrete values of
    /// the kernel's integer parameters (the "glue code" role of §5.3).
    pub fn region(&self, k: usize, int_params: &HashMap<String, i64>) -> Option<Region> {
        let clause = &self.funcs.get(k)?.1;
        let mut state: State<f64> = State::new();
        for (name, value) in int_params {
            state.set_int(name.clone(), *value);
        }
        let mut region = Vec::new();
        for bound in &clause.bounds {
            let lo = eval_int_expr(&bound.inclusive_lo(), &state).ok()?;
            let hi = eval_int_expr(&bound.inclusive_hi(), &state).ok()?;
            region.push((lo, hi));
        }
        Some(region)
    }

    /// The Halide C++ generator source for every function of the summary.
    pub fn halide_cpp(&self) -> String {
        self.funcs
            .iter()
            .map(|(f, _)| stng_halide::codegen::halide_cpp(f, &self.scalar_params))
            .collect::<Vec<_>>()
            .join("\n")
    }
}

/// Translates one right-hand-side expression over quantified variables.
fn translate_expr(
    e: &IrExpr,
    vars: &[String],
    scalar_params: &mut Vec<String>,
) -> Result<HExpr, TranslationError> {
    match e {
        IrExpr::Real(v) => Ok(HExpr::Const(*v)),
        IrExpr::Int(v) => Ok(HExpr::Const(*v as f64)),
        IrExpr::Var(name) => {
            if vars.contains(name) {
                Err(TranslationError::Unsupported(format!(
                    "bare index variable '{name}' used as data"
                )))
            } else {
                if !scalar_params.contains(name) {
                    scalar_params.push(name.clone());
                }
                Ok(HExpr::Param(name.clone()))
            }
        }
        IrExpr::Load { array, indices } => {
            let index = indices
                .iter()
                .map(|ix| translate_index(ix, vars))
                .collect::<Result<Vec<_>, _>>()?;
            Ok(HExpr::Input {
                image: array.clone(),
                index,
            })
        }
        IrExpr::Bin { op, lhs, rhs } => {
            let l = Box::new(translate_expr(lhs, vars, scalar_params)?);
            let r = Box::new(translate_expr(rhs, vars, scalar_params)?);
            Ok(match op {
                BinOp::Add => HExpr::Add(l, r),
                BinOp::Sub => HExpr::Sub(l, r),
                BinOp::Mul => HExpr::Mul(l, r),
                BinOp::Div => HExpr::Div(l, r),
            })
        }
        IrExpr::Call { func, args } => {
            let args = args
                .iter()
                .map(|a| translate_expr(a, vars, scalar_params))
                .collect::<Result<Vec<_>, _>>()?;
            Ok(HExpr::Call {
                name: func.clone(),
                args,
            })
        }
        other => Err(TranslationError::Unsupported(other.to_string())),
    }
}

/// Translates an index expression of the grammar (`vᵢ + c`, `c`).
fn translate_index(e: &IrExpr, vars: &[String]) -> Result<HIndex, TranslationError> {
    let affine = e
        .as_affine()
        .ok_or_else(|| TranslationError::BadIndex(e.to_string()))?;
    let mentioned: Vec<stng_intern::Symbol> = affine.terms.keys().copied().collect();
    match mentioned.len() {
        0 => Ok(HIndex::Const(affine.constant)),
        1 => {
            let name = mentioned[0];
            let coeff = affine.coeff(name);
            let var = vars
                .iter()
                .position(|v| v == name.as_str())
                .ok_or_else(|| TranslationError::BadIndex(e.to_string()))?;
            if coeff != 1 {
                return Err(TranslationError::BadIndex(e.to_string()));
            }
            Ok(HIndex::VarOffset {
                var,
                offset: affine.constant,
            })
        }
        _ => Err(TranslationError::BadIndex(e.to_string())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stng_pred::fixtures;

    #[test]
    fn running_example_translates_to_a_two_point_halide_func() {
        let post = fixtures::running_example_post();
        let summary = StencilSummary::from_postcondition("sten_k0", &post).unwrap();
        assert_eq!(summary.funcs.len(), 1);
        let (func, _) = &summary.funcs[0];
        assert_eq!(func.rank, 2);
        assert_eq!(func.expr.to_string(), "(b(x-1, y) + b(x, y))");
        let cpp = summary.halide_cpp();
        assert!(cpp.contains("compile_to_file(\"sten_k0_halide\""));
    }

    #[test]
    fn regions_come_from_the_quantifier_domain() {
        let post = fixtures::running_example_post();
        let summary = StencilSummary::from_postcondition("sten_k0", &post).unwrap();
        let mut params = HashMap::new();
        params.insert("imin".to_string(), 0);
        params.insert("imax".to_string(), 10);
        params.insert("jmin".to_string(), 2);
        params.insert("jmax".to_string(), 8);
        let region = summary.region(0, &params).unwrap();
        assert_eq!(region, vec![(1, 10), (2, 8)]);
    }

    #[test]
    fn non_unit_coefficients_are_rejected() {
        let mut post = fixtures::running_example_post();
        post.clauses[0].eq.rhs = IrExpr::Load {
            array: "b".into(),
            indices: vec![
                IrExpr::mul(IrExpr::Int(2), IrExpr::var("vi")),
                IrExpr::var("vj"),
            ],
        };
        assert!(StencilSummary::from_postcondition("k", &post).is_err());
    }
}
