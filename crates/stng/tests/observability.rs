//! Observability contract tests: span well-formedness under parallel CEGIS,
//! counter-metric determinism, and the disarmed recorder's no-op guarantee.
//!
//! Lives in its own integration-test binary (= its own process) because the
//! recorder rings, armed flag, and metric registry are process-global: any
//! other test lifting concurrently would pollute the snapshots. Within the
//! binary the tests serialize on an internal gate for the same reason.

use std::sync::{Arc, Mutex};
use stng::obs;
use stng::pipeline::{KernelReport, LiftCache, Stng};
use stng_ir::canon::Canon;
use stng_ir::ir::Kernel;
use stng_pred::fixtures;
use stng_synth::SynthesisConfig;

/// A cache that never hits: attached so the fingerprint and cache-lookup
/// stages run (the pipeline skips both when no cache is configured).
struct NullCache;

impl LiftCache for NullCache {
    fn lookup(&self, _: &Kernel, _: &Canon, _: &str, _: &SynthesisConfig) -> Option<KernelReport> {
        None
    }
    fn record(&self, _: &Kernel, _: &Canon, _: &SynthesisConfig, _: &KernelReport) {}
}

/// Serializes the tests in this binary: each one arms/resets process-global
/// observability state.
static GATE: Mutex<()> = Mutex::new(());

/// Arming the recorder during a lift with parallel CEGIS workers must
/// produce a well-formed trace on every thread: Open/Close strictly nested,
/// nothing dropped, and spans present for the pipeline stages the lift
/// actually exercised.
#[test]
fn spans_are_well_formed_under_parallel_cegis() {
    let _gate = GATE.lock().unwrap_or_else(|p| p.into_inner());
    obs::recorder::reset();
    obs::arm();
    let mut stng = Stng::new().with_cache(Arc::new(NullCache));
    // Force >1 worker even on a single-core machine so candidate spans land
    // on threads other than the one that opened `lift.kernel`.
    stng.config.parallelism = 4;
    let report = stng.lift_source(fixtures::RUNNING_EXAMPLE).unwrap();
    obs::disarm();
    assert_eq!(report.translated(), 1);

    let threads = obs::recorder::snapshot();
    assert!(!threads.is_empty(), "an armed lift must record events");
    let mut total_events = 0usize;
    for t in &threads {
        let wf = obs::chrome::wellformedness(t);
        assert!(
            wf.is_clean(),
            "thread {:?}: {} unmatched open(s), {} mismatched close(s)",
            t.thread,
            wf.unmatched_opens,
            wf.mismatched_closes
        );
        assert_eq!(t.dropped, 0, "thread {:?} dropped events", t.thread);
        total_events += t.events.len();
    }
    assert!(total_events > 0);

    // The stages this kernel is known to exercise each left spans behind.
    for name in [
        "lift.kernel",
        "lift.lower",
        "lift.fingerprint",
        "cache.lookup",
        "cegis.candidate",
        "bounded.capture",
        "bounded.scan",
        "prove.session",
        "prove.oblig",
        "sym.exec",
        "pred.vcgen",
    ] {
        assert!(
            obs::chrome::span_count(&threads, name) >= 1,
            "no {name} span recorded"
        );
    }
    // The lift.kernel span names the fragment it lifted.
    let details = obs::chrome::span_details(&threads, "lift.kernel");
    assert_eq!(details, vec![report.kernels[0].name.as_str()]);

    // The whole snapshot exports to parseable Chrome trace JSON.
    let json = obs::chrome::trace_json(&threads);
    assert!(json.starts_with("{\"traceEvents\":["));
    obs::recorder::reset();
}

/// Counter-kind metrics (not time accumulators) must be byte-identical
/// across two single-threaded lifts of the same source from the same arena
/// state: scheduling may move time around but never the counts.
#[test]
fn counter_metrics_are_deterministic_single_threaded() {
    let _gate = GATE.lock().unwrap_or_else(|p| p.into_inner());
    obs::disarm();
    let mut stng = Stng::new();
    stng.config.parallelism = 1;

    // The prover's obligation memo and learned cores live in process-global
    // arenas; sweep to the same (empty) state before each run so both lifts
    // are equally cold.
    stng::memory::sweep();
    obs::metrics::reset();
    stng.lift_source(fixtures::RUNNING_EXAMPLE).unwrap();
    let first = obs::metrics::counters_snapshot();

    stng::memory::sweep();
    obs::metrics::reset();
    stng.lift_source(fixtures::RUNNING_EXAMPLE).unwrap();
    let second = obs::metrics::counters_snapshot();

    assert_eq!(first, second, "counter metrics drifted between equal runs");
    assert!(
        first.contains("prover.oblig_misses"),
        "snapshot should carry the phase counters: {first}"
    );
}

/// With the recorder disarmed (the default), lifting records nothing and
/// `span()` is a no-op — the always-compiled instrumentation must leave no
/// trace (literally) when off.
#[test]
fn disarmed_recorder_records_nothing() {
    let _gate = GATE.lock().unwrap_or_else(|p| p.into_inner());
    obs::disarm();
    obs::recorder::reset();
    assert!(!obs::armed());

    let stng = Stng::new();
    stng.lift_source(fixtures::RUNNING_EXAMPLE).unwrap();
    // The disarmed fast path of span()/event() itself: a burst of calls
    // must also record nothing.
    for _ in 0..10_000 {
        let _s = obs::span(&obs::names::LIFT_KERNEL);
    }
    obs::event(&obs::names::BUDGET_TIMEOUT, None, 0);

    let events: usize = obs::recorder::snapshot()
        .iter()
        .map(|t| t.events.len())
        .sum();
    assert_eq!(events, 0, "disarmed recorder must record no events");
}
