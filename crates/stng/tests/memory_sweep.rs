//! Epoch-sweep behaviour of the global expression arenas.
//!
//! Lives in its own integration-test binary (= its own process) as a single
//! sequential test: a sweep is only legal at quiescent points, and any test
//! lifting concurrently in the same process would race with it.

use stng::memory;
use stng::pipeline::Stng;
use stng_pred::fixtures;

#[test]
fn sweeps_reduce_occupancy_and_respect_epoch_tags() {
    let stng = Stng::new();
    let before = stng.lift_source(fixtures::RUNNING_EXAMPLE).unwrap();
    assert_eq!(before.translated(), 1);
    let populated = memory::sweepable_entries();
    assert!(populated > 0, "lifting must populate the arenas/memos");

    let report = memory::sweep();
    assert!(report.evicted > 0);
    assert!(report.epoch >= 2);
    assert_eq!(
        memory::sweepable_entries(),
        0,
        "a full sweep empties every sweepable table"
    );

    // Lifting after the sweep repopulates the tables and produces the same
    // outcome (timings aside).
    let after = stng.lift_source(fixtures::RUNNING_EXAMPLE).unwrap();
    assert_eq!(after.kernels.len(), before.kernels.len());
    assert_eq!(after.kernels[0].outcome, before.kernels[0].outcome);
    assert_eq!(
        after.kernels[0].postcond_nodes,
        before.kernels[0].postcond_nodes
    );
    assert!(memory::sweepable_entries() > 0);

    // Stats cover sym + solve + symbols, and symbols are exempt from sweeps.
    let stats = memory::arena_stats();
    assert!(stats.iter().any(|s| s.name == "sym.exprs"));
    for solve_store in [
        "solve.lin_rows",
        "solve.fm_memo",
        "solve.lin_cores",
        "solve.obligations",
    ] {
        assert!(
            stats.iter().any(|s| s.name == solve_store),
            "missing arena stats for {solve_store}"
        );
    }
    let symbols = stats
        .iter()
        .find(|s| s.name == "intern.symbols")
        .expect("symbol stats present");
    assert!(symbols.entries > 0);

    // Partial sweep: populate, advance the epoch, touch entries by lifting
    // again, then sweep with the new epoch as cutoff — what the second lift
    // touched survives.
    let cutoff = stng_intern::epoch::advance();
    stng.lift_source(fixtures::RUNNING_EXAMPLE).unwrap();
    let evicted = stng_sym::retain_epoch(cutoff) + stng_solve::retain_epoch(cutoff);
    // The arenas were re-touched wholesale by the second lift, but memo
    // entries are tagged at insertion and the repeated lift hit (rather than
    // re-inserted) them, so the sweep evicts those stale memo entries while
    // the arena survives.
    assert!(evicted > 0);
    assert!(memory::sweepable_entries() > 0);
    // And lifting still works after the partial sweep.
    let partial = stng.lift_source(fixtures::RUNNING_EXAMPLE).unwrap();
    assert_eq!(partial.translated(), 1);
}
