//! Concrete interpreter for canonical kernels.
//!
//! The interpreter executes a [`Kernel`] against a [`State`] whose data
//! values live in any [`DataValue`] domain. It is used as
//!
//! * the "original Fortran" performance baseline (f64 domain),
//! * the concrete half of the combined concrete/symbolic execution used for
//!   inductive template generation, and
//! * the evaluation engine behind CEGIS counterexample checking (modular
//!   domain).

use crate::error::{Error, Result};
use crate::ir::{BinOp, CmpOp, IrExpr, IrStmt, Kernel, ParamKind};
use crate::value::DataValue;
use std::collections::HashMap;

/// A multidimensional array of data values with inclusive per-dimension
/// bounds, stored row-major (last dimension fastest), matching Fortran
/// semantics only in bounds (layout does not matter for the interpreter).
#[derive(Debug, Clone, PartialEq)]
pub struct ArrayData<V> {
    /// Inclusive `(lower, upper)` bounds per dimension.
    pub dims: Vec<(i64, i64)>,
    /// Element storage.
    pub data: Vec<V>,
}

impl<V: DataValue> ArrayData<V> {
    /// Creates an array with the given bounds, filled with `fill`.
    pub fn new(dims: Vec<(i64, i64)>, fill: V) -> ArrayData<V> {
        let len = dims
            .iter()
            .map(|(lo, hi)| (hi - lo + 1).max(0) as usize)
            .product();
        ArrayData {
            dims,
            data: vec![fill; len],
        }
    }

    /// Creates an array whose elements are produced by `f(indices)`.
    pub fn from_fn(dims: Vec<(i64, i64)>, mut f: impl FnMut(&[i64]) -> V) -> ArrayData<V> {
        let mut arr = ArrayData::new(
            dims.clone(),
            f(&dims.iter().map(|d| d.0).collect::<Vec<_>>()),
        );
        let mut idx: Vec<i64> = dims.iter().map(|d| d.0).collect();
        loop {
            let value = f(&idx);
            let off = arr.offset(&idx).expect("index in bounds by construction");
            arr.data[off] = value;
            // Advance the multi-index, last dimension fastest.
            let mut dim = dims.len();
            loop {
                if dim == 0 {
                    return arr;
                }
                dim -= 1;
                idx[dim] += 1;
                if idx[dim] <= dims[dim].1 {
                    break;
                }
                idx[dim] = dims[dim].0;
            }
        }
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.dims.len()
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` when the array holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Flat offset of a multi-index, or `None` when out of bounds.
    pub fn offset(&self, indices: &[i64]) -> Option<usize> {
        if indices.len() != self.dims.len() {
            return None;
        }
        let mut off = 0usize;
        for (k, (&ix, &(lo, hi))) in indices.iter().zip(self.dims.iter()).enumerate() {
            if ix < lo || ix > hi {
                return None;
            }
            let extent = (hi - lo + 1) as usize;
            if k > 0 {
                off *= extent;
            }
            off += (ix - lo) as usize;
            let _ = extent;
        }
        Some(off)
    }

    /// Reads the element at `indices`.
    pub fn get(&self, indices: &[i64]) -> Option<&V> {
        self.offset(indices).map(|off| &self.data[off])
    }

    /// Writes the element at `indices`; returns `false` when out of bounds.
    pub fn set(&mut self, indices: &[i64], value: V) -> bool {
        match self.offset(indices) {
            Some(off) => {
                self.data[off] = value;
                true
            }
            None => false,
        }
    }

    /// Iterates over `(multi_index, value)` pairs in storage order.
    pub fn iter_indexed(&self) -> impl Iterator<Item = (Vec<i64>, &V)> + '_ {
        let dims = self.dims.clone();
        self.data.iter().enumerate().map(move |(flat, v)| {
            let mut remaining = flat;
            let mut idx = vec![0i64; dims.len()];
            for k in (0..dims.len()).rev() {
                let extent = (dims[k].1 - dims[k].0 + 1) as usize;
                idx[k] = dims[k].0 + (remaining % extent) as i64;
                remaining /= extent;
            }
            (idx, v)
        })
    }
}

/// A complete program state: integer scalars, real scalars, and arrays.
#[derive(Debug, Clone, PartialEq)]
pub struct State<V> {
    /// Integer scalar bindings.
    pub ints: HashMap<String, i64>,
    /// Real (data-domain) scalar bindings.
    pub reals: HashMap<String, V>,
    /// Array bindings.
    pub arrays: HashMap<String, ArrayData<V>>,
}

impl<V: DataValue> Default for State<V> {
    fn default() -> Self {
        State {
            ints: HashMap::new(),
            reals: HashMap::new(),
            arrays: HashMap::new(),
        }
    }
}

impl<V: DataValue> State<V> {
    /// Creates an empty state.
    pub fn new() -> Self {
        Self::default()
    }

    /// Binds an integer scalar.
    pub fn set_int(&mut self, name: impl Into<String>, value: i64) -> &mut Self {
        self.ints.insert(name.into(), value);
        self
    }

    /// Binds a real scalar.
    pub fn set_real(&mut self, name: impl Into<String>, value: V) -> &mut Self {
        self.reals.insert(name.into(), value);
        self
    }

    /// Binds an array.
    pub fn set_array(&mut self, name: impl Into<String>, array: ArrayData<V>) -> &mut Self {
        self.arrays.insert(name.into(), array);
        self
    }

    /// Reads an integer scalar.
    pub fn int(&self, name: &str) -> Option<i64> {
        self.ints.get(name).copied()
    }

    /// Reads an array.
    pub fn array(&self, name: &str) -> Option<&ArrayData<V>> {
        self.arrays.get(name)
    }

    /// Allocates every array parameter of `kernel` using the declared bounds
    /// evaluated against the integer scalars already bound in the state,
    /// filling elements with `fill`. Existing arrays are left untouched.
    ///
    /// # Errors
    ///
    /// Fails when a bound expression references an unbound integer scalar.
    pub fn allocate_arrays(&mut self, kernel: &Kernel, fill: V) -> Result<()> {
        for param in &kernel.params {
            if let ParamKind::Array { dims } = &param.kind {
                if self.arrays.contains_key(&param.name) {
                    continue;
                }
                let mut bounds = Vec::new();
                for (lo, hi) in dims {
                    let lo = eval_int_expr(lo, self)?;
                    let hi = eval_int_expr(hi, self)?;
                    bounds.push((lo, hi));
                }
                self.arrays
                    .insert(param.name.clone(), ArrayData::new(bounds, fill.clone()));
            }
        }
        Ok(())
    }
}

/// Evaluates an integer-valued IR expression in `state`.
///
/// # Errors
///
/// Fails on unbound variables, real-typed sub-expressions that cannot be used
/// as indices, or out-of-bounds indirect loads.
pub fn eval_int_expr<V: DataValue>(expr: &IrExpr, state: &State<V>) -> Result<i64> {
    match expr {
        IrExpr::Int(v) => Ok(*v),
        IrExpr::Real(v) => Ok(*v as i64),
        IrExpr::Var(name) => state
            .int(name)
            .ok_or_else(|| Error::interp(format!("unbound integer variable '{name}'"))),
        IrExpr::Bin { op, lhs, rhs } => {
            let l = eval_int_expr(lhs, state)?;
            let r = eval_int_expr(rhs, state)?;
            Ok(match op {
                BinOp::Add => l + r,
                BinOp::Sub => l - r,
                BinOp::Mul => l * r,
                BinOp::Div => {
                    if r == 0 {
                        0
                    } else {
                        l.div_euclid(r)
                    }
                }
            })
        }
        IrExpr::Call { func, args } => {
            let vals: Result<Vec<i64>> = args.iter().map(|a| eval_int_expr(a, state)).collect();
            let vals = vals?;
            match (func.as_str(), vals.as_slice()) {
                ("min", [a, b]) => Ok(*a.min(b)),
                ("max", [a, b]) => Ok(*a.max(b)),
                ("abs", [a]) => Ok(a.abs()),
                ("mod", [a, b]) => Ok(if *b == 0 { 0 } else { a.rem_euclid(*b) }),
                _ => Err(Error::interp(format!(
                    "call to '{func}' cannot be evaluated as an integer"
                ))),
            }
        }
        IrExpr::Load { array, indices } => {
            // Indirect index: only meaningful when the data domain can be
            // reinterpreted as integers.
            let arr = state
                .array(array)
                .ok_or_else(|| Error::interp(format!("unbound array '{array}'")))?;
            let idx: Result<Vec<i64>> = indices.iter().map(|ix| eval_int_expr(ix, state)).collect();
            let idx = idx?;
            let value = arr.get(&idx).ok_or_else(|| {
                Error::interp(format!("index {idx:?} out of bounds for '{array}'"))
            })?;
            value
                .as_index()
                .ok_or_else(|| Error::interp("data value is not usable as an index".to_string()))
        }
        other => Err(Error::interp(format!(
            "expression '{other}' is not an integer expression"
        ))),
    }
}

/// Evaluates a boolean-valued IR expression (comparisons over integers and
/// logical connectives) in `state`.
///
/// # Errors
///
/// Fails when the expression is not boolean or mentions unbound variables.
pub fn eval_bool_expr<V: DataValue>(expr: &IrExpr, state: &State<V>) -> Result<bool> {
    match expr {
        IrExpr::Cmp { op, lhs, rhs } => {
            let l = eval_int_expr(lhs, state)?;
            let r = eval_int_expr(rhs, state)?;
            Ok(op.eval(l, r))
        }
        IrExpr::And(a, b) => Ok(eval_bool_expr(a, state)? && eval_bool_expr(b, state)?),
        IrExpr::Or(a, b) => Ok(eval_bool_expr(a, state)? || eval_bool_expr(b, state)?),
        IrExpr::Not(e) => Ok(!eval_bool_expr(e, state)?),
        other => Err(Error::interp(format!(
            "expression '{other}' is not a boolean expression"
        ))),
    }
}

/// Evaluates a data-valued IR expression in `state`.
///
/// # Errors
///
/// Fails on unbound variables or out-of-bounds array accesses.
pub fn eval_data_expr<V: DataValue>(expr: &IrExpr, state: &State<V>) -> Result<V> {
    match expr {
        IrExpr::Real(v) => Ok(V::from_const(*v)),
        IrExpr::Int(v) => Ok(V::from_const(*v as f64)),
        IrExpr::Var(name) => {
            if let Some(v) = state.reals.get(name) {
                Ok(v.clone())
            } else if let Some(i) = state.int(name) {
                Ok(V::from_const(i as f64))
            } else {
                Err(Error::interp(format!("unbound variable '{name}'")))
            }
        }
        IrExpr::Load { array, indices } => {
            let idx: Result<Vec<i64>> = indices.iter().map(|ix| eval_int_expr(ix, state)).collect();
            let idx = idx?;
            let arr = state
                .array(array)
                .ok_or_else(|| Error::interp(format!("unbound array '{array}'")))?;
            arr.get(&idx)
                .cloned()
                .ok_or_else(|| Error::interp(format!("index {idx:?} out of bounds for '{array}'")))
        }
        IrExpr::Bin { op, lhs, rhs } => {
            let l = eval_data_expr(lhs, state)?;
            let r = eval_data_expr(rhs, state)?;
            Ok(match op {
                BinOp::Add => l.add(&r),
                BinOp::Sub => l.sub(&r),
                BinOp::Mul => l.mul(&r),
                BinOp::Div => l.div(&r),
            })
        }
        IrExpr::Call { func, args } => {
            let vals: Result<Vec<V>> = args.iter().map(|a| eval_data_expr(a, state)).collect();
            Ok(V::apply(func, &vals?))
        }
        other => Err(Error::interp(format!(
            "expression '{other}' is not a data expression"
        ))),
    }
}

/// Default interpreter fuel: generous enough for any grid the pipeline or
/// the §6.6 performance study actually runs (a 512³ sweep executes on the
/// order of 10⁸ statements), but finite, so an adversarial non-terminating
/// kernel fails with [`Error::FuelExhausted`] instead of spinning forever.
pub const DEFAULT_FUEL: u64 = 1 << 30;

/// Executes the kernel body against the state, mutating arrays and scalars in
/// place. Returns the number of store operations executed (a proxy for work).
///
/// # Errors
///
/// Fails on unbound variables, out-of-bounds accesses, or runaway loops
/// (more than [`DEFAULT_FUEL`] statements executed — use
/// [`run_kernel_limited`] to pick the budget).
pub fn run_kernel<V: DataValue>(kernel: &Kernel, state: &mut State<V>) -> Result<u64> {
    run_kernel_limited(kernel, state, DEFAULT_FUEL)
}

/// Same as [`run_kernel`] but aborts after `max_steps` executed statements.
///
/// # Errors
///
/// See [`run_kernel`]; additionally fails when the step budget is exhausted.
pub fn run_kernel_limited<V: DataValue>(
    kernel: &Kernel,
    state: &mut State<V>,
    max_steps: u64,
) -> Result<u64> {
    let mut stores = 0u64;
    let mut steps = 0u64;
    exec_stmts(&kernel.body, state, &mut stores, &mut steps, max_steps)?;
    Ok(stores)
}

/// Executes a sequence of statements (typically the straight-line body of a
/// verification condition) against `state`.
///
/// # Errors
///
/// Same failure modes as [`run_kernel_limited`].
pub fn run_stmts<V: DataValue>(
    stmts: &[IrStmt],
    state: &mut State<V>,
    max_steps: u64,
) -> Result<u64> {
    let mut stores = 0u64;
    let mut steps = 0u64;
    exec_stmts(stmts, state, &mut stores, &mut steps, max_steps)?;
    Ok(stores)
}

fn exec_stmts<V: DataValue>(
    stmts: &[IrStmt],
    state: &mut State<V>,
    stores: &mut u64,
    steps: &mut u64,
    max_steps: u64,
) -> Result<()> {
    for stmt in stmts {
        *steps += 1;
        if *steps > max_steps {
            return Err(Error::fuel(max_steps));
        }
        match stmt {
            IrStmt::AssignScalar { name, value } => {
                // An assignment to an integer-kinded scalar keeps the scalar
                // integer; everything else lands in the data domain.
                if state.ints.contains_key(name) {
                    let v = eval_int_expr(value, state)?;
                    state.ints.insert(name.clone(), v);
                } else {
                    let v = eval_data_expr(value, state)?;
                    state.reals.insert(name.clone(), v);
                }
            }
            IrStmt::Store {
                array,
                indices,
                value,
            } => {
                let idx: Result<Vec<i64>> =
                    indices.iter().map(|ix| eval_int_expr(ix, state)).collect();
                let idx = idx?;
                let v = eval_data_expr(value, state)?;
                let arr = state
                    .arrays
                    .get_mut(array)
                    .ok_or_else(|| Error::interp(format!("unbound array '{array}'")))?;
                if !arr.set(&idx, v) {
                    return Err(Error::interp(format!(
                        "store index {idx:?} out of bounds for '{array}'"
                    )));
                }
                *stores += 1;
            }
            IrStmt::Loop { domain, body } => {
                let lo = eval_int_expr(&domain.lo, state)?;
                let hi = eval_int_expr(&domain.hi, state)?;
                let step = domain.step;
                // Lowering rejects zero steps, but IR built by hand (the
                // §6.6 experiments construct statements directly) can bypass
                // `IterDomain::new`; fail crisply instead of spinning.
                if step == 0 {
                    return Err(Error::interp("loop with zero step"));
                }
                let mut cur = lo;
                loop {
                    // Charge fuel per iteration, not just per statement, so a
                    // loop whose body executes no statements still terminates.
                    *steps += 1;
                    if *steps > max_steps {
                        return Err(Error::fuel(max_steps));
                    }
                    let in_range = if step > 0 { cur <= hi } else { cur >= hi };
                    if !in_range {
                        break;
                    }
                    state.ints.insert(domain.var.clone(), cur);
                    exec_stmts(body, state, stores, steps, max_steps)?;
                    cur += step;
                }
                // Fortran leaves the loop variable one step past the bound.
                state.ints.insert(domain.var.clone(), cur);
            }
            IrStmt::If {
                cond,
                then_body,
                else_body,
            } => {
                if eval_bool_if(cond, state)? {
                    exec_stmts(then_body, state, stores, steps, max_steps)?;
                } else {
                    exec_stmts(else_body, state, stores, steps, max_steps)?;
                }
            }
        }
    }
    Ok(())
}

/// Conditions in kernels may compare data values as well as integers; for the
/// f64 domain both work, for other domains only integer comparisons are
/// supported (the lifter rejects conditionals anyway).
fn eval_bool_if<V: DataValue>(cond: &IrExpr, state: &State<V>) -> Result<bool> {
    if let IrExpr::Cmp { op, lhs, rhs } = cond {
        // Try integer comparison first, then fall back to data comparison via
        // indices when possible.
        if let (Ok(l), Ok(r)) = (eval_int_expr(lhs, state), eval_int_expr(rhs, state)) {
            return Ok(op.eval(l, r));
        }
        let l = eval_data_expr(lhs, state)?;
        let r = eval_data_expr(rhs, state)?;
        if let (Some(li), Some(ri)) = (l.as_index(), r.as_index()) {
            return Ok(op.eval(li, ri));
        }
        // As a last resort compare through subtraction in the data domain:
        // only equality/inequality are meaningful.
        return match op {
            CmpOp::Eq => Ok(l == r),
            CmpOp::Ne => Ok(l != r),
            _ => Err(Error::interp(
                "ordered comparison of data values is not supported in this domain".to_string(),
            )),
        };
    }
    eval_bool_expr(cond, state)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::lower_procedure_loops;
    use crate::parser::parse_program;
    use crate::value::ModInt;

    const RUNNING_EXAMPLE: &str = r#"
procedure sten(imin, imax, jmin, jmax, a, b)
  real (kind=8), dimension(imin:imax, jmin:jmax) :: a
  real (kind=8), dimension(imin:imax, jmin:jmax) :: b
  real :: t
  real :: q
  integer :: i
  integer :: j
  do j = jmin, jmax
    t = b(imin, j)
    do i = imin+1, imax
      q = b(i, j)
      a(i, j) = q + t
      t = q
    enddo
  enddo
end procedure
"#;

    fn running_example_kernel() -> Kernel {
        let program = parse_program(RUNNING_EXAMPLE).unwrap();
        lower_procedure_loops(&program.procedures[0])
            .remove(0)
            .expect("lowering succeeds")
    }

    #[test]
    fn array_data_indexing() {
        let arr: ArrayData<f64> =
            ArrayData::from_fn(vec![(0, 2), (1, 3)], |ix| (ix[0] * 10 + ix[1]) as f64);
        assert_eq!(arr.len(), 9);
        assert_eq!(*arr.get(&[0, 1]).unwrap(), 1.0);
        assert_eq!(*arr.get(&[2, 3]).unwrap(), 23.0);
        assert!(arr.get(&[3, 1]).is_none());
        assert!(arr.get(&[0, 0]).is_none());
        let mut count = 0;
        for (idx, v) in arr.iter_indexed() {
            assert_eq!(*v, (idx[0] * 10 + idx[1]) as f64);
            count += 1;
        }
        assert_eq!(count, 9);
    }

    #[test]
    fn running_example_computes_two_point_stencil() {
        let kernel = running_example_kernel();
        let mut state: State<f64> = State::new();
        state
            .set_int("imin", 0)
            .set_int("imax", 4)
            .set_int("jmin", 0)
            .set_int("jmax", 3);
        state.allocate_arrays(&kernel, 0.0).unwrap();
        let b = ArrayData::from_fn(vec![(0, 4), (0, 3)], |ix| (ix[0] + 10 * ix[1]) as f64);
        state.set_array("b", b.clone());
        let stores = run_kernel(&kernel, &mut state).unwrap();
        assert_eq!(stores, 4 * 4); // (imax-imin) × (jmax-jmin+1)
        let a = state.array("a").unwrap();
        for j in 0..=3i64 {
            for i in 1..=4i64 {
                let expected = *b.get(&[i - 1, j]).unwrap() + *b.get(&[i, j]).unwrap();
                assert_eq!(*a.get(&[i, j]).unwrap(), expected, "mismatch at ({i},{j})");
            }
            // Column imin is never written.
            assert_eq!(*a.get(&[0, j]).unwrap(), 0.0);
        }
    }

    #[test]
    fn modular_domain_execution_matches_structure() {
        let kernel = running_example_kernel();
        let mut state: State<ModInt> = State::new();
        state
            .set_int("imin", 0)
            .set_int("imax", 3)
            .set_int("jmin", 0)
            .set_int("jmax", 2);
        state.allocate_arrays(&kernel, ModInt::new(0)).unwrap();
        let b = ArrayData::from_fn(vec![(0, 3), (0, 2)], |ix| ModInt::new(ix[0] + 2 * ix[1]));
        state.set_array("b", b.clone());
        run_kernel(&kernel, &mut state).unwrap();
        let a = state.array("a").unwrap();
        for j in 0..=2i64 {
            for i in 1..=3i64 {
                let expected = b.get(&[i - 1, j]).unwrap().add(b.get(&[i, j]).unwrap());
                assert_eq!(*a.get(&[i, j]).unwrap(), expected);
            }
        }
    }

    #[test]
    fn step_budget_is_enforced() {
        let kernel = running_example_kernel();
        let mut state: State<f64> = State::new();
        state
            .set_int("imin", 0)
            .set_int("imax", 50)
            .set_int("jmin", 0)
            .set_int("jmax", 50);
        state.allocate_arrays(&kernel, 0.0).unwrap();
        let err = run_kernel_limited(&kernel, &mut state, 10).unwrap_err();
        assert!(err.to_string().contains("budget"));
    }

    #[test]
    fn fuel_exhaustion_on_decrementing_by_zero_loop() {
        use crate::ir::{IterDomain, Kernel};
        // An adversarial hand-built kernel: the outer loop is meant to count
        // down but its step is zero, so without guards it never advances.
        // `IterDomain::new` rejects zero steps, so build the domain directly,
        // the way the §6.6 experiments construct IR by hand.
        let dec_by_zero = Kernel {
            name: "adversarial".into(),
            params: vec![],
            locals: vec![],
            body: vec![IrStmt::Loop {
                domain: IterDomain {
                    var: "i".into(),
                    lo: IrExpr::Int(10),
                    hi: IrExpr::Int(1),
                    step: 0,
                },
                body: vec![],
            }],
            assumptions: vec![],
        };
        let mut state: State<f64> = State::new();
        // The zero-step guard fails crisply instead of spinning.
        let err = run_kernel(&dec_by_zero, &mut state).unwrap_err();
        assert!(err.to_string().contains("zero step"));

        // A decrementing loop toward i64::MIN is effectively non-terminating;
        // the interpreter's fuel stops it with the distinct variant. The body
        // executes no statements, so this exercises the per-iteration charge.
        let runaway = Kernel {
            name: "runaway".into(),
            params: vec![],
            locals: vec![],
            body: vec![IrStmt::Loop {
                domain: IterDomain::new("i", IrExpr::Int(10), IrExpr::Int(i64::MIN + 1), -1),
                body: vec![],
            }],
            assumptions: vec![],
        };
        let mut state: State<f64> = State::new();
        let err = run_kernel_limited(&runaway, &mut state, 1_000).unwrap_err();
        assert!(matches!(err, Error::FuelExhausted { fuel: 1_000 }));
        assert!(err.to_string().contains("budget"));
        // The default-fuel entry point is also covered: `run_kernel` now uses
        // DEFAULT_FUEL rather than u64::MAX, so it, too, would terminate.
        const { assert!(DEFAULT_FUEL < u64::MAX) };
    }

    #[test]
    fn out_of_bounds_store_is_reported() {
        let kernel = running_example_kernel();
        let mut state: State<f64> = State::new();
        state
            .set_int("imin", 0)
            .set_int("imax", 4)
            .set_int("jmin", 0)
            .set_int("jmax", 3);
        // Allocate `a` too small on purpose.
        state.set_array("a", ArrayData::new(vec![(0, 1), (0, 1)], 0.0));
        state.set_array("b", ArrayData::new(vec![(0, 4), (0, 3)], 1.0));
        let err = run_kernel(&kernel, &mut state).unwrap_err();
        assert!(err.to_string().contains("out of bounds"));
    }

    #[test]
    fn bool_and_int_expr_evaluation() {
        let mut state: State<f64> = State::new();
        state.set_int("i", 3).set_int("n", 5);
        let cond = IrExpr::And(
            Box::new(IrExpr::cmp(CmpOp::Le, IrExpr::var("i"), IrExpr::var("n"))),
            Box::new(IrExpr::cmp(CmpOp::Gt, IrExpr::var("i"), IrExpr::Int(0))),
        );
        assert!(eval_bool_expr(&cond, &state).unwrap());
        let e = IrExpr::bin(BinOp::Div, IrExpr::var("n"), IrExpr::Int(2));
        assert_eq!(eval_int_expr(&e, &state).unwrap(), 2);
        let e = IrExpr::Call {
            func: "max".into(),
            args: vec![IrExpr::var("i"), IrExpr::var("n")],
        };
        assert_eq!(eval_int_expr(&e, &state).unwrap(), 5);
    }
}
