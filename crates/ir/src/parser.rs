//! Recursive-descent parser for the Fortran-style subset.
//!
//! The grammar covers the kernels the paper lifts: procedures, `real` /
//! `integer` declarations with `dimension` attributes, counted `do` loops
//! (with optional step), `if`/`else`, scalar and array assignments, calls,
//! and `exit` / `cycle`. `STNG: assume(...)` annotation comments are attached
//! to the procedure they appear in.

use crate::ast::*;
use crate::error::{Error, Result};
use crate::lexer::{tokenize, SpannedToken, Token};

/// Parses a complete translation unit.
///
/// # Errors
///
/// Returns [`Error::Lex`] or [`Error::Parse`] on malformed input.
pub fn parse_program(source: &str) -> Result<Program> {
    let tokens = tokenize(source)?;
    let mut parser = Parser::new(tokens);
    parser.program()
}

/// Parses a single expression (used for annotations and by tests).
///
/// # Errors
///
/// Returns an error if the text is not a well-formed expression.
pub fn parse_expr(source: &str) -> Result<Expr> {
    let tokens = tokenize(source)?;
    let mut parser = Parser::new(tokens);
    let expr = parser.expr()?;
    parser.skip_newlines();
    parser.expect_eof()?;
    Ok(expr)
}

struct Parser {
    tokens: Vec<SpannedToken>,
    pos: usize,
}

impl Parser {
    fn new(tokens: Vec<SpannedToken>) -> Self {
        Parser { tokens, pos: 0 }
    }

    fn peek(&self) -> &Token {
        &self.tokens[self.pos].token
    }

    fn line(&self) -> usize {
        self.tokens[self.pos].line
    }

    fn bump(&mut self) -> Token {
        let tok = self.tokens[self.pos].token.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        tok
    }

    fn err(&self, message: impl Into<String>) -> Error {
        Error::Parse {
            line: self.line(),
            message: message.into(),
        }
    }

    fn expect(&mut self, expected: &Token) -> Result<()> {
        if self.peek() == expected {
            self.bump();
            Ok(())
        } else {
            Err(self.err(format!("expected '{expected}', found '{}'", self.peek())))
        }
    }

    fn expect_ident(&mut self) -> Result<String> {
        match self.peek().clone() {
            Token::Ident(name) => {
                self.bump();
                Ok(name)
            }
            other => Err(self.err(format!("expected identifier, found '{other}'"))),
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<()> {
        match self.peek() {
            Token::Ident(name) if name == kw => {
                self.bump();
                Ok(())
            }
            other => Err(self.err(format!("expected '{kw}', found '{other}'"))),
        }
    }

    fn at_keyword(&self, kw: &str) -> bool {
        matches!(self.peek(), Token::Ident(name) if name == kw)
    }

    fn expect_eof(&mut self) -> Result<()> {
        if matches!(self.peek(), Token::Eof) {
            Ok(())
        } else {
            Err(self.err(format!("unexpected trailing input '{}'", self.peek())))
        }
    }

    fn skip_newlines(&mut self) {
        while matches!(self.peek(), Token::Newline) {
            self.bump();
        }
    }

    fn end_statement(&mut self) -> Result<()> {
        match self.peek() {
            Token::Newline => {
                self.skip_newlines();
                Ok(())
            }
            Token::Eof => Ok(()),
            other => Err(self.err(format!("expected end of statement, found '{other}'"))),
        }
    }

    // program := { procedure }
    fn program(&mut self) -> Result<Program> {
        let mut procedures = Vec::new();
        self.skip_newlines();
        while !matches!(self.peek(), Token::Eof) {
            // Stray annotations before any procedure are ignored.
            if matches!(self.peek(), Token::Annotation(_)) {
                self.bump();
                self.skip_newlines();
                continue;
            }
            procedures.push(self.procedure()?);
            self.skip_newlines();
        }
        Ok(Program { procedures })
    }

    // procedure := ("procedure"|"subroutine") name "(" params ")" body "end" [...]
    fn procedure(&mut self) -> Result<Procedure> {
        if self.at_keyword("procedure") || self.at_keyword("subroutine") {
            self.bump();
        } else {
            return Err(self.err("expected 'procedure' or 'subroutine'"));
        }
        let name = self.expect_ident()?;
        let mut params = Vec::new();
        if matches!(self.peek(), Token::LParen) {
            self.bump();
            if !matches!(self.peek(), Token::RParen) {
                loop {
                    params.push(self.expect_ident()?);
                    if matches!(self.peek(), Token::Comma) {
                        self.bump();
                    } else {
                        break;
                    }
                }
            }
            self.expect(&Token::RParen)?;
        }
        self.end_statement()?;

        let mut decls = Vec::new();
        let mut annotations = Vec::new();
        let mut body = Vec::new();

        loop {
            self.skip_newlines();
            match self.peek().clone() {
                Token::Eof => return Err(self.err("unexpected end of input inside procedure")),
                Token::Annotation(text) => {
                    let line = self.line();
                    self.bump();
                    let assumption = parse_expr(&text)?;
                    annotations.push(Annotation { assumption, line });
                }
                Token::Ident(word) if word == "end" => {
                    self.bump();
                    if self.at_keyword("procedure") || self.at_keyword("subroutine") {
                        self.bump();
                        // Optional repeated name.
                        if matches!(self.peek(), Token::Ident(_)) {
                            self.bump();
                        }
                    }
                    self.end_statement()?;
                    break;
                }
                Token::Ident(word) if (word == "real" || word == "integer") && body.is_empty() => {
                    decls.extend(self.decl()?);
                }
                _ => {
                    body.push(self.stmt()?);
                }
            }
        }

        Ok(Procedure {
            name,
            params,
            decls,
            body,
            annotations,
        })
    }

    // decl := type [ "(" "kind" "=" int ")" ] [ "," "dimension" "(" ranges ")" ] "::" names
    fn decl(&mut self) -> Result<Vec<Decl>> {
        let ty = if self.at_keyword("real") {
            self.bump();
            Type::Real
        } else {
            self.expect_keyword("integer")?;
            Type::Integer
        };
        // Optional kind specifier: `(kind=8)`.
        if matches!(self.peek(), Token::LParen) {
            self.bump();
            self.expect_keyword("kind")?;
            self.expect(&Token::Assign)?;
            match self.bump() {
                Token::Int(_) => {}
                other => return Err(self.err(format!("expected kind value, found '{other}'"))),
            }
            self.expect(&Token::RParen)?;
        }
        let mut dims = None;
        while matches!(self.peek(), Token::Comma) {
            self.bump();
            if self.at_keyword("dimension") {
                self.bump();
                self.expect(&Token::LParen)?;
                let mut ranges = Vec::new();
                loop {
                    let lower = self.expr()?;
                    let range = if matches!(self.peek(), Token::Colon) {
                        self.bump();
                        let upper = self.expr()?;
                        DimRange { lower, upper }
                    } else {
                        // `dimension(n)` means bounds 1..n.
                        DimRange {
                            lower: Expr::Int(1),
                            upper: lower,
                        }
                    };
                    ranges.push(range);
                    if matches!(self.peek(), Token::Comma) {
                        self.bump();
                    } else {
                        break;
                    }
                }
                self.expect(&Token::RParen)?;
                dims = Some(ranges);
            } else if self.at_keyword("intent") {
                // `intent(in)` / `intent(out)` attributes are accepted and
                // ignored: the identifier recomputes read/write sets itself.
                self.bump();
                self.expect(&Token::LParen)?;
                while !matches!(self.peek(), Token::RParen) {
                    self.bump();
                }
                self.expect(&Token::RParen)?;
            } else if self.at_keyword("pointer") || self.at_keyword("target") {
                self.bump();
            } else {
                return Err(self.err("unexpected declaration attribute"));
            }
        }
        self.expect(&Token::DoubleColon)?;
        let mut decls = Vec::new();
        loop {
            let name = self.expect_ident()?;
            decls.push(Decl {
                name,
                ty,
                dims: dims.clone(),
            });
            if matches!(self.peek(), Token::Comma) {
                self.bump();
            } else {
                break;
            }
        }
        self.end_statement()?;
        Ok(decls)
    }

    fn stmt(&mut self) -> Result<Stmt> {
        match self.peek().clone() {
            Token::Ident(word) if word == "do" => self.do_stmt(),
            Token::Ident(word) if word == "if" => self.if_stmt(),
            Token::Ident(word) if word == "call" => {
                self.bump();
                let name = self.expect_ident()?;
                let mut args = Vec::new();
                if matches!(self.peek(), Token::LParen) {
                    self.bump();
                    if !matches!(self.peek(), Token::RParen) {
                        loop {
                            args.push(self.expr()?);
                            if matches!(self.peek(), Token::Comma) {
                                self.bump();
                            } else {
                                break;
                            }
                        }
                    }
                    self.expect(&Token::RParen)?;
                }
                self.end_statement()?;
                Ok(Stmt::Call { name, args })
            }
            Token::Ident(word) if word == "exit" => {
                self.bump();
                self.end_statement()?;
                Ok(Stmt::Exit)
            }
            Token::Ident(word) if word == "cycle" => {
                self.bump();
                self.end_statement()?;
                Ok(Stmt::Cycle)
            }
            Token::Ident(_) => self.assign_stmt(),
            other => Err(self.err(format!("expected statement, found '{other}'"))),
        }
    }

    fn assign_stmt(&mut self) -> Result<Stmt> {
        let name = self.expect_ident()?;
        let target = if matches!(self.peek(), Token::LParen) {
            self.bump();
            let mut indices = Vec::new();
            loop {
                indices.push(self.expr()?);
                if matches!(self.peek(), Token::Comma) {
                    self.bump();
                } else {
                    break;
                }
            }
            self.expect(&Token::RParen)?;
            LValue::Array { name, indices }
        } else {
            LValue::Scalar(name)
        };
        self.expect(&Token::Assign)?;
        let value = self.expr()?;
        self.end_statement()?;
        Ok(Stmt::Assign { target, value })
    }

    fn do_stmt(&mut self) -> Result<Stmt> {
        let line = self.line();
        self.expect_keyword("do")?;
        let var = self.expect_ident()?;
        self.expect(&Token::Assign)?;
        let lo = self.expr()?;
        self.expect(&Token::Comma)?;
        let hi = self.expr()?;
        let step = if matches!(self.peek(), Token::Comma) {
            self.bump();
            Some(self.expr()?)
        } else {
            None
        };
        self.end_statement()?;
        let mut body = Vec::new();
        loop {
            self.skip_newlines();
            if self.at_keyword("enddo") {
                self.bump();
                self.end_statement()?;
                break;
            }
            if self.at_keyword("end") {
                // `end do`
                let save = self.pos;
                self.bump();
                if self.at_keyword("do") {
                    self.bump();
                    self.end_statement()?;
                    break;
                }
                self.pos = save;
                return Err(self.err("expected 'enddo' to close loop"));
            }
            if matches!(self.peek(), Token::Eof) {
                return Err(self.err("unexpected end of input inside do loop"));
            }
            body.push(self.stmt()?);
        }
        Ok(Stmt::Do {
            var,
            lo,
            hi,
            step,
            body,
            line,
        })
    }

    fn if_stmt(&mut self) -> Result<Stmt> {
        self.expect_keyword("if")?;
        self.expect(&Token::LParen)?;
        let cond = self.bool_expr()?;
        self.expect(&Token::RParen)?;
        self.expect_keyword("then")?;
        self.end_statement()?;
        let mut then_body = Vec::new();
        let mut else_body = Vec::new();
        let mut in_else = false;
        loop {
            self.skip_newlines();
            if self.at_keyword("endif") {
                self.bump();
                self.end_statement()?;
                break;
            }
            if self.at_keyword("end") {
                let save = self.pos;
                self.bump();
                if self.at_keyword("if") {
                    self.bump();
                    self.end_statement()?;
                    break;
                }
                self.pos = save;
                return Err(self.err("expected 'endif' to close if"));
            }
            if self.at_keyword("else") {
                self.bump();
                self.end_statement()?;
                in_else = true;
                continue;
            }
            if matches!(self.peek(), Token::Eof) {
                return Err(self.err("unexpected end of input inside if"));
            }
            let stmt = self.stmt()?;
            if in_else {
                else_body.push(stmt);
            } else {
                then_body.push(stmt);
            }
        }
        Ok(Stmt::If {
            cond,
            then_body,
            else_body,
        })
    }

    /// Boolean expressions: `or` over `and` over `not` over comparisons.
    fn bool_expr(&mut self) -> Result<Expr> {
        let mut lhs = self.bool_and()?;
        while matches!(self.peek(), Token::Or) {
            self.bump();
            let rhs = self.bool_and()?;
            lhs = Expr::Or(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn bool_and(&mut self) -> Result<Expr> {
        let mut lhs = self.bool_not()?;
        while matches!(self.peek(), Token::And) {
            self.bump();
            let rhs = self.bool_not()?;
            lhs = Expr::And(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn bool_not(&mut self) -> Result<Expr> {
        if matches!(self.peek(), Token::Not) {
            self.bump();
            let inner = self.bool_not()?;
            return Ok(Expr::Not(Box::new(inner)));
        }
        self.comparison()
    }

    fn comparison(&mut self) -> Result<Expr> {
        if matches!(self.peek(), Token::LParen) {
            // Could be a parenthesized boolean expression; try it first and
            // fall back to arithmetic if a comparison follows.
            let save = self.pos;
            self.bump();
            if let Ok(inner) = self.bool_expr() {
                if matches!(self.peek(), Token::RParen)
                    && matches!(
                        inner,
                        Expr::Cmp { .. } | Expr::And(..) | Expr::Or(..) | Expr::Not(..)
                    )
                {
                    self.bump();
                    return Ok(inner);
                }
            }
            self.pos = save;
        }
        let lhs = self.expr()?;
        let op = match self.peek() {
            Token::Lt => CmpOpKind::Lt,
            Token::Le => CmpOpKind::Le,
            Token::Gt => CmpOpKind::Gt,
            Token::Ge => CmpOpKind::Ge,
            Token::EqEq => CmpOpKind::Eq,
            Token::Ne => CmpOpKind::Ne,
            _ => return Ok(lhs),
        };
        self.bump();
        let rhs = self.expr()?;
        Ok(Expr::Cmp {
            op,
            lhs: Box::new(lhs),
            rhs: Box::new(rhs),
        })
    }

    /// Arithmetic expressions with standard precedence.
    pub(crate) fn expr(&mut self) -> Result<Expr> {
        // Comparisons are allowed inside annotation expressions, so the
        // public entry point handles them as the weakest binding level.
        let lhs = self.add_sub()?;
        let op = match self.peek() {
            Token::Lt => Some(CmpOpKind::Lt),
            Token::Le => Some(CmpOpKind::Le),
            Token::Gt => Some(CmpOpKind::Gt),
            Token::Ge => Some(CmpOpKind::Ge),
            Token::EqEq => Some(CmpOpKind::Eq),
            Token::Ne => Some(CmpOpKind::Ne),
            _ => None,
        };
        if let Some(op) = op {
            self.bump();
            let rhs = self.add_sub()?;
            return Ok(Expr::Cmp {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            });
        }
        Ok(lhs)
    }

    fn add_sub(&mut self) -> Result<Expr> {
        let mut lhs = self.mul_div()?;
        loop {
            let op = match self.peek() {
                Token::Plus => BinOpKind::Add,
                Token::Minus => BinOpKind::Sub,
                _ => break,
            };
            self.bump();
            let rhs = self.mul_div()?;
            lhs = Expr::bin(op, lhs, rhs);
        }
        Ok(lhs)
    }

    fn mul_div(&mut self) -> Result<Expr> {
        let mut lhs = self.unary()?;
        loop {
            let op = match self.peek() {
                Token::Star => BinOpKind::Mul,
                Token::Slash => BinOpKind::Div,
                _ => break,
            };
            self.bump();
            let rhs = self.unary()?;
            lhs = Expr::bin(op, lhs, rhs);
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> Result<Expr> {
        match self.peek() {
            Token::Minus => {
                self.bump();
                let inner = self.unary()?;
                Ok(Expr::Neg(Box::new(inner)))
            }
            Token::Plus => {
                self.bump();
                self.unary()
            }
            _ => self.primary(),
        }
    }

    fn primary(&mut self) -> Result<Expr> {
        match self.peek().clone() {
            Token::Int(v) => {
                self.bump();
                Ok(Expr::Int(v))
            }
            Token::Real(v) => {
                self.bump();
                Ok(Expr::Real(v))
            }
            Token::LParen => {
                self.bump();
                let inner = self.expr()?;
                self.expect(&Token::RParen)?;
                Ok(inner)
            }
            Token::Ident(name) => {
                self.bump();
                if matches!(self.peek(), Token::LParen) {
                    self.bump();
                    let mut args = Vec::new();
                    if !matches!(self.peek(), Token::RParen) {
                        loop {
                            args.push(self.expr()?);
                            if matches!(self.peek(), Token::Comma) {
                                self.bump();
                            } else {
                                break;
                            }
                        }
                    }
                    self.expect(&Token::RParen)?;
                    if is_intrinsic(&name) {
                        Ok(Expr::Call { name, args })
                    } else {
                        // Whether `name(args)` is an array reference or a call
                        // to a user function is resolved during lowering using
                        // declarations; the parser keeps it as an array
                        // reference, which is by far the common case.
                        Ok(Expr::ArrayRef {
                            name,
                            indices: args,
                        })
                    }
                } else {
                    Ok(Expr::Var(name))
                }
            }
            other => Err(self.err(format!("expected expression, found '{other}'"))),
        }
    }
}

/// Pure math intrinsics the lifter models as uninterpreted functions (§4.4).
pub fn is_intrinsic(name: &str) -> bool {
    matches!(
        name,
        "exp" | "log" | "sqrt" | "sin" | "cos" | "tan" | "abs" | "min" | "max" | "mod" | "sign"
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    const RUNNING_EXAMPLE: &str = r#"
procedure sten(imin, imax, jmin, jmax, a, b)
  real (kind=8), dimension(imin:imax, jmin:jmax) :: a
  real (kind=8), dimension(imin:imax, jmin:jmax) :: b
  real :: t
  real :: q
  integer :: i
  integer :: j
  do j = jmin, jmax
    t = b(imin, j)
    do i = imin+1, imax
      q = b(i, j)
      a(i, j) = q + t
      t = q
    enddo
  enddo
end procedure
"#;

    #[test]
    fn parses_running_example() {
        let program = parse_program(RUNNING_EXAMPLE).unwrap();
        assert_eq!(program.procedures.len(), 1);
        let proc = &program.procedures[0];
        assert_eq!(proc.name, "sten");
        assert_eq!(proc.params.len(), 6);
        assert_eq!(proc.decls.len(), 6);
        assert!(proc.is_array("a"));
        assert!(proc.is_array("b"));
        assert!(!proc.is_array("t"));
        assert_eq!(proc.body.len(), 1);
        match &proc.body[0] {
            Stmt::Do { var, body, .. } => {
                assert_eq!(var, "j");
                assert_eq!(body.len(), 2);
                assert!(matches!(body[1], Stmt::Do { .. }));
            }
            other => panic!("expected do loop, got {other:?}"),
        }
    }

    #[test]
    fn parses_annotations() {
        let src = r#"
procedure k(n, sz0, sz1, a)
  real, dimension(1:n) :: a
  integer :: i
  ! STNG: assume(sz0 /= sz1)
  do i = 1, n
    a(i*(sz0-sz1)) = 1.0
  enddo
end procedure
"#;
        let program = parse_program(src).unwrap();
        let proc = &program.procedures[0];
        assert_eq!(proc.annotations.len(), 1);
        assert!(matches!(
            proc.annotations[0].assumption,
            Expr::Cmp {
                op: CmpOpKind::Ne,
                ..
            }
        ));
    }

    #[test]
    fn parses_if_else_and_step() {
        let src = r#"
procedure k(n, a, b)
  real, dimension(1:n) :: a
  real, dimension(1:n) :: b
  integer :: i
  do i = n, 1, -1
    if (b(i) > 0.0) then
      a(i) = b(i)
    else
      a(i) = 0.0
    endif
  enddo
end procedure
"#;
        let program = parse_program(src).unwrap();
        let proc = &program.procedures[0];
        match &proc.body[0] {
            Stmt::Do { step, body, .. } => {
                assert!(matches!(step, Some(Expr::Neg(_))));
                assert!(matches!(body[0], Stmt::If { .. }));
            }
            other => panic!("expected loop, got {other:?}"),
        }
    }

    #[test]
    fn strided_do_round_trips_through_the_ast() {
        // `do i = lo, hi, s` keeps all three control expressions and the
        // source line of the `do` keyword.
        let src = r#"
procedure k(n, a)
  real, dimension(1:n) :: a
  integer :: i
  do i = 2, n-1, 4
    a(i) = 1.0
  enddo
end procedure
"#;
        let program = parse_program(src).unwrap();
        let proc = &program.procedures[0];
        match &proc.body[0] {
            Stmt::Do {
                var,
                lo,
                hi,
                step,
                line,
                ..
            } => {
                assert_eq!(var, "i");
                assert_eq!(*lo, Expr::Int(2));
                assert!(matches!(hi, Expr::Bin { .. }));
                assert_eq!(*step, Some(Expr::Int(4)));
                assert_eq!(*line, 5);
            }
            other => panic!("expected loop, got {other:?}"),
        }
        // A symbolic step also round-trips (lowering, not parsing, rejects
        // it).
        let src2 = src.replace(", 4", ", n");
        let program2 = parse_program(&src2).unwrap();
        match &program2.procedures[0].body[0] {
            Stmt::Do { step, .. } => assert_eq!(*step, Some(Expr::var("n"))),
            other => panic!("expected loop, got {other:?}"),
        }
    }

    #[test]
    fn parses_intrinsic_calls_vs_array_refs() {
        let e = parse_expr("exp(b(i,j)) + c(i)").unwrap();
        let mut calls = 0;
        let mut arefs = 0;
        e.walk(&mut |x| match x {
            Expr::Call { .. } => calls += 1,
            Expr::ArrayRef { .. } => arefs += 1,
            _ => {}
        });
        assert_eq!(calls, 1);
        assert_eq!(arefs, 2);
    }

    #[test]
    fn operator_precedence() {
        let e = parse_expr("1 + 2 * 3").unwrap();
        match e {
            Expr::Bin {
                op: BinOpKind::Add,
                rhs,
                ..
            } => assert!(matches!(
                *rhs,
                Expr::Bin {
                    op: BinOpKind::Mul,
                    ..
                }
            )),
            other => panic!("unexpected parse {other:?}"),
        }
    }

    #[test]
    fn rejects_unclosed_loop() {
        let src =
            "procedure p(a)\n real, dimension(1:4) :: a\n do i = 1, 3\n a(i) = 1.0\nend procedure";
        assert!(parse_program(src).is_err());
    }

    #[test]
    fn parses_multiple_procedures_and_consecutive_loops() {
        let src = r#"
procedure p(n, a, b)
  real, dimension(1:n) :: a
  real, dimension(1:n) :: b
  integer :: i
  do i = 1, n
    a(i) = b(i)
  enddo
  do i = 1, n
    b(i) = a(i)
  enddo
end procedure

procedure q(n, c)
  real, dimension(1:n) :: c
  integer :: i
  do i = 1, n
    c(i) = 2.0
  enddo
end procedure
"#;
        let program = parse_program(src).unwrap();
        assert_eq!(program.procedures.len(), 2);
        assert_eq!(program.procedures[0].body.len(), 2);
    }

    #[test]
    fn end_do_variant_and_call_statement() {
        let src = r#"
subroutine p(n, a)
  real, dimension(1:n) :: a
  integer :: i
  do i = 1, n
    call helper(a, i)
  end do
end subroutine
"#;
        let program = parse_program(src).unwrap();
        match &program.procedures[0].body[0] {
            Stmt::Do { body, .. } => assert!(matches!(body[0], Stmt::Call { .. })),
            other => panic!("expected loop, got {other:?}"),
        }
    }
}
