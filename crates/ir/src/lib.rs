//! Fortran-subset frontend and loop-nest intermediate representation for the
//! STNG reproduction.
//!
//! This crate provides everything the verified-lifting pipeline needs to get
//! from source text to an analyzable kernel:
//!
//! * a lexer and parser for a Fortran-style loop-nest subset ([`lexer`],
//!   [`parser`], [`ast`]),
//! * candidate stencil identification following §5.1 of the paper
//!   ([`identify`]),
//! * lowering of accepted loop nests into a canonical intermediate
//!   representation ([`ir`], [`lower`]),
//! * a concrete interpreter over pluggable data domains ([`interp`],
//!   [`value`]), and
//! * dependence analysis with a classical auto-parallelization model used by
//!   the §6.5 de-optimization experiment ([`depend`], [`autopar`]).
//!
//! # Example
//!
//! ```
//! use stng_ir::parser::parse_program;
//! use stng_ir::identify::identify_candidates;
//!
//! let src = r#"
//! procedure sten(imin, imax, jmin, jmax, a, b)
//!   real, dimension(imin:imax, jmin:jmax) :: a
//!   real, dimension(imin:imax, jmin:jmax) :: b
//!   real :: t
//!   real :: q
//!   integer :: i
//!   integer :: j
//!   do j = jmin, jmax
//!     t = b(imin, j)
//!     do i = imin+1, imax
//!       q = b(i, j)
//!       a(i, j) = q + t
//!       t = q
//!     enddo
//!   enddo
//! end procedure
//! "#;
//! let program = parse_program(src)?;
//! let candidates = identify_candidates(&program.procedures[0]);
//! assert_eq!(candidates.len(), 1);
//! # Ok::<(), stng_ir::Error>(())
//! ```

pub mod ast;
pub mod autopar;
pub mod canon;
pub mod depend;
pub mod error;
pub mod identify;
pub mod interp;
pub mod ir;
pub mod lexer;
pub mod lower;
pub mod parser;
pub mod slots;
pub mod value;

pub use error::{Error, Result};
pub use ir::{BinOp, IrExpr, IrStmt, Kernel, ParamKind};
pub use value::{DataValue, ModInt, MOD_FIELD};
