//! Error types shared by the frontend and interpreter.

use std::fmt;

/// Convenient result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors raised while parsing, lowering, or interpreting kernels.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// A lexical error at the given line.
    Lex { line: usize, message: String },
    /// A parse error at the given line.
    Parse { line: usize, message: String },
    /// A semantic error found while lowering a candidate loop nest to IR.
    Lower { message: String },
    /// A runtime error raised by the interpreter (unbound variable,
    /// out-of-bounds access, and so on).
    Interp { message: String },
    /// The interpreter's fuel (statement step budget) ran out before the
    /// kernel terminated. Distinct from [`Error::Interp`] so callers can
    /// tell "this kernel is wrong" from "this kernel ran too long".
    FuelExhausted { fuel: u64 },
    /// The requested construct is not supported by this reproduction.
    Unsupported { message: String },
}

impl Error {
    /// Builds a lowering error from any displayable message.
    pub fn lower(message: impl Into<String>) -> Self {
        Error::Lower {
            message: message.into(),
        }
    }

    /// Builds an interpreter error from any displayable message.
    pub fn interp(message: impl Into<String>) -> Self {
        Error::Interp {
            message: message.into(),
        }
    }

    /// Builds an "unsupported construct" error from any displayable message.
    pub fn unsupported(message: impl Into<String>) -> Self {
        Error::Unsupported {
            message: message.into(),
        }
    }

    /// Builds a fuel-exhaustion error for the given step budget.
    pub fn fuel(fuel: u64) -> Self {
        Error::FuelExhausted { fuel }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Lex { line, message } => write!(f, "lexical error on line {line}: {message}"),
            Error::Parse { line, message } => write!(f, "parse error on line {line}: {message}"),
            Error::Lower { message } => write!(f, "lowering error: {message}"),
            Error::Interp { message } => write!(f, "interpreter error: {message}"),
            Error::FuelExhausted { fuel } => {
                write!(f, "execution step budget exhausted (fuel {fuel})")
            }
            Error::Unsupported { message } => write!(f, "unsupported construct: {message}"),
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_line_numbers() {
        let err = Error::Parse {
            line: 7,
            message: "expected enddo".into(),
        };
        assert!(err.to_string().contains("line 7"));
        assert!(err.to_string().contains("expected enddo"));
    }

    #[test]
    fn constructors_build_expected_variants() {
        assert!(matches!(Error::lower("x"), Error::Lower { .. }));
        assert!(matches!(Error::interp("x"), Error::Interp { .. }));
        assert!(matches!(Error::unsupported("x"), Error::Unsupported { .. }));
        assert!(matches!(Error::fuel(10), Error::FuelExhausted { fuel: 10 }));
        assert!(Error::fuel(10).to_string().contains("budget"));
    }
}
