//! Loop dependence analysis over canonical kernels.
//!
//! This is the analysis a classical auto-parallelizing compiler (the paper's
//! `ifort -parallel` baseline) would run on the *outermost* loop of a kernel:
//! it decides whether iterations of that loop may be executed in parallel.
//! The analysis is deliberately conservative and purely syntactic/affine,
//! which is exactly what makes hand-optimized (tiled, unrolled, non-affine)
//! kernels defeat it — the effect §6.5 of the paper exploits.

use crate::ir::{IrExpr, IrStmt, Kernel};

/// Outcome of analyzing the outermost loop of a kernel.
#[derive(Debug, Clone, PartialEq)]
pub enum ParallelizationVerdict {
    /// The outer loop carries no dependences; iterations can run in parallel.
    Parallel,
    /// The loop must stay serial because of the given dependence.
    Serial(DependenceReason),
    /// The analysis could not model the loop at all (non-affine bounds or
    /// subscripts, conditionals, deep artificial nests). Classical compilers
    /// typically fall back to serial code, and optimization heuristics can
    /// even produce pathological code for these kernels.
    NotAnalyzable(String),
}

impl ParallelizationVerdict {
    /// True when the outer loop was proven parallelizable.
    pub fn is_parallel(&self) -> bool {
        matches!(self, ParallelizationVerdict::Parallel)
    }
}

/// Why a loop was kept serial.
#[derive(Debug, Clone, PartialEq)]
pub enum DependenceReason {
    /// A scalar is read before it is (re)written within an iteration, so its
    /// value flows across iterations (e.g. the `t = q` recurrence of the
    /// paper's running example inner loop).
    ScalarCarried { name: String },
    /// An array is both read and written with different offsets along the
    /// outer loop dimension, creating a loop-carried flow dependence.
    ArrayCarried { array: String },
    /// The kernel has no outer loop to parallelize.
    NoLoop,
}

/// Analyzes the outermost loop of `kernel`.
pub fn analyze_outer_loop(kernel: &Kernel) -> ParallelizationVerdict {
    let Some(IrStmt::Loop { domain, body }) = kernel
        .body
        .iter()
        .find(|s| matches!(s, IrStmt::Loop { .. }))
    else {
        return ParallelizationVerdict::Serial(DependenceReason::NoLoop);
    };
    let var = &domain.var;

    // 1. All loop bounds in the nest must be affine for the analysis to model
    //    the iteration space.
    if domain.lo.as_affine().is_none() || domain.hi.as_affine().is_none() {
        return ParallelizationVerdict::NotAnalyzable(
            "outer loop bounds are not affine".to_string(),
        );
    }
    for info in kernel.loops() {
        if info.lo.as_affine().is_none() || info.hi.as_affine().is_none() {
            return ParallelizationVerdict::NotAnalyzable(format!(
                "bounds of loop over '{}' are not affine",
                info.var
            ));
        }
    }
    // Conditionals and very deep artificial nests (tiling + unrolling) defeat
    // the dependence test in practice.
    if kernel.has_conditionals() {
        return ParallelizationVerdict::NotAnalyzable(
            "loop body contains conditionals".to_string(),
        );
    }
    if kernel.loop_depth() > 4 {
        return ParallelizationVerdict::NotAnalyzable(format!(
            "loop nest of depth {} exceeds the analyzable depth",
            kernel.loop_depth()
        ));
    }

    // 2. Scalar dependences: a scalar read before being written in the loop
    //    body carries a value between iterations.
    let accesses = scalar_access_order(body);
    let mut written: Vec<&str> = Vec::new();
    for access in &accesses {
        match access {
            ScalarAccess::Read(name) => {
                let assigned_somewhere = accesses
                    .iter()
                    .any(|a| matches!(a, ScalarAccess::Write(w) if w == name));
                if assigned_somewhere && !written.contains(&name.as_str()) {
                    return ParallelizationVerdict::Serial(DependenceReason::ScalarCarried {
                        name: name.clone(),
                    });
                }
            }
            ScalarAccess::Write(name) => {
                if !written.contains(&name.as_str()) {
                    written.push(name);
                }
            }
        }
    }

    // 3. Array dependences along the outer dimension: every access (read or
    //    write) to an array that is written must use the outer loop variable
    //    with one and the same offset; otherwise distinct iterations may touch
    //    the same element.
    let outputs = kernel.output_arrays();
    for array in &outputs {
        let mut offsets: Vec<Option<i64>> = Vec::new();
        collect_outer_offsets(body, array, var, &mut offsets);
        let mut seen: Option<i64> = None;
        for off in offsets {
            match off {
                None => {
                    return ParallelizationVerdict::Serial(DependenceReason::ArrayCarried {
                        array: array.clone(),
                    })
                }
                Some(o) => match seen {
                    None => seen = Some(o),
                    Some(prev) if prev != o => {
                        return ParallelizationVerdict::Serial(DependenceReason::ArrayCarried {
                            array: array.clone(),
                        })
                    }
                    Some(_) => {}
                },
            }
        }
    }

    ParallelizationVerdict::Parallel
}

#[derive(Debug)]
enum ScalarAccess {
    Read(String),
    Write(String),
}

/// Flattens the body into the textual order of scalar reads and writes,
/// ignoring loop structure below the outer loop (a sound over-approximation
/// for the read-before-write test).
fn scalar_access_order(body: &[IrStmt]) -> Vec<ScalarAccess> {
    let mut out = Vec::new();
    fn expr_reads(e: &IrExpr, out: &mut Vec<ScalarAccess>) {
        e.walk(&mut |x| {
            if let IrExpr::Var(name) = x {
                out.push(ScalarAccess::Read(name.clone()));
            }
        });
    }
    fn go(stmts: &[IrStmt], out: &mut Vec<ScalarAccess>) {
        for stmt in stmts {
            match stmt {
                IrStmt::AssignScalar { name, value } => {
                    expr_reads(value, out);
                    out.push(ScalarAccess::Write(name.clone()));
                }
                IrStmt::Store { indices, value, .. } => {
                    for ix in indices {
                        expr_reads(ix, out);
                    }
                    expr_reads(value, out);
                }
                IrStmt::Loop { domain, body } => {
                    // The loop counter is defined by the loop itself.
                    out.push(ScalarAccess::Write(domain.var.clone()));
                    go(body, out);
                }
                IrStmt::If {
                    cond,
                    then_body,
                    else_body,
                } => {
                    expr_reads(cond, out);
                    go(then_body, out);
                    go(else_body, out);
                }
            }
        }
    }
    go(body, &mut out);
    // Loop-bound variables and loop counters of inner loops are not data
    // scalars; the read-before-write test only cares about reals, but being
    // conservative about integer temps is harmless because counters are
    // always written (by their loop) before use.
    out
}

/// For every access to `array` in `stmts`, records the constant offset of the
/// outer loop variable `outer_var` in whichever index dimension mentions it
/// (or `None` when the access cannot be expressed that way).
fn collect_outer_offsets(
    stmts: &[IrStmt],
    array: &str,
    outer_var: &str,
    out: &mut Vec<Option<i64>>,
) {
    for stmt in stmts {
        match stmt {
            IrStmt::AssignScalar { value, .. } => visit_expr(value, array, outer_var, out),
            IrStmt::Store {
                array: a,
                indices,
                value,
            } => {
                if a == array {
                    record_indices(indices, outer_var, out);
                }
                for ix in indices {
                    visit_expr(ix, array, outer_var, out);
                }
                visit_expr(value, array, outer_var, out);
            }
            IrStmt::Loop { domain, body } => {
                visit_expr(&domain.lo, array, outer_var, out);
                visit_expr(&domain.hi, array, outer_var, out);
                collect_outer_offsets(body, array, outer_var, out);
            }
            IrStmt::If {
                cond,
                then_body,
                else_body,
            } => {
                visit_expr(cond, array, outer_var, out);
                collect_outer_offsets(then_body, array, outer_var, out);
                collect_outer_offsets(else_body, array, outer_var, out);
            }
        }
    }
}

/// Records the outer-loop offset of every load of `array` inside `e`.
fn visit_expr(e: &IrExpr, array: &str, outer_var: &str, out: &mut Vec<Option<i64>>) {
    e.walk(&mut |x| {
        if let IrExpr::Load {
            array: a, indices, ..
        } = x
        {
            if a == array {
                record_indices(indices, outer_var, out);
            }
        }
    });
}

/// Extracts the constant offset of `outer_var` from one access's index list.
fn record_indices(indices: &[IrExpr], outer_var: &str, out: &mut Vec<Option<i64>>) {
    let mut found = None;
    for ix in indices {
        if let Some(aff) = ix.as_affine() {
            let coeff = aff.coeff(outer_var);
            if coeff == 1 {
                // Offset is the rest of the expression; only constant
                // remainders are considered equal across accesses.
                let mut rest = aff.clone();
                rest.terms.remove(&stng_intern::Symbol::intern(outer_var));
                if rest.terms.is_empty() {
                    found = Some(rest.constant);
                    break;
                } else {
                    found = None;
                    break;
                }
            } else if coeff != 0 {
                found = None;
                break;
            }
        } else if ix.free_vars().iter().any(|v| v == outer_var) {
            found = None;
            break;
        }
    }
    out.push(found);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::kernel_from_source;

    #[test]
    fn pointwise_copy_is_parallel() {
        let src = r#"
procedure p(n, m, a, b)
  real, dimension(1:n, 1:m) :: a
  real, dimension(1:n, 1:m) :: b
  integer :: i
  integer :: j
  do j = 1, m
    do i = 1, n
      a(i, j) = b(i, j) * 2.0
    enddo
  enddo
end procedure
"#;
        let kernel = kernel_from_source(src, 0).unwrap();
        assert!(analyze_outer_loop(&kernel).is_parallel());
    }

    #[test]
    fn scalar_recurrence_blocks_parallelization() {
        // The outer loop reads `s` before writing it, carrying a value.
        let src = r#"
procedure p(n, a, b)
  real, dimension(1:n) :: a
  real, dimension(1:n) :: b
  real :: s
  integer :: i
  do i = 1, n
    a(i) = s + b(i)
    s = b(i)
  enddo
end procedure
"#;
        let kernel = kernel_from_source(src, 0).unwrap();
        match analyze_outer_loop(&kernel) {
            ParallelizationVerdict::Serial(DependenceReason::ScalarCarried { name }) => {
                assert_eq!(name, "s");
            }
            other => panic!("expected scalar-carried dependence, got {other:?}"),
        }
    }

    #[test]
    fn privatizable_scalar_does_not_block() {
        // `t` is written at the top of each iteration before being read.
        let src = r#"
procedure p(n, m, a, b)
  real, dimension(1:n, 1:m) :: a
  real, dimension(1:n, 1:m) :: b
  real :: t
  integer :: i
  integer :: j
  do j = 1, m
    t = b(1, j)
    do i = 1, n
      a(i, j) = b(i, j) + t
    enddo
  enddo
end procedure
"#;
        let kernel = kernel_from_source(src, 0).unwrap();
        assert!(analyze_outer_loop(&kernel).is_parallel());
    }

    #[test]
    fn array_recurrence_along_outer_dim_blocks() {
        let src = r#"
procedure p(n, a)
  real, dimension(0:n) :: a
  integer :: i
  do i = 1, n
    a(i) = a(i-1) * 0.5
  enddo
end procedure
"#;
        let kernel = kernel_from_source(src, 0).unwrap();
        match analyze_outer_loop(&kernel) {
            ParallelizationVerdict::Serial(DependenceReason::ArrayCarried { array }) => {
                assert_eq!(array, "a");
            }
            other => panic!("expected array-carried dependence, got {other:?}"),
        }
    }

    #[test]
    fn non_affine_bounds_are_not_analyzable() {
        let src = r#"
procedure p(n, nb, a, b)
  real, dimension(1:n) :: a
  real, dimension(1:n) :: b
  integer :: ii
  integer :: i
  do ii = 1, n, 1
    do i = ii*nb, min(n, ii*nb + nb)
      a(i) = b(i)
    enddo
  enddo
end procedure
"#;
        let kernel = kernel_from_source(src, 0).unwrap();
        assert!(matches!(
            analyze_outer_loop(&kernel),
            ParallelizationVerdict::NotAnalyzable(_)
        ));
    }
}
