//! Data-value domains for kernel interpretation.
//!
//! The interpreter is generic over the domain of floating-point data so the
//! same execution engine serves three purposes:
//!
//! * `f64` — concrete execution for performance measurement and testing,
//! * [`ModInt`] — the "integer field modulo 7" model the paper uses during
//!   synthesis to sidestep floating-point reasoning (§4.4), and
//! * the symbolic domain defined in the `stng-sym` crate, used for inductive
//!   template generation.
//!
//! Math intrinsics are pure; in the modular domain they are modeled as
//! uninterpreted functions whose results are a deterministic hash of the
//! function name and arguments, which preserves the congruence property
//! (`x = y ⇒ f(x) = f(y)`) that lifting relies on.

use std::fmt;
use std::hash::{Hash, Hasher};

/// The prime modulus used by the synthesis-time data domain (§4.4 of the
/// paper models floating point values as an integer field modulo 7).
pub const MOD_FIELD: i64 = 7;

/// A value in the floating-point data domain of a kernel.
///
/// Implementations must be total: division by zero and other undefined cases
/// must return a value rather than panic, because CEGIS freely evaluates
/// kernels on random states.
pub trait DataValue: Clone + fmt::Debug + PartialEq {
    /// Injects a real literal into the domain.
    fn from_const(value: f64) -> Self;
    /// Addition.
    fn add(&self, other: &Self) -> Self;
    /// Subtraction.
    fn sub(&self, other: &Self) -> Self;
    /// Multiplication.
    fn mul(&self, other: &Self) -> Self;
    /// Division (total; implementations choose a value for division by zero).
    fn div(&self, other: &Self) -> Self;
    /// Negation.
    fn neg(&self) -> Self;
    /// Application of a pure math function.
    fn apply(func: &str, args: &[Self]) -> Self;
    /// Attempts to view the value as an integer index (used only for
    /// indirect accesses, which lifted kernels never contain).
    fn as_index(&self) -> Option<i64> {
        None
    }
}

impl DataValue for f64 {
    fn from_const(value: f64) -> Self {
        value
    }

    fn add(&self, other: &Self) -> Self {
        self + other
    }

    fn sub(&self, other: &Self) -> Self {
        self - other
    }

    fn mul(&self, other: &Self) -> Self {
        self * other
    }

    fn div(&self, other: &Self) -> Self {
        if *other == 0.0 {
            0.0
        } else {
            self / other
        }
    }

    fn neg(&self) -> Self {
        -self
    }

    fn apply(func: &str, args: &[Self]) -> Self {
        match (func, args) {
            ("exp", [x]) => x.exp(),
            ("log", [x]) => {
                if *x > 0.0 {
                    x.ln()
                } else {
                    0.0
                }
            }
            ("sqrt", [x]) => {
                if *x >= 0.0 {
                    x.sqrt()
                } else {
                    0.0
                }
            }
            ("sin", [x]) => x.sin(),
            ("cos", [x]) => x.cos(),
            ("tan", [x]) => x.tan(),
            ("abs", [x]) => x.abs(),
            ("min", [x, y]) => x.min(*y),
            ("max", [x, y]) => x.max(*y),
            ("mod", [x, y]) => {
                if *y == 0.0 {
                    0.0
                } else {
                    x.rem_euclid(*y)
                }
            }
            ("sign", [x, y]) => x.abs() * y.signum(),
            _ => {
                // Unknown pure function: deterministic but arbitrary.
                let mut acc = 0.0;
                for (k, a) in args.iter().enumerate() {
                    acc += a * (k as f64 + 1.0);
                }
                acc
            }
        }
    }

    fn as_index(&self) -> Option<i64> {
        if self.fract() == 0.0 && self.abs() < 1e15 {
            Some(*self as i64)
        } else {
            None
        }
    }
}

/// An element of the integer field `Z mod MOD_FIELD`, used as the
/// synthesis-time stand-in for floating-point data.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct ModInt(i64);

impl ModInt {
    /// Creates the field element `value mod MOD_FIELD`.
    pub fn new(value: i64) -> ModInt {
        ModInt(value.rem_euclid(MOD_FIELD))
    }

    /// The canonical representative in `0..MOD_FIELD`.
    pub fn value(self) -> i64 {
        self.0
    }

    /// Multiplicative inverse (returns zero for the zero element, keeping the
    /// operation total).
    pub fn inverse(self) -> ModInt {
        if self.0 == 0 {
            return ModInt(0);
        }
        // Fermat's little theorem: a^(p-2) mod p.
        let mut result = 1i64;
        let mut base = self.0;
        let mut exp = MOD_FIELD - 2;
        while exp > 0 {
            if exp & 1 == 1 {
                result = result * base % MOD_FIELD;
            }
            base = base * base % MOD_FIELD;
            exp >>= 1;
        }
        ModInt(result)
    }
}

impl fmt::Display for ModInt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl DataValue for ModInt {
    fn from_const(value: f64) -> Self {
        // Constants are mapped into the field through a rational
        // approximation `p/q ↦ p·q⁻¹ (mod 7)`. This makes the injection a
        // ring homomorphism on the small rationals stencil codes use, so the
        // synthesizer's constant folding (e.g. `0.25 + 1 = 1.25`) agrees with
        // the kernel's step-by-step evaluation in the modular domain.
        let (p, q) = rational_approx(value);
        ModInt::new(p).mul(&ModInt::new(q).inverse())
    }

    fn add(&self, other: &Self) -> Self {
        ModInt::new(self.0 + other.0)
    }

    fn sub(&self, other: &Self) -> Self {
        ModInt::new(self.0 - other.0)
    }

    fn mul(&self, other: &Self) -> Self {
        ModInt::new(self.0 * other.0)
    }

    fn div(&self, other: &Self) -> Self {
        self.mul(&other.inverse())
    }

    fn neg(&self) -> Self {
        ModInt::new(-self.0)
    }

    fn apply(func: &str, args: &[Self]) -> Self {
        // Uninterpreted: a deterministic hash of the name and arguments,
        // respecting congruence.
        let mut hasher = std::collections::hash_map::DefaultHasher::new();
        func.hash(&mut hasher);
        for a in args {
            a.0.hash(&mut hasher);
        }
        ModInt::new((hasher.finish() % (MOD_FIELD as u64)) as i64)
    }

    fn as_index(&self) -> Option<i64> {
        Some(self.0)
    }
}

/// Best small-denominator rational approximation of `value` (continued
/// fractions, denominators up to 10⁶). Falls back to rounding when the value
/// is not close to any small rational.
fn rational_approx(value: f64) -> (i64, i64) {
    let negative = value < 0.0;
    let mut x = value.abs();
    let (mut p0, mut q0, mut p1, mut q1) = (0i64, 1i64, 1i64, 0i64);
    for _ in 0..40 {
        let a = x.floor();
        let ai = a as i64;
        let (p2, q2) = (ai * p1 + p0, ai * q1 + q0);
        if q2 > 1_000_000 || q2 <= 0 {
            break;
        }
        p0 = p1;
        q0 = q1;
        p1 = p2;
        q1 = q2;
        let frac = x - a;
        if frac.abs() < 1e-12 || (p1 as f64 / q1 as f64 - value.abs()).abs() < 1e-12 {
            break;
        }
        x = 1.0 / frac;
    }
    if q1 == 0 {
        return (value.round() as i64, 1);
    }
    (if negative { -p1 } else { p1 }, q1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rational_approximation_recovers_small_fractions() {
        assert_eq!(rational_approx(0.25), (1, 4));
        assert_eq!(rational_approx(-0.5), (-1, 2));
        assert_eq!(rational_approx(3.0), (3, 1));
        let (p, q) = rational_approx(0.0416);
        assert!((p as f64 / q as f64 - 0.0416).abs() < 1e-9);
    }

    #[test]
    fn constant_injection_is_a_ring_homomorphism_on_small_rationals() {
        let quarter = ModInt::from_const(0.25);
        let one = ModInt::from_const(1.0);
        assert_eq!(quarter.add(&one), ModInt::from_const(1.25));
        assert_eq!(
            ModInt::from_const(0.5).mul(&ModInt::from_const(0.5)),
            ModInt::from_const(0.25)
        );
        assert_eq!(
            ModInt::from_const(2.0).mul(&ModInt::from_const(0.0416)),
            ModInt::from_const(0.0832)
        );
    }

    #[test]
    fn mod_int_field_axioms() {
        for a in 0..MOD_FIELD {
            for b in 0..MOD_FIELD {
                let x = ModInt::new(a);
                let y = ModInt::new(b);
                // Commutativity.
                assert_eq!(x.add(&y), y.add(&x));
                assert_eq!(x.mul(&y), y.mul(&x));
                // Subtraction is the inverse of addition.
                assert_eq!(x.add(&y).sub(&y), x);
                // Division is the inverse of multiplication (when defined).
                if b % MOD_FIELD != 0 {
                    assert_eq!(x.mul(&y).div(&y), x);
                }
            }
        }
    }

    #[test]
    fn mod_int_inverse() {
        for a in 1..MOD_FIELD {
            let x = ModInt::new(a);
            assert_eq!(x.mul(&x.inverse()), ModInt::new(1));
        }
        assert_eq!(ModInt::new(0).inverse(), ModInt::new(0));
    }

    #[test]
    fn uninterpreted_functions_respect_congruence() {
        let a = [ModInt::new(3), ModInt::new(5)];
        let b = [ModInt::new(3), ModInt::new(5)];
        assert_eq!(ModInt::apply("exp", &a), ModInt::apply("exp", &b));
        // Different function names should (almost surely) differ somewhere;
        // check at least one separating input exists.
        let mut separated = false;
        for v in 0..MOD_FIELD {
            let arg = [ModInt::new(v)];
            if ModInt::apply("exp", &arg) != ModInt::apply("log", &arg) {
                separated = true;
            }
        }
        assert!(separated);
    }

    #[test]
    fn f64_domain_total_division_and_intrinsics() {
        assert_eq!(2.0f64.div(&0.0), 0.0);
        assert_eq!(f64::apply("max", &[1.0, 3.0]), 3.0);
        assert_eq!(f64::apply("abs", &[-2.0]), 2.0);
        assert_eq!(f64::apply("sqrt", &[-1.0]), 0.0);
        assert_eq!(4.0f64.as_index(), Some(4));
        assert_eq!(4.5f64.as_index(), None);
    }

    #[test]
    fn mod_int_constant_injection_distinguishes_small_constants() {
        let one = ModInt::from_const(1.0);
        let two = ModInt::from_const(2.0);
        let half = ModInt::from_const(0.5);
        assert_ne!(one, two);
        assert_ne!(one, half);
    }
}
