//! Candidate stencil identification (§5.1 of the paper).
//!
//! STNG first iterates over all intraprocedural loop nests and flags those
//! that *could* be stencils using a deliberately liberal test: the loop must
//! use arrays, and its array indices must not be indirect (no array reads or
//! function calls inside an index expression). Consecutive flagged loop nests
//! are merged into a single code fragment. Whether a flagged fragment can
//! actually be translated is decided later by the lifter.

use crate::ast::{walk, Expr, Procedure, Stmt};

/// Why a top-level loop nest was not flagged as a candidate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SkipReason {
    /// The loop nest does not reference any array.
    NoArrayUse,
    /// The loop nest indexes an array with an indirect expression (an array
    /// read or function call inside an index).
    IndirectAccess,
}

/// A contiguous code fragment flagged for lifting: one loop nest, or several
/// consecutive loop nests merged together.
#[derive(Debug, Clone, PartialEq)]
pub struct CandidateFragment {
    /// Synthetic fragment name: `<procedure>_k<index>`.
    pub name: String,
    /// Index of the fragment within the procedure (0-based).
    pub index: usize,
    /// The statements making up the fragment (each is an outermost `do`).
    pub stmts: Vec<Stmt>,
}

/// The classification of every outermost loop construct of a procedure.
#[derive(Debug, Clone, PartialEq)]
pub struct LoopClassification {
    /// Fragments flagged as candidates, in source order.
    pub candidates: Vec<CandidateFragment>,
    /// Outermost loops that were skipped, with the reason.
    pub skipped: Vec<(usize, SkipReason)>,
}

/// Returns only the candidate fragments of `proc` (the common entry point).
pub fn identify_candidates(proc: &Procedure) -> Vec<CandidateFragment> {
    classify_loops(proc).candidates
}

/// Classifies every outermost loop nest of `proc`, merging consecutive
/// candidate loops into fragments.
pub fn classify_loops(proc: &Procedure) -> LoopClassification {
    let mut candidates: Vec<CandidateFragment> = Vec::new();
    let mut skipped = Vec::new();
    let mut pending: Vec<Stmt> = Vec::new();
    let mut loop_index = 0usize;

    let flush = |pending: &mut Vec<Stmt>, candidates: &mut Vec<CandidateFragment>| {
        if pending.is_empty() {
            return;
        }
        let index = candidates.len();
        candidates.push(CandidateFragment {
            name: format!("{}_k{}", proc.name, index),
            index,
            stmts: std::mem::take(pending),
        });
    };

    for stmt in &proc.body {
        match stmt {
            Stmt::Do { .. } => {
                let verdict = classify_single_loop(stmt);
                match verdict {
                    Ok(()) => pending.push(stmt.clone()),
                    Err(reason) => {
                        flush(&mut pending, &mut candidates);
                        skipped.push((loop_index, reason));
                    }
                }
                loop_index += 1;
            }
            _ => {
                // Any non-loop statement breaks fragment contiguity.
                flush(&mut pending, &mut candidates);
            }
        }
    }
    flush(&mut pending, &mut candidates);

    LoopClassification {
        candidates,
        skipped,
    }
}

/// Applies the §5.1 candidacy filters to a single outermost loop.
fn classify_single_loop(stmt: &Stmt) -> Result<(), SkipReason> {
    let stmts = std::slice::from_ref(stmt);
    let mut uses_arrays = false;
    let mut indirect = false;
    walk::visit_exprs(stmts, &mut |e: &Expr| {
        if e.uses_arrays() {
            uses_arrays = true;
        }
        if e.has_indirect_index() {
            indirect = true;
        }
    });
    // The assignment *targets* also count as array uses.
    walk::visit_stmts(stmts, &mut |s| {
        if let Stmt::Assign {
            target: crate::ast::LValue::Array { indices, .. },
            ..
        } = s
        {
            uses_arrays = true;
            for ix in indices {
                if ix.uses_arrays() || matches!(ix, Expr::Call { .. }) || ix.has_indirect_index() {
                    indirect = true;
                }
                let mut has_call = false;
                ix.walk(&mut |sub| {
                    if matches!(sub, Expr::Call { .. }) {
                        has_call = true;
                    }
                });
                if has_call {
                    indirect = true;
                }
            }
        }
    });
    if !uses_arrays {
        return Err(SkipReason::NoArrayUse);
    }
    if indirect {
        return Err(SkipReason::IndirectAccess);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    fn first_proc(src: &str) -> Procedure {
        parse_program(src).unwrap().procedures.remove(0)
    }

    #[test]
    fn simple_stencil_is_a_candidate() {
        let proc = first_proc(
            r#"
procedure p(n, a, b)
  real, dimension(1:n) :: a
  real, dimension(1:n) :: b
  integer :: i
  do i = 2, n
    a(i) = b(i) + b(i-1)
  enddo
end procedure
"#,
        );
        let classification = classify_loops(&proc);
        assert_eq!(classification.candidates.len(), 1);
        assert_eq!(classification.candidates[0].name, "p_k0");
        assert!(classification.skipped.is_empty());
    }

    #[test]
    fn loop_without_arrays_is_skipped() {
        let proc = first_proc(
            r#"
procedure p(n)
  real :: s
  integer :: i
  do i = 1, n
    s = s + 1.0
  enddo
end procedure
"#,
        );
        let classification = classify_loops(&proc);
        assert!(classification.candidates.is_empty());
        assert_eq!(classification.skipped, vec![(0, SkipReason::NoArrayUse)]);
    }

    #[test]
    fn indirect_access_is_skipped() {
        let proc = first_proc(
            r#"
procedure p(n, a, idx)
  real, dimension(1:n) :: a
  real, dimension(1:n) :: idx
  integer :: i
  do i = 1, n
    a(idx(i)) = 1.0
  enddo
end procedure
"#,
        );
        let classification = classify_loops(&proc);
        assert!(classification.candidates.is_empty());
        assert_eq!(
            classification.skipped,
            vec![(0, SkipReason::IndirectAccess)]
        );
    }

    #[test]
    fn consecutive_candidate_loops_merge_into_one_fragment() {
        let proc = first_proc(
            r#"
procedure p(n, a, b)
  real, dimension(1:n) :: a
  real, dimension(1:n) :: b
  integer :: i
  do i = 1, n
    a(i) = b(i)
  enddo
  do i = 1, n
    b(i) = a(i) * 2.0
  enddo
end procedure
"#,
        );
        let classification = classify_loops(&proc);
        assert_eq!(classification.candidates.len(), 1);
        assert_eq!(classification.candidates[0].stmts.len(), 2);
    }

    #[test]
    fn interleaved_scalar_statement_splits_fragments() {
        let proc = first_proc(
            r#"
procedure p(n, a, b)
  real, dimension(1:n) :: a
  real, dimension(1:n) :: b
  real :: s
  integer :: i
  do i = 1, n
    a(i) = b(i)
  enddo
  s = 0.0
  do i = 1, n
    b(i) = a(i) * 2.0
  enddo
end procedure
"#,
        );
        let classification = classify_loops(&proc);
        assert_eq!(classification.candidates.len(), 2);
        assert_eq!(classification.candidates[0].name, "p_k0");
        assert_eq!(classification.candidates[1].name, "p_k1");
    }

    #[test]
    fn conditional_loops_are_still_candidates() {
        // Conditionals do not prevent candidacy — they make translation fail
        // later, which is how Table 2 distinguishes untranslated stencils.
        let proc = first_proc(
            r#"
procedure p(n, a, b)
  real, dimension(1:n) :: a
  real, dimension(1:n) :: b
  integer :: i
  do i = 1, n
    if (b(i) > 0.0) then
      a(i) = b(i)
    endif
  enddo
end procedure
"#,
        );
        let classification = classify_loops(&proc);
        assert_eq!(classification.candidates.len(), 1);
    }

    #[test]
    fn reduction_loop_is_flagged_even_though_not_a_stencil() {
        let proc = first_proc(
            r#"
procedure p(n, b)
  real, dimension(1:n) :: b
  real :: s
  integer :: i
  do i = 1, n
    s = s + b(i)
  enddo
end procedure
"#,
        );
        let classification = classify_loops(&proc);
        assert_eq!(classification.candidates.len(), 1);
    }
}
