//! Surface abstract syntax for the Fortran-style loop-nest subset accepted by
//! the STNG reproduction.
//!
//! The subset mirrors the kernels shown in the paper: procedures with scalar
//! and multidimensional array parameters, `do` loops (optionally with an
//! explicit step), scalar and array assignments, arithmetic expressions over
//! reals and integers, calls to pure math intrinsics, and `if` statements
//! (which the identifier flags and the lifter rejects, matching §5.4).

use std::fmt;

/// A parsed translation unit: one or more procedures plus file-level
/// annotations.
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    /// Procedures in source order.
    pub procedures: Vec<Procedure>,
}

/// A single Fortran procedure.
#[derive(Debug, Clone, PartialEq)]
pub struct Procedure {
    /// Procedure name.
    pub name: String,
    /// Formal parameter names, in order.
    pub params: Vec<String>,
    /// Variable and array declarations.
    pub decls: Vec<Decl>,
    /// Executable statements.
    pub body: Vec<Stmt>,
    /// `STNG: assume(e)` annotations attached to this procedure.
    pub annotations: Vec<Annotation>,
}

impl Procedure {
    /// Returns the declaration for `name`, if any.
    pub fn decl(&self, name: &str) -> Option<&Decl> {
        self.decls.iter().find(|d| d.name == name)
    }

    /// Returns `true` when `name` is declared as an array.
    pub fn is_array(&self, name: &str) -> bool {
        self.decl(name).map(|d| d.dims.is_some()).unwrap_or(false)
    }

    /// Returns `true` when `name` is declared with integer type (loop
    /// counters, bounds). Undeclared parameters default to integer, matching
    /// Fortran implicit conventions for the kernels in our corpus.
    pub fn is_integer(&self, name: &str) -> bool {
        match self.decl(name) {
            Some(d) => d.ty == Type::Integer && d.dims.is_none(),
            None => self.params.iter().any(|p| p == name),
        }
    }
}

/// Scalar element type of a declaration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Type {
    /// `real (kind=8)` — double precision data.
    Real,
    /// `integer` — loop counters and bounds.
    Integer,
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Type::Real => write!(f, "real"),
            Type::Integer => write!(f, "integer"),
        }
    }
}

/// A variable or array declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct Decl {
    /// Declared name.
    pub name: String,
    /// Element type.
    pub ty: Type,
    /// For arrays, the `(lower:upper, ...)` bounds of each dimension; `None`
    /// for scalars.
    pub dims: Option<Vec<DimRange>>,
}

/// Declared bounds of one array dimension.
#[derive(Debug, Clone, PartialEq)]
pub struct DimRange {
    /// Inclusive lower bound.
    pub lower: Expr,
    /// Inclusive upper bound.
    pub upper: Expr,
}

/// A `STNG: assume(e)` annotation (§5.2), giving the lifter an extra
/// precondition on the kernel inputs.
#[derive(Debug, Clone, PartialEq)]
pub struct Annotation {
    /// The assumed boolean expression.
    pub assumption: Expr,
    /// 1-based source line the comment appeared on.
    pub line: usize,
}

/// Executable statements.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// Assignment to a scalar or an array element.
    Assign { target: LValue, value: Expr },
    /// A counted `do` loop: `do var = lo, hi [, step]`.
    Do {
        var: String,
        lo: Expr,
        hi: Expr,
        step: Option<Expr>,
        body: Vec<Stmt>,
        /// 1-based source line of the `do` keyword (0 = synthetic).
        line: usize,
    },
    /// An `if`/`else` statement.
    If {
        cond: Expr,
        then_body: Vec<Stmt>,
        else_body: Vec<Stmt>,
    },
    /// A call statement to a Fortran procedure (not an intrinsic).
    Call { name: String, args: Vec<Expr> },
    /// `exit` (break out of the loop) — unstructured control flow.
    Exit,
    /// `cycle` (continue with the next iteration) — unstructured control flow.
    Cycle,
}

/// Assignment targets.
#[derive(Debug, Clone, PartialEq)]
pub enum LValue {
    /// A scalar variable.
    Scalar(String),
    /// An array element `name(indices...)`.
    Array { name: String, indices: Vec<Expr> },
}

impl LValue {
    /// Name of the variable or array being written.
    pub fn name(&self) -> &str {
        match self {
            LValue::Scalar(n) => n,
            LValue::Array { name, .. } => name,
        }
    }
}

/// Binary arithmetic operators of the surface language.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOpKind {
    Add,
    Sub,
    Mul,
    Div,
}

impl fmt::Display for BinOpKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BinOpKind::Add => "+",
            BinOpKind::Sub => "-",
            BinOpKind::Mul => "*",
            BinOpKind::Div => "/",
        };
        write!(f, "{s}")
    }
}

/// Comparison operators (used in `if` conditions and annotations).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOpKind {
    Lt,
    Le,
    Gt,
    Ge,
    Eq,
    Ne,
}

impl fmt::Display for CmpOpKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOpKind::Lt => "<",
            CmpOpKind::Le => "<=",
            CmpOpKind::Gt => ">",
            CmpOpKind::Ge => ">=",
            CmpOpKind::Eq => "==",
            CmpOpKind::Ne => "/=",
        };
        write!(f, "{s}")
    }
}

/// Surface expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Integer literal.
    Int(i64),
    /// Real literal.
    Real(f64),
    /// Variable reference.
    Var(String),
    /// Array element reference `name(indices...)`.
    ArrayRef { name: String, indices: Vec<Expr> },
    /// Binary arithmetic.
    Bin {
        op: BinOpKind,
        lhs: Box<Expr>,
        rhs: Box<Expr>,
    },
    /// Unary negation.
    Neg(Box<Expr>),
    /// Call to a (pure) intrinsic or function, e.g. `exp(x)`.
    Call { name: String, args: Vec<Expr> },
    /// Comparison (boolean-valued).
    Cmp {
        op: CmpOpKind,
        lhs: Box<Expr>,
        rhs: Box<Expr>,
    },
    /// Logical conjunction of boolean expressions.
    And(Box<Expr>, Box<Expr>),
    /// Logical disjunction of boolean expressions.
    Or(Box<Expr>, Box<Expr>),
    /// Logical negation of a boolean expression.
    Not(Box<Expr>),
}

impl Expr {
    /// Convenience constructor for a variable reference.
    pub fn var(name: impl Into<String>) -> Expr {
        Expr::Var(name.into())
    }

    /// Convenience constructor for a binary expression.
    pub fn bin(op: BinOpKind, lhs: Expr, rhs: Expr) -> Expr {
        Expr::Bin {
            op,
            lhs: Box::new(lhs),
            rhs: Box::new(rhs),
        }
    }

    /// Visits every sub-expression (including `self`), pre-order.
    pub fn walk<'a>(&'a self, visit: &mut impl FnMut(&'a Expr)) {
        visit(self);
        match self {
            Expr::Int(_) | Expr::Real(_) | Expr::Var(_) => {}
            Expr::ArrayRef { indices, .. } => {
                for ix in indices {
                    ix.walk(visit);
                }
            }
            Expr::Bin { lhs, rhs, .. } | Expr::Cmp { lhs, rhs, .. } => {
                lhs.walk(visit);
                rhs.walk(visit);
            }
            Expr::And(a, b) | Expr::Or(a, b) => {
                a.walk(visit);
                b.walk(visit);
            }
            Expr::Neg(e) | Expr::Not(e) => e.walk(visit),
            Expr::Call { args, .. } => {
                for a in args {
                    a.walk(visit);
                }
            }
        }
    }

    /// Returns `true` when the expression mentions any array element.
    pub fn uses_arrays(&self) -> bool {
        let mut found = false;
        self.walk(&mut |e| {
            if matches!(e, Expr::ArrayRef { .. }) {
                found = true;
            }
        });
        found
    }

    /// Returns `true` when any array index sub-expression itself contains an
    /// array reference or a function call (an "indirect" access, which §5.1
    /// excludes from candidacy).
    pub fn has_indirect_index(&self) -> bool {
        let mut found = false;
        self.walk(&mut |e| {
            if let Expr::ArrayRef { indices, .. } = e {
                for ix in indices {
                    let mut inner = false;
                    ix.walk(&mut |sub| {
                        if matches!(sub, Expr::ArrayRef { .. } | Expr::Call { .. }) {
                            inner = true;
                        }
                    });
                    if inner {
                        found = true;
                    }
                }
            }
        });
        found
    }

    /// Names of all scalar variables mentioned in the expression.
    pub fn free_vars(&self) -> Vec<String> {
        let mut vars = Vec::new();
        self.walk(&mut |e| {
            if let Expr::Var(name) = e {
                if !vars.contains(name) {
                    vars.push(name.clone());
                }
            }
        });
        vars
    }
}

/// Statement helpers shared by the identifier and the lowering pass.
pub mod walk {
    use super::*;

    /// Visits every statement in `stmts` (including nested bodies), pre-order.
    pub fn visit_stmts<'a>(stmts: &'a [Stmt], visit: &mut impl FnMut(&'a Stmt)) {
        for stmt in stmts {
            visit(stmt);
            match stmt {
                Stmt::Do { body, .. } => visit_stmts(body, visit),
                Stmt::If {
                    then_body,
                    else_body,
                    ..
                } => {
                    visit_stmts(then_body, visit);
                    visit_stmts(else_body, visit);
                }
                Stmt::Assign { .. } | Stmt::Call { .. } | Stmt::Exit | Stmt::Cycle => {}
            }
        }
    }

    /// Visits every expression occurring anywhere in `stmts`.
    pub fn visit_exprs<'a>(stmts: &'a [Stmt], visit: &mut impl FnMut(&'a Expr)) {
        visit_stmts(stmts, &mut |stmt| match stmt {
            Stmt::Assign { target, value } => {
                if let LValue::Array { indices, .. } = target {
                    for ix in indices {
                        ix.walk(visit);
                    }
                }
                value.walk(visit);
            }
            Stmt::Do { lo, hi, step, .. } => {
                lo.walk(visit);
                hi.walk(visit);
                if let Some(s) = step {
                    s.walk(visit);
                }
            }
            Stmt::If { cond, .. } => cond.walk(visit),
            Stmt::Call { args, .. } => {
                for a in args {
                    a.walk(visit);
                }
            }
            Stmt::Exit | Stmt::Cycle => {}
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn aref(name: &str, ix: Vec<Expr>) -> Expr {
        Expr::ArrayRef {
            name: name.into(),
            indices: ix,
        }
    }

    #[test]
    fn uses_arrays_detects_nested_references() {
        let e = Expr::bin(
            BinOpKind::Add,
            Expr::var("t"),
            aref("b", vec![Expr::var("i")]),
        );
        assert!(e.uses_arrays());
        assert!(!Expr::var("t").uses_arrays());
    }

    #[test]
    fn indirect_index_detection() {
        let direct = aref("a", vec![Expr::var("i")]);
        assert!(!direct.has_indirect_index());

        let indirect = aref("a", vec![aref("idx", vec![Expr::var("i")])]);
        assert!(indirect.has_indirect_index());

        let call_index = aref(
            "a",
            vec![Expr::Call {
                name: "f".into(),
                args: vec![Expr::var("i")],
            }],
        );
        assert!(call_index.has_indirect_index());
    }

    #[test]
    fn free_vars_are_deduplicated() {
        let e = Expr::bin(
            BinOpKind::Mul,
            Expr::bin(BinOpKind::Add, Expr::var("i"), Expr::var("j")),
            Expr::var("i"),
        );
        assert_eq!(e.free_vars(), vec!["i".to_string(), "j".to_string()]);
    }

    #[test]
    fn walk_visits_loop_bounds() {
        let stmt = Stmt::Do {
            var: "i".into(),
            lo: Expr::var("imin"),
            hi: Expr::var("imax"),
            step: None,
            body: vec![Stmt::Assign {
                target: LValue::Scalar("t".into()),
                value: Expr::Int(0),
            }],
            line: 0,
        };
        let mut names = Vec::new();
        walk::visit_exprs(std::slice::from_ref(&stmt), &mut |e| {
            if let Expr::Var(n) = e {
                names.push(n.clone());
            }
        });
        assert!(names.contains(&"imin".to_string()));
        assert!(names.contains(&"imax".to_string()));
    }
}
