//! Canonical intermediate representation for candidate kernels.
//!
//! The lowering pass (see [`crate::lower`]) turns an accepted Fortran loop
//! nest into a [`Kernel`]: a symbol table plus a tree of canonical statements.
//! All later stages — symbolic execution, verification-condition generation,
//! synthesis, and code generation — work on this representation, mirroring the
//! "simpler intermediate language" of §5.1 in the paper.

use std::collections::BTreeMap;
use std::fmt;
use stng_intern::Symbol;

/// Kind of a symbol appearing in a kernel.
#[derive(Debug, Clone, PartialEq)]
pub enum ParamKind {
    /// An integer scalar (loop bound, counter, size).
    IntScalar,
    /// A floating-point scalar.
    RealScalar,
    /// A multidimensional array of reals with per-dimension inclusive bounds
    /// expressed over the integer scalars.
    Array { dims: Vec<(IrExpr, IrExpr)> },
}

impl ParamKind {
    /// Returns `true` for array symbols.
    pub fn is_array(&self) -> bool {
        matches!(self, ParamKind::Array { .. })
    }
}

/// A named symbol (parameter or local) of a kernel.
#[derive(Debug, Clone, PartialEq)]
pub struct Param {
    /// Symbol name.
    pub name: String,
    /// Symbol kind.
    pub kind: ParamKind,
}

/// Binary arithmetic operators of the IR.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
        };
        write!(f, "{s}")
    }
}

/// Comparison operators of the IR (loop conditions, annotations, `if`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    Lt,
    Le,
    Gt,
    Ge,
    Eq,
    Ne,
}

impl CmpOp {
    /// Evaluates the comparison on two integers.
    pub fn eval(self, lhs: i64, rhs: i64) -> bool {
        match self {
            CmpOp::Lt => lhs < rhs,
            CmpOp::Le => lhs <= rhs,
            CmpOp::Gt => lhs > rhs,
            CmpOp::Ge => lhs >= rhs,
            CmpOp::Eq => lhs == rhs,
            CmpOp::Ne => lhs != rhs,
        }
    }

    /// The comparison with operands swapped (`a op b` ⇔ `b op.flip() a`).
    pub fn flip(self) -> CmpOp {
        match self {
            CmpOp::Lt => CmpOp::Gt,
            CmpOp::Le => CmpOp::Ge,
            CmpOp::Gt => CmpOp::Lt,
            CmpOp::Ge => CmpOp::Le,
            CmpOp::Eq => CmpOp::Eq,
            CmpOp::Ne => CmpOp::Ne,
        }
    }

    /// The negated comparison (`¬(a op b)` ⇔ `a op.negate() b`).
    pub fn negate(self) -> CmpOp {
        match self {
            CmpOp::Lt => CmpOp::Ge,
            CmpOp::Le => CmpOp::Gt,
            CmpOp::Gt => CmpOp::Le,
            CmpOp::Ge => CmpOp::Lt,
            CmpOp::Eq => CmpOp::Ne,
            CmpOp::Ne => CmpOp::Eq,
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
            CmpOp::Eq => "==",
            CmpOp::Ne => "!=",
        };
        write!(f, "{s}")
    }
}

/// Expressions of the canonical IR.
#[derive(Debug, Clone, PartialEq)]
pub enum IrExpr {
    /// Integer constant.
    Int(i64),
    /// Real constant.
    Real(f64),
    /// Scalar variable (integer or real, per the kernel symbol table).
    Var(String),
    /// Array element read.
    Load { array: String, indices: Vec<IrExpr> },
    /// Binary arithmetic.
    Bin {
        op: BinOp,
        lhs: Box<IrExpr>,
        rhs: Box<IrExpr>,
    },
    /// Call to a pure math function, modeled as uninterpreted during lifting.
    Call { func: String, args: Vec<IrExpr> },
    /// Comparison (boolean-valued).
    Cmp {
        op: CmpOp,
        lhs: Box<IrExpr>,
        rhs: Box<IrExpr>,
    },
    /// Conjunction of boolean expressions.
    And(Box<IrExpr>, Box<IrExpr>),
    /// Disjunction of boolean expressions.
    Or(Box<IrExpr>, Box<IrExpr>),
    /// Negation of a boolean expression.
    Not(Box<IrExpr>),
}

impl IrExpr {
    /// Convenience constructor for a variable reference.
    pub fn var(name: impl Into<String>) -> IrExpr {
        IrExpr::Var(name.into())
    }

    /// Convenience constructor for a binary operation.
    pub fn bin(op: BinOp, lhs: IrExpr, rhs: IrExpr) -> IrExpr {
        IrExpr::Bin {
            op,
            lhs: Box::new(lhs),
            rhs: Box::new(rhs),
        }
    }

    /// `lhs + rhs`
    #[allow(clippy::should_implement_trait)]
    pub fn add(lhs: IrExpr, rhs: IrExpr) -> IrExpr {
        IrExpr::bin(BinOp::Add, lhs, rhs)
    }

    /// `lhs - rhs`
    #[allow(clippy::should_implement_trait)]
    pub fn sub(lhs: IrExpr, rhs: IrExpr) -> IrExpr {
        IrExpr::bin(BinOp::Sub, lhs, rhs)
    }

    /// `lhs * rhs`
    #[allow(clippy::should_implement_trait)]
    pub fn mul(lhs: IrExpr, rhs: IrExpr) -> IrExpr {
        IrExpr::bin(BinOp::Mul, lhs, rhs)
    }

    /// Convenience constructor for a comparison.
    pub fn cmp(op: CmpOp, lhs: IrExpr, rhs: IrExpr) -> IrExpr {
        IrExpr::Cmp {
            op,
            lhs: Box::new(lhs),
            rhs: Box::new(rhs),
        }
    }

    /// Visits every sub-expression, pre-order.
    pub fn walk<'a>(&'a self, visit: &mut impl FnMut(&'a IrExpr)) {
        visit(self);
        match self {
            IrExpr::Int(_) | IrExpr::Real(_) | IrExpr::Var(_) => {}
            IrExpr::Load { indices, .. } => {
                for ix in indices {
                    ix.walk(visit);
                }
            }
            IrExpr::Bin { lhs, rhs, .. } | IrExpr::Cmp { lhs, rhs, .. } => {
                lhs.walk(visit);
                rhs.walk(visit);
            }
            IrExpr::And(a, b) | IrExpr::Or(a, b) => {
                a.walk(visit);
                b.walk(visit);
            }
            IrExpr::Not(e) => e.walk(visit),
            IrExpr::Call { args, .. } => {
                for a in args {
                    a.walk(visit);
                }
            }
        }
    }

    /// All scalar variables mentioned by the expression, deduplicated.
    pub fn free_vars(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.walk(&mut |e| {
            if let IrExpr::Var(n) = e {
                if !out.contains(n) {
                    out.push(n.clone());
                }
            }
        });
        out
    }

    /// All `(array, index-expressions)` loads in the expression.
    pub fn loads(&self) -> Vec<(&str, &[IrExpr])> {
        let mut out = Vec::new();
        self.walk(&mut |e| {
            if let IrExpr::Load { array, indices } = e {
                out.push((array.as_str(), indices.as_slice()));
            }
        });
        out
    }

    /// Number of AST nodes in this expression.
    pub fn node_count(&self) -> usize {
        let mut n = 0usize;
        self.walk(&mut |_| n += 1);
        n
    }

    /// Attempts to view this integer expression as an affine combination of
    /// scalar variables: `c0 + Σ ci · vi`. Returns `None` when the expression
    /// is non-affine (products of variables, division, loads, calls).
    pub fn as_affine(&self) -> Option<Affine> {
        match self {
            IrExpr::Int(v) => Some(Affine::constant(*v)),
            IrExpr::Var(name) => Some(Affine::var(name.clone())),
            IrExpr::Bin { op, lhs, rhs } => {
                let l = lhs.as_affine()?;
                let r = rhs.as_affine()?;
                match op {
                    BinOp::Add => Some(l.add(&r)),
                    BinOp::Sub => Some(l.sub(&r)),
                    BinOp::Mul => {
                        if let Some(c) = l.as_constant() {
                            Some(r.scale(c))
                        } else {
                            r.as_constant().map(|c| l.scale(c))
                        }
                    }
                    BinOp::Div => None,
                }
            }
            _ => None,
        }
    }

    /// Substitutes `replacement` for every occurrence of variable `name`.
    pub fn subst_var(&self, name: &str, replacement: &IrExpr) -> IrExpr {
        match self {
            IrExpr::Var(n) if n == name => replacement.clone(),
            IrExpr::Int(_) | IrExpr::Real(_) | IrExpr::Var(_) => self.clone(),
            IrExpr::Load { array, indices } => IrExpr::Load {
                array: array.clone(),
                indices: indices
                    .iter()
                    .map(|ix| ix.subst_var(name, replacement))
                    .collect(),
            },
            IrExpr::Bin { op, lhs, rhs } => IrExpr::Bin {
                op: *op,
                lhs: Box::new(lhs.subst_var(name, replacement)),
                rhs: Box::new(rhs.subst_var(name, replacement)),
            },
            IrExpr::Call { func, args } => IrExpr::Call {
                func: func.clone(),
                args: args
                    .iter()
                    .map(|a| a.subst_var(name, replacement))
                    .collect(),
            },
            IrExpr::Cmp { op, lhs, rhs } => IrExpr::Cmp {
                op: *op,
                lhs: Box::new(lhs.subst_var(name, replacement)),
                rhs: Box::new(rhs.subst_var(name, replacement)),
            },
            IrExpr::And(a, b) => IrExpr::And(
                Box::new(a.subst_var(name, replacement)),
                Box::new(b.subst_var(name, replacement)),
            ),
            IrExpr::Or(a, b) => IrExpr::Or(
                Box::new(a.subst_var(name, replacement)),
                Box::new(b.subst_var(name, replacement)),
            ),
            IrExpr::Not(e) => IrExpr::Not(Box::new(e.subst_var(name, replacement))),
        }
    }
}

impl fmt::Display for IrExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IrExpr::Int(v) => write!(f, "{v}"),
            IrExpr::Real(v) => write!(f, "{v}"),
            IrExpr::Var(n) => write!(f, "{n}"),
            IrExpr::Load { array, indices } => {
                write!(f, "{array}[")?;
                for (k, ix) in indices.iter().enumerate() {
                    if k > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{ix}")?;
                }
                write!(f, "]")
            }
            IrExpr::Bin { op, lhs, rhs } => write!(f, "({lhs} {op} {rhs})"),
            IrExpr::Call { func, args } => {
                write!(f, "{func}(")?;
                for (k, a) in args.iter().enumerate() {
                    if k > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
            IrExpr::Cmp { op, lhs, rhs } => write!(f, "({lhs} {op} {rhs})"),
            IrExpr::And(a, b) => write!(f, "({a} && {b})"),
            IrExpr::Or(a, b) => write!(f, "({a} || {b})"),
            IrExpr::Not(e) => write!(f, "!({e})"),
        }
    }
}

/// An affine integer expression: `constant + Σ coefficient·variable`.
///
/// Variable names are interned [`Symbol`]s: cloning an affine form copies a
/// map of `Copy` keys instead of allocating strings, which keeps the prover's
/// entailment queries (which clone and combine these constantly) off the
/// allocator. `Symbol` orders by string content, so iteration order is the
/// same as with `String` keys.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Affine {
    /// Per-variable coefficients (zero coefficients are not stored).
    pub terms: BTreeMap<Symbol, i64>,
    /// The constant term.
    pub constant: i64,
}

impl Affine {
    /// The constant affine expression `c`.
    pub fn constant(c: i64) -> Affine {
        Affine {
            terms: BTreeMap::new(),
            constant: c,
        }
    }

    /// The affine expression `1·name`.
    pub fn var(name: impl Into<Symbol>) -> Affine {
        let mut terms = BTreeMap::new();
        terms.insert(name.into(), 1);
        Affine { terms, constant: 0 }
    }

    /// Sum of two affine expressions.
    pub fn add(&self, other: &Affine) -> Affine {
        let mut out = self.clone();
        out.constant += other.constant;
        for (v, c) in &other.terms {
            *out.terms.entry(*v).or_insert(0) += c;
        }
        out.normalize()
    }

    /// Difference of two affine expressions.
    pub fn sub(&self, other: &Affine) -> Affine {
        self.add(&other.scale(-1))
    }

    /// Scales by an integer constant.
    pub fn scale(&self, factor: i64) -> Affine {
        let mut out = Affine::constant(self.constant * factor);
        for (v, c) in &self.terms {
            out.terms.insert(*v, c * factor);
        }
        out.normalize()
    }

    fn normalize(mut self) -> Affine {
        self.terms.retain(|_, c| *c != 0);
        self
    }

    /// Returns `Some(c)` if the expression is the constant `c`.
    pub fn as_constant(&self) -> Option<i64> {
        if self.terms.is_empty() {
            Some(self.constant)
        } else {
            None
        }
    }

    /// The coefficient of `name` (zero if absent).
    pub fn coeff(&self, name: impl Into<Symbol>) -> i64 {
        self.terms.get(&name.into()).copied().unwrap_or(0)
    }

    /// Substitutes `replacement` for variable `name`:
    /// `self[name := replacement]`.
    pub fn subst(&self, name: impl Into<Symbol>, replacement: &Affine) -> Affine {
        let name = name.into();
        let c = self.coeff(name);
        if c == 0 {
            return self.clone();
        }
        let mut out = self.clone();
        out.terms.remove(&name);
        out.add(&replacement.scale(c))
    }

    /// Evaluates the expression given integer variable bindings.
    /// Unbound variables evaluate as zero.
    pub fn eval(&self, env: &dyn Fn(&str) -> Option<i64>) -> i64 {
        let mut total = self.constant;
        for (v, c) in &self.terms {
            total += c * env(v.as_str()).unwrap_or(0);
        }
        total
    }

    /// Converts back into an [`IrExpr`].
    pub fn to_expr(&self) -> IrExpr {
        let mut expr: Option<IrExpr> = if self.constant != 0 || self.terms.is_empty() {
            Some(IrExpr::Int(self.constant))
        } else {
            None
        };
        for (v, c) in &self.terms {
            let term = if *c == 1 {
                IrExpr::var(v.as_str())
            } else {
                IrExpr::mul(IrExpr::Int(*c), IrExpr::var(v.as_str()))
            };
            expr = Some(match expr {
                Some(e) => IrExpr::add(e, term),
                None => term,
            });
        }
        expr.unwrap_or(IrExpr::Int(0))
    }
}

/// Greatest common divisor of two non-negative integers (`gcd(0, n) = n`).
/// Shared by the stride-inference and integer-tightening layers.
pub fn gcd(a: i64, b: i64) -> i64 {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

/// The iteration domain of one counted loop: the arithmetic progression
/// `{ lo, lo + step, lo + 2·step, … }` clipped at `hi` (inclusive), walked in
/// order by the counter `var`.
///
/// This is the canonical, first-class representation of "how a loop
/// iterates": lowering produces it, the interpreter and symbolic executor
/// walk it, verification-condition generation derives loop-head invariants
/// (including the divisibility fact `step | var − lo`) from it, and the
/// synthesis grammar quantifies over it. A unit-step domain (`step == 1`) is
/// the dense special case that all pre-§6.5 kernels use.
#[derive(Debug, Clone, PartialEq)]
pub struct IterDomain {
    /// Loop counter variable.
    pub var: String,
    /// First iterate (inclusive lower bound for positive steps).
    pub lo: IrExpr,
    /// Inclusive clip bound: iteration stops once the counter passes it.
    pub hi: IrExpr,
    /// Constant step; positive for incrementing loops, negative for
    /// decrementing ones, never zero.
    pub step: i64,
}

impl IterDomain {
    /// A dense unit-step domain `var = lo ..= hi`.
    pub fn unit(var: impl Into<String>, lo: IrExpr, hi: IrExpr) -> IterDomain {
        IterDomain::new(var, lo, hi, 1)
    }

    /// A domain with an explicit step.
    ///
    /// # Panics
    ///
    /// Panics on a zero step (lowering rejects those before building IR).
    pub fn new(var: impl Into<String>, lo: IrExpr, hi: IrExpr, step: i64) -> IterDomain {
        assert!(step != 0, "iteration domain with zero step");
        IterDomain {
            var: var.into(),
            lo,
            hi,
            step,
        }
    }

    /// Returns `true` for the dense `step == 1` case.
    pub fn is_unit(&self) -> bool {
        self.step == 1
    }

    /// The last value the counter actually takes for concrete bounds, or
    /// `None` when the domain is empty. For `lo=1, hi=10, step=4` this is `9`.
    pub fn last_iterate(lo: i64, hi: i64, step: i64) -> Option<i64> {
        if step > 0 {
            (lo <= hi).then(|| lo + step * ((hi - lo) / step))
        } else {
            (lo >= hi).then(|| lo + step * ((lo - hi) / (-step)))
        }
    }

    /// Number of iterations for concrete bounds.
    pub fn trip_count(lo: i64, hi: i64, step: i64) -> i64 {
        if step > 0 {
            if lo > hi {
                0
            } else {
                (hi - lo) / step + 1
            }
        } else if lo < hi {
            0
        } else {
            (lo - hi) / (-step) + 1
        }
    }

    /// Canonicalizes the domain: when both bounds are integer literals, the
    /// clip bound is tightened to the exact last iterate, so that
    /// `do i = 1, 10, 4` and `do i = 1, 9, 4` have identical canonical form
    /// (and `step | hi − lo` holds exactly). Symbolic bounds are left as
    /// written. Negative-step domains canonicalize the same way (the clip
    /// bound rises to the last iterate).
    pub fn canonicalize(mut self) -> IterDomain {
        if self.step != 1 && self.step != -1 {
            if let (IrExpr::Int(lo), IrExpr::Int(hi)) = (&self.lo, &self.hi) {
                if let Some(last) = IterDomain::last_iterate(*lo, *hi, self.step) {
                    self.hi = IrExpr::Int(last);
                }
            }
        }
        self
    }
}

impl fmt::Display for IterDomain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.step == 1 {
            write!(f, "{} = {}..{}", self.var, self.lo, self.hi)
        } else {
            write!(
                f,
                "{} = {}..{} step {}",
                self.var, self.lo, self.hi, self.step
            )
        }
    }
}

/// Statements of the canonical IR.
#[derive(Debug, Clone, PartialEq)]
pub enum IrStmt {
    /// Assignment to a scalar.
    AssignScalar { name: String, value: IrExpr },
    /// Assignment to an array element.
    Store {
        array: String,
        indices: Vec<IrExpr>,
        value: IrExpr,
    },
    /// A counted loop walking its iteration domain in order.
    Loop {
        domain: IterDomain,
        body: Vec<IrStmt>,
    },
    /// A two-way conditional. Present so the §6.6 experiments can build IR
    /// with conditionals; the lifter itself rejects kernels containing it.
    If {
        cond: IrExpr,
        then_body: Vec<IrStmt>,
        else_body: Vec<IrStmt>,
    },
}

impl IrStmt {
    /// Visits this statement and all nested statements, pre-order.
    pub fn walk<'a>(&'a self, visit: &mut impl FnMut(&'a IrStmt)) {
        visit(self);
        match self {
            IrStmt::Loop { body, .. } => {
                for s in body {
                    s.walk(visit);
                }
            }
            IrStmt::If {
                then_body,
                else_body,
                ..
            } => {
                for s in then_body.iter().chain(else_body) {
                    s.walk(visit);
                }
            }
            IrStmt::AssignScalar { .. } | IrStmt::Store { .. } => {}
        }
    }
}

/// Describes one loop of a (possibly imperfect) loop nest, outermost first.
/// Dereferences to its [`IterDomain`], so `info.var`, `info.lo`, `info.hi`,
/// and `info.step` read through.
#[derive(Debug, Clone, PartialEq)]
pub struct LoopInfo {
    /// The loop's iteration domain.
    pub domain: IterDomain,
    /// Nesting depth, `0` for the outermost loop.
    pub depth: usize,
}

impl std::ops::Deref for LoopInfo {
    type Target = IterDomain;

    fn deref(&self) -> &IterDomain {
        &self.domain
    }
}

/// Kind of a scalar or array symbol, as reported by [`Kernel::var_kind`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VarKind {
    /// Integer scalar.
    Int,
    /// Real scalar.
    Real,
    /// Array of reals.
    Array,
}

/// A candidate kernel in canonical form.
#[derive(Debug, Clone, PartialEq)]
pub struct Kernel {
    /// Kernel name (derived from the enclosing procedure plus an index).
    pub name: String,
    /// Parameters (bounds, scalars, arrays) in declaration order.
    pub params: Vec<Param>,
    /// Scalar locals introduced by the kernel (loop counters, temporaries).
    pub locals: Vec<Param>,
    /// Canonical statements.
    pub body: Vec<IrStmt>,
    /// Boolean assumptions from `STNG: assume(...)` annotations.
    pub assumptions: Vec<IrExpr>,
}

impl Kernel {
    /// Looks up the kind of a symbol.
    pub fn var_kind(&self, name: &str) -> Option<VarKind> {
        self.params
            .iter()
            .chain(self.locals.iter())
            .find(|p| p.name == name)
            .map(|p| match &p.kind {
                ParamKind::IntScalar => VarKind::Int,
                ParamKind::RealScalar => VarKind::Real,
                ParamKind::Array { .. } => VarKind::Array,
            })
    }

    /// Declared dimensions of an array symbol.
    pub fn array_dims(&self, name: &str) -> Option<&[(IrExpr, IrExpr)]> {
        self.params
            .iter()
            .chain(self.locals.iter())
            .find(|p| p.name == name)
            .and_then(|p| match &p.kind {
                ParamKind::Array { dims } => Some(dims.as_slice()),
                _ => None,
            })
    }

    /// Names of all arrays written by the kernel.
    pub fn output_arrays(&self) -> Vec<String> {
        let mut out = Vec::new();
        for stmt in &self.body {
            stmt.walk(&mut |s| {
                if let IrStmt::Store { array, .. } = s {
                    if !out.contains(array) {
                        out.push(array.clone());
                    }
                }
            });
        }
        out
    }

    /// Names of all arrays read by the kernel (may overlap with outputs).
    pub fn input_arrays(&self) -> Vec<String> {
        let mut out = Vec::new();
        let mut record = |e: &IrExpr| {
            e.walk(&mut |x| {
                if let IrExpr::Load { array, .. } = x {
                    if !out.contains(array) {
                        out.push(array.clone());
                    }
                }
            });
        };
        for stmt in &self.body {
            stmt.walk(&mut |s| match s {
                IrStmt::AssignScalar { value, .. } => record(value),
                IrStmt::Store { indices, value, .. } => {
                    for ix in indices {
                        record(ix);
                    }
                    record(value);
                }
                IrStmt::Loop { domain, .. } => {
                    record(&domain.lo);
                    record(&domain.hi);
                }
                IrStmt::If { cond, .. } => record(cond),
            });
        }
        out
    }

    /// The loops of the kernel in pre-order (outermost first), with depth.
    pub fn loops(&self) -> Vec<LoopInfo> {
        fn collect(stmts: &[IrStmt], depth: usize, out: &mut Vec<LoopInfo>) {
            for stmt in stmts {
                if let IrStmt::Loop { domain, body } = stmt {
                    out.push(LoopInfo {
                        domain: domain.clone(),
                        depth,
                    });
                    collect(body, depth + 1, out);
                }
            }
        }
        let mut out = Vec::new();
        collect(&self.body, 0, &mut out);
        out
    }

    /// Maximum loop nesting depth.
    pub fn loop_depth(&self) -> usize {
        self.loops().iter().map(|l| l.depth + 1).max().unwrap_or(0)
    }

    /// Names of loop counter variables in nesting order.
    pub fn loop_vars(&self) -> Vec<String> {
        self.loops().into_iter().map(|l| l.domain.var).collect()
    }

    /// Names of integer scalar parameters (loop bounds, grid sizes).
    pub fn int_params(&self) -> Vec<String> {
        self.params
            .iter()
            .filter(|p| p.kind == ParamKind::IntScalar)
            .map(|p| p.name.clone())
            .collect()
    }

    /// Names of real scalar parameters.
    pub fn real_params(&self) -> Vec<String> {
        self.params
            .iter()
            .filter(|p| p.kind == ParamKind::RealScalar)
            .map(|p| p.name.clone())
            .collect()
    }

    /// Returns `true` when the kernel contains a conditional statement.
    pub fn has_conditionals(&self) -> bool {
        let mut found = false;
        for stmt in &self.body {
            stmt.walk(&mut |s| {
                if matches!(s, IrStmt::If { .. }) {
                    found = true;
                }
            });
        }
        found
    }

    /// Returns `true` when every loop in the kernel has unit step.
    pub fn all_unit_steps(&self) -> bool {
        self.loops().iter().all(|l| l.step == 1)
    }

    /// Number of statements (including nested) in the kernel body.
    pub fn stmt_count(&self) -> usize {
        let mut n = 0usize;
        for stmt in &self.body {
            stmt.walk(&mut |_| n += 1);
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_kernel() -> Kernel {
        // do j = jmin, jmax { do i = imin+1, imax { a[i,j] = b[i-1,j] + b[i,j] } }
        let store = IrStmt::Store {
            array: "a".into(),
            indices: vec![IrExpr::var("i"), IrExpr::var("j")],
            value: IrExpr::add(
                IrExpr::Load {
                    array: "b".into(),
                    indices: vec![
                        IrExpr::sub(IrExpr::var("i"), IrExpr::Int(1)),
                        IrExpr::var("j"),
                    ],
                },
                IrExpr::Load {
                    array: "b".into(),
                    indices: vec![IrExpr::var("i"), IrExpr::var("j")],
                },
            ),
        };
        let inner = IrStmt::Loop {
            domain: IterDomain::unit(
                "i",
                IrExpr::add(IrExpr::var("imin"), IrExpr::Int(1)),
                IrExpr::var("imax"),
            ),
            body: vec![store],
        };
        let outer = IrStmt::Loop {
            domain: IterDomain::unit("j", IrExpr::var("jmin"), IrExpr::var("jmax")),
            body: vec![inner],
        };
        Kernel {
            name: "sten".into(),
            params: vec![
                Param {
                    name: "imin".into(),
                    kind: ParamKind::IntScalar,
                },
                Param {
                    name: "imax".into(),
                    kind: ParamKind::IntScalar,
                },
                Param {
                    name: "jmin".into(),
                    kind: ParamKind::IntScalar,
                },
                Param {
                    name: "jmax".into(),
                    kind: ParamKind::IntScalar,
                },
                Param {
                    name: "a".into(),
                    kind: ParamKind::Array {
                        dims: vec![
                            (IrExpr::var("imin"), IrExpr::var("imax")),
                            (IrExpr::var("jmin"), IrExpr::var("jmax")),
                        ],
                    },
                },
                Param {
                    name: "b".into(),
                    kind: ParamKind::Array {
                        dims: vec![
                            (IrExpr::var("imin"), IrExpr::var("imax")),
                            (IrExpr::var("jmin"), IrExpr::var("jmax")),
                        ],
                    },
                },
            ],
            locals: vec![
                Param {
                    name: "i".into(),
                    kind: ParamKind::IntScalar,
                },
                Param {
                    name: "j".into(),
                    kind: ParamKind::IntScalar,
                },
            ],
            body: vec![outer],
            assumptions: vec![],
        }
    }

    #[test]
    fn kernel_queries() {
        let k = sample_kernel();
        assert_eq!(k.output_arrays(), vec!["a".to_string()]);
        assert_eq!(k.input_arrays(), vec!["b".to_string()]);
        assert_eq!(k.loop_vars(), vec!["j".to_string(), "i".to_string()]);
        assert_eq!(k.loop_depth(), 2);
        assert_eq!(k.var_kind("imin"), Some(VarKind::Int));
        assert_eq!(k.var_kind("a"), Some(VarKind::Array));
        assert!(!k.has_conditionals());
        assert!(k.all_unit_steps());
        assert_eq!(k.stmt_count(), 3);
    }

    #[test]
    fn affine_conversion_roundtrip() {
        // 2*i - j + 3
        let e = IrExpr::add(
            IrExpr::sub(
                IrExpr::mul(IrExpr::Int(2), IrExpr::var("i")),
                IrExpr::var("j"),
            ),
            IrExpr::Int(3),
        );
        let aff = e.as_affine().unwrap();
        assert_eq!(aff.coeff("i"), 2);
        assert_eq!(aff.coeff("j"), -1);
        assert_eq!(aff.constant, 3);
        let env = |name: &str| match name {
            "i" => Some(5),
            "j" => Some(2),
            _ => None,
        };
        assert_eq!(aff.eval(&env), 11);
        let back = aff.to_expr().as_affine().unwrap();
        assert_eq!(back, aff);
    }

    #[test]
    fn non_affine_detected() {
        let e = IrExpr::mul(IrExpr::var("i"), IrExpr::var("j"));
        assert!(e.as_affine().is_none());
        let e = IrExpr::bin(BinOp::Div, IrExpr::var("i"), IrExpr::Int(2));
        assert!(e.as_affine().is_none());
    }

    #[test]
    fn substitution_replaces_all_occurrences() {
        let e = IrExpr::add(
            IrExpr::var("i"),
            IrExpr::mul(IrExpr::var("i"), IrExpr::var("j")),
        );
        let replaced = e.subst_var("i", &IrExpr::Int(4));
        assert_eq!(replaced.free_vars(), vec!["j".to_string()]);
    }

    #[test]
    fn display_is_readable() {
        let k = sample_kernel();
        let IrStmt::Loop { body, .. } = &k.body[0] else {
            panic!()
        };
        let IrStmt::Loop { body, .. } = &body[0] else {
            panic!()
        };
        let IrStmt::Store { value, .. } = &body[0] else {
            panic!()
        };
        assert_eq!(value.to_string(), "(b[(i - 1), j] + b[i, j])");
    }

    #[test]
    fn iter_domain_arithmetic() {
        assert_eq!(IterDomain::last_iterate(1, 10, 4), Some(9));
        assert_eq!(IterDomain::last_iterate(1, 1, 4), Some(1));
        assert_eq!(IterDomain::last_iterate(5, 4, 2), None);
        assert_eq!(IterDomain::last_iterate(10, 1, -4), Some(2));
        assert_eq!(IterDomain::last_iterate(1, 10, -1), None);
        assert_eq!(IterDomain::trip_count(1, 10, 4), 3);
        assert_eq!(IterDomain::trip_count(1, 10, 1), 10);
        assert_eq!(IterDomain::trip_count(5, 4, 2), 0);
        assert_eq!(IterDomain::trip_count(10, 1, -4), 3);
    }

    #[test]
    fn iter_domain_canonicalization_clamps_constant_bounds() {
        let d = IterDomain::new("i", IrExpr::Int(1), IrExpr::Int(10), 4).canonicalize();
        assert_eq!(d.hi, IrExpr::Int(9));
        let d = IterDomain::new("i", IrExpr::Int(10), IrExpr::Int(1), -4).canonicalize();
        assert_eq!(d.hi, IrExpr::Int(2));
        // Symbolic bounds are left alone.
        let d = IterDomain::new("i", IrExpr::Int(1), IrExpr::var("n"), 4).canonicalize();
        assert_eq!(d.hi, IrExpr::var("n"));
        // Unit steps need no clamping.
        let d = IterDomain::unit("i", IrExpr::Int(1), IrExpr::Int(10)).canonicalize();
        assert_eq!(d.hi, IrExpr::Int(10));
        assert!(d.is_unit());
    }

    #[test]
    fn iter_domain_display_shows_stride() {
        let d = IterDomain::new("kk", IrExpr::Int(1), IrExpr::var("n"), 4);
        assert_eq!(d.to_string(), "kk = 1..n step 4");
        let u = IterDomain::unit("i", IrExpr::Int(0), IrExpr::var("n"));
        assert_eq!(u.to_string(), "i = 0..n");
    }

    #[test]
    fn affine_substitution() {
        // (2i + j + 3)[i := 1 + 2k] = 4k + j + 5
        let aff = Affine::var("i".to_string())
            .scale(2)
            .add(&Affine::var("j".to_string()))
            .add(&Affine::constant(3));
        let repl = Affine::var("k".to_string())
            .scale(2)
            .add(&Affine::constant(1));
        let out = aff.subst("i", &repl);
        assert_eq!(out.coeff("k"), 4);
        assert_eq!(out.coeff("j"), 1);
        assert_eq!(out.coeff("i"), 0);
        assert_eq!(out.constant, 5);
    }

    #[test]
    fn cmp_op_semantics() {
        assert!(CmpOp::Lt.eval(1, 2));
        assert!(!CmpOp::Lt.eval(2, 2));
        assert_eq!(CmpOp::Lt.negate(), CmpOp::Ge);
        assert_eq!(CmpOp::Le.flip(), CmpOp::Ge);
        assert!(CmpOp::Ne.eval(1, 2));
    }
}
