//! Lexer for the Fortran-style subset.
//!
//! The lexer is line oriented (Fortran statements end at a newline) and keeps
//! `STNG: assume(...)` comments around as [`Token::Annotation`] so the parser
//! can attach them to the enclosing procedure.

use crate::error::{Error, Result};
use std::fmt;

/// A single lexical token together with the 1-based line it came from.
#[derive(Debug, Clone, PartialEq)]
pub struct SpannedToken {
    /// The token itself.
    pub token: Token,
    /// 1-based source line.
    pub line: usize,
}

/// Tokens of the Fortran subset.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Identifier or keyword (keywords are recognized by the parser; Fortran
    /// has no reserved words).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Real literal (including `d0` / `e0` exponent forms).
    Real(f64),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `:`
    Colon,
    /// `::`
    DoubleColon,
    /// `=`
    Assign,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `==`
    EqEq,
    /// `/=`
    Ne,
    /// `.and.`
    And,
    /// `.or.`
    Or,
    /// `.not.`
    Not,
    /// End of statement (newline or `;`).
    Newline,
    /// A `STNG: assume(...)` annotation comment; payload is the text inside
    /// the outer parentheses.
    Annotation(String),
    /// End of input.
    Eof,
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Ident(s) => write!(f, "{s}"),
            Token::Int(v) => write!(f, "{v}"),
            Token::Real(v) => write!(f, "{v}"),
            Token::LParen => write!(f, "("),
            Token::RParen => write!(f, ")"),
            Token::Comma => write!(f, ","),
            Token::Colon => write!(f, ":"),
            Token::DoubleColon => write!(f, "::"),
            Token::Assign => write!(f, "="),
            Token::Plus => write!(f, "+"),
            Token::Minus => write!(f, "-"),
            Token::Star => write!(f, "*"),
            Token::Slash => write!(f, "/"),
            Token::Lt => write!(f, "<"),
            Token::Le => write!(f, "<="),
            Token::Gt => write!(f, ">"),
            Token::Ge => write!(f, ">="),
            Token::EqEq => write!(f, "=="),
            Token::Ne => write!(f, "/="),
            Token::And => write!(f, ".and."),
            Token::Or => write!(f, ".or."),
            Token::Not => write!(f, ".not."),
            Token::Newline => write!(f, "<newline>"),
            Token::Annotation(s) => write!(f, "! STNG: assume({s})"),
            Token::Eof => write!(f, "<eof>"),
        }
    }
}

/// Tokenizes `source`, returning the token stream terminated by [`Token::Eof`].
///
/// # Errors
///
/// Returns [`Error::Lex`] on malformed numeric literals or unexpected
/// characters.
pub fn tokenize(source: &str) -> Result<Vec<SpannedToken>> {
    let mut tokens = Vec::new();
    for (line_idx, raw_line) in source.lines().enumerate() {
        let line_no = line_idx + 1;
        let line = raw_line;
        lex_line(line, line_no, &mut tokens)?;
        // Every physical line ends a statement (the subset has no
        // continuation lines).
        if !matches!(tokens.last().map(|t| &t.token), None | Some(Token::Newline)) {
            tokens.push(SpannedToken {
                token: Token::Newline,
                line: line_no,
            });
        }
    }
    tokens.push(SpannedToken {
        token: Token::Eof,
        line: source.lines().count() + 1,
    });
    Ok(tokens)
}

fn lex_line(line: &str, line_no: usize, out: &mut Vec<SpannedToken>) -> Result<()> {
    let bytes: Vec<char> = line.chars().collect();
    let mut i = 0usize;
    let push = |out: &mut Vec<SpannedToken>, token: Token| {
        out.push(SpannedToken {
            token,
            line: line_no,
        })
    };
    while i < bytes.len() {
        let c = bytes[i];
        match c {
            ' ' | '\t' | '\r' => i += 1,
            ';' => {
                push(out, Token::Newline);
                i += 1;
            }
            '!' => {
                let comment: String = bytes[i + 1..].iter().collect();
                let trimmed = comment.trim();
                if let Some(rest) = trimmed.strip_prefix("STNG:") {
                    let rest = rest.trim();
                    if let Some(inner) = rest
                        .strip_prefix("assume(")
                        .and_then(|s| s.strip_suffix(')'))
                    {
                        push(out, Token::Annotation(inner.trim().to_string()));
                    }
                }
                break;
            }
            '(' => {
                push(out, Token::LParen);
                i += 1;
            }
            ')' => {
                push(out, Token::RParen);
                i += 1;
            }
            ',' => {
                push(out, Token::Comma);
                i += 1;
            }
            '+' => {
                push(out, Token::Plus);
                i += 1;
            }
            '-' => {
                push(out, Token::Minus);
                i += 1;
            }
            '*' => {
                push(out, Token::Star);
                i += 1;
            }
            ':' => {
                if bytes.get(i + 1) == Some(&':') {
                    push(out, Token::DoubleColon);
                    i += 2;
                } else {
                    push(out, Token::Colon);
                    i += 1;
                }
            }
            '=' => {
                if bytes.get(i + 1) == Some(&'=') {
                    push(out, Token::EqEq);
                    i += 2;
                } else {
                    push(out, Token::Assign);
                    i += 1;
                }
            }
            '<' => {
                if bytes.get(i + 1) == Some(&'=') {
                    push(out, Token::Le);
                    i += 2;
                } else {
                    push(out, Token::Lt);
                    i += 1;
                }
            }
            '>' => {
                if bytes.get(i + 1) == Some(&'=') {
                    push(out, Token::Ge);
                    i += 2;
                } else {
                    push(out, Token::Gt);
                    i += 1;
                }
            }
            '/' => {
                if bytes.get(i + 1) == Some(&'=') {
                    push(out, Token::Ne);
                    i += 2;
                } else {
                    push(out, Token::Slash);
                    i += 1;
                }
            }
            '.' => {
                // `.and.` / `.or.` / `.not.` logical operators, or a real
                // literal starting with a dot (e.g. `.5`).
                let rest: String = bytes[i..].iter().collect::<String>().to_lowercase();
                if rest.starts_with(".and.") {
                    push(out, Token::And);
                    i += 5;
                } else if rest.starts_with(".or.") {
                    push(out, Token::Or);
                    i += 4;
                } else if rest.starts_with(".not.") {
                    push(out, Token::Not);
                    i += 5;
                } else if bytes
                    .get(i + 1)
                    .map(|c| c.is_ascii_digit())
                    .unwrap_or(false)
                {
                    let (tok, len) = lex_number(&bytes[i..], line_no)?;
                    push(out, tok);
                    i += len;
                } else {
                    return Err(Error::Lex {
                        line: line_no,
                        message: format!("unexpected character '.' in '{line}'"),
                    });
                }
            }
            c if c.is_ascii_digit() => {
                let (tok, len) = lex_number(&bytes[i..], line_no)?;
                push(out, tok);
                i += len;
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == '_') {
                    i += 1;
                }
                let word: String = bytes[start..i].iter().collect();
                push(out, Token::Ident(word.to_lowercase()));
            }
            other => {
                return Err(Error::Lex {
                    line: line_no,
                    message: format!("unexpected character '{other}'"),
                });
            }
        }
    }
    Ok(())
}

/// Lexes a numeric literal starting at `chars[0]`, returning the token and the
/// number of characters consumed.
fn lex_number(chars: &[char], line_no: usize) -> Result<(Token, usize)> {
    let mut i = 0usize;
    let mut is_real = false;
    let mut text = String::new();
    while i < chars.len() && chars[i].is_ascii_digit() {
        text.push(chars[i]);
        i += 1;
    }
    if i < chars.len() && chars[i] == '.' {
        // A dot followed by a letter is a logical operator boundary
        // (`1.and.`); only treat it as a decimal point when followed by a
        // digit or end/non-letter.
        let next = chars.get(i + 1);
        let is_decimal = match next {
            Some(c) => !c.is_ascii_alphabetic(),
            None => true,
        };
        if is_decimal {
            is_real = true;
            text.push('.');
            i += 1;
            while i < chars.len() && chars[i].is_ascii_digit() {
                text.push(chars[i]);
                i += 1;
            }
        }
    }
    // Exponent: e/E/d/D followed by optional sign and digits.
    if i < chars.len() && matches!(chars[i], 'e' | 'E' | 'd' | 'D') {
        let mut j = i + 1;
        let mut exp = String::new();
        if j < chars.len() && (chars[j] == '+' || chars[j] == '-') {
            exp.push(chars[j]);
            j += 1;
        }
        let digits_start = j;
        while j < chars.len() && chars[j].is_ascii_digit() {
            exp.push(chars[j]);
            j += 1;
        }
        if j > digits_start {
            is_real = true;
            text.push('e');
            text.push_str(&exp);
            i = j;
        }
    }
    if is_real {
        let value: f64 = text.parse().map_err(|_| Error::Lex {
            line: line_no,
            message: format!("malformed real literal '{text}'"),
        })?;
        Ok((Token::Real(value), i))
    } else {
        let value: i64 = text.parse().map_err(|_| Error::Lex {
            line: line_no,
            message: format!("malformed integer literal '{text}'"),
        })?;
        Ok((Token::Int(value), i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<Token> {
        tokenize(src)
            .unwrap()
            .into_iter()
            .map(|t| t.token)
            .collect()
    }

    #[test]
    fn tokenizes_simple_assignment() {
        let toks = kinds("a(i,j) = b(i-1,j) + b(i,j)");
        assert_eq!(toks[0], Token::Ident("a".into()));
        assert_eq!(toks[1], Token::LParen);
        assert!(toks.contains(&Token::Assign));
        assert!(toks.contains(&Token::Minus));
        assert_eq!(*toks.last().unwrap(), Token::Eof);
    }

    #[test]
    fn real_literals_with_kind_exponent() {
        let toks = kinds("x = 1.5d0 + 2.0e-3 + .5");
        let reals: Vec<f64> = toks
            .iter()
            .filter_map(|t| match t {
                Token::Real(v) => Some(*v),
                _ => None,
            })
            .collect();
        assert_eq!(reals, vec![1.5, 0.002, 0.5]);
    }

    #[test]
    fn integer_literals_stay_integers() {
        let toks = kinds("do i = 1, 10, 2");
        let ints: Vec<i64> = toks
            .iter()
            .filter_map(|t| match t {
                Token::Int(v) => Some(*v),
                _ => None,
            })
            .collect();
        assert_eq!(ints, vec![1, 10, 2]);
    }

    #[test]
    fn comments_are_stripped_and_annotations_kept() {
        let toks = kinds("x = 1 ! a plain comment\n! STNG: assume(sz0 /= sz1)\ny = 2");
        assert!(toks
            .iter()
            .any(|t| matches!(t, Token::Annotation(s) if s == "sz0 /= sz1")));
        // Plain comments vanish entirely.
        assert!(!toks
            .iter()
            .any(|t| matches!(t, Token::Ident(s) if s == "plain")));
    }

    #[test]
    fn comparison_operators() {
        let toks = kinds("if (a <= b .and. c /= d) then");
        assert!(toks.contains(&Token::Le));
        assert!(toks.contains(&Token::And));
        assert!(toks.contains(&Token::Ne));
    }

    #[test]
    fn keywords_are_lowercased_identifiers() {
        let toks = kinds("DO J = JMIN, JMAX");
        assert_eq!(toks[0], Token::Ident("do".into()));
        assert_eq!(toks[1], Token::Ident("j".into()));
    }

    #[test]
    fn rejects_unexpected_character() {
        assert!(tokenize("a = b @ c").is_err());
    }

    #[test]
    fn semicolon_separates_statements() {
        let toks = kinds("a = 1; b = 2");
        let newline_count = toks.iter().filter(|t| matches!(t, Token::Newline)).count();
        assert_eq!(newline_count, 2);
    }
}
